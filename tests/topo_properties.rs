//! Property tests for the topology fabric (`simnet-net::topo`): a link
//! is a FIFO (deliveries never reorder), its bounded congestion queue
//! never exceeds its bound, every offered frame lands in exactly one
//! ledger bucket (`offered == frames + tail_drops + loss_drops`), and
//! the seeded loss stream replays bit-identically from the same seed.

use proptest::prelude::*;
use simnet::net::topo::{LinkPolicy, Switch, TopoLink, Verdict};
use simnet::net::MacAddr;
use simnet::sim::tick::{ns, Bandwidth, Tick};

/// One offered frame: the gap since the previous offer and its length.
#[derive(Debug, Clone, Copy)]
struct Offer {
    gap: Tick,
    len: usize,
}

fn offers() -> impl Strategy<Value = Vec<Offer>> {
    proptest::collection::vec(
        (0u64..=2_000, 64usize..=1518).prop_map(|(gap, len)| Offer { gap: ns(gap), len }),
        1..200,
    )
}

fn policies() -> impl Strategy<Value = LinkPolicy> {
    (
        prop_oneof![Just(10.0f64), Just(40.0), Just(100.0)],
        0u64..=5_000,
        prop_oneof![
            Just(None),
            Just(Some(1usize)),
            Just(Some(4)),
            Just(Some(32))
        ],
        prop_oneof![Just(0u32), Just(1_000), Just(100_000), Just(500_000)],
    )
        .prop_map(|(gbps, latency, bound, ppm)| {
            let base = match bound {
                Some(frames) => LinkPolicy::bounded(Bandwidth::gbps(gbps), ns(latency), frames),
                None => LinkPolicy::wire(Bandwidth::gbps(gbps), ns(latency)),
            };
            base.with_loss(ppm)
        })
}

/// Drives `link` through `offers` and returns `(verdicts, final_now)`.
fn drive(link: &mut TopoLink, offers: &[Offer]) -> (Vec<Verdict>, Tick) {
    let mut now = 0;
    let mut verdicts = Vec::with_capacity(offers.len());
    for offer in offers {
        now += offer.gap;
        verdicts.push(link.transmit(now, offer.len));
    }
    (verdicts, now)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    /// FIFO order: across any policy and offer schedule, the delivered
    /// frames' arrival ticks are nondecreasing — the link never reorders
    /// what it accepts (drops leave gaps, never inversions).
    #[test]
    fn deliveries_never_reorder(policy in policies(), offers in offers(), seed in any::<u64>()) {
        let mut link = TopoLink::new(policy, seed);
        let (verdicts, _) = drive(&mut link, &offers);
        let mut last = 0;
        for v in verdicts {
            if let Verdict::Deliver(arrival) = v {
                prop_assert!(
                    arrival >= last,
                    "arrival {arrival} before prior {last} under {policy:?}"
                );
                last = arrival;
            }
        }
    }

    /// The bounded congestion queue honors its bound: occupancy probed
    /// after every offer — and the recorded high-water mark — never
    /// exceed the configured frame count.
    #[test]
    fn occupancy_never_exceeds_bound(
        bound in 1usize..=32,
        offers in offers(),
        seed in any::<u64>(),
    ) {
        let policy = LinkPolicy::bounded(Bandwidth::gbps(10.0), ns(500), bound);
        let mut link = TopoLink::new(policy, seed);
        let mut now = 0;
        for offer in &offers {
            now += offer.gap;
            link.transmit(now, offer.len);
            prop_assert!(
                link.occupancy(now) <= bound,
                "occupancy {} over bound {bound}",
                link.occupancy(now)
            );
        }
        prop_assert!(link.queue_peak() <= bound, "peak {} over bound {bound}", link.queue_peak());
        // Once the busy horizon passes, everything has serialized out.
        prop_assert_eq!(link.occupancy(link.next_free()), 0);
    }

    /// Conservation ledger: every offered frame is accounted for in
    /// exactly one bucket, and the byte counter sums exactly the accepted
    /// frames' lengths.
    #[test]
    fn ledger_conserves_every_offer(policy in policies(), offers in offers(), seed in any::<u64>()) {
        let mut link = TopoLink::new(policy, seed);
        let mut accepted_bytes = 0u64;
        let mut now = 0;
        for offer in &offers {
            now += offer.gap;
            if let Verdict::Deliver(_) = link.transmit(now, offer.len) {
                accepted_bytes += offer.len as u64;
            }
        }
        prop_assert_eq!(link.offered.value(), offers.len() as u64);
        prop_assert_eq!(
            link.offered.value(),
            link.frames.value() + link.tail_drops.value() + link.loss_drops.value(),
            "ledger must balance"
        );
        prop_assert_eq!(link.bytes.value(), accepted_bytes);
        // A pure wire (no queue, no loss) accepts everything.
        if policy.queue_frames.is_none() && policy.loss_ppm == 0 {
            prop_assert_eq!(link.frames.value(), link.offered.value());
        }
        if policy.loss_ppm == 0 {
            prop_assert_eq!(link.loss_drops.value(), 0);
        }
        if policy.queue_frames.is_none() {
            prop_assert_eq!(link.tail_drops.value(), 0);
        }
    }

    /// Seeded loss is replay-deterministic: two links built from the same
    /// `(policy, seed)` produce identical verdict sequences — and
    /// `reset_stats` does not perturb the draw stream.
    #[test]
    fn seeded_loss_replays_identically(
        offers in offers(),
        seed in any::<u64>(),
        ppm in prop_oneof![Just(1_000u32), Just(50_000), Just(500_000)],
        reset_at in 0usize..50,
    ) {
        let policy = LinkPolicy::wire(Bandwidth::gbps(40.0), ns(1_000)).with_loss(ppm);
        let (a, _) = drive(&mut TopoLink::new(policy, seed), &offers);

        // Replay with a mid-stream stats reset: counters clear, the loss
        // stream and busy horizon must not notice.
        let mut link = TopoLink::new(policy, seed);
        let mut now = 0;
        let mut b = Vec::with_capacity(offers.len());
        for (i, offer) in offers.iter().enumerate() {
            if i == reset_at {
                link.reset_stats();
            }
            now += offer.gap;
            b.push(link.transmit(now, offer.len));
        }
        prop_assert_eq!(a, b, "same seed must replay the same verdicts");
    }

    /// Distinct link seeds give independent loss streams: at 50% loss
    /// over a long offer train, two different seeds virtually never agree
    /// on every draw (probability 2^-len).
    #[test]
    fn distinct_seeds_decorrelate_loss(seed in any::<u64>()) {
        let policy = LinkPolicy::wire(Bandwidth::gbps(40.0), ns(1_000)).with_loss(500_000);
        let offers: Vec<Offer> = (0..256).map(|_| Offer { gap: ns(1_000), len: 256 }).collect();
        let (a, _) = drive(&mut TopoLink::new(policy, seed), &offers);
        let (b, _) = drive(&mut TopoLink::new(policy, seed.wrapping_add(1)), &offers);
        prop_assert!(a != b, "adjacent seeds should not share a loss stream");
    }
}

/// The switch forwards to exactly the port a MAC was bound to and
/// reports `None` for strangers — no flooding, no fallback port.
#[test]
fn switch_routes_are_exact() {
    let mut sw = Switch::new();
    let macs: Vec<MacAddr> = (0..8)
        .map(|i| MacAddr::new([0x02, 0, 0, 0, 0, i as u8]))
        .collect();
    for (port, mac) in macs.iter().enumerate() {
        sw.add_route(*mac, port);
    }
    assert_eq!(sw.len(), 8);
    for (port, mac) in macs.iter().enumerate() {
        assert_eq!(sw.route(*mac), Some(port));
    }
    assert_eq!(sw.route(MacAddr::new([0xff; 6])), None);
}
