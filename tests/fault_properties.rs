//! Property tests for the fault-injection subsystem: the plan grammar
//! round-trips exactly and rejects malformed input, the RX path survives
//! stuck-full FIFO windows with packet conservation intact, and the
//! kitchen-sink [`FaultPlan::aggressive`] plan degrades the run without
//! hanging or blowing up the event count.

use proptest::prelude::*;
use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{AppSpec, RunConfig, Simulation, SystemConfig};
use simnet::net::MIN_FRAME_LEN;
use simnet::sim::fault::{Burst, Delayed, FaultInjector, FaultPlan, Window};
use simnet::sim::tick::us;
use simnet::sim::Tick;

// ---- strategies over the plan grammar ----------------------------------

/// Durations that print as a single clean unit (`NNNps`/`NNNns`/`NNNus`).
fn duration() -> Box<dyn Strategy<Value = Tick>> {
    (
        1u64..1_000,
        prop_oneof![Just(1u64), Just(1_000), Just(1_000_000)],
    )
        .prop_map(|(v, unit)| v * unit)
        .boxed()
}

fn window() -> Box<dyn Strategy<Value = Window>> {
    (duration(), 1u64..8)
        .prop_map(|(duration, mult)| Window {
            duration,
            period: duration * mult,
        })
        .boxed()
}

/// Whole-number percentages: `f64` display round-trips them exactly.
fn pct() -> Box<dyn Strategy<Value = f64>> {
    (1u64..=100).prop_map(|p| p as f64).boxed()
}

fn pct_or_off() -> Box<dyn Strategy<Value = f64>> {
    prop_oneof![Just(0.0), pct()].boxed()
}

fn delayed() -> Box<dyn Strategy<Value = Delayed>> {
    (duration(), pct())
        .prop_map(|(extra, pct)| Delayed { extra, pct })
        .boxed()
}

fn burst() -> Box<dyn Strategy<Value = Burst>> {
    (duration(), window())
        .prop_map(|(extra, window)| Burst { extra, window })
        .boxed()
}

fn ber_or_off() -> Box<dyn Strategy<Value = f64>> {
    prop_oneof![
        Just(0.0),
        (1u32..10, 4i32..9).prop_map(|(m, e)| f64::from(m) * 10f64.powi(-e)),
    ]
    .boxed()
}

fn opt<T: Clone + 'static>(
    s: Box<dyn Strategy<Value = T>>,
) -> Box<dyn Strategy<Value = Option<T>>> {
    prop_oneof![Just(None), s.prop_map(Some)].boxed()
}

fn plan() -> impl Strategy<Value = FaultPlan> {
    (
        (ber_or_off(), opt(window()), opt(delayed()), pct_or_off()),
        (opt(delayed()), opt(window()), opt(burst()), pct_or_off()),
    )
        .prop_map(|((link_ber, fifo_stuck, wb_delay, wb_corrupt_pct), rest)| {
            let (pci_stall, master_clear, dma_burst, dca_miss_pct) = rest;
            FaultPlan {
                link_ber,
                fifo_stuck,
                wb_delay,
                wb_corrupt_pct,
                pci_stall,
                master_clear,
                dma_burst,
                dca_miss_pct,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256, ..ProptestConfig::default()
    })]

    /// The canonical text form is a lossless encoding: parse ∘ print = id
    /// for every representable plan (including the empty one).
    #[test]
    fn plan_display_parse_round_trips(p in plan()) {
        let text = p.to_string();
        let reparsed = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("canonical text {text:?} failed to parse: {e}"));
        prop_assert_eq!(reparsed, p, "round trip through {:?}", text);
    }

    /// Probabilities above 100% are rejected wherever the grammar takes
    /// a percentage.
    #[test]
    fn out_of_range_percentages_rejected(p in 101u64..100_000) {
        let texts = [
            format!("nic.wb_corrupt={p}%"),
            format!("dma.dca_miss={p}%"),
            format!("nic.wb_delay=1us@{p}%"),
            format!("pci.stall=1us@{p}%"),
        ];
        for text in &texts {
            prop_assert!(FaultPlan::parse(text).is_err(), "accepted {}", text);
        }
    }

    /// Windows whose active span exceeds their period are rejected for
    /// every windowed fault site.
    #[test]
    fn inverted_windows_rejected(d in 1u64..1_000_000, mult in 2u64..6) {
        let (dur, period) = (d * mult, d);
        let texts = [
            format!("nic.fifo_stuck={dur}ps@{period}ps"),
            format!("pci.master_clear={dur}ps@{period}ps"),
            format!("dma.burst=+1ns/{dur}ps@{period}ps"),
        ];
        for text in &texts {
            prop_assert!(FaultPlan::parse(text).is_err(), "accepted {}", text);
        }
    }
}

#[test]
fn malformed_plans_are_rejected() {
    for bad in [
        "link.ber",                // no value
        "link.ber=0",              // BER must be in (0, 1)
        "link.ber=1",              // ditto
        "link.ber=nan",            // not a number
        "nic.wb_corrupt=0%",       // probability must be positive
        "nic.wb_corrupt=50",       // missing % suffix
        "pci.stall=1us",           // missing @PCT%
        "pci.stall=100@50%",       // duration without a unit
        "pci.stall=1fs@50%",       // unknown unit
        "nic.fifo_stuck=0us@10us", // zero-length window
        "dma.burst=500ns/1us",     // missing leading +
        "dma.burst=+500ns",        // missing /DURATION
        "mem.ber=1e-6",            // unknown key
        "link.ber=1e-6;;bogus",    // trailing garbage entry
    ] {
        assert!(
            FaultPlan::parse(bad).is_err(),
            "malformed plan {bad:?} was accepted"
        );
    }
    // The empty string is the empty plan, not an error.
    assert!(FaultPlan::parse("").unwrap().is_empty());
    assert!(FaultPlan::parse("  ;  ").unwrap().is_empty());
}

// ---- system-level properties under injected faults ---------------------

/// Assembles a loadgen-mode TestPMD run with `plan` installed and returns
/// `(tx, rx, total_drops, events)` after the measurement window.
fn faulted_run(plan: FaultPlan, seed: u64, gbps: f64, window: Tick) -> (u64, u64, u64, u64) {
    let cfg = SystemConfig::gem5();
    let spec = AppSpec::TestPmd;
    let (stack, app) = spec.instantiate(cfg.seed);
    let loadgen = spec.loadgen(&cfg, 1518, gbps);
    let mut sim = Simulation::loadgen_mode(&cfg, stack, app, loadgen);
    sim.install_faults(FaultInjector::new(plan, seed));
    run_phases(
        &mut sim,
        RunConfig {
            phases: Phases {
                warmup: 0,
                measure: window,
            },
        }
        .phases,
    );
    let lg = sim.loadgen.as_ref().expect("loadgen mode");
    let fsm = sim.nodes[0].nic.drop_fsm();
    (
        lg.tx_packets(),
        lg.rx_packets(),
        fsm.total_drops(),
        sim.events_executed(),
    )
}

/// Like [`faulted_run`], but assembled at an arbitrary
/// `(nqueues, lcores)` point through the shared multi-queue entry path.
fn faulted_run_mq(
    nq: usize,
    lcores: usize,
    plan: FaultPlan,
    seed: u64,
    gbps: f64,
    window: Tick,
) -> (u64, u64, u64, u64) {
    let cfg = SystemConfig::gem5().with_queues(nq).with_lcores(lcores);
    let mut sim = simnet::harness::build_loadgen_sim(&cfg, &AppSpec::TestPmd, 1518, gbps);
    sim.install_faults(FaultInjector::new(plan, seed));
    run_phases(
        &mut sim,
        Phases {
            warmup: 0,
            measure: window,
        },
    );
    let lg = sim.loadgen.as_ref().expect("loadgen mode");
    let fsm = sim.nodes[0].nic.drop_fsm();
    (
        lg.tx_packets(),
        lg.rx_packets(),
        fsm.total_drops(),
        sim.events_executed(),
    )
}

/// The generous pipeline-capacity bound shared with `tests/properties.rs`.
/// Multi-queue NICs split the same aggregate FIFO across queues but get a
/// descriptor ring per queue, so the ring terms scale with `num_queues`.
fn pipeline_capacity(cfg: &SystemConfig) -> u64 {
    let nq = cfg.nic.num_queues as u64;
    2 * nq * cfg.nic.rx_ring_size as u64
        + nq * cfg.nic.tx_ring_size as u64
        + (cfg.nic.rx_fifo_bytes + cfg.nic.tx_fifo_bytes) / MIN_FRAME_LEN as u64
        + 4_096
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, ..ProptestConfig::default()
    })]

    /// The RX FIFO survives stuck-full windows of arbitrary phase: frames
    /// arriving inside a window drop or queue, the FIFO drains across the
    /// wraparound into the next window, and packet conservation holds.
    #[test]
    fn rx_fifo_survives_stuck_full_windows(
        dur_us in 1u64..5,
        mult in 2u64..6,
        seed in 1u64..1_000,
        gbps in 20.0f64..60.0,
    ) {
        let plan = FaultPlan::parse(
            &format!("nic.fifo_stuck={dur_us}us@{}us", dur_us * mult),
        ).unwrap();
        let (tx, rx, dropped, _) = faulted_run(plan, seed, gbps, us(300));
        prop_assert!(tx > 0, "load generator must send");
        prop_assert!(rx > 0, "FIFO must drain again after each window");
        prop_assert!(rx <= tx, "echoes cannot exceed sends: rx={rx} tx={tx}");
        let in_pipeline = tx - rx - dropped.min(tx - rx);
        let capacity = pipeline_capacity(&SystemConfig::gem5());
        prop_assert!(
            in_pipeline <= capacity,
            "pipeline holds {in_pipeline} > capacity {capacity} \
             (tx={tx} rx={rx} drop={dropped})"
        );
    }

    /// The same conservation bound holds for any `(nqueues, lcores)`
    /// shape: stuck-full windows wedge the partitioned per-queue FIFOs,
    /// but every frame still drops classified or drains — no packet may
    /// vanish between the RSS steering stage and a worker lcore.
    #[test]
    fn multi_queue_fifos_survive_stuck_full_windows(
        shape in prop_oneof![Just((2usize, 2usize)), Just((4, 2)), Just((4, 4))],
        dur_us in 1u64..5,
        mult in 2u64..6,
        seed in 1u64..1_000,
        gbps in 20.0f64..60.0,
    ) {
        let (nq, lcores) = shape;
        let plan = FaultPlan::parse(
            &format!("nic.fifo_stuck={dur_us}us@{}us", dur_us * mult),
        ).unwrap();
        let (tx, rx, dropped, _) = faulted_run_mq(nq, lcores, plan, seed, gbps, us(300));
        prop_assert!(tx > 0, "load generator must send");
        prop_assert!(rx > 0, "{nq}q/{lcores}l: FIFOs must drain after each window");
        prop_assert!(rx <= tx, "echoes cannot exceed sends: rx={rx} tx={tx}");
        let in_pipeline = tx - rx - dropped.min(tx - rx);
        let cfg = SystemConfig::gem5().with_queues(nq).with_lcores(lcores);
        let capacity = pipeline_capacity(&cfg);
        prop_assert!(
            in_pipeline <= capacity,
            "{nq}q/{lcores}l pipeline holds {in_pipeline} > capacity {capacity} \
             (tx={tx} rx={rx} drop={dropped})"
        );
    }
}

/// No-hang regression: the most aggressive preset plan must neither stall
/// the simulation (progress: packets still flow) nor blow up the event
/// count relative to a clean run of the same point.
#[test]
fn aggressive_plan_degrades_but_never_hangs() {
    let window = us(400);
    let (clean_tx, clean_rx, _, clean_events) = faulted_run(FaultPlan::default(), 1, 55.0, window);
    assert!(clean_rx > 0 && clean_tx > 0);

    let (tx, rx, dropped, events) = faulted_run(FaultPlan::aggressive(), 1, 55.0, window);
    assert!(tx > 0, "injection must continue under faults");
    assert!(
        rx > 0,
        "some packets must still complete the echo loop under the aggressive plan"
    );
    assert!(rx <= tx);
    let in_pipeline = tx - rx - dropped.min(tx - rx);
    assert!(
        in_pipeline <= pipeline_capacity(&SystemConfig::gem5()),
        "faults may drop packets but never lose them unclassified \
         (tx={tx} rx={rx} dropped={dropped})"
    );
    // Bounded effort: fault handling adds retries (master-clear kicks)
    // but no unbounded rescheduling loops.
    assert!(
        events <= 4 * clean_events + 10_000,
        "aggressive plan executed {events} events vs {clean_events} clean — \
         suggests a rescheduling loop"
    );
}
