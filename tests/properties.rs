//! Property-based tests over the assembled system and core data
//! structures: conservation laws and determinism must hold for arbitrary
//! (valid) loads and frame sizes.

use proptest::prelude::*;
use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{AppSpec, RunConfig, Simulation, SystemConfig};
use simnet::net::pcap::{PcapReader, PcapWriter};
use simnet::net::{PacketBuilder, MIN_FRAME_LEN};
use simnet::sim::tick::us;

fn quick_phases() -> RunConfig {
    RunConfig {
        phases: Phases {
            warmup: us(100),
            measure: us(300),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// Packet conservation: everything the generator sent is accounted
    /// for — echoed, dropped at the NIC, or still inside the pipeline
    /// (buffers hold at most FIFO + rings + in-flight wire packets).
    #[test]
    fn packet_conservation(
        size in prop_oneof![Just(64usize), Just(256), Just(750), Just(1518)],
        gbps in 1.0f64..70.0,
    ) {
        let cfg = SystemConfig::gem5();
        let spec = AppSpec::TestPmd;
        let (stack, app) = spec.instantiate(cfg.seed);
        let loadgen = spec.loadgen(&cfg, size, gbps);
        let mut sim = Simulation::loadgen_mode(&cfg, stack, app, loadgen);
        run_phases(&mut sim, quick_phases().phases);

        let lg = sim.loadgen.as_ref().expect("loadgen mode");
        let fsm = sim.nodes[0].nic.drop_fsm();
        let tx = lg.tx_packets();
        let rx = lg.rx_packets();
        let dropped = fsm.dma_drops.value() + fsm.core_drops.value() + fsm.tx_drops.value();
        prop_assert!(rx <= tx, "echoes cannot exceed sends: rx={rx} tx={tx}");
        let in_pipeline = tx - rx - dropped.min(tx - rx);
        // Generous bound: FIFO + both rings + visible queue + wire.
        let capacity = 2 * cfg.nic.rx_ring_size as u64
            + cfg.nic.tx_ring_size as u64
            + (cfg.nic.rx_fifo_bytes + cfg.nic.tx_fifo_bytes) / MIN_FRAME_LEN as u64
            + 4_096;
        prop_assert!(
            in_pipeline <= capacity,
            "pipeline holds {in_pipeline} > capacity {capacity} (tx={tx} rx={rx} drop={dropped})"
        );
    }

    /// Achieved goodput never exceeds offered load (no packet duplication
    /// anywhere in the pipeline).
    #[test]
    fn no_amplification(
        size in prop_oneof![Just(128usize), Just(1024)],
        gbps in 1.0f64..50.0,
    ) {
        let cfg = SystemConfig::gem5();
        let s = simnet::harness::run_point(&cfg, &AppSpec::TestPmd, size, gbps, quick_phases());
        // Allow a small margin for packets buffered during warm-up
        // draining inside the measurement window.
        prop_assert!(
            s.report.achieved_gbps <= s.report.offered_gbps * 1.15 + 0.5,
            "achieved {} > offered {}",
            s.report.achieved_gbps,
            s.report.offered_gbps
        );
    }

    /// The whole simulation is deterministic for any (size, load).
    #[test]
    fn end_to_end_determinism(
        size in prop_oneof![Just(64usize), Just(512)],
        gbps in 1.0f64..60.0,
    ) {
        let cfg = SystemConfig::gem5();
        let a = simnet::harness::run_point(&cfg, &AppSpec::TestPmd, size, gbps, quick_phases());
        let b = simnet::harness::run_point(&cfg, &AppSpec::TestPmd, size, gbps, quick_phases());
        prop_assert_eq!(a.report.tx_packets, b.report.tx_packets);
        prop_assert_eq!(a.report.rx_packets, b.report.rx_packets);
        prop_assert_eq!(a.drop_counts, b.drop_counts);
        prop_assert_eq!(a.events, b.events);
    }

    /// PCAP files round-trip arbitrary frame contents and timestamps.
    #[test]
    fn pcap_round_trip(
        frames in prop::collection::vec(
            (0u64..10_000_000_000, prop::collection::vec(any::<u8>(), 14..1518)),
            1..40
        )
    ) {
        let mut sorted = frames.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut buf = Vec::new();
        {
            let mut writer = PcapWriter::new(&mut buf).unwrap();
            for (tick, data) in &sorted {
                writer.write_packet(*tick, data).unwrap();
            }
        }
        let mut reader = PcapReader::new(&buf[..]).unwrap();
        let records = reader.read_all().unwrap();
        prop_assert_eq!(records.len(), sorted.len());
        for (record, (tick, data)) in records.iter().zip(&sorted) {
            // Nanosecond resolution: picosecond remainders are rounded away.
            prop_assert_eq!(record.tick, tick - tick % 1_000);
            prop_assert_eq!(&record.data, data);
        }
    }

    /// Frame building respects requested sizes and stays parseable.
    #[test]
    fn built_frames_parse(
        payload_len in 0usize..1000,
        frame_len in 64usize..1518,
    ) {
        prop_assume!(frame_len >= 42 + payload_len);
        let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
        let pkt = PacketBuilder::new()
            .udp([10, 0, 0, 1], [10, 0, 0, 2], 1111, 2222)
            .payload(&payload)
            .frame_len(frame_len)
            .build(9);
        prop_assert_eq!(pkt.len(), frame_len);
        let (_, _, got) = pkt.udp().expect("frame parses and checksums");
        prop_assert_eq!(&got[..payload_len], &payload[..]);
    }
}
