//! Packet-lifecycle coverage under overload: a traced TestPMD run at a
//! rate beyond the NIC's drain capacity must show (a) complete echo
//! lifecycles for delivered packets, and (b) at least one dropped packet
//! whose trace ends in a classified `drop` event, with per-class drop
//! event counts agreeing exactly with the Fig. 4 FSM aggregate counters.
//!
//! The fault-matrix half runs apps × fault plans and asserts the packet
//! conservation invariant: everything injected is delivered, classified
//! as a drop (congestion or fault), or bounded in the pipeline.

use std::collections::HashMap;

use simnet::harness::summary::Phases;
use simnet::harness::{run_traced, run_traced_with, AppSpec, RunConfig, SystemConfig, TraceOpts};
use simnet::net::MIN_FRAME_LEN;
use simnet::sim::fault::{FaultInjector, FaultPlan};
use simnet::sim::tick::us;
use simnet::sim::trace::{Component, DropClass, Stage, TraceEvent};

fn overloaded_run() -> (Vec<TraceEvent>, simnet::harness::RunSummary, u64) {
    let cfg = SystemConfig::gem5();
    // No warm-up so the FSM counters in the summary cover exactly the
    // traced window, making trace/counter agreement an equality.
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(800),
        },
    };
    let run = run_traced(
        &cfg,
        &AppSpec::TestPmd,
        1518,
        60.0,
        rc,
        1 << 22,
        Component::ALL_MASK,
    );
    assert_eq!(run.evicted, 0, "trace ring must hold the whole run");
    let hash = run.hash();
    (run.events, run.summary, hash)
}

/// Per-class totals of `Stage::Drop` events: `(dma, core, tx, fault)`.
fn trace_drop_counts(events: &[TraceEvent]) -> (u64, u64, u64, u64) {
    let (mut dma, mut core, mut tx, mut fault) = (0u64, 0u64, 0u64, 0u64);
    for ev in events {
        if let Stage::Drop { class, .. } = ev.stage {
            match class {
                DropClass::Dma => dma += 1,
                DropClass::Core => core += 1,
                DropClass::Tx => tx += 1,
                DropClass::Fault => fault += 1,
            }
        }
    }
    (dma, core, tx, fault)
}

#[test]
fn overload_drops_are_classified_and_match_fsm_counters() {
    let (events, summary, _) = overloaded_run();

    let (dma, core, tx, fault) = trace_drop_counts(&events);
    assert!(
        dma + core + tx > 0,
        "a 60 Gbps TestPMD run must drop packets"
    );
    assert_eq!(
        (dma, core, tx),
        summary.drop_counts,
        "per-class trace drop events must equal the DropFsm counters"
    );
    assert_eq!(fault, 0, "no fault plan installed, no fault drops");
}

#[test]
fn dropped_packet_has_complete_lifecycle_ending_in_drop() {
    let (events, _, _) = overloaded_run();

    // Group stage names by packet id, in emission order.
    let mut by_packet: HashMap<u64, Vec<&'static str>> = HashMap::new();
    for ev in &events {
        if ev.packet_id != simnet::sim::trace::NO_PACKET {
            by_packet
                .entry(ev.packet_id)
                .or_default()
                .push(ev.stage.name());
        }
    }

    let dropped: Vec<_> = by_packet
        .iter()
        .filter(|(_, stages)| stages.contains(&"drop"))
        .collect();
    assert!(!dropped.is_empty(), "at least one packet must be dropped");

    for (id, stages) in &dropped {
        // A dropped packet's RX lifecycle: injected at the load generator,
        // serialized onto the wire, received by the NIC, then refused.
        assert_eq!(
            &stages[..],
            &["inject", "wire_tx", "wire_rx", "drop"],
            "packet {id} lifecycle must end at the classified drop"
        );
    }

    // Delivered packets make it through the full echo path.
    let delivered = by_packet
        .values()
        .filter(|stages| stages.contains(&"echo_rx"))
        .count();
    assert!(delivered > 0, "some packets must complete the echo loop");
    let full = by_packet
        .values()
        .find(|stages| stages.contains(&"echo_rx"))
        .unwrap();
    for stage in [
        "inject",
        "wire_tx",
        "wire_rx",
        "fifo_enq",
        "dma_start",
        "ring_pub",
        "sw_rx",
        "app_rx",
        "app_tx",
        "tx_queue",
        "tx_fifo",
        "tx_wire",
        "echo_rx",
    ] {
        assert!(
            full.contains(&stage),
            "delivered packet missing stage {stage}: {full:?}"
        );
    }
}

/// Packet conservation across an apps × fault-plans matrix: for every
/// cell, `injected == delivered + Σ classified drops + in_flight`, where
/// `in_flight` is bounded by the pipeline's physical capacity, per-class
/// trace drop events equal the FSM counters exactly, and fault drops
/// never leak into the congestion taxonomy.
#[test]
fn packet_conservation_holds_across_fault_matrix() {
    let cfg = SystemConfig::gem5();
    // No warm-up: summary counters cover exactly the traced window.
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(400),
        },
    };
    let apps = [AppSpec::TestPmd, AppSpec::TouchFwd];
    let plans = [
        "",
        "link.ber=1e-5",
        "nic.wb_corrupt=5%;nic.wb_delay=1us@25%",
        "pci.master_clear=5us@50us;dma.burst=+500ns/2us",
    ];
    // FIFO + both rings + visible queue + wire (same generous bound as
    // tests/properties.rs): what the pipeline can physically hold.
    let capacity = 2 * cfg.nic.rx_ring_size as u64
        + cfg.nic.tx_ring_size as u64
        + (cfg.nic.rx_fifo_bytes + cfg.nic.tx_fifo_bytes) / MIN_FRAME_LEN as u64
        + 4_096;

    for spec in &apps {
        for plan_text in &plans {
            let faults = if plan_text.is_empty() {
                FaultInjector::disabled()
            } else {
                FaultInjector::new(FaultPlan::parse(plan_text).unwrap(), 7)
            };
            let run = run_traced_with(
                &cfg,
                spec,
                1518,
                55.0,
                rc,
                TraceOpts {
                    capacity: 1 << 22,
                    mask: Component::ALL_MASK,
                    faults,
                    ..Default::default()
                },
            );
            let cell = format!("{}/{plan_text:?}", spec.label());
            assert_eq!(run.evicted, 0, "{cell}: trace ring too small");

            let (mut injected, mut delivered) = (0u64, 0u64);
            for ev in &run.events {
                match ev.stage {
                    Stage::Inject { .. } => injected += 1,
                    Stage::EchoRx => delivered += 1,
                    _ => {}
                }
            }
            let (dma, core, tx, fault) = trace_drop_counts(&run.events);

            // Trace drop events must mirror the FSM counters per class,
            // with fault drops in their own bucket.
            assert_eq!(
                (dma, core, tx),
                run.summary.drop_counts,
                "{cell}: congestion drop classes disagree with FSM"
            );
            assert_eq!(
                fault, run.summary.fault_drops,
                "{cell}: fault drop events disagree with FSM fault counter"
            );
            if plan_text.is_empty() {
                assert_eq!(fault, 0, "{cell}: fault drops without a plan");
            }
            if plan_text.contains("link.ber") {
                assert!(
                    fault > 0,
                    "{cell}: 1e-5 BER over a 55 Gbps window must corrupt frames"
                );
            }

            // Conservation: injected packets are delivered, classified as
            // dropped, or still inside the (bounded) pipeline.
            let dropped = dma + core + tx + fault;
            assert!(
                delivered + dropped <= injected,
                "{cell}: accounted {delivered}+{dropped} packets exceed injected {injected}"
            );
            let in_flight = injected - delivered - dropped;
            assert!(
                in_flight <= capacity,
                "{cell}: {in_flight} unaccounted packets exceed pipeline capacity \
                 {capacity} (injected={injected} delivered={delivered} dropped={dropped})"
            );
        }
    }
}

#[test]
fn drop_events_carry_queue_occupancies() {
    let (events, _, _) = overloaded_run();
    let mut saw_full_fifo = false;
    for ev in &events {
        if let Stage::Drop { fifo_used, .. } = ev.stage {
            // A drop happens precisely because the FIFO could not admit
            // the frame, so the recorded occupancy must be non-zero.
            assert!(fifo_used > 0, "drop at t={} with empty FIFO", ev.tick);
            saw_full_fifo = true;
        }
    }
    assert!(saw_full_fifo);
}
