//! Packet-lifecycle coverage under overload: a traced TestPMD run at a
//! rate beyond the NIC's drain capacity must show (a) complete echo
//! lifecycles for delivered packets, and (b) at least one dropped packet
//! whose trace ends in a classified `drop` event, with per-class drop
//! event counts agreeing exactly with the Fig. 4 FSM aggregate counters.

use std::collections::HashMap;

use simnet::harness::summary::Phases;
use simnet::harness::{run_traced, AppSpec, RunConfig, SystemConfig};
use simnet::sim::tick::us;
use simnet::sim::trace::{Component, DropClass, Stage, TraceEvent};

fn overloaded_run() -> (Vec<TraceEvent>, simnet::harness::RunSummary, u64) {
    let cfg = SystemConfig::gem5();
    // No warm-up so the FSM counters in the summary cover exactly the
    // traced window, making trace/counter agreement an equality.
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(800),
        },
    };
    let run = run_traced(
        &cfg,
        &AppSpec::TestPmd,
        1518,
        60.0,
        rc,
        1 << 22,
        Component::ALL_MASK,
    );
    assert_eq!(run.evicted, 0, "trace ring must hold the whole run");
    let hash = run.hash();
    (run.events, run.summary, hash)
}

#[test]
fn overload_drops_are_classified_and_match_fsm_counters() {
    let (events, summary, _) = overloaded_run();

    let (mut dma, mut core, mut tx) = (0u64, 0u64, 0u64);
    for ev in &events {
        if let Stage::Drop { class, .. } = ev.stage {
            match class {
                DropClass::Dma => dma += 1,
                DropClass::Core => core += 1,
                DropClass::Tx => tx += 1,
            }
        }
    }
    assert!(
        dma + core + tx > 0,
        "a 60 Gbps TestPMD run must drop packets"
    );
    assert_eq!(
        (dma, core, tx),
        summary.drop_counts,
        "per-class trace drop events must equal the DropFsm counters"
    );
}

#[test]
fn dropped_packet_has_complete_lifecycle_ending_in_drop() {
    let (events, _, _) = overloaded_run();

    // Group stage names by packet id, in emission order.
    let mut by_packet: HashMap<u64, Vec<&'static str>> = HashMap::new();
    for ev in &events {
        if ev.packet_id != simnet::sim::trace::NO_PACKET {
            by_packet
                .entry(ev.packet_id)
                .or_default()
                .push(ev.stage.name());
        }
    }

    let dropped: Vec<_> = by_packet
        .iter()
        .filter(|(_, stages)| stages.contains(&"drop"))
        .collect();
    assert!(!dropped.is_empty(), "at least one packet must be dropped");

    for (id, stages) in &dropped {
        // A dropped packet's RX lifecycle: injected at the load generator,
        // serialized onto the wire, received by the NIC, then refused.
        assert_eq!(
            &stages[..],
            &["inject", "wire_tx", "wire_rx", "drop"],
            "packet {id} lifecycle must end at the classified drop"
        );
    }

    // Delivered packets make it through the full echo path.
    let delivered = by_packet
        .values()
        .filter(|stages| stages.contains(&"echo_rx"))
        .count();
    assert!(delivered > 0, "some packets must complete the echo loop");
    let full = by_packet
        .values()
        .find(|stages| stages.contains(&"echo_rx"))
        .unwrap();
    for stage in [
        "inject",
        "wire_tx",
        "wire_rx",
        "fifo_enq",
        "dma_start",
        "ring_pub",
        "sw_rx",
        "app_rx",
        "app_tx",
        "tx_queue",
        "tx_fifo",
        "tx_wire",
        "echo_rx",
    ] {
        assert!(
            full.contains(&stage),
            "delivered packet missing stage {stage}: {full:?}"
        );
    }
}

#[test]
fn drop_events_carry_queue_occupancies() {
    let (events, _, _) = overloaded_run();
    let mut saw_full_fifo = false;
    for ev in &events {
        if let Stage::Drop { fifo_used, .. } = ev.stage {
            // A drop happens precisely because the FIFO could not admit
            // the frame, so the recorded occupancy must be non-zero.
            assert!(fifo_used > 0, "drop at t={} with empty FIFO", ev.tick);
            saw_full_fifo = true;
        }
    }
    assert!(saw_full_fifo);
}
