//! The load-bearing proof for the burst-batched hot path: running the
//! *same* workload with `burst=1` (the exact scalar event schedule) and
//! `burst=N` must be observationally indistinguishable — byte-identical
//! golden traces, stats dumps (including the executed-event count),
//! fault counters, and buffer-conservation ledgers — for arbitrary
//! rates, frame sizes, burst sizes (ragged tails included), and fault
//! plans. Batching is a transport optimization of the event queue, never
//! a semantic change.

use proptest::prelude::*;
use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{stats_text_all, AppSpec, Simulation, SoftwareClient, SystemConfig};
use simnet::net::pool;
use simnet::sim::fault::{FaultInjector, FaultPlan};
use simnet::sim::tick::us;
use simnet::sim::trace::{canonical_text, Component};

/// Everything observable about one run, serialized for comparison.
#[derive(Debug, PartialEq)]
struct Observed {
    trace: String,
    stats: String,
    events: u64,
    achieved_gbps_bits: u64,
    fault_total: u64,
    pool_live_after_drop: u64,
}

/// Runs one loadgen-mode TestPMD point with an explicit burst size and
/// captures the full observable surface.
fn run_loadgen(burst: usize, size: usize, gbps: f64, plan: &str, phases: Phases) -> Observed {
    let cfg = SystemConfig::gem5();
    let spec = AppSpec::TestPmd;
    run_with(burst, plan, phases, || {
        let (stack, app) = spec.instantiate(cfg.seed);
        let loadgen = spec.loadgen(&cfg, size, gbps);
        Simulation::loadgen_mode(&cfg, stack, app, loadgen)
    })
}

/// Runs one kernel-stack (iperf) point — the path that un-batches at the
/// softirq boundary.
fn run_kernel(burst: usize, size: usize, gbps: f64, plan: &str, phases: Phases) -> Observed {
    let cfg = SystemConfig::gem5();
    let spec = AppSpec::Iperf;
    run_with(burst, plan, phases, || {
        let (stack, app) = spec.instantiate(cfg.seed);
        let loadgen = spec.loadgen(&cfg, size, gbps);
        Simulation::loadgen_mode(&cfg, stack, app, loadgen)
    })
}

/// Runs one dual-mode point (two fully simulated nodes, one coalescer
/// per direction).
fn run_dual(burst: usize, size: usize, gbps: f64, plan: &str, phases: Phases) -> Observed {
    let cfg = SystemConfig::gem5();
    let spec = AppSpec::TestPmd;
    run_with(burst, plan, phases, || {
        let (server_stack, server_app) = spec.instantiate(cfg.seed);
        let client_gen = spec.loadgen(&cfg, size, gbps);
        let client_app = Box::new(SoftwareClient::new(client_gen));
        let drive_stack: Box<dyn simnet::stack::NetworkStack> =
            Box::new(simnet::stack::DpdkStack::new(cfg.seed ^ 0xD21E));
        Simulation::dual_mode(
            &cfg,
            server_stack,
            server_app,
            &cfg,
            drive_stack,
            client_app,
        )
    })
}

fn run_with(
    burst: usize,
    plan: &str,
    phases: Phases,
    build: impl FnOnce() -> Simulation,
) -> Observed {
    let mut sim = build();
    sim.set_burst(burst);
    sim.enable_trace(1 << 20, Component::ALL_MASK);
    if !plan.is_empty() {
        let plan = FaultPlan::parse(plan).expect("valid plan");
        sim.install_faults(FaultInjector::new(plan, 11));
    }
    let summary = run_phases(&mut sim, phases);
    let trace = canonical_text(&sim.take_trace());
    let stats = stats_text_all(&sim, 0);
    let fault_total = sim.fault_injector().counts().total();
    drop(sim);
    Observed {
        trace,
        stats,
        events: summary.events,
        achieved_gbps_bits: summary.achieved_gbps().to_bits(),
        fault_total,
        pool_live_after_drop: pool::stats().live(),
    }
}

/// Asserts the full observable surface matches between a scalar run and
/// a batched run of the same point.
fn assert_equivalent(scalar: &Observed, batched: &Observed, label: &str) {
    assert_eq!(
        scalar.trace, batched.trace,
        "{label}: canonical traces diverged"
    );
    assert_eq!(scalar.stats, batched.stats, "{label}: stats dumps diverged");
    assert_eq!(
        scalar.events, batched.events,
        "{label}: executed-event counts diverged"
    );
    assert_eq!(
        scalar.achieved_gbps_bits, batched.achieved_gbps_bits,
        "{label}: achieved throughput diverged"
    );
    assert_eq!(
        scalar.fault_total, batched.fault_total,
        "{label}: fault counters diverged"
    );
    assert_eq!(
        scalar.pool_live_after_drop, 0,
        "{label}: scalar run stranded buffers"
    );
    assert_eq!(
        batched.pool_live_after_drop, 0,
        "{label}: batched run stranded buffers"
    );
}

const SHORT: Phases = Phases {
    warmup: us(50),
    measure: us(150),
};

/// The canonical burst-size matrix from the issue: 1 (reference), 2,
/// 31/32/33 (around the inline capacity, ragged tails), and a large
/// spilling size — all against the scalar schedule, clean and faulted.
#[test]
fn burst_matrix_is_byte_identical_to_scalar() {
    for (size, gbps) in [(1518usize, 30.0f64), (64, 70.0)] {
        for plan in ["", "link.ber=3e-5;dma.burst=+500ns/2us@20us"] {
            let scalar = run_loadgen(1, size, gbps, plan, SHORT);
            for burst in [2usize, 31, 32, 33, 64] {
                let batched = run_loadgen(burst, size, gbps, plan, SHORT);
                assert_equivalent(
                    &scalar,
                    &batched,
                    &format!("testpmd {size}B @{gbps}Gbps burst={burst} plan={plan:?}"),
                );
            }
        }
    }
}

/// The kernel stack un-batches at the softirq boundary; its event
/// schedule (NAPI wakeups, ITR latency) must be burst-invariant too.
#[test]
fn kernel_stack_is_burst_invariant() {
    let phases = Phases {
        warmup: us(100),
        measure: us(400),
    };
    for plan in ["", "nic.wb_corrupt=8%;link.ber=2e-5"] {
        let scalar = run_kernel(1, 1024, 20.0, plan, phases);
        for burst in [32usize, 33] {
            let batched = run_kernel(burst, 1024, 20.0, plan, phases);
            assert_equivalent(
                &scalar,
                &batched,
                &format!("iperf burst={burst} plan={plan:?}"),
            );
        }
    }
}

/// Dual-mode runs coalesce both wire directions into per-node bursts;
/// the Drive Node's software client must see the identical echo stream.
#[test]
fn dual_mode_is_burst_invariant() {
    let scalar = run_dual(1, 256, 20.0, "", SHORT);
    for burst in [2usize, 32] {
        let batched = run_dual(burst, 256, 20.0, "", SHORT);
        assert_equivalent(&scalar, &batched, &format!("dual-mode burst={burst}"));
    }
}

/// The batching must actually batch: at a line-rate-ish point the burst
/// transport has to flush full multi-packet bursts, otherwise the whole
/// tentpole is a no-op that happens to pass its equivalence suite.
///
/// Note what is *not* asserted: inline drains. In the end-to-end
/// schedule every wire arrival is chased by its own same-tick DMA kick
/// (or, with the engine busy, by a rate-matched departure event), so
/// there is an interposing event between any two consecutive deliveries
/// and equivalence correctly forces the drain to requeue each time. The
/// inline path is pinned down by white-box tests in `harness::sim`
/// where adjacency can be constructed; here we assert the coalescing
/// side: full-size bursts form and travel the queue as single inserts.
#[test]
fn bursts_actually_coalesce_at_high_rate() {
    let cfg = SystemConfig::gem5();
    let spec = AppSpec::TestPmd;
    let (stack, app) = spec.instantiate(cfg.seed);
    let loadgen = spec.loadgen(&cfg, 64, 70.0);
    let mut sim = Simulation::loadgen_mode(&cfg, stack, app, loadgen);
    sim.set_burst(32);
    run_phases(&mut sim, SHORT);
    let stats = sim.burst_stats();
    assert!(stats.flushed > 100, "too few bursts flushed: {stats:?}");
    assert!(
        stats.constituents >= 16 * stats.flushed,
        "bursts should average near-full at line rate: {stats:?}"
    );
    assert!(
        stats.requeues > 0,
        "interposed drains should requeue remainders: {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, ..ProptestConfig::default()
    })]

    /// Differential fuzz over the whole knob space: arbitrary offered
    /// rates, frame sizes, burst sizes (including ragged tails around
    /// the inline capacity), and fault plans. Every observable must
    /// match the scalar reference run bit-for-bit.
    #[test]
    fn arbitrary_points_are_burst_invariant(
        burst in prop_oneof![Just(2usize), Just(3), Just(8), Just(31), Just(32), Just(33), Just(48), Just(64)],
        size in prop_oneof![Just(64usize), Just(256), Just(1024), Just(1518)],
        gbps in prop_oneof![Just(2.0f64), Just(15.0), Just(45.0), Just(70.0)],
        plan in prop_oneof![
            Just(""),
            Just("link.ber=3e-5"),
            Just("nic.wb_corrupt=10%;dma.burst=+500ns/2us@20us"),
            Just("nic.fifo_stuck=15us@50us;link.ber=2e-5"),
        ],
    ) {
        let scalar = run_loadgen(1, size, gbps, plan, SHORT);
        let batched = run_loadgen(burst, size, gbps, plan, SHORT);
        assert_equivalent(
            &scalar,
            &batched,
            &format!("fuzz {size}B @{gbps}Gbps burst={burst} plan={plan:?}"),
        );
    }
}
