//! Golden-trace determinism: the packet-lifecycle trace of a fixed
//! configuration must be byte-identical across runs and across freshly
//! rebuilt nodes, and must match the committed golden file.
//!
//! Regenerate the golden after an intentional behavior change with:
//!
//! ```text
//! SIMNET_UPDATE_GOLDEN=1 cargo test -q --test golden_trace
//! ```

use simnet::harness::summary::Phases;
use simnet::harness::tracerun::TracedRun;
use simnet::harness::{run_traced, run_traced_with, AppSpec, RunConfig, SystemConfig, TraceOpts};
use simnet::sim::fault::{FaultInjector, FaultPlan};
use simnet::sim::tick::us;
use simnet::sim::trace::{trace_hash, Component};

/// A short, light TestPMD point: no warm-up, a 250 µs window (the link's
/// one-way latency is 100 µs, so the window must cover inject → arrival →
/// echo) at 2 Gbps of 1518 B frames — a few hundred trace lines, small
/// enough to commit.
fn golden_point() -> TracedRun {
    let cfg = SystemConfig::gem5();
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(250),
        },
    };
    run_traced(
        &cfg,
        &AppSpec::TestPmd,
        1518,
        2.0,
        rc,
        1 << 16,
        Component::ALL_MASK,
    )
}

/// The golden point with a fault plan installed: the same workload as
/// [`golden_point`] plus a BER high enough to corrupt a few frames and a
/// periodic DMA latency burst — chaos that must still be byte-for-byte
/// reproducible from the fault seed.
fn faulted_point(fault_seed: u64) -> TracedRun {
    let cfg = SystemConfig::gem5();
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(250),
        },
    };
    let plan = FaultPlan::parse("link.ber=3e-5;dma.burst=+500ns/2us@20us").unwrap();
    run_traced_with(
        &cfg,
        &AppSpec::TestPmd,
        1518,
        2.0,
        rc,
        TraceOpts {
            capacity: 1 << 16,
            mask: Component::ALL_MASK,
            faults: FaultInjector::new(plan, fault_seed),
        },
    )
}

#[test]
fn trace_is_deterministic_across_rebuilt_nodes() {
    // Each call assembles a brand-new node (NIC, memory, stack, loadgen)
    // from the same `SystemConfig`; nothing may leak between runs.
    let a = golden_point();
    let b = golden_point();
    assert!(!a.events.is_empty(), "trace captured events");
    assert_eq!(a.evicted, 0, "golden trace must fit the ring");
    assert_eq!(
        a.canonical_text(),
        b.canonical_text(),
        "canonical traces of identical configs must be byte-identical"
    );
    assert_eq!(a.hash(), b.hash());
    assert_eq!(trace_hash(&a.events), a.hash());
}

#[test]
fn trace_matches_committed_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/testpmd_small.trace"
    );
    let run = golden_point();
    let text = run.canonical_text();

    if std::env::var_os("SIMNET_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &text).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}; run with SIMNET_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        text, golden,
        "trace diverged from the golden file; if the change is intentional, \
         regenerate with SIMNET_UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );
}

/// Chaos determinism: the faulted event stream is a pure function of the
/// fault seed. Two freshly rebuilt simulators with the same seed emit
/// byte-identical canonical traces; a different seed perturbs them.
#[test]
fn faulted_trace_is_deterministic_and_seed_sensitive() {
    let a = faulted_point(11);
    let b = faulted_point(11);
    assert!(!a.events.is_empty());
    assert_eq!(a.evicted, 0, "faulted golden trace must fit the ring");
    assert_eq!(
        a.canonical_text(),
        b.canonical_text(),
        "same fault seed must reproduce the chaos byte-for-byte"
    );
    assert_eq!(a.hash(), b.hash());
    assert!(
        a.fault_counts.total() > 0,
        "the faulted plan must actually inject faults: {:?}",
        a.fault_counts
    );
    assert_eq!(
        a.fault_counts.total(),
        b.fault_counts.total(),
        "fault counters are part of the deterministic surface"
    );

    let c = faulted_point(12);
    assert_ne!(
        a.hash(),
        c.hash(),
        "a different fault seed must produce a different trace"
    );
}

/// The faulted trace also has a committed golden: fault injection sites
/// may not drift (new draws, reordered draws) without a deliberate
/// regeneration.
#[test]
fn faulted_trace_matches_committed_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/testpmd_faulted.trace"
    );
    let run = faulted_point(11);
    let text = run.canonical_text();
    assert!(
        text.contains("stage=fault"),
        "faulted golden must contain fault events"
    );

    if std::env::var_os("SIMNET_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &text).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}; run with SIMNET_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        text, golden,
        "faulted trace diverged from the golden file; if the change is \
         intentional, regenerate with SIMNET_UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );
}

#[test]
fn trace_filter_restricts_components() {
    let cfg = SystemConfig::gem5();
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(250),
        },
    };
    let mask = Component::Nic.bit();
    let run = run_traced(&cfg, &AppSpec::TestPmd, 1518, 2.0, rc, 1 << 16, mask);
    assert!(!run.events.is_empty());
    assert!(run.events.iter().all(|e| e.component == Component::Nic));
}
