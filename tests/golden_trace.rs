//! Golden-trace determinism: the packet-lifecycle trace of a fixed
//! configuration must be byte-identical across runs and across freshly
//! rebuilt nodes, and must match the committed golden file.
//!
//! Regenerate the golden after an intentional behavior change with:
//!
//! ```text
//! SIMNET_UPDATE_GOLDEN=1 cargo test -q --test golden_trace
//! ```

use simnet::harness::summary::Phases;
use simnet::harness::tracerun::TracedRun;
use simnet::harness::{run_traced, run_traced_with, AppSpec, RunConfig, SystemConfig, TraceOpts};
use simnet::sim::fault::{FaultInjector, FaultPlan};
use simnet::sim::tick::us;
use simnet::sim::trace::{trace_hash, Component};

/// A short, light TestPMD point: no warm-up, a 250 µs window (the link's
/// one-way latency is 100 µs, so the window must cover inject → arrival →
/// echo) at 2 Gbps of 1518 B frames — a few hundred trace lines, small
/// enough to commit.
fn golden_point() -> TracedRun {
    let cfg = SystemConfig::gem5();
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(250),
        },
    };
    run_traced(
        &cfg,
        &AppSpec::TestPmd,
        1518,
        2.0,
        rc,
        1 << 16,
        Component::ALL_MASK,
    )
}

/// The golden point with a fault plan installed: the same workload as
/// [`golden_point`] plus a BER high enough to corrupt a few frames and a
/// periodic DMA latency burst — chaos that must still be byte-for-byte
/// reproducible from the fault seed.
fn faulted_point(fault_seed: u64) -> TracedRun {
    let cfg = SystemConfig::gem5();
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(250),
        },
    };
    let plan = FaultPlan::parse("link.ber=3e-5;dma.burst=+500ns/2us@20us").unwrap();
    run_traced_with(
        &cfg,
        &AppSpec::TestPmd,
        1518,
        2.0,
        rc,
        TraceOpts {
            capacity: 1 << 16,
            mask: Component::ALL_MASK,
            faults: FaultInjector::new(plan, fault_seed),
            ..Default::default()
        },
    )
}

/// A line-rate-ish TestPMD point where the burst transport genuinely
/// coalesces (hundreds of multi-packet bursts per window): 30 Gbps of
/// 1518 B frames over the same 250 µs window. `burst` selects the
/// coalescing factor; `fault_seed` optionally installs the same chaos
/// plan as [`faulted_point`].
fn burst_point(burst: usize, fault_seed: Option<u64>) -> TracedRun {
    let cfg = SystemConfig::gem5();
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(250),
        },
    };
    let faults = match fault_seed {
        Some(seed) => {
            let plan = FaultPlan::parse("link.ber=3e-5;dma.burst=+500ns/2us@20us").unwrap();
            FaultInjector::new(plan, seed)
        }
        None => FaultInjector::disabled(),
    };
    run_traced_with(
        &cfg,
        &AppSpec::TestPmd,
        1518,
        30.0,
        rc,
        TraceOpts {
            capacity: 1 << 20,
            mask: Component::ALL_MASK,
            faults,
            burst,
        },
    )
}

/// The multi-queue golden point: the same light TestPMD workload as
/// [`golden_point`], but on a 2-queue NIC with 2 worker lcores. On a
/// multi-queue NIC the synthetic generator emits RSS-hashable UDP
/// frames whose source ports round-robin one port per queue, so the
/// stream genuinely spreads across both queues — the golden pins the
/// full multi-queue event schedule: per-queue DMA kicks, both lcores'
/// software wakeups, partitioned FIFOs, and the interleaved echo
/// stream.
fn mq_point() -> TracedRun {
    let cfg = SystemConfig::gem5().with_queues(2).with_lcores(2);
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(250),
        },
    };
    run_traced(
        &cfg,
        &AppSpec::TestPmd,
        1518,
        2.0,
        rc,
        1 << 16,
        Component::ALL_MASK,
    )
}

/// The sharded-memcached multi-queue golden: 4 RSS queues, 4 worker
/// lcores, the client steering each request's source port onto the
/// queue owning its key's shard — real cross-queue traffic, committed
/// byte-for-byte.
fn mq_memcached_point() -> TracedRun {
    let cfg = SystemConfig::gem5().with_queues(4).with_lcores(4);
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(400),
        },
    };
    run_traced(
        &cfg,
        &AppSpec::MemcachedDpdk,
        0,
        200.0,
        rc,
        1 << 18,
        Component::ALL_MASK,
    )
}

#[test]
fn trace_is_deterministic_across_rebuilt_nodes() {
    // Each call assembles a brand-new node (NIC, memory, stack, loadgen)
    // from the same `SystemConfig`; nothing may leak between runs.
    let a = golden_point();
    let b = golden_point();
    assert!(!a.events.is_empty(), "trace captured events");
    assert_eq!(a.evicted, 0, "golden trace must fit the ring");
    assert_eq!(
        a.canonical_text(),
        b.canonical_text(),
        "canonical traces of identical configs must be byte-identical"
    );
    assert_eq!(a.hash(), b.hash());
    assert_eq!(trace_hash(&a.events), a.hash());
}

#[test]
fn trace_matches_committed_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/testpmd_small.trace"
    );
    let run = golden_point();
    let text = run.canonical_text();

    if std::env::var_os("SIMNET_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &text).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}; run with SIMNET_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        text, golden,
        "trace diverged from the golden file; if the change is intentional, \
         regenerate with SIMNET_UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );
}

/// Chaos determinism: the faulted event stream is a pure function of the
/// fault seed. Two freshly rebuilt simulators with the same seed emit
/// byte-identical canonical traces; a different seed perturbs them.
#[test]
fn faulted_trace_is_deterministic_and_seed_sensitive() {
    let a = faulted_point(11);
    let b = faulted_point(11);
    assert!(!a.events.is_empty());
    assert_eq!(a.evicted, 0, "faulted golden trace must fit the ring");
    assert_eq!(
        a.canonical_text(),
        b.canonical_text(),
        "same fault seed must reproduce the chaos byte-for-byte"
    );
    assert_eq!(a.hash(), b.hash());
    assert!(
        a.fault_counts.total() > 0,
        "the faulted plan must actually inject faults: {:?}",
        a.fault_counts
    );
    assert_eq!(
        a.fault_counts.total(),
        b.fault_counts.total(),
        "fault counters are part of the deterministic surface"
    );

    let c = faulted_point(12);
    assert_ne!(
        a.hash(),
        c.hash(),
        "a different fault seed must produce a different trace"
    );
}

/// The faulted trace also has a committed golden: fault injection sites
/// may not drift (new draws, reordered draws) without a deliberate
/// regeneration.
#[test]
fn faulted_trace_matches_committed_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/testpmd_faulted.trace"
    );
    let run = faulted_point(11);
    let text = run.canonical_text();
    assert!(
        text.contains("stage=fault"),
        "faulted golden must contain fault events"
    );

    if std::env::var_os("SIMNET_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &text).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}; run with SIMNET_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        text, golden,
        "faulted trace diverged from the golden file; if the change is \
         intentional, regenerate with SIMNET_UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );
}

/// The burst-path golden: a point hot enough that deliveries travel as
/// real multi-packet bursts, committed at the default coalescing factor.
/// The same point re-run with `--burst=1` (the exact scalar schedule)
/// must produce the identical bytes — the golden file itself witnesses
/// the tentpole's equivalence claim.
#[test]
fn burst_trace_matches_committed_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/testpmd_burst.trace"
    );
    let run = burst_point(32, None);
    assert_eq!(run.evicted, 0, "burst golden trace must fit the ring");
    let text = run.canonical_text();

    if std::env::var_os("SIMNET_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &text).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}; run with SIMNET_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        text, golden,
        "burst trace diverged from the golden file; if the change is \
         intentional, regenerate with SIMNET_UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );

    let scalar = burst_point(1, None);
    assert_eq!(
        scalar.canonical_text(),
        golden,
        "the scalar (--burst=1) schedule must reproduce the burst golden byte-for-byte"
    );
}

/// The faulted burst golden: the same hot point with the chaos plan
/// installed, so fault draws land mid-burst. Both the batched and the
/// scalar schedule must reproduce the committed bytes, including every
/// `stage=fault` line.
#[test]
fn faulted_burst_trace_matches_committed_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/testpmd_burst_faulted.trace"
    );
    let run = burst_point(32, Some(11));
    assert_eq!(run.evicted, 0, "faulted burst golden must fit the ring");
    let text = run.canonical_text();
    assert!(
        text.contains("stage=fault"),
        "faulted burst golden must contain fault events"
    );
    assert!(
        run.fault_counts.total() > 0,
        "the plan must actually inject faults: {:?}",
        run.fault_counts
    );

    if std::env::var_os("SIMNET_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &text).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}; run with SIMNET_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        text, golden,
        "faulted burst trace diverged from the golden file; if the change is \
         intentional, regenerate with SIMNET_UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );

    let scalar = burst_point(1, Some(11));
    assert_eq!(
        scalar.canonical_text(),
        golden,
        "the scalar (--burst=1) schedule must reproduce the faulted burst \
         golden byte-for-byte, fault draws included"
    );
}

/// The multi-queue golden: the 2-queue/2-lcore TestPMD schedule may not
/// drift (event reordering, extra wakeups, changed DMA kicks) without a
/// deliberate regeneration — and it must differ from the single-queue
/// golden, or the multi-queue configuration is silently inert.
#[test]
fn mq_trace_matches_committed_golden_file() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/testpmd_mq.trace");
    let run = mq_point();
    assert_eq!(run.evicted, 0, "mq golden trace must fit the ring");
    let text = run.canonical_text();

    if std::env::var_os("SIMNET_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &text).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}; run with SIMNET_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        text, golden,
        "multi-queue trace diverged from the golden file; if the change is \
         intentional, regenerate with SIMNET_UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );

    // A second rebuilt node must reproduce it, and the single-queue
    // golden point must not (the queues change the schedule).
    assert_eq!(mq_point().canonical_text(), golden);
    assert_ne!(
        golden_point().canonical_text(),
        golden,
        "the 2-queue schedule must differ from the single-queue golden"
    );
}

/// The sharded-memcached multi-queue golden: 4 queues of genuinely
/// RSS-spread request traffic, byte-for-byte reproducible.
#[test]
fn mq_memcached_trace_matches_committed_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/memcached_mq.trace"
    );
    let run = mq_memcached_point();
    assert_eq!(run.evicted, 0, "mq memcached golden must fit the ring");
    let text = run.canonical_text();

    if std::env::var_os("SIMNET_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &text).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}; run with SIMNET_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        text, golden,
        "sharded-memcached multi-queue trace diverged from the golden file; if \
         the change is intentional, regenerate with SIMNET_UPDATE_GOLDEN=1 \
         cargo test --test golden_trace"
    );
    assert_eq!(mq_memcached_point().canonical_text(), golden);
}

#[test]
fn trace_filter_restricts_components() {
    let cfg = SystemConfig::gem5();
    let rc = RunConfig {
        phases: Phases {
            warmup: 0,
            measure: us(250),
        },
    };
    let mask = Component::Nic.bit();
    let run = run_traced(&cfg, &AppSpec::TestPmd, 1518, 2.0, rc, 1 << 16, mask);
    assert!(!run.events.is_empty());
    assert!(run.events.iter().all(|e| e.component == Component::Nic));
}
