//! Cross-crate shape tests: the qualitative results the paper reports
//! must hold on the assembled system (coarse tolerances — these guard the
//! *direction* of every effect, not the absolute numbers).

use simnet::cpu::CoreKind;
use simnet::harness::{find_msb, run_point, AppSpec, RunConfig, SystemConfig};
use simnet::sim::tick::{ns, us, Frequency};

fn msb(cfg: &SystemConfig, spec: AppSpec, size: usize, lo: f64, hi: f64) -> f64 {
    find_msb(cfg, &spec, size, lo, hi, 5, RunConfig::for_app(&spec)).msb_or_zero()
}

/// §Abstract: userspace networking lifts bandwidth by several-fold over
/// the kernel stack (paper: 6.3x).
#[test]
fn userspace_severalfold_over_kernel() {
    let cfg = SystemConfig::gem5();
    let kernel = msb(&cfg, AppSpec::Iperf, 1518, 0.5, 40.0);
    let dpdk = msb(&cfg, AppSpec::TestPmd, 1518, 1.0, 90.0);
    assert!(
        (8.0..14.0).contains(&kernel),
        "kernel ceiling ~10 Gbps (paper §II.B): {kernel:.1}"
    );
    assert!(dpdk > 50.0, "userspace >50 Gbps (paper §VIII): {dpdk:.1}");
    assert!(dpdk / kernel > 3.5, "severalfold: {:.1}x", dpdk / kernel);
}

/// Fig. 14: DCA improves TestPMD MSB, most at mid packet sizes.
#[test]
fn dca_improves_testpmd() {
    let on = SystemConfig::gem5().with_dca(true);
    let off = SystemConfig::gem5().with_dca(false);
    let with_dca = msb(&on, AppSpec::TestPmd, 512, 1.0, 90.0);
    let without = msb(&off, AppSpec::TestPmd, 512, 1.0, 90.0);
    assert!(
        with_dca > without * 1.05,
        "DCA must help at 512B: on={with_dca:.1} off={without:.1}"
    );
}

/// Fig. 15: core frequency scales a core-bound workload (TouchFwd).
#[test]
fn frequency_scales_touchfwd() {
    let slow = SystemConfig::gem5().with_frequency(Frequency::ghz(1.0));
    let fast = SystemConfig::gem5().with_frequency(Frequency::ghz(4.0));
    let at1 = msb(&slow, AppSpec::TouchFwd, 512, 0.25, 30.0);
    let at4 = msb(&fast, AppSpec::TouchFwd, 512, 0.25, 30.0);
    assert!(
        at4 > at1 * 2.0,
        "4 GHz should far outrun 1 GHz: {at1:.1} -> {at4:.1}"
    );
}

/// Fig. 16: the OoO core beats in-order where core-bound, and large-packet
/// TestPMD (IO-bound) is insensitive.
#[test]
fn core_kind_sensitivity_matches_paper() {
    let ooo = SystemConfig::gem5();
    let ino = SystemConfig::gem5().with_core_kind(CoreKind::InOrder);
    let touch_ooo = msb(&ooo, AppSpec::TouchFwd, 128, 0.25, 30.0);
    let touch_ino = msb(&ino, AppSpec::TouchFwd, 128, 0.25, 30.0);
    assert!(
        touch_ooo > touch_ino * 1.5,
        "TouchFwd gains from OoO: {touch_ino:.1} -> {touch_ooo:.1}"
    );
    let pmd_ooo = msb(&ooo, AppSpec::TestPmd, 1518, 1.0, 90.0);
    let pmd_ino = msb(&ino, AppSpec::TestPmd, 1518, 1.0, 90.0);
    assert!(
        (pmd_ooo - pmd_ino).abs() / pmd_ooo < 0.1,
        "TestPMD-1518B is IO-bound, core-insensitive: {pmd_ino:.1} vs {pmd_ooo:.1}"
    );
}

/// Fig. 11: shrinking L2 below the DPDK working set hurts TestPMD, and
/// iperf keeps gaining beyond 1 MiB (kernel working set is bigger).
#[test]
fn l2_working_set_boundaries() {
    let small = SystemConfig::gem5().with_l2_size(256 << 10);
    let normal = SystemConfig::gem5();
    let big = SystemConfig::gem5().with_l2_size(4 << 20);

    let pmd_small = msb(&small, AppSpec::TestPmd, 128, 1.0, 60.0);
    let pmd_normal = msb(&normal, AppSpec::TestPmd, 128, 1.0, 60.0);
    assert!(
        pmd_normal > pmd_small,
        "256KiB L2 must hurt DPDK: {pmd_small:.1} vs {pmd_normal:.1}"
    );

    let iperf_normal = msb(&normal, AppSpec::Iperf, 1518, 0.5, 30.0);
    let iperf_big = msb(&big, AppSpec::Iperf, 1518, 0.5, 30.0);
    assert!(
        iperf_big > iperf_normal * 1.02,
        "iperf keeps gaining past 1MiB L2: {iperf_normal:.2} -> {iperf_big:.2}"
    );
}

/// Fig. 12: LLC size is inert for a single network application.
#[test]
fn llc_size_is_inert() {
    let a = msb(
        &SystemConfig::gem5().with_llc_size(4 << 20),
        AppSpec::TestPmd,
        128,
        1.0,
        60.0,
    );
    let b = msb(
        &SystemConfig::gem5().with_llc_size(64 << 20),
        AppSpec::TestPmd,
        128,
        1.0,
        60.0,
    );
    assert!(
        (a - b).abs() / a < 0.08,
        "4MiB vs 64MiB LLC should not matter: {a:.1} vs {b:.1}"
    );
}

/// Fig. 13: growing RXpTX's processing interval eventually produces drops
/// and raises the LLC miss rate (the DMA leak out of the DCA partition).
#[test]
fn dma_leak_appears_with_slow_processing() {
    let cfg = SystemConfig::gem5()
        .with_llc_size(1 << 20)
        .with_rx_ring(4096);
    let fast = run_point(&cfg, &AppSpec::RxpTx(ns(10)), 256, 20.0, RunConfig::fast());
    let slow = run_point(&cfg, &AppSpec::RxpTx(us(10)), 256, 20.0, RunConfig::fast());
    assert!(fast.drop_rate < 0.01, "10ns processing sustains 20 Gbps");
    assert!(
        slow.drop_rate > 0.05,
        "10us processing cannot: {}",
        slow.drop_rate
    );
    assert!(
        slow.llc_miss_rate > fast.llc_miss_rate + 0.05,
        "ring backlog leaks out of the DCA ways: {:.3} -> {:.3}",
        fast.llc_miss_rate,
        slow.llc_miss_rate
    );
}

/// Fig. 6's client artifact: the altra preset's software client cannot
/// offer more than its packet-rate ceiling at small packet sizes.
#[test]
fn altra_client_ceiling_binds_small_packets() {
    let altra = SystemConfig::altra();
    let s = run_point(&altra, &AppSpec::TestPmd, 64, 60.0, RunConfig::fast());
    // 15.6 Mpps * 64B = ~8 Gbps of offered load, no matter what was asked.
    assert!(
        s.report.offered_gbps < 9.0,
        "client caps 64B offered load near 8 Gbps: {:.1}",
        s.report.offered_gbps
    );
    assert!(s.drop_rate < 0.01, "the capped load is trivially sustained");
}
