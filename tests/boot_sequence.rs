//! Cross-crate integration: the Listing-2 boot sequence and the paper's
//! §III defect reproductions, wired through the real component stack.

use simnet::nic::{Nic, NicCompatMode, NicConfig};
use simnet::pci::devbind::DevBind;
use simnet::pci::{BindError, CompatMode, ConfigSpace, UioPciGeneric};
use simnet::stack::dpdk::{Eal, EalConfig, EalError};

/// The full Listing-2 flow on the extended (paper) models succeeds:
/// modprobe uio_pci_generic → devbind → hugepages → EAL/PMD launch.
#[test]
fn listing2_boot_succeeds_on_extended_models() {
    let mut nic = Nic::new(NicConfig::paper_default());
    let bdf = "00:02.0".parse().unwrap();
    let mut registry = DevBind::new();
    registry.register(bdf, nic.pci_config().clone());
    registry
        .bind_uio(bdf)
        .expect("uio binds on the extended PCI model");

    let mut eal = Eal::new(EalConfig::paper_default());
    eal.init(&mut nic).expect("patched DPDK launches its PMD");
    assert_eq!(eal.pmd_name(), Some("net_e1000_em"));
}

/// §III.A.1: baseline gem5's PCI model (no interrupt-disable bit) cannot
/// host uio_pci_generic.
#[test]
fn baseline_pci_model_rejects_uio() {
    let mut cs = ConfigSpace::new(0x8086, 0x100e, CompatMode::Baseline);
    let mut uio = UioPciGeneric::new();
    assert_eq!(
        uio.bind(&mut cs),
        Err(BindError::InterruptDisableUnsupported)
    );
}

/// §III.A.5: baseline gem5's NIC model (unimplemented interrupt-mask
/// accessors) keeps the PMD from launching, even with the PCI fix.
#[test]
fn baseline_nic_model_blocks_pmd_launch() {
    let mut nic = Nic::new(NicConfig {
        compat: NicCompatMode::Baseline,
        ..NicConfig::paper_default()
    });
    let mut eal = Eal::new(EalConfig::paper_default());
    assert_eq!(eal.init(&mut nic), Err(EalError::PmdLaunchFailed));
}

/// §III.B: unmodified DPDK's vendor check fails against the gem5 NIC
/// (broken vendor ID); the paper's skip-check patch makes it pass.
#[test]
fn vendor_check_requires_the_dpdk_patch() {
    let mut nic = Nic::new(NicConfig::paper_default());
    let mut unmodified = Eal::new(EalConfig::unmodified());
    assert!(matches!(
        unmodified.init(&mut nic),
        Err(EalError::NoPmdMatch { vendor: 0, .. })
    ));
    let mut patched = Eal::new(EalConfig::paper_default());
    assert_eq!(patched.init(&mut nic), Ok(()));
}

/// DPDK byte-granular Command-register access (§III.A.2) works on the
/// extended model and is dropped on baseline.
#[test]
fn byte_granular_command_access() {
    for (mode, expect_bit) in [(CompatMode::Extended, true), (CompatMode::Baseline, false)] {
        let mut cs = ConfigSpace::new(0x8086, 0x100e, mode);
        let hi = cs.read_config(0x05, 1);
        cs.write_config(0x05, 1, hi | 0x04); // interrupt-disable, upper byte
        assert_eq!(cs.command().interrupts_disabled(), expect_bit, "{mode:?}");
    }
}
