//! The load-bearing proof for the topology tentpole: the fabric is
//! configuration-gated, so the degenerate point-to-point topology must
//! be observationally indistinguishable from the default assembly —
//! byte-identical traces, full stats dumps, event counts, and
//! throughput bits — and the pure-wire [`TopoLink`] must compute the
//! exact `EtherLink` arrival tick on any offer schedule. (The committed
//! goldens in `tests/golden/` separately pin the degenerate schedule
//! against the pre-topology history.)
//!
//! Incast runs themselves (`clients > 1`) are covered by replay
//! determinism, burst invariance, and the per-link drop/queue stats the
//! full dump must expose.

use proptest::prelude::*;
use simnet::harness::config::TopoConfig;
use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{build_loadgen_sim, stats_text_all, AppSpec, Simulation, SystemConfig};
use simnet::net::pool;
use simnet::net::topo::{LinkPolicy, TopoLink, Verdict};
use simnet::nic::EtherLink;
use simnet::sim::tick::{ns, us, Bandwidth};
use simnet::sim::trace::{canonical_text, trace_hash, Component};

/// Everything observable about one run, serialized for comparison.
#[derive(Debug, PartialEq)]
struct Observed {
    trace: String,
    trace_hash: u64,
    stats: String,
    events: u64,
    achieved_gbps_bits: u64,
    drop_rate_bits: u64,
    pool_live_after_drop: u64,
}

/// Drives an assembled simulation and captures the observable surface.
fn observe(mut sim: Simulation, burst: usize, phases: Phases) -> Observed {
    sim.set_burst(burst);
    sim.enable_trace(1 << 20, Component::ALL_MASK);
    let summary = run_phases(&mut sim, phases);
    let events = sim.take_trace();
    let trace = canonical_text(&events);
    let stats = stats_text_all(&sim, 0);
    drop(sim);
    Observed {
        trace,
        trace_hash: trace_hash(&events),
        stats,
        events: summary.events,
        achieved_gbps_bits: summary.achieved_gbps().to_bits(),
        drop_rate_bits: summary.report.drop_rate.to_bits(),
        pool_live_after_drop: pool::stats().live(),
    }
}

fn assert_equivalent(a: &Observed, b: &Observed, label: &str) {
    assert_eq!(a.trace, b.trace, "{label}: canonical traces diverged");
    assert_eq!(a.trace_hash, b.trace_hash, "{label}: trace hashes diverged");
    assert_eq!(a.stats, b.stats, "{label}: stats dumps diverged");
    assert_eq!(a.events, b.events, "{label}: event counts diverged");
    assert_eq!(
        a.achieved_gbps_bits, b.achieved_gbps_bits,
        "{label}: throughput diverged"
    );
    assert_eq!(
        a.drop_rate_bits, b.drop_rate_bits,
        "{label}: drop rates diverged"
    );
    assert_eq!(
        a.pool_live_after_drop, 0,
        "{label}: first run stranded buffers"
    );
    assert_eq!(
        b.pool_live_after_drop, 0,
        "{label}: second run stranded buffers"
    );
}

const SHORT: Phases = Phases {
    warmup: us(50),
    measure: us(150),
};

/// Builds the single-point simulation for `cfg` the way `run_point`,
/// `run_observed`, and `repro` all do.
fn build(cfg: &SystemConfig, size: usize, gbps: f64) -> Simulation {
    build_loadgen_sim(cfg, &AppSpec::TestPmd, size, gbps)
}

/// An incast config: `clients` endpoints, heterogeneous access
/// latencies, a bounded trunk queue, and a little seeded access loss.
fn incast_cfg(clients: usize) -> SystemConfig {
    SystemConfig::gem5().with_topo(
        TopoConfig::incast(clients)
            .with_latency_spread(us(5))
            .with_trunk_queue(256)
            .with_loss_ppm(200),
    )
}

/// The degenerate differential matrix: an explicit point-to-point
/// `TopoConfig` must assemble the exact same simulation as the default
/// config across sizes, rates, and burst settings.
#[test]
fn explicit_point_to_point_topology_matches_default_assembly() {
    for (size, gbps) in [(1518usize, 30.0f64), (64, 70.0), (256, 10.0)] {
        for burst in [1usize, 32] {
            let default_cfg = SystemConfig::gem5();
            let topo_cfg = SystemConfig::gem5().with_topo(TopoConfig::point_to_point());
            let a = observe(build(&default_cfg, size, gbps), burst, SHORT);
            let b = observe(build(&topo_cfg, size, gbps), burst, SHORT);
            assert_equivalent(&a, &b, &format!("{size}B @{gbps}Gbps burst={burst}"));
        }
    }
}

/// The degenerate fabric registers nothing: no `system.topo` block and
/// no `loadgen.clients` fleet block may appear in the frozen-format
/// stats dump of a point-to-point run.
#[test]
fn degenerate_runs_keep_the_stats_dump_clean() {
    let cfg = SystemConfig::gem5().with_topo(TopoConfig::point_to_point());
    let obs = observe(build(&cfg, 1518, 30.0), 32, SHORT);
    assert!(
        !obs.stats.contains("system.topo"),
        "degenerate topology must not register fabric stats"
    );
}

/// Incast replay determinism: two fresh builds of an 8-client incast —
/// heterogeneous RTTs, bounded trunk, seeded loss — agree on every
/// observable byte, and the run actually moves traffic.
#[test]
fn incast_replay_is_deterministic() {
    let phases = Phases {
        warmup: us(100),
        measure: us(400),
    };
    let a = observe(build(&incast_cfg(8), 1518, 40.0), 32, phases);
    let b = observe(build(&incast_cfg(8), 1518, 40.0), 32, phases);
    assert_equivalent(&a, &b, "incast 8-client replay");
    assert!(!a.trace.is_empty(), "incast run captured no events");
    assert_ne!(
        a.achieved_gbps_bits,
        0f64.to_bits(),
        "incast moved no traffic"
    );
}

/// Burst batching composes with the fabric: the coalesced trunk
/// transport leaves an incast schedule bit-identical to its scalar
/// (`burst=1`) reference.
#[test]
fn incast_runs_are_burst_invariant() {
    let scalar = observe(build(&incast_cfg(8), 1518, 40.0), 1, SHORT);
    for burst in [2usize, 32, 33] {
        let batched = observe(build(&incast_cfg(8), 1518, 40.0), burst, SHORT);
        assert_equivalent(&scalar, &batched, &format!("incast burst={burst}"));
    }
}

/// The full stats dump of an incast run exposes the per-link ledger:
/// fleet block, fabric aggregates, trunk drop/queue gauges, and one
/// block per access link.
#[test]
fn incast_stats_expose_the_per_link_ledger() {
    // Overdrive a tight trunk so tail-drops actually happen.
    let cfg = SystemConfig::gem5().with_topo(
        TopoConfig::incast(8)
            .with_latency_spread(us(5))
            .with_trunk_queue(16),
    );
    let obs = observe(build(&cfg, 1518, 120.0), 32, SHORT);
    for needle in [
        "loadgen.clients",
        "system.topo.clients",
        "system.topo.unroutable",
        "system.topo.trunk.txFrames",
        "system.topo.trunk.tailDrops",
        "system.topo.trunk.queuePeak",
        "system.topo.uplinks.txFrames",
        "system.topo.downlinks.txFrames",
        "system.topo.uplink0.txFrames",
        "system.topo.downlink7.txFrames",
    ] {
        assert!(obs.stats.contains(needle), "stats dump missing {needle}");
    }
    let tail_drops: u64 = obs
        .stats
        .lines()
        .find(|l| l.starts_with("system.topo.trunk.tailDrops"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("tailDrops line parses");
    assert!(
        tail_drops > 0,
        "overdriven 16-frame trunk never tail-dropped"
    );
    assert_ne!(obs.drop_rate_bits, 0f64.to_bits(), "clients saw no drops");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    /// The pure-wire `TopoLink` computes the exact `EtherLink` arrival
    /// tick — same serialization overhead, same busy horizon — on any
    /// offer schedule, which is the arithmetic the byte-identical
    /// degenerate schedule rests on.
    #[test]
    fn wire_link_is_tick_identical_to_etherlink(
        gbps in prop_oneof![Just(10.0f64), Just(40.0), Just(100.0)],
        latency in 0u64..=5_000,
        offers in proptest::collection::vec((0u64..=2_000, 64usize..=1518), 1..100),
        seed in any::<u64>(),
    ) {
        let bw = Bandwidth::gbps(gbps);
        let mut legacy = EtherLink::new(bw, ns(latency));
        let mut topo = TopoLink::new(LinkPolicy::wire(bw, ns(latency)), seed);
        let mut now = 0;
        for &(gap, len) in &offers {
            now += ns(gap);
            let expected = legacy.transmit(now, len);
            let got = topo.transmit(now, len);
            prop_assert_eq!(got, Verdict::Deliver(expected));
        }
        prop_assert_eq!(topo.frames.value(), legacy.frames.value());
        prop_assert_eq!(topo.bytes.value(), legacy.bytes.value());
        prop_assert_eq!(topo.next_free(), legacy.next_free());
    }
}
