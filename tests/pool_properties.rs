//! Property tests for the packet mempool (`simnet-net::pool`): recycled
//! buffers must be indistinguishable from fresh allocations, handles
//! must never alias each other's visible bytes, and every buffer lent to
//! the simulation must come back — even when fault injection corrupts
//! writebacks or wedges the RX FIFO mid-run.

use proptest::prelude::*;
use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{AppSpec, Simulation, SystemConfig};
use simnet::net::pool;
use simnet::net::{Packet, MAX_FRAME_LEN};
use simnet::sim::fault::{FaultInjector, FaultPlan};
use simnet::sim::tick::us;

/// A reference model of packet semantics: plain owned bytes. The pooled
/// implementation must be observationally identical to this.
#[derive(Clone, PartialEq, Debug)]
struct ModelPacket {
    id: u64,
    data: Vec<u8>,
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// No aliasing between live handles: mutating one clone of a packet
    /// never changes the bytes another handle sees, for frame lengths
    /// across every class boundary.
    #[test]
    fn clones_never_alias(
        len in prop_oneof![Just(1usize), Just(63), Just(64), Just(65),
                           Just(128), Just(129), Just(512), Just(1024), Just(1518)],
        fill in 0u8..=255,
        poke in 0u8..=255,
        offset_frac in 0.0f64..1.0,
    ) {
        let mut original = Packet::zeroed(7, len);
        original.bytes_mut().fill(fill);
        let snapshot = original.bytes().to_vec();

        let mut mutant = original.clone();
        let bystander = original.clone();
        let offset = ((len - 1) as f64 * offset_frac) as usize;
        mutant.bytes_mut()[offset] = poke;

        prop_assert_eq!(original.bytes(), &snapshot[..], "original untouched");
        prop_assert_eq!(bystander.bytes(), &snapshot[..], "sibling untouched");
        prop_assert_eq!(mutant.bytes()[offset], poke);
        prop_assert_eq!(mutant.len(), len);
    }

    /// Recycle correctness: buffers cycled through the freelist behave
    /// exactly like the never-recycled reference model — a dirty
    /// previous tenant can never show through, and interleaved live
    /// handles keep their own bytes.
    #[test]
    fn recycled_buffers_match_the_model(
        rounds in 1usize..6,
        lens in proptest::collection::vec(1usize..=MAX_FRAME_LEN, 1..12),
    ) {
        for round in 0..rounds {
            let mut live = Vec::new();
            for (i, &len) in lens.iter().enumerate() {
                let id = (round * 100 + i) as u64;
                let fill = (id % 251) as u8;
                let model = ModelPacket { id, data: vec![fill; len] };
                let mut pooled = Packet::zeroed(id, len);
                pooled.bytes_mut().fill(fill);
                live.push((model, pooled));
            }
            // Every pooled packet matches its model while all are live...
            for (model, pooled) in &live {
                prop_assert_eq!(pooled.id(), model.id);
                prop_assert_eq!(pooled.bytes(), &model.data[..]);
            }
            // ...and fresh zeroed allocations after the drop stay zero.
            drop(live);
            let check = Packet::zeroed(0, *lens.first().unwrap());
            prop_assert!(check.bytes().iter().all(|&b| b == 0),
                "recycled buffer leaked a previous tenant's bytes");
        }
    }

    /// Freelist reuse is LIFO: the most recently dropped buffer of a
    /// class is handed out first (DPDK's cache-hot recycling order).
    #[test]
    fn freelist_reuse_is_lifo(len in 65usize..=1518, count in 2usize..8) {
        let handles: Vec<Packet> = (0..count).map(|i| Packet::zeroed(i as u64, len)).collect();
        let ptrs: Vec<*const u8> = handles.iter().map(|p| p.bytes().as_ptr()).collect();
        drop(handles);
        // Hold each repop alive so the pops walk the freelist instead of
        // bouncing the same top-of-stack buffer.
        let mut repopped = Vec::new();
        for expect in ptrs.iter().rev() {
            let fresh = Packet::zeroed(0, len);
            prop_assert_eq!(fresh.bytes().as_ptr(), *expect, "LIFO order violated");
            repopped.push(fresh);
        }
    }
}

/// Runs a faulted loadgen-mode point with an explicit wire-delivery
/// coalescing factor and returns the pool ledger after the simulation
/// (and every packet it held) has been dropped.
fn faulted_ledger_with_burst(plan: &str, size: usize, gbps: f64, burst: usize) -> pool::PoolStats {
    let cfg = SystemConfig::gem5();
    let spec = AppSpec::TestPmd;
    let (stack, app) = spec.instantiate(cfg.seed);
    let loadgen = spec.loadgen(&cfg, size, gbps);
    let mut sim = Simulation::loadgen_mode(&cfg, stack, app, loadgen);
    sim.set_burst(burst);
    if !plan.is_empty() {
        let plan = FaultPlan::parse(plan).expect("valid plan");
        sim.install_faults(FaultInjector::new(plan, 11));
    }
    run_phases(
        &mut sim,
        Phases {
            warmup: us(100),
            measure: us(400),
        },
    );
    drop(sim);
    pool::stats()
}

/// [`faulted_ledger_with_burst`] at the default coalescing factor.
fn faulted_ledger(plan: &str, size: usize, gbps: f64) -> pool::PoolStats {
    faulted_ledger_with_burst(plan, size, gbps, simnet::net::BURST_INLINE)
}

/// Like [`faulted_ledger_with_burst`], but assembled at an arbitrary
/// `(nqueues, lcores)` point: packets now ride per-queue FIFOs, global
/// mbuf slots, and worker-lcore TX batches before returning to the pool.
fn faulted_ledger_mq(
    nq: usize,
    lcores: usize,
    plan: &str,
    size: usize,
    gbps: f64,
) -> pool::PoolStats {
    let cfg = SystemConfig::gem5().with_queues(nq).with_lcores(lcores);
    let mut sim = simnet::harness::build_loadgen_sim(&cfg, &AppSpec::TestPmd, size, gbps);
    if !plan.is_empty() {
        let plan = FaultPlan::parse(plan).expect("valid plan");
        sim.install_faults(FaultInjector::new(plan, 11));
    }
    run_phases(
        &mut sim,
        Phases {
            warmup: us(100),
            measure: us(400),
        },
    );
    drop(sim);
    pool::stats()
}

/// Leak conservation: every buffer the pool lent out comes back once the
/// simulation drops, even when `nic.wb_corrupt` discards frames on the
/// writeback path or `nic.fifo_stuck` wedges the RX FIFO — the fault
/// paths must not strand (or double-free) packet buffers.
#[test]
fn fault_plans_conserve_the_buffer_ledger() {
    for plan in [
        "nic.wb_corrupt=12%",
        "nic.fifo_stuck=15us@50us",
        "nic.wb_corrupt=8%;nic.fifo_stuck=10us@40us;link.ber=2e-5",
    ] {
        for size in [256usize, 1518] {
            let stats = faulted_ledger(plan, size, 45.0);
            assert_eq!(
                stats.live(),
                0,
                "plan {plan} size {size} stranded buffers: {stats:?}"
            );
            // The warm-up boundary zeroes the counters while warm-up-era
            // buffers are still live, so post-reset every measured alloc
            // recycles, plus the warm-up stragglers: recycles >= allocs.
            assert!(
                stats.total_recycles() >= stats.total_allocs(),
                "alloc/recycle books must balance for {plan}: {stats:?}"
            );
            assert!(
                stats.total_allocs() > 0,
                "a {size}B run must exercise the pool"
            );
        }
    }
}

/// Burst-path leak conservation: packets ride inside burst carriers
/// between the wire and their handlers, including bursts abandoned
/// half-drained in the queue when the run ends and bursts whose
/// constituents get corrupted or dropped mid-flight by the fault plan.
/// Every such buffer must still return to the pool, at ragged-tail and
/// spilling burst sizes alike — and the final ledger must not depend on
/// the burst size at all.
#[test]
fn faulted_burst_path_conserves_the_buffer_ledger() {
    for plan in [
        "",
        "nic.wb_corrupt=10%;link.ber=3e-5",
        "nic.fifo_stuck=15us@50us;dma.burst=+500ns/2us@20us",
    ] {
        let reference = faulted_ledger_with_burst(plan, 512, 45.0, 1);
        assert_eq!(
            reference.live(),
            0,
            "plan {plan}: scalar reference stranded buffers: {reference:?}"
        );
        for burst in [2usize, 33, 64] {
            let stats = faulted_ledger_with_burst(plan, 512, 45.0, burst);
            assert_eq!(
                stats.live(),
                0,
                "plan {plan} burst {burst} stranded buffers: {stats:?}"
            );
            assert_eq!(
                (stats.total_allocs(), stats.total_recycles()),
                (reference.total_allocs(), reference.total_recycles()),
                "plan {plan} burst {burst}: the alloc/recycle books must be                  burst-invariant"
            );
        }
    }
}

/// Multi-queue leak conservation: frames now land in per-queue FIFOs,
/// carry global (queue-offset) mbuf slot indices, and are retired by
/// whichever worker lcore owns the queue — every one of those hand-offs
/// must still return its buffer to the pool, clean and faulted alike,
/// including frames abandoned mid-queue when the run ends.
#[test]
fn multi_queue_fault_plans_conserve_the_buffer_ledger() {
    for (nq, lcores) in [(2usize, 2usize), (4, 2), (4, 4)] {
        for plan in [
            "",
            "nic.wb_corrupt=12%",
            "nic.wb_corrupt=8%;nic.fifo_stuck=10us@40us;link.ber=2e-5",
        ] {
            let stats = faulted_ledger_mq(nq, lcores, plan, 512, 45.0);
            assert_eq!(
                stats.live(),
                0,
                "{nq}q/{lcores}l plan {plan} stranded buffers: {stats:?}"
            );
            assert!(
                stats.total_recycles() >= stats.total_allocs(),
                "{nq}q/{lcores}l alloc/recycle books must balance for {plan}: {stats:?}"
            );
            assert!(
                stats.total_allocs() > 0,
                "a {nq}q/{lcores}l run must exercise the pool"
            );
        }
    }
}

/// The clean-run ledger also balances (a control for the faulted cases),
/// and recycling actually happens: a bounded in-flight population served
/// far more allocations than its high-water mark.
#[test]
fn clean_run_recycles_instead_of_growing() {
    let stats = faulted_ledger("", 1518, 45.0);
    assert_eq!(stats.live(), 0, "clean run stranded buffers: {stats:?}");
    assert_eq!(stats.heap_fallback, 0, "clean run must not hit the heap");
    assert!(
        stats.total_allocs() > stats.high_water,
        "a bounded in-flight population must serve more allocations than \
         its peak: allocs={} hwm={}",
        stats.total_allocs(),
        stats.high_water
    );
}

/// Exhausting a class's budget falls back to the heap instead of
/// panicking or recycling live buffers, and the fallback handles remain
/// fully functional.
#[test]
fn exhausted_class_falls_back_to_heap() {
    pool::set_class_limit(2, 4);
    let baseline = pool::stats();
    let mut held: Vec<Packet> = (0..12).map(|i| Packet::zeroed(i, 1500)).collect();
    let after = pool::stats();
    assert!(
        after.heap_fallback >= baseline.heap_fallback + 8,
        "allocations beyond the class budget must fall back to the heap"
    );
    // Fallback handles behave like pooled ones: COW, equality, bytes.
    let copy = held[11].clone();
    held[11].bytes_mut()[0] = 0xEE;
    assert_eq!(copy.bytes()[0], 0, "COW must protect the shared fallback");
    drop(held);
    drop(copy);
    assert_eq!(pool::stats().live(), baseline.live(), "fallbacks all freed");
    pool::set_class_limit(2, usize::MAX);
}
