//! The load-bearing proof for the parallel-sharding tentpole: the
//! sharded driver is conservatively synchronized and its cross-shard
//! deliveries are totally ordered by `(tick, sender rank, send order)`,
//! so the *entire observable surface* — merged golden trace, both stats
//! dump levels, the interval time series, fault counters, and the run
//! summary (minus host wall-clock) — must be **byte-identical** between
//! `--threads 1` and `--threads N`. Thread count is an execution detail,
//! never a semantic input.
//!
//! Against the legacy single-queue driver, the sharded run must agree on
//! the surfaces sharding provably preserves: the Compat stats dump and
//! fault counters in loadgen mode (byte-identical), and the measurement
//! summary in fan-in topology mode (ints exact, floats to 1e-9;
//! zipf-flow configs are excluded because the legacy fleet draws flow
//! choices from one shared RNG stream while slices draw per-client
//! streams).

use proptest::prelude::*;
use simnet::harness::config::TopoConfig;
use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{
    build_loadgen_sim, run_observed_parallel, AppSpec, ObserveOpts, ParallelOutcome, RunConfig,
    SystemConfig,
};
use simnet::sim::fault::{FaultInjector, FaultPlan};
use simnet::sim::tick::us;
use simnet::sim::trace::{canonical_text, trace_hash, Component};

const TRACE_CAP: usize = 1 << 20;

fn short() -> RunConfig {
    RunConfig {
        phases: Phases {
            warmup: us(100),
            measure: us(400),
        },
    }
}

/// Everything observable about one sharded run, serialized for
/// byte-comparison across thread counts.
#[derive(Debug, PartialEq)]
struct Observed {
    trace: String,
    trace_hash: u64,
    evicted: u64,
    stats_compat: String,
    stats_full: String,
    timeseries: Option<String>,
    summary: String,
    fault_counts: String,
}

fn observe(outcome: &ParallelOutcome) -> Observed {
    let mut summary = outcome.summary.clone();
    summary.host_seconds = 0.0;
    Observed {
        trace: canonical_text(&outcome.events),
        trace_hash: trace_hash(&outcome.events),
        evicted: outcome.evicted,
        stats_compat: outcome.stats_compat.clone(),
        stats_full: outcome.stats_full.clone(),
        timeseries: outcome.timeseries.as_ref().map(|ts| ts.to_csv()),
        // `{:?}` of an f64 is its unique shortest-roundtrip form, so this
        // is a bit-exact comparison for every finite float in the summary.
        summary: format!("{summary:?}"),
        fault_counts: format!("{:?}", outcome.fault_counts),
    }
}

fn opts(plan: &str, sample: bool) -> ObserveOpts {
    ObserveOpts {
        trace: Some((TRACE_CAP, Component::ALL_MASK)),
        faults: if plan.is_empty() {
            FaultInjector::disabled()
        } else {
            FaultInjector::new(FaultPlan::parse(plan).expect("valid plan"), 11)
        },
        stats_interval: sample.then(|| us(50)),
        profile: false,
        ..ObserveOpts::default()
    }
}

fn run_sharded(
    cfg: &SystemConfig,
    spec: AppSpec,
    size: usize,
    gbps: f64,
    threads: usize,
    plan: &str,
    sample: bool,
) -> ParallelOutcome {
    run_observed_parallel(cfg, &spec, size, gbps, short(), threads, opts(plan, sample))
}

fn assert_equivalent(a: &Observed, b: &Observed, label: &str) {
    assert_eq!(a.trace, b.trace, "{label}: merged traces diverged");
    assert_eq!(a.trace_hash, b.trace_hash, "{label}: trace hashes diverged");
    assert_eq!(a.evicted, b.evicted, "{label}: eviction counts diverged");
    assert_eq!(
        a.stats_compat, b.stats_compat,
        "{label}: compat dumps diverged"
    );
    assert_eq!(a.stats_full, b.stats_full, "{label}: full dumps diverged");
    assert_eq!(a.timeseries, b.timeseries, "{label}: time series diverged");
    assert_eq!(a.summary, b.summary, "{label}: summaries diverged");
    assert_eq!(
        a.fault_counts, b.fault_counts,
        "{label}: fault counters diverged"
    );
}

/// Point-to-point scenarios: every observable byte-identical across
/// thread counts, with and without faults and sampling, for DPDK and
/// kernel-stack apps (closed-loop memcached included).
#[test]
fn p2p_thread_count_invariance() {
    let cfg = SystemConfig::gem5();
    let cases: &[(AppSpec, usize, f64, &str, bool)] = &[
        (AppSpec::TestPmd, 512, 4.0, "", false),
        (AppSpec::TestPmd, 256, 9.0, "", true),
        (
            AppSpec::TouchFwd,
            1024,
            6.0,
            "nic.wb_delay=500ns@10%;link.ber=3e-5",
            true,
        ),
        (AppSpec::MemcachedDpdk, 128, 2.0, "", false),
        (AppSpec::Iperf, 512, 3.0, "nic.fifo_stuck=15us@50us", false),
    ];
    for (spec, size, gbps, plan, sample) in cases {
        let one = observe(&run_sharded(&cfg, *spec, *size, *gbps, 1, plan, *sample));
        let two = observe(&run_sharded(&cfg, *spec, *size, *gbps, 2, plan, *sample));
        let label = format!("{spec:?}/{size}B/{gbps}G/{plan:?}/sample={sample}");
        assert_equivalent(&one, &two, &label);
    }
}

/// Fan-in topology scenarios (multi-client incast through the switch):
/// byte-identical across 1, 2, and 4 threads, including the reassembled
/// fabric columns of the time series and the per-link topo stats.
#[test]
fn topo_thread_count_invariance() {
    let mut cfg = SystemConfig::gem5();
    cfg.topo = TopoConfig::incast(4);
    let plans = ["", "nic.wb_delay=500ns@10%"];
    for (plan, sample) in plans.iter().zip([true, false]) {
        let one = observe(&run_sharded(
            &cfg,
            AppSpec::TouchDrop,
            512,
            8.0,
            1,
            plan,
            sample,
        ));
        let two = observe(&run_sharded(
            &cfg,
            AppSpec::TouchDrop,
            512,
            8.0,
            2,
            plan,
            sample,
        ));
        let four = observe(&run_sharded(
            &cfg,
            AppSpec::TouchDrop,
            512,
            8.0,
            4,
            plan,
            sample,
        ));
        let label = format!("incast4/{plan:?}/sample={sample}");
        assert_equivalent(&one, &two, &label);
        assert_equivalent(&one, &four, &label);
    }
}

/// A lossy, congested incast (bounded trunk queue + uplink loss) keeps
/// drop accounting thread-count-invariant: drops land on the shard that
/// owns the dropping link, so totals cannot double-count or go missing.
#[test]
fn topo_lossy_thread_count_invariance() {
    let mut cfg = SystemConfig::gem5();
    cfg.topo = TopoConfig::incast(8);
    cfg.topo.trunk_queue_frames = 24;
    cfg.topo.loss_ppm = 500;
    let one = observe(&run_sharded(
        &cfg,
        AppSpec::TouchDrop,
        700,
        12.0,
        1,
        "",
        true,
    ));
    let four = observe(&run_sharded(
        &cfg,
        AppSpec::TouchDrop,
        700,
        12.0,
        4,
        "",
        true,
    ));
    assert_equivalent(&one, &four, "incast8-lossy");
}

/// The legacy single-queue driver and the sharded driver agree on the
/// loadgen-mode Compat dump byte-for-byte: `sim_ticks`, `host_events`,
/// and every component section are the same numbers, independently
/// assembled.
#[test]
fn p2p_matches_legacy_compat_dump() {
    let cfg = SystemConfig::gem5();
    let cases: &[(AppSpec, usize, f64, &str)] = &[
        (AppSpec::TestPmd, 512, 4.0, ""),
        (
            AppSpec::TouchFwd,
            1024,
            6.0,
            "nic.wb_delay=500ns@10%;link.ber=3e-5",
        ),
        (AppSpec::MemcachedDpdk, 128, 2.0, ""),
    ];
    for (spec, size, gbps, plan) in cases {
        let label = format!("{spec:?}/{plan:?}");
        // Legacy: the exact single-threaded reference path. No tracing on
        // either side — the probe events it schedules change `sim_ticks`
        // and `host_events`, so observability layers must match.
        let mut sim = build_loadgen_sim(&cfg, spec, *size, *gbps);
        if !plan.is_empty() {
            sim.install_faults(FaultInjector::new(
                FaultPlan::parse(plan).expect("valid plan"),
                11,
            ));
        }
        let legacy_summary = run_phases(&mut sim, short().phases);
        let legacy_dump = simnet::harness::stats_text(&sim, 0);
        let legacy_faults = sim.fault_injector().counts();
        drop(sim);

        let mut o = opts(plan, false);
        o.trace = None;
        let sharded = run_observed_parallel(&cfg, spec, *size, *gbps, short(), 2, o);
        assert_eq!(
            legacy_dump, sharded.stats_compat,
            "{label}: compat dump diverged from legacy"
        );
        assert_eq!(
            legacy_faults, sharded.fault_counts,
            "{label}: fault counters diverged from legacy"
        );
        assert_eq!(
            format!("{:?}", legacy_summary.report),
            format!("{:?}", sharded.summary.report),
            "{label}: loadgen report diverged from legacy"
        );
        assert_eq!(
            legacy_summary.events, sharded.summary.events,
            "{label}: measurement event count diverged from legacy"
        );
    }
}

/// Fan-in topology vs legacy: the measurement summary agrees — counters
/// exactly, derived floats to 1e-9. (Sampling off: the drivers finalize
/// the last partial interval at different ticks by design; zipf flows
/// off: legacy draws them from a shared fleet RNG stream.)
#[test]
fn topo_matches_legacy_summary() {
    let mut cfg = SystemConfig::gem5();
    cfg.topo = TopoConfig::incast(4);
    let spec = AppSpec::TouchDrop;
    let mut sim = build_loadgen_sim(&cfg, &spec, 512, 8.0);
    let legacy = run_phases(&mut sim, short().phases);
    drop(sim);
    let sharded = run_sharded(&cfg, spec, 512, 8.0, 4, "", false).summary;

    let l = &legacy.report;
    let s = &sharded.report;
    assert_eq!((l.tx_packets, l.tx_bytes), (s.tx_packets, s.tx_bytes));
    assert_eq!((l.rx_packets, l.rx_bytes), (s.rx_packets, s.rx_bytes));
    assert_eq!(legacy.drop_counts, sharded.drop_counts);
    assert_eq!(legacy.fault_drops, sharded.fault_drops);
    let close = |a: f64, b: f64, what: &str| {
        assert!((a - b).abs() <= 1e-9, "{what}: {a} vs {b}");
    };
    close(l.achieved_gbps, s.achieved_gbps, "achieved_gbps");
    close(l.drop_rate, s.drop_rate, "loadgen drop_rate");
    close(l.latency.mean, s.latency.mean, "latency mean");
    close(l.latency.p99, s.latency.p99, "latency p99");
    close(legacy.drop_rate, sharded.drop_rate, "fsm drop_rate");
    close(legacy.llc_miss_rate, sharded.llc_miss_rate, "llc miss rate");
    close(legacy.row_hit_rate, sharded.row_hit_rate, "row hit rate");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, ..ProptestConfig::default()
    })]

    /// Satellite 2: fault-plan draws are a pure function of the master
    /// seed and packet-arrival sequence, never of thread placement — for
    /// random plans, counters at 1 thread equal counters at 4 threads
    /// exactly.
    #[test]
    fn fault_draws_thread_invariant(
        wb_pct in 1u64..=50,
        wb_ns in 100u64..2_000,
        ber_ppm in 1u64..=80,
        seed in 1u64..1_000,
    ) {
        let plan = format!("nic.wb_delay={wb_ns}ns@{wb_pct}%;link.ber={ber_ppm}e-6");
        let mut cfg = SystemConfig::gem5();
        cfg.seed = seed;
        let make = |threads| {
            let o = ObserveOpts {
                faults: FaultInjector::new(
                    FaultPlan::parse(&plan).expect("valid plan"),
                    seed ^ 0xFA_017,
                ),
                ..ObserveOpts::default()
            };
            run_observed_parallel(&cfg, &AppSpec::TouchFwd, 512, 6.0, short(), threads, o)
        };
        let one = make(1);
        let four = make(4);
        prop_assert_eq!(one.fault_counts, four.fault_counts);
        prop_assert_eq!(
            format!("{:?}", one.summary.report),
            format!("{:?}", four.summary.report)
        );
    }
}

/// Satellite 3: the merged cross-thread profile attributes essentially
/// all of the workers' wall-clock — per-event dispatch kinds plus the
/// explicit `sync_idle` bucket cover the loop with nothing unaccounted.
#[test]
fn profiler_merge_attributes_all_thread_time() {
    let cfg = SystemConfig::gem5();
    let o = ObserveOpts {
        profile: true,
        ..ObserveOpts::default()
    };
    let outcome = run_observed_parallel(&cfg, &AppSpec::TestPmd, 512, 6.0, short(), 2, o);
    let prof = outcome.profile.expect("profiling was requested");
    assert!(prof.loop_nanos() > 0, "merged profile saw no loop time");
    let cov = prof.coverage();
    assert!(
        (cov - 1.0).abs() < 1e-6,
        "merged profile covers {cov:.4} of thread time, want 1.0"
    );
    let report = prof.render();
    assert!(
        report.contains("sync_idle"),
        "merged report must show the sync/idle bucket:\n{report}"
    );
}

/// `--threads` beyond the shard count is a clamp, not an error, and the
/// outcome reports the realized parallelism.
#[test]
fn thread_clamp_reports_realized_parallelism() {
    let cfg = SystemConfig::gem5();
    let outcome = run_sharded(&cfg, AppSpec::TestPmd, 512, 2.0, 16, "", false);
    assert_eq!(outcome.shards, 2, "point-to-point decomposes into 2 shards");
    assert_eq!(outcome.threads, 2, "threads clamp to the shard count");
}
