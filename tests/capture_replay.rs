//! Cross-crate integration: PCAP capture at the simulated port, on-disk
//! round-trip, and trace-mode replay (§IV's dpdk-pdump workflow).

use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{AppSpec, Simulation, SystemConfig};
use simnet::loadgen::trace::Pacing;
use simnet::loadgen::{EtherLoadGen, LoadGenMode, TraceConfig};
use simnet::net::pcap::PcapReader;
use simnet::sim::tick::us;

fn capture_run() -> Vec<u8> {
    let cfg = SystemConfig::gem5();
    let spec = AppSpec::TestPmd;
    let (stack, app) = spec.instantiate(cfg.seed);
    let loadgen = spec.loadgen(&cfg, 256, 5.0);
    let mut sim = Simulation::loadgen_mode(&cfg, stack, app, loadgen);
    sim.enable_capture();
    run_phases(
        &mut sim,
        Phases {
            warmup: 0,
            measure: us(500),
        },
    );
    sim.take_capture().expect("capture enabled")
}

#[test]
fn capture_is_valid_pcap_with_both_directions() {
    let bytes = capture_run();
    let mut reader = PcapReader::new(&bytes[..]).expect("valid pcap header");
    let records = reader.read_all().expect("all records parse");
    assert!(records.len() > 100, "captured {} frames", records.len());

    // Timestamps are monotone non-decreasing.
    assert!(
        records.windows(2).all(|w| w[0].tick <= w[1].tick),
        "capture timestamps are ordered"
    );

    // Both requests (to the NIC) and echoes (from it) appear.
    let nic_mac = SystemConfig::gem5().nic.mac.octets();
    let to_nic = records
        .iter()
        .filter(|r| r.data.get(0..6) == Some(&nic_mac[..]))
        .count();
    let from_nic = records
        .iter()
        .filter(|r| r.data.get(6..12) == Some(&nic_mac[..]))
        .count();
    assert!(to_nic > 0, "requests captured");
    assert!(from_nic > 0, "echoes captured");
}

#[test]
fn replaying_a_capture_reproduces_the_load() {
    let bytes = capture_run();
    let mut reader = PcapReader::new(&bytes[..]).expect("valid pcap");
    let records = reader.read_all().expect("parses");
    let cfg = SystemConfig::gem5();
    let nic_mac = cfg.nic.mac.octets();
    let requests: Vec<_> = records
        .into_iter()
        .filter(|r| r.data.get(0..6) == Some(&nic_mac[..]))
        .collect();
    let request_count = requests.len();
    assert!(request_count > 50);

    let trace = TraceConfig::from_records(requests, Pacing::HonorTimestamps, cfg.nic.mac);
    let spec = AppSpec::TestPmd;
    let (stack, app) = spec.instantiate(cfg.seed ^ 1);
    let loadgen = EtherLoadGen::new(LoadGenMode::Trace(trace), 3);
    let mut sim = Simulation::loadgen_mode(&cfg, stack, app, loadgen);
    let summary = run_phases(
        &mut sim,
        Phases {
            warmup: 0,
            measure: us(900),
        },
    );
    assert_eq!(
        summary.report.tx_packets, request_count as u64,
        "every trace record was replayed"
    );
    // The light 5 Gbps load forwards cleanly on replay too.
    assert!(summary.drop_rate < 0.01);
    assert!(summary.report.rx_packets as f64 > request_count as f64 * 0.8);
}
