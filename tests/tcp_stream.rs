//! End-to-end TCP: the load generator's TCP state machine (the paper's
//! future-work extension) streaming into a TCP sink on the simulated
//! kernel stack, over the full NIC/DMA/memory/core pipeline.

use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{AppSpec, Simulation, SystemConfig};
use simnet::sim::tick::us;

fn tcp_run(window: usize, measure_us: u64) -> (Simulation, simnet::harness::RunSummary) {
    let cfg = SystemConfig::gem5();
    let spec = AppSpec::IperfTcp;
    let (stack, app) = spec.instantiate(cfg.seed);
    let loadgen = spec.loadgen(&cfg, 1518, window as f64);
    let mut sim = Simulation::loadgen_mode(&cfg, stack, app, loadgen);
    let summary = run_phases(
        &mut sim,
        Phases {
            warmup: us(1_000),
            measure: us(measure_us),
        },
    );
    (sim, summary)
}

#[test]
fn tcp_stream_establishes_and_delivers() {
    let (sim, summary) = tcp_run(16, 8_000);
    let lg = sim.loadgen.as_ref().unwrap();
    let tcp = lg.tcp().expect("tcp mode");
    assert!(tcp.is_established(), "handshake completed");
    let goodput = tcp.goodput_gbps(summary.window);
    assert!(goodput > 0.3, "stream moves data: {goodput:.3} Gbps");
    assert!(
        summary.report.latency.count > 50,
        "ACK RTTs sampled: {}",
        summary.report.latency.count
    );
    assert_eq!(tcp.timeouts.value(), 0, "clean path needs no RTOs");
}

#[test]
fn tcp_goodput_scales_with_window_until_service_bound() {
    let g = |w| {
        let (sim, summary) = tcp_run(w, 6_000);
        sim.loadgen
            .as_ref()
            .unwrap()
            .tcp()
            .unwrap()
            .goodput_gbps(summary.window)
    };
    let w2 = g(2);
    let w16 = g(16);
    assert!(
        w16 > w2 * 4.0,
        "window-bound region scales ~linearly: W2={w2:.3} W16={w16:.3}"
    );
    // window * MSS / RTT bound (RTT >= 200 µs propagation):
    let bound = 16.0 * 1448.0 * 8.0 / 200e-6 / 1e9;
    assert!(
        w16 <= bound * 1.05,
        "goodput respects the window bound: {w16:.2} <= {bound:.2}"
    );
}

#[test]
fn tcp_recovers_from_overload_induced_loss() {
    // A window far beyond the kernel's bandwidth-delay product pushes the
    // NIC into drops; TCP must retransmit and keep the stream alive.
    let (sim, summary) = tcp_run(512, 12_000);
    let lg = sim.loadgen.as_ref().unwrap();
    let tcp = lg.tcp().unwrap();
    let goodput = tcp.goodput_gbps(summary.window);
    assert!(goodput > 0.5, "stream survives overload: {goodput:.2} Gbps");
    // The stream either clean-fills the pipe or recovered from losses;
    // acknowledged bytes keep monotonically increasing either way.
    assert!(
        tcp.acked_bytes.value() > 500_000,
        "substantial data acknowledged: {}",
        tcp.acked_bytes.value()
    );
}

#[test]
fn tcp_is_deterministic() {
    let run = || {
        let (sim, summary) = tcp_run(8, 3_000);
        let lg = sim.loadgen.as_ref().unwrap();
        (
            lg.tx_packets(),
            lg.rx_packets(),
            lg.tcp().unwrap().acked_bytes.value(),
            summary.events,
        )
    };
    assert_eq!(run(), run());
}
