//! The load-bearing proof for the multi-queue tentpole: the whole
//! RSS/multi-lcore machinery is configuration-gated, so a run assembled
//! through the multi-queue entry path at `--nqueues 1 --lcores 1` must
//! be observationally indistinguishable from the legacy single-ring
//! assembly — byte-identical golden traces, full stats dumps, executed
//! event counts, throughput bits, fault counters, and buffer ledgers —
//! across frame sizes, offered rates, fault plans, and burst settings.
//! (The committed goldens in `tests/golden/` separately pin this
//! combined surface against the pre-multi-queue history.)
//!
//! Multi-queue runs themselves (`nqueues > 1`) are covered by replay
//! determinism, burst invariance, and conservation checks: the per-queue
//! FIFOs and per-lcore schedules are a pure function of the seed.

use proptest::prelude::*;
use simnet::harness::summary::{run_phases, Phases};
use simnet::harness::{build_loadgen_sim, stats_text_all, AppSpec, Simulation, SystemConfig};
use simnet::net::pool;
use simnet::sim::fault::{FaultInjector, FaultPlan};
use simnet::sim::tick::us;
use simnet::sim::trace::{canonical_text, trace_hash, Component};

/// Everything observable about one run, serialized for comparison.
#[derive(Debug, PartialEq)]
struct Observed {
    trace: String,
    trace_hash: u64,
    stats: String,
    events: u64,
    achieved_gbps_bits: u64,
    fault_total: u64,
    pool_live_after_drop: u64,
}

/// Drives an assembled simulation through the common observability
/// harness and captures the full observable surface.
fn observe(mut sim: Simulation, burst: usize, plan: &str, phases: Phases) -> Observed {
    sim.set_burst(burst);
    sim.enable_trace(1 << 20, Component::ALL_MASK);
    if !plan.is_empty() {
        let plan = FaultPlan::parse(plan).expect("valid plan");
        sim.install_faults(FaultInjector::new(plan, 11));
    }
    let summary = run_phases(&mut sim, phases);
    let events = sim.take_trace();
    let trace = canonical_text(&events);
    let stats = stats_text_all(&sim, 0);
    let fault_total = sim.fault_injector().counts().total();
    drop(sim);
    Observed {
        trace,
        trace_hash: trace_hash(&events),
        stats,
        events: summary.events,
        achieved_gbps_bits: summary.achieved_gbps().to_bits(),
        fault_total,
        pool_live_after_drop: pool::stats().live(),
    }
}

/// The legacy single-ring assembly: `AppSpec::instantiate` plus
/// `Simulation::loadgen_mode`, no worker attachment, no queue knobs —
/// the exact pre-multi-queue construction sequence.
fn run_legacy(spec: AppSpec, size: usize, gbps: f64, burst: usize, plan: &str) -> Observed {
    let cfg = SystemConfig::gem5();
    let (stack, app) = spec.instantiate(cfg.seed);
    let loadgen = spec.loadgen(&cfg, size, gbps);
    let sim = Simulation::loadgen_mode(&cfg, stack, app, loadgen);
    observe(sim, burst, plan, SHORT)
}

/// The multi-queue assembly at an arbitrary `(nqueues, lcores)` point:
/// `build_loadgen_sim` — the entry `run_point`, `run_observed`, and the
/// `repro --nqueues/--lcores` flags all share.
fn run_mq(
    spec: AppSpec,
    nq: usize,
    lcores: usize,
    size: usize,
    gbps: f64,
    burst: usize,
    plan: &str,
) -> Observed {
    let cfg = SystemConfig::gem5().with_queues(nq).with_lcores(lcores);
    let sim = build_loadgen_sim(&cfg, &spec, size, gbps);
    observe(sim, burst, plan, SHORT)
}

/// Asserts the full observable surface matches between two runs.
fn assert_equivalent(a: &Observed, b: &Observed, label: &str) {
    assert_eq!(a.trace, b.trace, "{label}: canonical traces diverged");
    assert_eq!(a.trace_hash, b.trace_hash, "{label}: trace hashes diverged");
    assert_eq!(a.stats, b.stats, "{label}: stats dumps diverged");
    assert_eq!(
        a.events, b.events,
        "{label}: executed-event counts diverged"
    );
    assert_eq!(
        a.achieved_gbps_bits, b.achieved_gbps_bits,
        "{label}: achieved throughput diverged"
    );
    assert_eq!(
        a.fault_total, b.fault_total,
        "{label}: fault counters diverged"
    );
    assert_eq!(
        a.pool_live_after_drop, 0,
        "{label}: first run stranded buffers"
    );
    assert_eq!(
        b.pool_live_after_drop, 0,
        "{label}: second run stranded buffers"
    );
}

const SHORT: Phases = Phases {
    warmup: us(50),
    measure: us(150),
};

/// The canonical differential matrix from the issue: sizes × rates ×
/// fault plans × burst settings, single-queue multi-queue assembly vs
/// the legacy construction. Every cell must match bit-for-bit.
#[test]
fn single_queue_matrix_is_byte_identical_to_legacy_assembly() {
    for (size, gbps) in [(1518usize, 30.0f64), (64, 70.0), (256, 10.0)] {
        for plan in ["", "link.ber=3e-5;dma.burst=+500ns/2us@20us"] {
            for burst in [1usize, 32] {
                let legacy = run_legacy(AppSpec::TestPmd, size, gbps, burst, plan);
                let mq = run_mq(AppSpec::TestPmd, 1, 1, size, gbps, burst, plan);
                assert_equivalent(
                    &legacy,
                    &mq,
                    &format!("testpmd {size}B @{gbps}Gbps burst={burst} plan={plan:?}"),
                );
            }
        }
    }
}

/// The kernel stack's softirq path reduces to the legacy op stream at
/// one queue too (its per-lcore address slices and per-queue staging
/// collapse to the single-ring layout at lcore 0 / queue 0).
#[test]
fn kernel_stack_single_queue_matches_legacy_assembly() {
    for plan in ["", "nic.wb_corrupt=8%;link.ber=2e-5"] {
        let legacy = run_legacy(AppSpec::Iperf, 1024, 20.0, 32, plan);
        let mq = run_mq(AppSpec::Iperf, 1, 1, 1024, 20.0, 32, plan);
        assert_equivalent(&legacy, &mq, &format!("iperf plan={plan:?}"));
    }
}

/// Replay determinism for genuinely multi-queue runs: a freshly rebuilt
/// `(nqueues, lcores)` simulation with the same seed reproduces the
/// trace, stats, and event schedule byte-for-byte — including under a
/// fault plan whose draws land across the per-queue FIFOs.
#[test]
fn multi_queue_replay_is_deterministic() {
    for (nq, lcores) in [(2usize, 2usize), (4, 2), (4, 4)] {
        for plan in ["", "link.ber=3e-5;dma.burst=+500ns/2us@20us"] {
            let a = run_mq(AppSpec::TestPmd, nq, lcores, 512, 40.0, 32, plan);
            let b = run_mq(AppSpec::TestPmd, nq, lcores, 512, 40.0, 32, plan);
            assert_equivalent(&a, &b, &format!("replay {nq}q/{lcores}l plan={plan:?}"));
            assert!(!a.trace.is_empty(), "{nq}q/{lcores}l captured no events");
        }
    }
}

/// Burst batching composes with multi-queue: the coalesced wire
/// transport must leave an `(nqueues, lcores)` schedule bit-identical
/// to its scalar (`burst=1`) reference, exactly as it does at one queue.
#[test]
fn multi_queue_runs_are_burst_invariant() {
    for plan in ["", "nic.fifo_stuck=15us@50us;link.ber=2e-5"] {
        let scalar = run_mq(AppSpec::TestPmd, 2, 2, 512, 40.0, 1, plan);
        for burst in [2usize, 32, 33] {
            let batched = run_mq(AppSpec::TestPmd, 2, 2, 512, 40.0, burst, plan);
            assert_equivalent(
                &scalar,
                &batched,
                &format!("2q/2l burst={burst} plan={plan:?}"),
            );
        }
    }
}

/// A sharded memcached run across 4 queues / 4 lcores must answer
/// requests on every queue (RSS steering actually spreads the load) and
/// stay deterministic under replay.
#[test]
fn sharded_memcached_uses_every_queue_and_replays_identically() {
    let phases = Phases {
        warmup: us(500),
        measure: us(2_000),
    };
    let build = || {
        let cfg = SystemConfig::gem5().with_queues(4).with_lcores(4);
        build_loadgen_sim(&cfg, &AppSpec::MemcachedDpdk, 0, 400.0)
    };
    let a = observe(build(), 32, "", phases);
    let b = observe(build(), 32, "", phases);
    assert_equivalent(&a, &b, "memcached 4q/4l replay");
    // Per-queue RX counters in the full stats dump must all be nonzero.
    for q in 0..4 {
        let needle = format!("system.nic.rxq{q}.");
        assert!(
            a.stats.contains(&needle),
            "stats dump missing per-queue block {needle}"
        );
    }
    for lcore in 0..4 {
        let needle = format!("system.cpu.lcore{lcore}.");
        assert!(
            a.stats.contains(&needle),
            "stats dump missing per-lcore block {needle}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    /// Differential fuzz over the single-queue knob space: arbitrary
    /// sizes, rates, bursts, and fault plans — the multi-queue assembly
    /// at (1, 1) must match the legacy construction bit-for-bit.
    #[test]
    fn arbitrary_single_queue_points_match_legacy(
        size in prop_oneof![Just(64usize), Just(256), Just(1024), Just(1518)],
        gbps in prop_oneof![Just(2.0f64), Just(15.0), Just(45.0), Just(70.0)],
        burst in prop_oneof![Just(1usize), Just(2), Just(32), Just(33)],
        plan in prop_oneof![
            Just(""),
            Just("link.ber=3e-5"),
            Just("nic.wb_corrupt=10%;dma.burst=+500ns/2us@20us"),
            Just("nic.fifo_stuck=15us@50us;link.ber=2e-5"),
        ],
    ) {
        let legacy = run_legacy(AppSpec::TestPmd, size, gbps, burst, plan);
        let mq = run_mq(AppSpec::TestPmd, 1, 1, size, gbps, burst, plan);
        assert_equivalent(
            &legacy,
            &mq,
            &format!("fuzz {size}B @{gbps}Gbps burst={burst} plan={plan:?}"),
        );
    }

    /// Replay-determinism fuzz for any-N multi-queue runs, fault plans
    /// included: two fresh builds of the same point must agree on every
    /// observable byte.
    #[test]
    fn arbitrary_multi_queue_points_replay_identically(
        shape in prop_oneof![Just((2usize, 1usize)), Just((2, 2)), Just((4, 1)),
                             Just((4, 3)), Just((4, 4)), Just((8, 8))],
        gbps in prop_oneof![Just(10.0f64), Just(40.0)],
        plan in prop_oneof![
            Just(""),
            Just("link.ber=3e-5"),
            Just("nic.wb_corrupt=10%;nic.fifo_stuck=15us@50us"),
        ],
    ) {
        let (nq, lcores) = shape;
        let a = run_mq(AppSpec::TestPmd, nq, lcores, 512, gbps, 32, plan);
        let b = run_mq(AppSpec::TestPmd, nq, lcores, 512, gbps, 32, plan);
        assert_equivalent(&a, &b, &format!("fuzz replay {nq}q/{lcores}l plan={plan:?}"));
    }
}
