//! # simnet
//!
//! A full-system **network-subsystem simulator** with DPDK-style userspace
//! networking, a hardware load-generator model, and a suite of
//! network-intensive benchmarks — a from-scratch Rust reproduction of
//! *"Userspace Networking in gem5"* (ISPASS 2024).
//!
//! The paper extends gem5 so unmodified DPDK applications run against its
//! NIC model, adds an `EtherLoadGen` hardware load generator, and
//! characterizes userspace vs kernel networking across microarchitectural
//! configurations. This workspace rebuilds every layer of that study:
//!
//! * [`sim`] — deterministic discrete-event kernel, statistics, RNG.
//! * [`net`] — packets, Ethernet/IPv4/UDP, PCAP, memcached protocol.
//! * [`mem`] — caches (with DCA way-partitioning), DRAM, I/O buses.
//! * [`pci`] — config space with the paper's §III.A fixes, UIO, devbind.
//! * [`cpu`] — in-order and out-of-order core timing models.
//! * [`nic`] — the i8254x-style NIC with the drop-classification FSM.
//! * [`stack`] — the DPDK and kernel software network stacks.
//! * [`apps`] — TestPMD, TouchFwd, TouchDrop, RXpTX, both memcacheds, iperf.
//! * [`loadgen`] — `EtherLoadGen` (synthetic / trace / memcached-client).
//! * [`harness`] — node assembly, MSB search, and every paper experiment.
//!
//! # Quickstart
//!
//! ```
//! use simnet::harness::{run_point, AppSpec, RunConfig, SystemConfig};
//!
//! // Load a TestPMD forwarder with 5 Gbps of 256-byte frames.
//! let cfg = SystemConfig::gem5();
//! let summary = run_point(&cfg, &AppSpec::TestPmd, 256, 5.0, RunConfig::fast());
//! assert!(summary.drop_rate < 0.01);
//! assert!(summary.achieved_gbps() > 4.0);
//! ```
//!
//! See `examples/` for runnable scenarios and the `repro` binary
//! (`cargo run --release -p simnet-harness --bin repro`) for the full
//! table/figure reproduction.

pub use simnet_apps as apps;
pub use simnet_cpu as cpu;
pub use simnet_harness as harness;
pub use simnet_loadgen as loadgen;
pub use simnet_mem as mem;
pub use simnet_net as net;
pub use simnet_nic as nic;
pub use simnet_pci as pci;
pub use simnet_sim as sim;
pub use simnet_stack as stack;

/// Commonly used items in one import.
pub mod prelude {
    pub use simnet_harness::{
        find_msb, run_point, AppSpec, MsbResult, RunConfig, RunSummary, Simulation, SystemConfig,
    };
    pub use simnet_loadgen::{EtherLoadGen, LoadGenMode, SyntheticConfig, TraceConfig};
    pub use simnet_net::{EtherType, MacAddr, Packet, PacketBuilder};
    pub use simnet_sim::tick::{Bandwidth, Frequency};
    pub use simnet_sim::Tick;
}
