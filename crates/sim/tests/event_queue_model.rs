//! Differential property tests: the ladder-based [`EventQueue`] against
//! the original [`BinaryHeapQueue`] reference model.
//!
//! The two implementations must agree on **every observable** — pop
//! order (tick, priority, seq, payload), `now`, `len`, `peek_tick`, and
//! the scheduled/executed counters — over arbitrary interleavings of
//! scheduling and popping, including same-tick floods, the
//! `Priority::MINIMUM`/`MAXIMUM` sentinels, bounded `pop_until` sweeps,
//! and deltas that cross the ladder's near-future window into the
//! overflow heap (and trigger window jumps back out of it).
//!
//! The burst-transport primitives are part of the differential surface
//! too: `reserve_seq` (a coalescer claiming the scalar event's seq
//! without inserting), `schedule_keyed` (the deferred flush under the
//! reserved key), `peek_key`, and `advance_inline` (an inline burst
//! constituent advancing the clock and the executed counter without a
//! pop) must leave both implementations in agreeing states under
//! arbitrary interleavings with ordinary scheduling and popping.

use proptest::prelude::*;
use simnet_sim::event::BinaryHeapQueue;
use simnet_sim::{EventQueue, Priority};

/// One step of an interleaved workload, in relative time so every
/// generated sequence is valid (`schedule` never targets the past).
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + dt` with priority `prio`.
    Schedule { dt: u64, prio: i16 },
    /// Pop up to `n` events unconditionally.
    Pop { n: usize },
    /// Drain events up to `now + dt` via `pop_until`.
    PopUntil { dt: u64 },
    /// Discard everything pending (mid-window `clear`).
    Clear,
    /// Reserve a seq for a future keyed insert at `(now + dt, prio)` —
    /// the coalescer side of the burst transport.
    Reserve { dt: u64, prio: i16 },
    /// Insert every outstanding reservation under its reserved key —
    /// the coalescer flush.
    Flush,
    /// Advance the clock inline to `min(now + dt, peek_tick)`, counting
    /// one executed event — an inline burst-constituent dispatch.
    AdvanceInline { dt: u64 },
}

fn arb_priority() -> impl Strategy<Value = i16> {
    prop_oneof![
        Just(i16::MIN),
        Just(i16::MAX),
        Just(0i16),
        Just(-30i16),
        Just(10i16),
        any::<i16>(),
    ]
}

/// Deltas spanning all three ladder regimes: the active cohort (0),
/// nearby buckets, and far past the ~8.4 µs default window (forcing
/// overflow inserts, pulls, and empty-ring jumps).
fn arb_dt() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => Just(0u64),            // same-tick flood / cohort insert
        4 => 1u64..5_000,           // same and adjacent buckets
        2 => 5_000u64..2_000_000,   // across the window ring
        2 => 8_000_000u64..40_000_000, // overflow heap + window jump
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (arb_dt(), arb_priority()).prop_map(|(dt, prio)| Op::Schedule { dt, prio }),
        3 => (1usize..8).prop_map(|n| Op::Pop { n }),
        2 => arb_dt().prop_map(|dt| Op::PopUntil { dt }),
        1 => Just(Op::Clear),
        3 => (arb_dt(), arb_priority()).prop_map(|(dt, prio)| Op::Reserve { dt, prio }),
        2 => Just(Op::Flush),
        1 => arb_dt().prop_map(|dt| Op::AdvanceInline { dt }),
    ]
}

/// Asserts every cheap observable matches between the two queues.
fn assert_observables(
    q: &EventQueue<usize>,
    r: &BinaryHeapQueue<usize>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(q.len(), r.len(), "len diverged");
    prop_assert_eq!(q.is_empty(), r.is_empty());
    prop_assert_eq!(q.now(), r.now(), "clock diverged");
    prop_assert_eq!(q.peek_tick(), r.peek_tick(), "peek_tick diverged");
    prop_assert_eq!(q.scheduled_count(), r.scheduled_count());
    prop_assert_eq!(q.executed_count(), r.executed_count());
    prop_assert_eq!(q.peek_key(), r.peek_key(), "peek_key diverged");
    Ok(())
}

/// Outstanding `reserve_seq` claims not yet flushed: `(tick, prio, seq)`.
type Pending = Vec<(u64, i16, u64)>;

/// Flushes every outstanding reservation into both queues under its
/// reserved key (skipping any the clock has already passed — a real
/// coalescer flushes before its first key can be overtaken, but the
/// model's arbitrary interleavings may advance `now` first; both queues
/// must skip identically).
fn flush_pending(
    pending: &mut Pending,
    q: &mut EventQueue<usize>,
    r: &mut BinaryHeapQueue<usize>,
    label: &mut usize,
) {
    for (tick, prio, seq) in pending.drain(..) {
        if tick < q.now() {
            continue;
        }
        q.schedule_keyed(tick, Priority(prio), seq, *label);
        r.schedule_keyed(tick, Priority(prio), seq, *label);
        *label += 1;
    }
}

/// Pops from both queues and asserts the events are identical.
fn assert_same_pop(
    a: Option<simnet_sim::Event<usize>>,
    b: Option<simnet_sim::Event<usize>>,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (None, None) => Ok(()),
        (Some(x), Some(y)) => {
            prop_assert_eq!(
                (x.tick, x.priority, x.seq, x.payload),
                (y.tick, y.priority, y.seq, y.payload),
                "pop order diverged"
            );
            Ok(())
        }
        (a, b) => {
            prop_assert!(false, "one queue popped, the other did not: {a:?} vs {b:?}");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    /// The ladder agrees with the heap reference on arbitrary
    /// schedule/pop/pop_until/clear interleavings.
    #[test]
    fn ladder_equals_binary_heap_reference(
        ops in prop::collection::vec(arb_op(), 1..120)
    ) {
        let mut q = EventQueue::new();
        let mut r = BinaryHeapQueue::new();
        let mut label = 0usize;
        let mut pending: Pending = Vec::new();
        for op in &ops {
            match op {
                Op::Schedule { dt, prio } => {
                    let tick = q.now().saturating_add(*dt);
                    q.schedule_with_priority(tick, Priority(*prio), label);
                    r.schedule_with_priority(tick, Priority(*prio), label);
                    label += 1;
                }
                Op::Pop { n } => {
                    for _ in 0..*n {
                        assert_same_pop(q.pop(), r.pop())?;
                    }
                }
                Op::PopUntil { dt } => {
                    let limit = q.now().saturating_add(*dt);
                    loop {
                        let (a, b) = (q.pop_until(limit), r.pop_until(limit));
                        let done = a.is_none();
                        assert_same_pop(a, b)?;
                        if done {
                            break;
                        }
                    }
                }
                Op::Clear => {
                    q.clear();
                    r.clear();
                    pending.clear();
                }
                Op::Reserve { dt, prio } => {
                    let tick = q.now().saturating_add(*dt);
                    let (sq, sr) = (q.reserve_seq(), r.reserve_seq());
                    prop_assert_eq!(sq, sr, "reserved seqs diverged");
                    pending.push((tick, *prio, sq));
                }
                Op::Flush => flush_pending(&mut pending, &mut q, &mut r, &mut label),
                Op::AdvanceInline { dt } => {
                    let mut t = q.now().saturating_add(*dt);
                    if let Some(p) = q.peek_tick() {
                        t = t.min(p);
                    }
                    q.advance_inline(t);
                    r.advance_inline(t);
                }
            }
            assert_observables(&q, &r)?;
        }
        // Flush stragglers, then drain: full order must still agree.
        flush_pending(&mut pending, &mut q, &mut r, &mut label);
        loop {
            let (a, b) = (q.pop(), r.pop());
            let done = a.is_none();
            assert_same_pop(a, b)?;
            assert_observables(&q, &r)?;
            if done {
                break;
            }
        }
    }

    /// A same-tick flood (hundreds of events on one tick, mixed
    /// priorities including both sentinels) drains in identical order —
    /// the cohort-sort path against the heap's per-pop sift.
    #[test]
    fn same_tick_flood_matches_reference(
        tick in 0u64..50_000_000,
        prios in prop::collection::vec(arb_priority(), 1..300)
    ) {
        let mut q = EventQueue::new();
        let mut r = BinaryHeapQueue::new();
        for (i, prio) in prios.iter().enumerate() {
            q.schedule_with_priority(tick, Priority(*prio), i);
            r.schedule_with_priority(tick, Priority(*prio), i);
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            let done = a.is_none();
            assert_same_pop(a, b)?;
            if done {
                break;
            }
        }
    }

    /// Mid-drain cohort insertion: while a same-tick cohort is being
    /// popped, new events landing on that same tick (any priority —
    /// the DMA-kick pattern) must interleave exactly like the reference.
    #[test]
    fn mid_cohort_insertion_matches_reference(
        initial in prop::collection::vec(arb_priority(), 2..40),
        injected in prop::collection::vec(arb_priority(), 1..40),
        tick in 0u64..1_000_000
    ) {
        let mut q = EventQueue::new();
        let mut r = BinaryHeapQueue::new();
        let mut label = 0usize;
        for prio in &initial {
            q.schedule_with_priority(tick, Priority(*prio), label);
            r.schedule_with_priority(tick, Priority(*prio), label);
            label += 1;
        }
        // Pop one event to activate the cohort, then inject the rest at
        // the same tick, then drain.
        assert_same_pop(q.pop(), r.pop())?;
        for prio in &injected {
            q.schedule_with_priority(tick, Priority(*prio), label);
            r.schedule_with_priority(tick, Priority(*prio), label);
            label += 1;
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            let done = a.is_none();
            assert_same_pop(a, b)?;
            if done {
                break;
            }
        }
    }

    /// A same-tick cohort mixing keyed (burst-reserved) and directly
    /// scheduled events — priorities including both sentinels, so a
    /// MIN/MAX-priority burst sits around scalar events in one tick —
    /// must drain in identical order from both implementations even
    /// when the keyed inserts land *after* the cohort is activated
    /// (mid-cohort insertion of earlier-reserved seqs).
    #[test]
    fn keyed_burst_cohort_matches_reference(
        tick in 0u64..10_000_000,
        head in arb_priority(),
        reserved in prop::collection::vec(arb_priority(), 1..40),
        direct in prop::collection::vec(arb_priority(), 1..40),
    ) {
        let mut q = EventQueue::new();
        let mut r = BinaryHeapQueue::new();
        let mut label = 0usize;
        // Reserve the burst's seqs first — the coalescer pattern claims
        // the scalar stream's seqs at delivery time...
        let mut keys: Vec<(i16, u64)> = Vec::new();
        for prio in &reserved {
            let (sq, sr) = (q.reserve_seq(), r.reserve_seq());
            prop_assert_eq!(sq, sr);
            keys.push((*prio, sq));
        }
        // ...while later scalar events schedule normally on the same tick.
        for prio in &direct {
            q.schedule_with_priority(tick, Priority(*prio), label);
            r.schedule_with_priority(tick, Priority(*prio), label);
            label += 1;
        }
        // One more event to activate the cohort before the keyed flood.
        q.schedule_with_priority(tick, Priority(head), label);
        r.schedule_with_priority(tick, Priority(head), label);
        label += 1;
        assert_same_pop(q.pop(), r.pop())?;
        // Flush the burst mid-cohort under the reserved keys.
        for (prio, seq) in keys {
            q.schedule_keyed(tick, Priority(prio), seq, label);
            r.schedule_keyed(tick, Priority(prio), seq, label);
            label += 1;
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            let done = a.is_none();
            assert_same_pop(a, b)?;
            assert_observables(&q, &r)?;
            if done {
                break;
            }
        }
    }

    /// Tiny ladder geometries (2–8 buckets, 2–4 tick spans) wrap the
    /// window ring constantly and must still agree with the reference.
    #[test]
    fn tiny_geometries_match_reference(
        shift in 1u32..3,
        buckets_pow in 1u32..4,
        entries in prop::collection::vec((0u64..400, arb_priority()), 0..150)
    ) {
        let mut q = EventQueue::with_geometry(shift, 1usize << buckets_pow);
        let mut r = BinaryHeapQueue::new();
        for (i, (tick, prio)) in entries.iter().enumerate() {
            q.schedule_with_priority(*tick, Priority(*prio), i);
            r.schedule_with_priority(*tick, Priority(*prio), i);
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            let done = a.is_none();
            assert_same_pop(a, b)?;
            if done {
                break;
            }
        }
    }
}

/// `clear()` while the window is mid-drain (active cohort, ring content,
/// and overflow all populated) resets to an empty-but-usable queue.
#[test]
fn clear_mid_window_resets_cleanly() {
    let mut q = EventQueue::new();
    let mut r = BinaryHeapQueue::new();
    for (i, t) in [100u64, 100, 100, 5_000, 2_000_000, 60_000_000]
        .iter()
        .enumerate()
    {
        q.schedule_with_priority(*t, Priority((i as i16) - 2), i);
        r.schedule_with_priority(*t, Priority((i as i16) - 2), i);
    }
    // Activate the tick-100 cohort, leaving two of its events pending.
    assert_eq!(q.pop().unwrap().tick, 100);
    r.pop();
    q.clear();
    r.clear();
    assert!(q.is_empty());
    assert_eq!(q.len(), r.len());
    assert_eq!(q.now(), r.now());
    assert_eq!(q.peek_tick(), None);
    // The cleared queue keeps working, from `now` out past the window.
    q.schedule(100, 7);
    q.schedule(90_000_000, 8);
    r.schedule(100, 7);
    r.schedule(90_000_000, 8);
    for _ in 0..2 {
        let (a, b) = (q.pop().unwrap(), r.pop().unwrap());
        assert_eq!((a.tick, a.seq, a.payload), (b.tick, b.seq, b.payload));
    }
    assert!(q.pop().is_none());
}
