//! Property tests for the event queue's total order.
//!
//! Determinism rests entirely on the queue popping events in
//! `(tick, priority, sequence)` order — ticks ascending, then priority
//! (lower `i16` first), then insertion order for exact ties. These
//! properties exercise arbitrary schedules, including the extreme
//! `Priority::MINIMUM` / `Priority::MAXIMUM` sentinels and same-tick
//! pile-ups.

use proptest::prelude::*;
use simnet_sim::{Event, EventQueue, Priority, Tick};

/// Pops everything and returns `(tick, priority, seq)` keys in pop order.
fn drain_keys(q: &mut EventQueue<usize>) -> Vec<(Tick, i16, u64)> {
    let mut keys = Vec::new();
    while let Some(Event {
        tick,
        priority,
        seq,
        ..
    }) = q.pop()
    {
        keys.push((tick, priority.0, seq));
    }
    keys
}

/// A strategy over priorities that always includes the sentinels.
fn arb_priority() -> impl Strategy<Value = i16> {
    prop_oneof![
        Just(i16::MIN),
        Just(i16::MAX),
        Just(0i16),
        -100i16..100i16,
        any::<i16>(),
    ]
}

proptest! {
    #[test]
    fn pops_in_total_key_order(
        entries in prop::collection::vec((0u64..1_000, arb_priority()), 0..200)
    ) {
        let mut q = EventQueue::new();
        for (i, (tick, prio)) in entries.iter().enumerate() {
            q.schedule_with_priority(*tick, Priority(*prio), i);
        }
        let keys = drain_keys(&mut q);
        prop_assert_eq!(keys.len(), entries.len());
        for pair in keys.windows(2) {
            prop_assert!(
                pair[0] < pair[1],
                "events out of order: {:?} then {:?}", pair[0], pair[1]
            );
        }
    }

    #[test]
    fn same_tick_orders_by_priority_then_insertion(
        prios in prop::collection::vec(arb_priority(), 1..100),
        tick in 0u64..1_000_000
    ) {
        let mut q = EventQueue::new();
        for (i, prio) in prios.iter().enumerate() {
            q.schedule_with_priority(tick, Priority(*prio), i);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            prop_assert_eq!(ev.tick, tick);
            popped.push((ev.priority.0, ev.payload));
        }
        // Stable sort of the insertion order by priority is exactly what
        // the queue must reproduce: priority ascending, ties FIFO.
        let mut expect: Vec<(i16, usize)> =
            prios.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        expect.sort_by_key(|&(p, _)| p);
        prop_assert_eq!(popped, expect);
    }

    #[test]
    fn minimum_preempts_and_maximum_yields_within_a_tick(
        n in 1usize..50,
        tick in 0u64..1_000
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_with_priority(tick, Priority::NORMAL, i);
        }
        q.schedule_with_priority(tick, Priority::MAXIMUM, usize::MAX);
        q.schedule_with_priority(tick, Priority::MINIMUM, usize::MAX - 1);
        let first = q.pop().unwrap();
        prop_assert_eq!(first.priority, Priority::MINIMUM);
        let mut last = first;
        while let Some(ev) = q.pop() {
            last = ev;
        }
        prop_assert_eq!(last.priority, Priority::MAXIMUM);
    }

    #[test]
    fn pop_until_respects_limit_and_order(
        entries in prop::collection::vec((0u64..2_000, arb_priority()), 0..200),
        limit in 0u64..2_000
    ) {
        let mut q = EventQueue::new();
        let mut reference = EventQueue::new();
        for (i, (tick, prio)) in entries.iter().enumerate() {
            q.schedule_with_priority(*tick, Priority(*prio), i);
            reference.schedule_with_priority(*tick, Priority(*prio), i);
        }
        let mut bounded = Vec::new();
        while let Some(ev) = q.pop_until(limit) {
            prop_assert!(ev.tick <= limit);
            bounded.push((ev.tick, ev.priority.0, ev.payload));
        }
        // pop_until must yield exactly the <= limit prefix of pop order.
        let mut unbounded = Vec::new();
        while let Some(ev) = reference.pop() {
            if ev.tick <= limit {
                unbounded.push((ev.tick, ev.priority.0, ev.payload));
            }
        }
        prop_assert_eq!(bounded, unbounded);
    }

    #[test]
    fn interleaved_schedule_and_pop_never_goes_backwards(
        batches in prop::collection::vec(
            prop::collection::vec((0u64..500, arb_priority()), 0..20),
            1..20
        )
    ) {
        // Alternate scheduling a batch (at or after `now`) with popping a
        // few events. Simulated time must be monotone throughout — full
        // key order is only guaranteed among events present in the queue
        // together, since a later insert at the current tick may use any
        // priority.
        let mut q = EventQueue::new();
        let mut label = 0usize;
        let mut last_tick: Tick = 0;
        for batch in &batches {
            let now = q.now();
            for (dt, prio) in batch {
                q.schedule_with_priority(now + dt, Priority(*prio), label);
                label += 1;
            }
            for _ in 0..3 {
                let Some(ev) = q.pop() else { break };
                prop_assert!(
                    ev.tick >= last_tick,
                    "time went backwards: {} then {}", last_tick, ev.tick
                );
                last_tick = ev.tick;
            }
        }
    }
}
