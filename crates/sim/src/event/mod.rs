//! A deterministic pending-event set.
//!
//! [`EventQueue`] orders events by `(tick, priority, insertion sequence)`.
//! Ties at the same tick are broken first by [`Priority`] (lower value runs
//! first, mirroring gem5's event priorities) and then by insertion order, so
//! simulations are reproducible regardless of allocator or hash-map state.
//!
//! The implementation is a gem5-style two-level ladder ([`ladder`]): a
//! bucketed near-future window drained cohort-at-a-time plus an overflow
//! heap for far-future timers. The original single-`BinaryHeap` queue
//! survives as [`BinaryHeapQueue`] ([`heap`]) — the reference model for
//! differential tests and the baseline for `BENCH_event_queue.json`.

mod heap;
mod ladder;
pub mod shard;

pub use heap::BinaryHeapQueue;
pub use shard::{ShardChannel, ShardClock};

use crate::tick::Tick;
use ladder::LadderQueue;

/// The full event-ordering key. Events dispatch in ascending key order;
/// the key is total (the `seq` component is unique), so comparing keys
/// answers "which of these two events runs first" exactly.
pub type EventKey = (Tick, Priority, u64);

/// Scheduling priority for events that share a tick. Lower runs first.
///
/// The default priority is [`Priority::NORMAL`]. The named levels mirror the
/// ordering needs of the NIC/CPU models: link delivery happens before DMA
/// completion, which happens before software progress at the same tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub i16);

impl Priority {
    /// Runs before everything else at a tick (e.g. statistics resets).
    pub const MINIMUM: Priority = Priority(i16::MIN);
    /// Wire/link events: packet delivery onto a device.
    pub const LINK: Priority = Priority(-30);
    /// DMA transaction completion.
    pub const DMA: Priority = Priority(-20);
    /// Device-internal bookkeeping (descriptor writeback, interrupts).
    pub const DEVICE: Priority = Priority(-10);
    /// Ordinary events.
    pub const NORMAL: Priority = Priority(0);
    /// Software progress (core run-loop iterations).
    pub const CPU: Priority = Priority(10);
    /// Runs after everything else at a tick (e.g. sampling probes).
    pub const MAXIMUM: Priority = Priority(i16::MAX);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

/// A scheduled event: when it fires, at what priority, and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<E> {
    /// Tick at which the event fires.
    pub tick: Tick,
    /// Tie-break priority within the tick.
    pub priority: Priority,
    /// Monotonic insertion sequence number (final tie-break).
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: E,
}

/// A deterministic discrete-event queue.
///
/// The queue tracks the current simulated time: popping an event advances
/// [`EventQueue::now`] to that event's tick. Scheduling into the past is a
/// bug and panics, as is scheduling past the `u64` tick horizon.
///
/// Internally this is a two-level ladder (near-future bucket ring +
/// far-future overflow heap; see [`ladder`]); the observable behaviour is
/// the strict `(tick, priority, seq)` total order.
///
/// # Example
///
/// ```
/// use simnet_sim::{EventQueue, Priority, tick};
///
/// let mut q = EventQueue::new();
/// q.schedule_with_priority(tick::ns(2), Priority::CPU, "cpu");
/// q.schedule_with_priority(tick::ns(2), Priority::LINK, "link");
/// // Same tick: the link event runs first.
/// assert_eq!(q.pop().unwrap().payload, "link");
/// assert_eq!(q.pop().unwrap().payload, "cpu");
/// assert_eq!(q.now(), tick::ns(2));
/// ```
pub struct EventQueue<E> {
    ladder: LadderQueue<E>,
    now: Tick,
    next_seq: u64,
    scheduled: u64,
    executed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at tick 0 with the default ladder geometry
    /// (2048 buckets of 4.096 ns — an ~8.4 µs near-future window).
    pub fn new() -> Self {
        Self::from_ladder(LadderQueue::new())
    }

    /// Creates an empty queue with an explicit ladder geometry:
    /// `num_buckets` buckets (a power of two) of `2^bucket_shift` ticks
    /// each. Smaller geometries are mainly useful for stress-testing
    /// window wraps; the defaults fit the simulator's event-horizon mix.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is not a power of two >= 2.
    pub fn with_geometry(bucket_shift: u32, num_buckets: usize) -> Self {
        Self::from_ladder(LadderQueue::with_geometry(bucket_shift, num_buckets))
    }

    fn from_ladder(ladder: LadderQueue<E>) -> Self {
        Self {
            ladder,
            now: 0,
            next_seq: 0,
            scheduled: 0,
            executed: 0,
        }
    }

    /// Current simulated time: the tick of the most recently popped event.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ladder.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.ladder.is_empty()
    }

    /// Total events scheduled since creation.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events executed (popped) since creation.
    pub fn executed_count(&self) -> u64 {
        self.executed
    }

    /// Schedules `payload` at `tick` with [`Priority::NORMAL`].
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`EventQueue::now`].
    pub fn schedule(&mut self, tick: Tick, payload: E) {
        self.schedule_with_priority(tick, Priority::NORMAL, payload);
    }

    /// Schedules `payload` `delta` ticks after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `now + delta` overflows the `u64` tick horizon. (A
    /// saturating add would silently pin the event at `u64::MAX` and
    /// wedge the simulation at the time horizon; overflowing here is a
    /// caller bug and fails loudly, like scheduling into the past.)
    pub fn schedule_in(&mut self, delta: Tick, payload: E) {
        let tick = self.now.checked_add(delta).unwrap_or_else(|| {
            panic!(
                "scheduling past the tick horizon: now {} + delta {delta} overflows u64",
                self.now
            )
        });
        self.schedule(tick, payload);
    }

    /// Schedules `payload` at `tick` with an explicit priority.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`EventQueue::now`].
    pub fn schedule_with_priority(&mut self, tick: Tick, priority: Priority, payload: E) {
        assert!(
            tick >= self.now,
            "scheduling into the past: tick {tick} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.ladder.insert(ladder::Entry {
            tick,
            priority,
            seq,
            payload,
        });
    }

    /// Reserves the next insertion sequence number without inserting an
    /// event yet. The reservation counts as a scheduled event (the event
    /// *will* be dispatched — possibly inline from a burst carrier), so
    /// `scheduled_count` is independent of how events are batched.
    ///
    /// Pair with [`EventQueue::schedule_keyed`] or an inline dispatch via
    /// [`EventQueue::advance_inline`]; a leaked reservation leaves a hole
    /// in the seq space, which is harmless for ordering but skews the
    /// scheduled/executed books.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        seq
    }

    /// Inserts an event under a previously reserved key. Unlike
    /// [`EventQueue::schedule_with_priority`] this bumps neither the seq
    /// counter nor the scheduled count — the reservation already did.
    /// Used by burst carriers to (re-)insert a batch under its first
    /// constituent's original key, keeping dispatch order byte-identical
    /// to the unbatched schedule.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`EventQueue::now`]. `seq` must come
    /// from [`EventQueue::reserve_seq`] and must not be pending (the
    /// total order relies on unique keys).
    pub fn schedule_keyed(&mut self, tick: Tick, priority: Priority, seq: u64, payload: E) {
        assert!(
            tick >= self.now,
            "scheduling into the past: tick {tick} < now {}",
            self.now
        );
        debug_assert!(seq < self.next_seq, "seq {seq} was never reserved");
        self.ladder.insert(ladder::Entry {
            tick,
            priority,
            seq,
            payload,
        });
    }

    /// Inserts a cross-shard event under a *synthetic* key minted by
    /// [`shard::foreign_seq`] instead of a locally reserved one. Foreign
    /// keys live in the upper half of the seq space (bit 63 set), so they
    /// sort after every locally scheduled event at the same
    /// `(tick, priority)` and never consume the local seq counter — which
    /// is what keeps a shard's local event keys invariant under any
    /// thread count or message-arrival timing. Counts as one scheduled
    /// event (the message is scheduled exactly once, on the receiving
    /// shard), so the global scheduled/executed books stay partition-
    /// independent.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`EventQueue::now`] or if `seq` is not
    /// in the foreign namespace.
    pub fn schedule_foreign(&mut self, tick: Tick, priority: Priority, seq: u64, payload: E) {
        assert!(
            tick >= self.now,
            "foreign event in the past: tick {tick} < now {}",
            self.now
        );
        assert!(
            seq & shard::FOREIGN_SEQ_BIT != 0,
            "seq {seq:#x} is not in the foreign namespace (bit 63 clear)"
        );
        self.scheduled += 1;
        self.ladder.insert(ladder::Entry {
            tick,
            priority,
            seq,
            payload,
        });
    }

    /// Full key of the next pending event, if any. A burst carrier may
    /// dispatch its next constituent inline only while the constituent's
    /// key sorts before this one.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.ladder.peek_key()
    }

    /// Advances the clock to `tick` and counts one executed event, as if
    /// an event at `tick` had been popped. Used when a burst carrier
    /// dispatches a constituent inline instead of round-tripping it
    /// through the queue; the executed/scheduled books stay identical to
    /// the unbatched run.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`EventQueue::now`]. The caller must
    /// have checked (via [`EventQueue::peek_key`]) that no pending event
    /// sorts before the inlined one.
    pub fn advance_inline(&mut self, tick: Tick) {
        assert!(
            tick >= self.now,
            "inline dispatch into the past: tick {tick} < now {}",
            self.now
        );
        debug_assert!(self.peek_tick().is_none_or(|t| t >= tick));
        self.now = tick;
        self.executed += 1;
    }

    /// Tick of the next pending event, if any.
    pub fn peek_tick(&self) -> Option<Tick> {
        self.ladder.peek_tick()
    }

    /// Pops the next event and advances the clock to its tick.
    pub fn pop(&mut self) -> Option<Event<E>> {
        let entry = self.ladder.pop()?;
        debug_assert!(entry.tick >= self.now);
        self.now = entry.tick;
        self.executed += 1;
        Some(Event {
            tick: entry.tick,
            priority: entry.priority,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Pops the next event only if it fires at or before `limit`.
    pub fn pop_until(&mut self, limit: Tick) -> Option<Event<E>> {
        match self.peek_tick() {
            Some(t) if t <= limit => self.pop(),
            _ => None,
        }
    }

    /// Discards all pending events without advancing time.
    pub fn clear(&mut self) {
        self.ladder.clear(self.now);
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.ladder.len())
            .field("scheduled", &self.scheduled)
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tick;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_tick_fifo_within_priority() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn priority_breaks_ties() {
        let mut q = EventQueue::new();
        q.schedule_with_priority(5, Priority::CPU, "cpu");
        q.schedule_with_priority(5, Priority::LINK, "link");
        q.schedule_with_priority(5, Priority::DMA, "dma");
        assert_eq!(q.pop().unwrap().payload, "link");
        assert_eq!(q.pop().unwrap().payload, "dma");
        assert_eq!(q.pop().unwrap().payload, "cpu");
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(tick::ns(4), ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), tick::ns(4));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, 1);
        q.pop();
        q.schedule_in(50, 2);
        let e = q.pop().unwrap();
        assert_eq!(e.tick, 150);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    #[test]
    #[should_panic(expected = "scheduling past the tick horizon")]
    fn rejects_tick_overflow_instead_of_saturating() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        // A saturating add would clamp this to u64::MAX and silently
        // wedge the run at the horizon; it must panic instead.
        q.schedule_in(u64::MAX, ());
    }

    #[test]
    fn schedule_in_accepts_the_exact_horizon() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule_in(u64::MAX - 100, ());
        assert_eq!(q.pop().unwrap().tick, u64::MAX);
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(10, "early");
        q.schedule(100, "late");
        assert_eq!(q.pop_until(50).unwrap().payload, "early");
        assert!(q.pop_until(50).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(100).unwrap().payload, "late");
    }

    #[test]
    fn counts_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.executed_count(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_cross_the_overflow_boundary() {
        // Default window is ~8.4 µs; schedule well past it.
        let mut q = EventQueue::new();
        q.schedule(tick::us(100), "sample");
        q.schedule(tick::ns(5), "hot");
        q.schedule(tick::us(10), "probe");
        assert_eq!(q.peek_tick(), Some(tick::ns(5)));
        assert_eq!(q.pop().unwrap().payload, "hot");
        assert_eq!(q.pop().unwrap().payload, "probe");
        assert_eq!(q.pop().unwrap().payload, "sample");
        assert_eq!(q.now(), tick::us(100));
    }

    #[test]
    fn clear_mid_window_then_reschedule() {
        let mut q = EventQueue::with_geometry(2, 8);
        for t in [1u64, 9, 40, 5_000] {
            q.schedule(t, t);
        }
        assert_eq!(q.pop().unwrap().tick, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 1);
        q.schedule(3, 3);
        q.schedule(10_000, 10_000);
        assert_eq!(q.pop().unwrap().tick, 3);
        assert_eq!(q.pop().unwrap().tick, 10_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn tiny_geometry_matches_default_order() {
        let ticks = [7u64, 7, 0, 3, 129, 64, 7, 1_000_000, 12, 12];
        let mut tiny = EventQueue::with_geometry(1, 2);
        let mut def = EventQueue::new();
        for (i, t) in ticks.iter().enumerate() {
            tiny.schedule_with_priority(*t, Priority((i % 3) as i16 - 1), i);
            def.schedule_with_priority(*t, Priority((i % 3) as i16 - 1), i);
        }
        loop {
            let (a, b) = (tiny.pop(), def.pop());
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(
                        (x.tick, x.priority, x.seq, x.payload),
                        (y.tick, y.priority, y.seq, y.payload)
                    );
                }
                (None, None) => break,
                _ => panic!("queues diverged: {a:?} vs {b:?}"),
            }
        }
    }
}
