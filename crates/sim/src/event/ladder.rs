//! The two-level "ladder" pending-event set.
//!
//! gem5 replaced its global event heap with bucketed same-tick event
//! lists because, at scale, the heap's per-event `O(log n)` sift
//! dominates host time. [`LadderQueue`] applies the same idea to the
//! simnet kernel with two levels:
//!
//! * **Near-future window** — a circular array of `num_buckets` buckets,
//!   each covering a `2^bucket_shift`-tick span. `schedule` into the
//!   window is an `O(1)` `Vec::push`; the bucket is sorted **once per
//!   cohort** when the clock reaches it (not re-heapified per event).
//! * **Overflow heap** — events beyond the window (timers, RTOs,
//!   sampling probes) go to an ordinary binary heap and are pulled into
//!   the window as it slides forward.
//!
//! An **occupancy bitmap** (one bit per bucket) lets the cursor jump
//! straight to the next non-empty bucket: at realistic event densities
//! (one pending event every several spans) the ring is mostly empty,
//! and walking it bucket by bucket would cost more than the heap it
//! replaces.
//!
//! Draining works through a `drain` buffer: when the clock enters a
//! non-empty bucket, the whole bucket is sorted descending by
//! `(tick, priority, seq)` and popped from the back, so a same-tick
//! cohort costs one sort amortized over all its events. Events scheduled
//! *into the active cohort* (the common `schedule(now, …)` kick pattern)
//! are placed by binary search, preserving the exact total order the
//! [`super::EventQueue`] API promises.
//!
//! # Determinism
//!
//! The observable order is the strict total order `(tick, priority,
//! seq)` — identical to the reference [`super::BinaryHeapQueue`], which
//! differential tests (`crates/sim/tests/event_queue_model.rs`) verify
//! over arbitrary interleavings. Because `seq` is unique, sorting needs
//! no stability and bucket membership cannot affect the order.
//!
//! # Window invariant
//!
//! `window_start` (the tick at the base of the cursor bucket) only
//! advances inside [`LadderQueue::pop`], immediately before an event at
//! or beyond the new position is returned — so `window_start <=
//! align(now)` holds at every public-call boundary, and a later
//! `schedule(tick >= now)` can never land before the window. Lookups
//! ([`LadderQueue::peek_key`]) never mutate.

use std::collections::BinaryHeap;

use super::Priority;
use crate::tick::Tick;

/// Default bucket span: `2^15` ticks = 32.8 ns. Hot per-packet events
/// (link, DMA, software iterations) land within a few spans of `now`;
/// at knee-rate densities a span batches only a handful of ticks, so
/// cohort sorts stay tiny.
pub(super) const DEFAULT_BUCKET_SHIFT: u32 = 15;

/// Default bucket count (must be a power of two): with the default span
/// the window covers ~134 µs of simulated future, so 10 µs probes,
/// 100 µs sampling timers, and sparse kernel-stack/memcached event gaps
/// all stay in the O(1) ring — only genuinely slow timers (millisecond
/// RTOs) take the overflow-heap detour.
pub(super) const DEFAULT_NUM_BUCKETS: usize = 4096;

/// The strict total-order key: `(tick, priority, seq)`.
pub(super) type Key = (Tick, Priority, u64);

/// One pending event, with its full ordering key.
pub(super) struct Entry<E> {
    pub(super) tick: Tick,
    pub(super) priority: Priority,
    pub(super) seq: u64,
    pub(super) payload: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> Key {
        (self.tick, self.priority, self.seq)
    }
}

/// Overflow-heap wrapper: min-heap order over the entry key.
struct OverflowEntry<E>(Entry<E>);

impl<E> PartialEq for OverflowEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for OverflowEntry<E> {}
impl<E> PartialOrd for OverflowEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OverflowEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other.0.key().cmp(&self.0.key())
    }
}

/// Sentinel for "no slot" in the arena's intrusive lists.
const NIL: u32 = u32::MAX;

/// An arena slot: one ring event plus the next slot in its bucket's
/// list (or in the freelist while vacant).
struct Node<E> {
    /// `None` while the slot sits on the freelist.
    entry: Option<Entry<E>>,
    next: u32,
}

/// The two-level ladder structure. Pure ordering container: the clock,
/// sequence numbering and statistics live in [`super::EventQueue`].
pub(super) struct LadderQueue<E> {
    /// The near-future ring; bucket `i` heads an arena list of ticks `t`
    /// with `(t >> bucket_shift) & mask == i` inside the current window.
    /// Storing all ring events in one arena (instead of a `Vec` per
    /// bucket) keeps the hot path in a few cache lines: the LIFO
    /// freelist hands the most-recently-vacated — still cache-warm —
    /// slot to each insert, and avoids thousands of scattered per-bucket
    /// allocations.
    heads: Box<[u32]>,
    /// Backing storage for every ring event.
    arena: Vec<Node<E>>,
    /// Head of the vacant-slot list threaded through `arena`.
    free_head: u32,
    /// The active cohort, sorted descending by key (pop from the back).
    /// While non-empty it *is* the cursor bucket, whose ring list stays
    /// empty until the drain is exhausted.
    drain: Vec<Entry<E>>,
    /// Far-future events (tick >= `window_start + window_span`).
    overflow: BinaryHeap<OverflowEntry<E>>,
    /// One bit per bucket, set iff the bucket is non-empty. At realistic
    /// event densities (one event every several spans) most buckets are
    /// empty, so the cursor jumps to the next occupied bucket with a few
    /// word scans instead of probing empty buckets one by one.
    occupancy: Box<[u64]>,
    /// Second bitmap level: bit `w` set iff `occupancy[w] != 0`.
    /// Maintained only while the ring fits 64 words (the default 4096
    /// buckets exactly); it turns a sparse-ring cursor jump into two
    /// word probes instead of a scan over all occupancy words.
    occ_summary: u64,
    /// Memo of the last ring lookup: `(key, bucket distance from the
    /// cursor)`. [`Self::peek_key`] fills it and the peek-then-pop
    /// pattern (`pop_until` does this for every event) consumes it, so
    /// the ring is searched once per event, not twice. Any mutation
    /// invalidates it.
    peek_hint: std::cell::Cell<Option<(Key, usize)>>,
    /// Events currently stored in the ring (excludes drain + overflow).
    ring_len: usize,
    /// Tick at the base of the cursor bucket; multiple of the span.
    window_start: Tick,
    /// Ring index of the window's first bucket (`== idx(window_start)`).
    cursor: usize,
    bucket_shift: u32,
    /// `num_buckets - 1` (power-of-two bucket count).
    mask: usize,
}

impl<E> LadderQueue<E> {
    pub(super) fn new() -> Self {
        Self::with_geometry(DEFAULT_BUCKET_SHIFT, DEFAULT_NUM_BUCKETS)
    }

    /// Creates a ladder with `num_buckets` buckets of `2^bucket_shift`
    /// ticks each. `num_buckets` must be a power of two.
    pub(super) fn with_geometry(bucket_shift: u32, num_buckets: usize) -> Self {
        assert!(
            num_buckets.is_power_of_two() && num_buckets >= 2,
            "bucket count must be a power of two >= 2, got {num_buckets}"
        );
        assert!(
            bucket_shift < 48,
            "bucket span 2^{bucket_shift} is past any plausible horizon"
        );
        Self {
            heads: vec![NIL; num_buckets].into_boxed_slice(),
            arena: Vec::new(),
            free_head: NIL,
            drain: Vec::new(),
            overflow: BinaryHeap::new(),
            occupancy: vec![0u64; num_buckets.div_ceil(64)].into_boxed_slice(),
            occ_summary: 0,
            peek_hint: std::cell::Cell::new(None),
            ring_len: 0,
            window_start: 0,
            cursor: 0,
            bucket_shift,
            mask: num_buckets - 1,
        }
    }

    #[inline]
    fn idx(&self, tick: Tick) -> usize {
        (tick >> self.bucket_shift) as usize & self.mask
    }

    /// Ticks covered by the whole window.
    #[inline]
    fn window_span(&self) -> Tick {
        ((self.mask as Tick + 1) << self.bucket_shift) as Tick
    }

    /// Whether `tick` falls inside the current window. Computed as a
    /// delta from `window_start` so the window stays well-defined even
    /// when it abuts the `u64::MAX` tick horizon (where an end-tick
    /// comparison would overflow and strand horizon events in overflow).
    #[inline]
    fn in_window(&self, tick: Tick) -> bool {
        debug_assert!(tick >= self.window_start);
        tick - self.window_start < self.window_span()
    }

    #[inline]
    fn align(&self, tick: Tick) -> Tick {
        (tick >> self.bucket_shift) << self.bucket_shift
    }

    #[inline]
    fn set_occupied(&mut self, b: usize) {
        let w = b >> 6;
        self.occupancy[w] |= 1u64 << (b & 63);
        if w < 64 {
            self.occ_summary |= 1u64 << w;
        }
    }

    #[inline]
    fn clear_occupied(&mut self, b: usize) {
        let w = b >> 6;
        self.occupancy[w] &= !(1u64 << (b & 63));
        if w < 64 && self.occupancy[w] == 0 {
            self.occ_summary &= !(1u64 << w);
        }
    }

    /// Circular distance (in buckets) from `from` to the nearest
    /// occupied bucket at or after it — 0 if `from` itself is occupied.
    /// The caller guarantees `ring_len > 0`. Within a word the lowest
    /// set bit is the nearest forward bucket, so each probe is one mask
    /// plus `trailing_zeros`; the summary level finds the right word in
    /// one more probe when the ring fits 64 words.
    fn occupied_distance(&self, from: usize) -> usize {
        let words = self.occupancy.len();
        let w0 = from >> 6;
        // First word: only bits at or above `from` lie ahead of it.
        let first = self.occupancy[w0] & (!0u64 << (from & 63));
        if first != 0 {
            let b = ((w0 << 6) | first.trailing_zeros() as usize) & self.mask;
            return b.wrapping_sub(from) & self.mask;
        }
        let w = if words <= 64 {
            // Words strictly after `w0`, then wrap to the lowest
            // non-empty word (which may be `w0` itself: its bits below
            // `from` are the farthest-forward candidates, and its bits
            // at or above `from` were just ruled out).
            let after = if w0 + 1 < 64 {
                self.occ_summary & (!0u64 << (w0 + 1))
            } else {
                0
            };
            let hit = if after != 0 { after } else { self.occ_summary };
            debug_assert!(hit != 0, "ring_len > 0 but occupancy summary empty");
            hit.trailing_zeros() as usize
        } else {
            // Oversized ring (only reachable via custom geometry): walk
            // the words circularly.
            let mut w = if w0 + 1 == words { 0 } else { w0 + 1 };
            let mut probes = 0usize;
            while self.occupancy[w] == 0 {
                w = if w + 1 == words { 0 } else { w + 1 };
                probes += 1;
                assert!(probes <= words, "ring_len > 0 but no occupied bucket");
            }
            w
        };
        let b = ((w << 6) | self.occupancy[w].trailing_zeros() as usize) & self.mask;
        b.wrapping_sub(from) & self.mask
    }

    pub(super) fn len(&self) -> usize {
        self.ring_len + self.drain.len() + self.overflow.len()
    }

    pub(super) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an event. The caller guarantees `tick >= now >=
    /// window_start` and a unique `seq`.
    pub(super) fn insert(&mut self, entry: Entry<E>) {
        self.peek_hint.set(None);
        if !self.in_window(entry.tick) {
            self.overflow.push(OverflowEntry(entry));
            return;
        }
        let b = self.idx(entry.tick);
        if b == self.cursor && !self.drain.is_empty() {
            // Scheduling into the active cohort (e.g. a DMA kick at the
            // current tick): place it so the descending order holds.
            let key = entry.key();
            let pos = self.drain.partition_point(|e| e.key() > key);
            self.drain.insert(pos, entry);
        } else {
            self.insert_ring(b, entry);
        }
    }

    /// Links `entry` into bucket `b`'s arena list, preferring the
    /// most-recently-vacated (cache-warm) slot.
    fn insert_ring(&mut self, b: usize, entry: Entry<E>) {
        let slot = if self.free_head != NIL {
            let s = self.free_head;
            let node = &mut self.arena[s as usize];
            self.free_head = node.next;
            node.entry = Some(entry);
            node.next = self.heads[b];
            s
        } else {
            assert!(self.arena.len() < NIL as usize, "event arena exhausted");
            self.arena.push(Node {
                entry: Some(entry),
                next: self.heads[b],
            });
            (self.arena.len() - 1) as u32
        };
        self.heads[b] = slot;
        self.set_occupied(b);
        self.ring_len += 1;
    }

    /// The `(tick, priority, seq)` key of the next event, without
    /// mutating the window. O(1) while draining; otherwise a scan from
    /// the cursor to the first non-empty bucket.
    pub(super) fn peek_key(&self) -> Option<Key> {
        if let Some(e) = self.drain.last() {
            return Some(e.key());
        }
        if self.ring_len > 0 {
            if let Some((key, _)) = self.peek_hint.get() {
                return Some(key);
            }
            // Ring events sit in consecutive spans from the cursor, so
            // the first occupied bucket holds the global minimum; the
            // bucket's list is unordered.
            let d = self.occupied_distance(self.cursor);
            let mut s = self.heads[(self.cursor + d) & self.mask];
            let mut min: Option<Key> = None;
            while s != NIL {
                let node = &self.arena[s as usize];
                let key = node
                    .entry
                    .as_ref()
                    .expect("linked slot holds an entry")
                    .key();
                if min.is_none_or(|m| key < m) {
                    min = Some(key);
                }
                s = node.next;
            }
            let key = min.expect("occupied bucket has a non-empty list");
            self.peek_hint.set(Some((key, d)));
            return Some(key);
        }
        self.overflow.peek().map(|e| e.0.key())
    }

    /// Tick of the next pending event, if any.
    pub(super) fn peek_tick(&self) -> Option<Tick> {
        self.peek_key().map(|(t, _, _)| t)
    }

    /// Removes and returns the next event in `(tick, priority, seq)`
    /// order.
    pub(super) fn pop(&mut self) -> Option<Entry<E>> {
        loop {
            if let Some(e) = self.drain.pop() {
                self.peek_hint.set(None);
                return Some(e);
            }
            if self.ring_len > 0 {
                // Jump the window to the next occupied bucket in one
                // step. Skipped spans lie inside the current window, and
                // every overflow event is at or beyond the window's end
                // (it was out-of-window at insert time and the window
                // only moves forward), so nothing in overflow can sort
                // before the bucket we land on; one pull afterwards
                // restores the window invariant.
                let d = match self.peek_hint.take() {
                    // A hint is only set with the drain empty and no
                    // mutation since, so its distance is still exact.
                    Some((_, d)) => d,
                    None => self.occupied_distance(self.cursor),
                };
                if d > 0 {
                    self.cursor = (self.cursor + d) & self.mask;
                    self.window_start += (d as Tick) << self.bucket_shift;
                    self.pull_overflow();
                }
                self.start_cohort();
            } else if self.overflow.is_empty() {
                return None;
            } else {
                // Ring empty: jump the window straight to the earliest
                // far-future event instead of sliding bucket by bucket.
                let first = self.overflow.peek().expect("checked non-empty").0.tick;
                self.window_start = self.align(first);
                self.cursor = self.idx(self.window_start);
                self.pull_overflow();
                debug_assert!(self.heads[self.cursor] != NIL);
                self.start_cohort();
            }
        }
    }

    /// Moves the cursor bucket's list into the drain buffer (returning
    /// its slots to the freelist) and sorts it once, descending, so the
    /// cohort pops from the back in key order.
    fn start_cohort(&mut self) {
        debug_assert!(self.drain.is_empty());
        let mut s = self.heads[self.cursor];
        self.heads[self.cursor] = NIL;
        while s != NIL {
            let node = &mut self.arena[s as usize];
            let entry = node.entry.take().expect("linked slot holds an entry");
            let next = node.next;
            node.next = self.free_head;
            self.free_head = s;
            self.drain.push(entry);
            s = next;
        }
        self.clear_occupied(self.cursor);
        self.ring_len -= self.drain.len();
        // Keys are unique (seq tie-break), so unstable sorting cannot
        // reorder equal elements.
        self.drain
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
    }

    /// Pulls far-future events that now fall inside the window into
    /// their ring buckets.
    fn pull_overflow(&mut self) {
        while self
            .overflow
            .peek()
            .is_some_and(|e| self.in_window(e.0.tick))
        {
            let OverflowEntry(entry) = self.overflow.pop().expect("peeked non-empty");
            let b = self.idx(entry.tick);
            self.insert_ring(b, entry);
        }
    }

    /// Discards all pending events and re-bases the (now empty) window
    /// at `now`, so future inserts at `tick >= now` land correctly.
    pub(super) fn clear(&mut self, now: Tick) {
        self.peek_hint.set(None);
        self.drain.clear();
        if self.ring_len > 0 {
            self.heads.fill(NIL);
            self.occupancy.fill(0);
            self.occ_summary = 0;
            self.ring_len = 0;
        }
        self.arena.clear();
        self.free_head = NIL;
        self.overflow.clear();
        self.window_start = self.align(now);
        self.cursor = self.idx(self.window_start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tick: Tick, prio: i16, seq: u64) -> Entry<u64> {
        Entry {
            tick,
            priority: Priority(prio),
            seq,
            payload: seq,
        }
    }

    /// A tiny 4-bucket, 2-tick-span ladder forces window wraps and
    /// overflow pulls with single-digit ticks.
    fn tiny() -> LadderQueue<u64> {
        LadderQueue::with_geometry(1, 4)
    }

    #[test]
    fn pops_across_window_wraps() {
        let mut q = tiny();
        // Window covers ticks [0, 8); these span several revolutions.
        for (i, t) in [0u64, 3, 7, 8, 9, 15, 16, 100].iter().enumerate() {
            q.insert(entry(*t, 0, i as u64));
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e.tick);
        }
        assert_eq!(got, vec![0, 3, 7, 8, 9, 15, 16, 100]);
    }

    #[test]
    fn jump_skips_empty_spans() {
        let mut q = tiny();
        q.insert(entry(1_000_000, 0, 0));
        assert_eq!(q.peek_tick(), Some(1_000_000));
        let e = q.pop().expect("one event");
        assert_eq!(e.tick, 1_000_000);
        // The window landed on the event's span.
        assert_eq!(q.window_start, 1_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_pull_preserves_order_on_slide() {
        let mut q = tiny();
        // tick 2 in-window; tick 9 overflows (window [0,8)).
        q.insert(entry(9, 0, 0));
        q.insert(entry(2, 0, 1));
        assert_eq!(q.overflow.len(), 1);
        assert_eq!(q.pop().unwrap().tick, 2);
        assert_eq!(q.pop().unwrap().tick, 9);
        assert!(q.is_empty());
    }

    #[test]
    fn active_cohort_accepts_preempting_insert() {
        let mut q = tiny();
        q.insert(entry(4, 10, 0));
        q.insert(entry(4, 10, 1));
        assert_eq!(q.pop().unwrap().seq, 0);
        // Mid-cohort, a lower-priority-value event arrives at the same
        // tick (the DMA-kick pattern): it must pop before seq 1.
        q.insert(entry(4, -20, 2));
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 1);
    }

    #[test]
    fn clear_mid_window_rebases() {
        let mut q = tiny();
        for t in [2u64, 5, 11, 300] {
            q.insert(entry(t, 0, t));
        }
        assert_eq!(q.pop().unwrap().tick, 2);
        q.clear(2);
        assert!(q.is_empty());
        assert_eq!(q.peek_tick(), None);
        // Post-clear inserts at and after the clear point still order.
        q.insert(entry(2, 0, 40));
        q.insert(entry(1_000, 0, 41));
        assert_eq!(q.pop().unwrap().tick, 2);
        assert_eq!(q.pop().unwrap().tick, 1_000);
    }

    #[test]
    fn sparse_ring_jumps_across_bitmap_words() {
        // 128 buckets of 2 ticks = 2 occupancy words; events straddle
        // the word boundary and wrap around the ring.
        let mut q = LadderQueue::with_geometry(1, 128);
        for t in [2u64, 120, 130, 200, 256] {
            q.insert(entry(t, 0, t));
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e.tick);
        }
        assert_eq!(got, vec![2, 120, 130, 200, 256]);
    }

    #[test]
    fn bitmap_tracks_emptied_and_refilled_buckets() {
        let mut q = tiny();
        q.insert(entry(4, 0, 0));
        assert_eq!(q.pop().unwrap().tick, 4); // empties bucket 2

        // Refill the same bucket on the next window revolution.
        q.insert(entry(12, 0, 1));
        assert_eq!(q.peek_tick(), Some(12));
        assert_eq!(q.pop().unwrap().tick, 12);
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_counts_all_levels() {
        let mut q = tiny();
        q.insert(entry(0, 0, 0)); // ring
        q.insert(entry(100, 0, 1)); // overflow
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
