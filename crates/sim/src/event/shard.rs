//! Conservative-parallel shard synchronization primitives.
//!
//! A *shard* is one topology node's private event loop: its own
//! [`EventQueue`](super::EventQueue), RNG streams, tracer ring, and stats
//! subtree, advanced on a worker thread. Shards exchange packets only
//! through explicit channels whose links carry a fixed propagation
//! latency — the *lookahead* of SimBricks-style conservative parallel
//! discrete-event simulation (PDES): a message sent by a shard whose
//! clock reads `C` over a link of latency `L` can never arrive before
//! `C + L`. Each shard may therefore freely execute local events strictly
//! below its *horizon*
//!
//! ```text
//! H = min over in-edges (sender_clock + link_latency)
//! ```
//!
//! without any barrier, blocking only when its next event reaches `H`.
//!
//! This module provides the three thread-crossing pieces, deliberately
//! small so the whole synchronization protocol is auditable:
//!
//! * [`ShardClock`] — a shard's published logical time (one per shard,
//!   shared by all of its out-edges). Writers publish with `Release`
//!   *after* flushing channel pushes; readers `Acquire` the clock
//!   *before* draining, so every message admitted by a horizon is
//!   already visible.
//! * [`ShardChannel`] — a FIFO message channel for one directed edge.
//! * [`foreign_seq`] — the synthetic event-key namespace for ingested
//!   cross-shard messages. A foreign key `(1<<63) | rank<<48 | seq`
//!   sorts after every locally scheduled event at the same
//!   `(tick, priority)`, orders messages from different senders by
//!   `(sender_rank, sender_seq)`, and never consumes the receiving
//!   queue's local seq counter. Local keys are therefore identical at
//!   any thread count, which is what makes `--threads N` byte-identical
//!   to `--threads 1`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::tick::Tick;

/// Bit 63 of an event seq marks the foreign (cross-shard) namespace.
pub const FOREIGN_SEQ_BIT: u64 = 1 << 63;

/// Bits \[48, 63) of a foreign seq hold the sender shard's rank.
pub const FOREIGN_RANK_SHIFT: u32 = 48;

/// Mints the synthetic event-key seq for a cross-shard message: foreign
/// bit, then sender rank, then the sender's per-edge message counter.
/// Sorting foreign seqs therefore sorts by `(sender_rank, sender_seq)`.
///
/// # Panics
///
/// Panics if `sender_rank` needs 15+ bits or `sender_seq` 48+ bits —
/// far beyond any real shard count or per-window message count.
pub fn foreign_seq(sender_rank: u32, sender_seq: u64) -> u64 {
    assert!(
        sender_rank < (1 << 15),
        "shard rank {sender_rank} too large"
    );
    assert!(
        sender_seq < (1 << FOREIGN_RANK_SHIFT),
        "sender seq {sender_seq} overflows the foreign namespace"
    );
    FOREIGN_SEQ_BIT | (u64::from(sender_rank) << FOREIGN_RANK_SHIFT) | sender_seq
}

/// A shard's published logical clock: "I will never again send a message
/// that arrives before `read() + link_latency`".
///
/// One clock exists per shard; every out-edge pairs a clone of it with
/// that edge's link latency. The publish/read pair is Release/Acquire so
/// a reader that computes a horizon from this clock also observes every
/// channel push the writer performed before publishing.
#[derive(Debug, Default)]
pub struct ShardClock {
    tick: AtomicU64,
}

impl ShardClock {
    /// A clock at tick 0.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publishes the shard's logical time. Monotone: publishing an
    /// earlier tick than previously published is a protocol bug.
    pub fn publish(&self, tick: Tick) {
        // fetch_max keeps the clock monotone even if a caller races its
        // own bookkeeping; with one writer per clock it is a plain store.
        let prev = self.tick.fetch_max(tick, Ordering::Release);
        debug_assert!(
            prev <= tick,
            "shard clock moved backwards: {prev} -> {tick}"
        );
    }

    /// Reads the publisher's logical time (Acquire).
    pub fn read(&self) -> Tick {
        self.tick.load(Ordering::Acquire)
    }
}

/// The horizon a receiving shard may execute strictly below, given its
/// in-edges as `(sender clock, link lookahead)` pairs. No in-edges means
/// no constraint (`u64::MAX`).
pub fn horizon(in_edges: &[(Arc<ShardClock>, Tick)]) -> Tick {
    in_edges
        .iter()
        .map(|(clock, lookahead)| clock.read().saturating_add(*lookahead))
        .min()
        .unwrap_or(Tick::MAX)
}

/// A FIFO message channel for one directed shard edge.
///
/// Deliberately a mutex-guarded deque rather than a lock-free ring: the
/// hot path batches pushes and drains per synchronization window, so the
/// lock is taken a handful of times per simulated microsecond, and the
/// simple implementation is trivially correct for any producer/consumer
/// thread placement (shards may share a thread).
#[derive(Debug)]
pub struct ShardChannel<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for ShardChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ShardChannel<T> {
    /// An empty channel.
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues one message (sender side). Must happen before the sender
    /// publishes the clock value that admits the message's arrival tick.
    pub fn push(&self, msg: T) {
        self.queue
            .lock()
            .expect("shard channel poisoned")
            .push_back(msg);
    }

    /// Drains every currently visible message, in send order, into
    /// `out` (receiver side). Arrival-tick safety comes from the horizon
    /// rule, not from filtering here: a drained message may carry an
    /// arrival at or past the receiver's horizon and simply waits in the
    /// receiver's event queue under its (invariant) foreign key.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        let mut q = self.queue.lock().expect("shard channel poisoned");
        out.extend(q.drain(..));
    }

    /// Number of queued messages (diagnostics).
    pub fn len(&self) -> usize {
        self.queue.lock().expect("shard channel poisoned").len()
    }

    /// Whether the channel is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventQueue, Priority};

    #[test]
    fn foreign_seq_namespace_is_disjoint_and_ordered() {
        let f = foreign_seq(3, 17);
        assert!(f & FOREIGN_SEQ_BIT != 0);
        // Orders by (rank, seq).
        assert!(foreign_seq(1, u64::MAX >> 17) < foreign_seq(2, 0));
        assert!(foreign_seq(2, 5) < foreign_seq(2, 6));
        // Sorts after any plausible local seq.
        assert!(f > u64::MAX >> 1);
    }

    #[test]
    #[should_panic(expected = "overflows the foreign namespace")]
    fn foreign_seq_rejects_oversized_counters() {
        foreign_seq(0, 1 << FOREIGN_RANK_SHIFT);
    }

    #[test]
    fn foreign_events_sort_after_local_events_at_the_same_key() {
        let mut q = EventQueue::new();
        q.schedule_with_priority(10, Priority::LINK, "local-a");
        q.schedule_foreign(10, Priority::LINK, foreign_seq(1, 0), "foreign-r1");
        q.schedule_foreign(10, Priority::LINK, foreign_seq(0, 7), "foreign-r0");
        q.schedule_with_priority(10, Priority::LINK, "local-b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["local-a", "local-b", "foreign-r0", "foreign-r1"]);
        // Foreign events count as scheduled exactly once.
        assert_eq!(q.scheduled_count(), 4);
        assert_eq!(q.executed_count(), 4);
    }

    #[test]
    #[should_panic(expected = "not in the foreign namespace")]
    fn schedule_foreign_rejects_local_seqs() {
        let mut q = EventQueue::new();
        q.schedule_foreign(0, Priority::LINK, 3, "bad");
    }

    #[test]
    fn clock_publish_read_round_trips_and_stays_monotone() {
        let clock = ShardClock::new();
        assert_eq!(clock.read(), 0);
        clock.publish(100);
        clock.publish(250);
        assert_eq!(clock.read(), 250);
    }

    #[test]
    fn horizon_is_min_over_in_edges() {
        let a = ShardClock::new();
        let b = ShardClock::new();
        a.publish(1_000);
        b.publish(400);
        let edges = vec![(Arc::clone(&a), 50), (Arc::clone(&b), 500)];
        assert_eq!(horizon(&edges), 900);
        b.publish(2_000);
        assert_eq!(horizon(&edges), 1_050);
        assert_eq!(horizon(&[]), u64::MAX);
    }

    #[test]
    fn channel_preserves_fifo_across_threads() {
        let ch = Arc::new(ShardChannel::new());
        let clock = ShardClock::new();
        let tx_ch = Arc::clone(&ch);
        let tx_clock = Arc::clone(&clock);
        let t = std::thread::spawn(move || {
            for i in 0..1_000u64 {
                tx_ch.push(i);
            }
            tx_clock.publish(1_000);
        });
        // Wait for the clock (Acquire) and then observe every push.
        while clock.read() < 1_000 {
            std::hint::spin_loop();
        }
        let mut got = Vec::new();
        ch.drain_into(&mut got);
        t.join().unwrap();
        assert_eq!(got, (0..1_000).collect::<Vec<_>>());
        assert!(ch.is_empty());
    }
}
