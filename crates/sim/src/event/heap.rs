//! The original single-`BinaryHeap` event queue, kept as a reference
//! model.
//!
//! [`BinaryHeapQueue`] is the pre-ladder implementation of the event
//! queue: one global max-heap over inverted `(tick, priority, seq)` keys.
//! It is correct and simple but re-heapifies on every push and pop, which
//! made `EventQueue::pop`/`schedule` the hottest simulator path (the gem5
//! project moved away from a global heap for the same reason).
//!
//! It survives for two jobs:
//!
//! * **Differential testing** — the ladder queue must agree with this
//!   model on every observable (pop order, `now`, `len`, `peek_tick`)
//!   over arbitrary schedule/pop interleavings; see
//!   `crates/sim/tests/event_queue_model.rs`.
//! * **Benchmark baseline** — `simnet-bench` measures the ladder's
//!   speedup against this implementation (`BENCH_event_queue.json`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::{Event, EventKey, Priority};
use crate::tick::Tick;

pub(super) struct HeapEntry<E> {
    pub(super) tick: Tick,
    pub(super) priority: Priority,
    pub(super) seq: u64,
    pub(super) payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.priority == other.priority && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        (other.tick, other.priority, other.seq).cmp(&(self.tick, self.priority, self.seq))
    }
}

/// The reference event queue: a single binary heap over all pending
/// events. Semantically identical to [`super::EventQueue`] (same total
/// order, same panics, same counters) but asymptotically slower on the
/// hot path.
#[derive(Default)]
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    now: Tick,
    next_seq: u64,
    scheduled: u64,
    executed: u64,
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue at tick 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            scheduled: 0,
            executed: 0,
        }
    }

    /// Current simulated time: the tick of the most recently popped event.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled since creation.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events executed (popped) since creation.
    pub fn executed_count(&self) -> u64 {
        self.executed
    }

    /// Schedules `payload` at `tick` with [`Priority::NORMAL`].
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`BinaryHeapQueue::now`].
    pub fn schedule(&mut self, tick: Tick, payload: E) {
        self.schedule_with_priority(tick, Priority::NORMAL, payload);
    }

    /// Schedules `payload` `delta` ticks after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `now + delta` overflows the `u64` tick horizon.
    pub fn schedule_in(&mut self, delta: Tick, payload: E) {
        let tick = self.now.checked_add(delta).unwrap_or_else(|| {
            panic!(
                "scheduling past the tick horizon: now {} + delta {delta} overflows u64",
                self.now
            )
        });
        self.schedule(tick, payload);
    }

    /// Schedules `payload` at `tick` with an explicit priority.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`BinaryHeapQueue::now`].
    pub fn schedule_with_priority(&mut self, tick: Tick, priority: Priority, payload: E) {
        assert!(
            tick >= self.now,
            "scheduling into the past: tick {tick} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(HeapEntry {
            tick,
            priority,
            seq,
            payload,
        });
    }

    /// Reserves the next insertion sequence number without inserting an
    /// event yet (see [`super::EventQueue::reserve_seq`]).
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        seq
    }

    /// Inserts an event under a previously reserved key (see
    /// [`super::EventQueue::schedule_keyed`]).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`BinaryHeapQueue::now`].
    pub fn schedule_keyed(&mut self, tick: Tick, priority: Priority, seq: u64, payload: E) {
        assert!(
            tick >= self.now,
            "scheduling into the past: tick {tick} < now {}",
            self.now
        );
        debug_assert!(seq < self.next_seq, "seq {seq} was never reserved");
        self.heap.push(HeapEntry {
            tick,
            priority,
            seq,
            payload,
        });
    }

    /// Full key of the next pending event, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| (e.tick, e.priority, e.seq))
    }

    /// Advances the clock to `tick` and counts one executed event (see
    /// [`super::EventQueue::advance_inline`]).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`BinaryHeapQueue::now`].
    pub fn advance_inline(&mut self, tick: Tick) {
        assert!(
            tick >= self.now,
            "inline dispatch into the past: tick {tick} < now {}",
            self.now
        );
        debug_assert!(self.peek_tick().is_none_or(|t| t >= tick));
        self.now = tick;
        self.executed += 1;
    }

    /// Tick of the next pending event, if any.
    pub fn peek_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.tick)
    }

    /// Pops the next event and advances the clock to its tick.
    pub fn pop(&mut self) -> Option<Event<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.tick >= self.now);
        self.now = entry.tick;
        self.executed += 1;
        Some(Event {
            tick: entry.tick,
            priority: entry.priority,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Pops the next event only if it fires at or before `limit`.
    pub fn pop_until(&mut self, limit: Tick) -> Option<Event<E>> {
        match self.peek_tick() {
            Some(t) if t <= limit => self.pop(),
            _ => None,
        }
    }

    /// Discards all pending events without advancing time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for BinaryHeapQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryHeapQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("scheduled", &self.scheduled)
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_model_pops_in_key_order() {
        let mut q = BinaryHeapQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule_with_priority(10, Priority::LINK, "a-link");
        assert_eq!(q.pop().unwrap().payload, "a-link");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.now(), 30);
    }

    #[test]
    #[should_panic(expected = "tick horizon")]
    fn reference_model_rejects_tick_overflow() {
        let mut q = BinaryHeapQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule_in(u64::MAX, ());
    }
}
