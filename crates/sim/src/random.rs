//! Seeded pseudo-random number generation and the sampling distributions
//! used by load generators and workloads.
//!
//! Everything here is deterministic given the seed. The paper's memcached
//! client draws key/value lengths from a Zipfian distribution with
//! `min = 10, max = 100, skew = 0.5` (§VI.A); [`Zipf`] implements exactly
//! that parameterization.

/// The simulator-wide RNG: a seedable, deterministic xoshiro256++
/// generator (the same algorithm `rand`'s `SmallRng` uses on 64-bit
/// targets), implemented locally so the simulator has no external
/// dependencies.
///
/// ```
/// use simnet_sim::random::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed (state expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive), unbiased via rejection.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: lo {lo} > hi {hi}");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return self.next_u64(); // full u64 domain
        }
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Forks an independent stream for a sub-component, so that adding RNG
    /// consumers to one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::seed_from(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Seeds the RNG stream of shard `shard_id` from a run-wide base
    /// seed: `SimRng::seed_from(shard_seed(seed, shard_id))`.
    ///
    /// Unlike [`SimRng::fork`], this is a *pure* function of
    /// `(seed, shard_id)` — no parent stream is consumed — so a shard's
    /// draws depend only on its stable identity, never on how many
    /// threads run the simulation or in what order shards were built.
    pub fn seed_for_shard(seed: u64, shard_id: u64) -> SimRng {
        SimRng::seed_from(shard_seed(seed, shard_id))
    }
}

/// Folds a stable shard id into a base seed, decorrelating per-shard RNG
/// streams while keeping each one a pure function of `(seed, shard_id)`.
///
/// The fold is a SplitMix64 finalizer over the golden-ratio-spread shard
/// id, the same mixing [`SimRng::seed_from`] uses for state expansion, so
/// nearby shard ids (0, 1, 2, …) land on unrelated seeds and
/// `shard_seed(s, 0) != s` (shard streams never alias the base stream).
pub fn shard_seed(seed: u64, shard_id: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(shard_id.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sampling distribution over non-negative real values.
///
/// Used for packet inter-arrival times and processing-time jitter.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Always returns the same value.
    Fixed(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean (Poisson arrivals).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
}

impl Distribution {
    /// Draws one sample. Samples are always finite and non-negative.
    ///
    /// # Panics
    ///
    /// Panics if the distribution parameters are invalid (negative mean,
    /// `lo > hi`).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Distribution::Fixed(v) => {
                assert!(v >= 0.0, "fixed distribution value must be non-negative");
                v
            }
            Distribution::Uniform { lo, hi } => {
                assert!(lo <= hi && lo >= 0.0, "invalid uniform bounds [{lo},{hi})");
                lo + (hi - lo) * rng.next_f64()
            }
            Distribution::Exponential { mean } => {
                assert!(mean >= 0.0, "exponential mean must be non-negative");
                if mean == 0.0 {
                    return 0.0;
                }
                let u = 1.0 - rng.next_f64(); // in (0, 1]
                -mean * u.ln()
            }
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Fixed(v) => v,
            Distribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            Distribution::Exponential { mean } => mean,
        }
    }
}

impl Default for Distribution {
    fn default() -> Self {
        Distribution::Fixed(0.0)
    }
}

/// A bounded Zipfian integer distribution over `[min, max]` with skew `s`:
/// `P(k) ∝ 1 / rank(k)^s` where rank 1 is `min`.
///
/// This is the paper's memcached key/value-length generator
/// (`min = 10, max = 100, skew = 0.5`, §VI.A) and is also used to pick hot
/// keys in the KV-store workload.
///
/// ```
/// use simnet_sim::random::{SimRng, Zipf};
/// let zipf = Zipf::new(10, 100, 0.5);
/// let mut rng = SimRng::seed_from(7);
/// let v = zipf.sample(&mut rng);
/// assert!((10..=100).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    min: u64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`, if the range exceeds 2^24 values (the CDF is
    /// materialized), or if `skew` is negative or non-finite.
    pub fn new(min: u64, max: u64, skew: f64) -> Self {
        assert!(min <= max, "zipf: min {min} > max {max}");
        assert!(skew.is_finite() && skew >= 0.0, "zipf: invalid skew {skew}");
        let n = max - min + 1;
        assert!(n <= (1 << 24), "zipf: range too large to materialize");
        let mut weights = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 1..=n {
            let w = 1.0 / (rank as f64).powf(skew);
            total += w;
            weights.push(total);
        }
        for w in &mut weights {
            *w /= total;
        }
        Self { min, cdf: weights }
    }

    /// The paper's memcached length distribution: `Zipf::new(10, 100, 0.5)`.
    pub fn paper_lengths() -> Self {
        Self::new(10, 100, 0.5)
    }

    /// Draws one sample in `[min, max]`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        let idx = match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i,
        };
        self.min + (idx as u64).min(self.cdf.len() as u64 - 1)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over a single value.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The distribution's mean value.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (self.min + i as u64) as f64 * (c - prev);
            prev = c;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_forks_are_decoupled() {
        let mut a = SimRng::seed_from(1);
        let mut fork1 = a.fork(1);
        let mut fork2 = a.fork(2);
        assert_ne!(fork1.next_u64(), fork2.next_u64());
    }

    #[test]
    fn shard_seeds_are_pure_and_decorrelated() {
        // Pure function of (seed, shard_id): no hidden state.
        assert_eq!(shard_seed(42, 3), shard_seed(42, 3));
        // Nearby shard ids map to unrelated seeds and streams.
        let mut seen = std::collections::HashSet::new();
        for shard in 0..64u64 {
            assert!(seen.insert(shard_seed(0x5EED, shard)));
        }
        let mut a = SimRng::seed_for_shard(0x5EED, 0);
        let mut b = SimRng::seed_for_shard(0x5EED, 1);
        let collisions = (0..1_000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
        // Shard streams never alias the base stream.
        assert_ne!(shard_seed(0x5EED, 0), 0x5EED);
    }

    #[test]
    fn uniform_u64_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.uniform_u64(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(rng.uniform_u64(7, 7), 7);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn fixed_distribution() {
        let mut rng = SimRng::seed_from(2);
        let d = Distribution::Fixed(3.5);
        assert_eq!(d.sample(&mut rng), 3.5);
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn uniform_distribution_in_range() {
        let mut rng = SimRng::seed_from(2);
        let d = Distribution::Uniform { lo: 1.0, hi: 2.0 };
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((1.0..2.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from(5);
        let d = Distribution::Exponential { mean: 10.0 };
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut rng = SimRng::seed_from(5);
        let d = Distribution::Exponential { mean: 0.0 };
        assert_eq!(d.sample(&mut rng), 0.0);
    }

    #[test]
    fn zipf_respects_bounds() {
        let zipf = Zipf::new(10, 100, 0.5);
        let mut rng = SimRng::seed_from(6);
        for _ in 0..10_000 {
            let v = zipf.sample(&mut rng);
            assert!((10..=100).contains(&v));
        }
    }

    #[test]
    fn zipf_skews_toward_min() {
        let zipf = Zipf::new(1, 1000, 1.0);
        let mut rng = SimRng::seed_from(7);
        let n = 100_000;
        let low = (0..n).filter(|_| zipf.sample(&mut rng) <= 10).count();
        // With skew 1.0 over 1000 values, ranks 1..=10 hold ~39% of mass.
        assert!(low > n * 30 / 100, "low-rank draws: {low}");
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let zipf = Zipf::new(0, 9, 0.0);
        let mut rng = SimRng::seed_from(8);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn zipf_single_value() {
        let zipf = Zipf::new(5, 5, 2.0);
        let mut rng = SimRng::seed_from(9);
        assert_eq!(zipf.sample(&mut rng), 5);
        assert_eq!(zipf.len(), 1);
    }

    #[test]
    fn zipf_mean_matches_empirical() {
        let zipf = Zipf::paper_lengths();
        let mut rng = SimRng::seed_from(10);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| zipf.sample(&mut rng)).sum();
        let empirical = sum as f64 / n as f64;
        assert!((empirical - zipf.mean()).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "min")]
    fn zipf_rejects_inverted_range() {
        Zipf::new(10, 5, 0.5);
    }
}
