//! Packet-lifecycle tracing.
//!
//! An always-available, cheap-when-off observability layer. Components
//! hold a cloned [`Tracer`] handle and emit [`TraceEvent`]s keyed by the
//! packet's unique id as a frame moves through the datapath: load-generator
//! injection → wire → NIC RX FIFO → descriptor DMA (including DCA
//! placement) → RX ring → software poll → application → TX mirror — or,
//! for frames that die, a [`Stage::Drop`] carrying the Fig. 4
//! classification ([`DropClass`]) and the queue occupancies observed at
//! drop time.
//!
//! Tracing is disabled by default. A disabled tracer's [`Tracer::emit`]
//! is a single `Option` null-check — under 2% overhead on the component
//! microbenchmarks — so the instrumentation stays compiled in everywhere.
//!
//! Events serialize to a canonical, line-oriented text form
//! ([`canonical_text`]) whose bytes are covered by a stable 64-bit FNV-1a
//! hash ([`trace_hash`]) for golden-file comparison, and to JSON
//! ([`json`]) for external tooling.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::Tick;

/// A packet's unique id (assigned at injection, preserved end to end).
pub type PacketId = u64;

/// Sentinel packet id for events not tied to one packet (probe rows,
/// memory-system events).
pub const NO_PACKET: PacketId = u64::MAX;

/// The datapath layer that emitted an event. Used for filtering
/// (`--trace-filter`) and in the canonical serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Component {
    /// The hardware load generator (injection and echo receipt).
    LoadGen = 0,
    /// An Ethernet link (serialization + propagation hops).
    Link = 1,
    /// The NIC device (FIFOs, DMA engines, rings, drop FSM).
    Nic = 2,
    /// The memory system (DCA placements).
    Mem = 3,
    /// The software network stack (PMD poll / NAPI cycle).
    Stack = 4,
    /// The application boundary.
    App = 5,
    /// The simulation harness (periodic stat probes).
    Sim = 6,
    /// The PCI config/host interface (fault injection view).
    Pci = 7,
}

impl Component {
    /// Every component, in canonical order.
    pub const ALL: [Component; 8] = [
        Component::LoadGen,
        Component::Link,
        Component::Nic,
        Component::Mem,
        Component::Stack,
        Component::App,
        Component::Sim,
        Component::Pci,
    ];

    /// Filter mask accepting every component.
    pub const ALL_MASK: u32 = (1 << 8) - 1;

    /// The component's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Component::LoadGen => "loadgen",
            Component::Link => "link",
            Component::Nic => "nic",
            Component::Mem => "mem",
            Component::Stack => "stack",
            Component::App => "app",
            Component::Sim => "sim",
            Component::Pci => "pci",
        }
    }

    /// Parses a canonical name (as accepted by `--trace-filter`).
    pub fn parse(s: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The component's bit in a filter mask.
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }
}

/// Fig. 4 drop classification, mirrored at the simulation layer so every
/// component can speak it without depending on the NIC crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropClass {
    /// RX FIFO overran while ring descriptors were available: DMA (PCIe /
    /// memory bandwidth) could not keep up.
    Dma,
    /// RX FIFO overran with the RX ring empty: the core failed to
    /// replenish descriptors.
    Core,
    /// RX FIFO, RX ring, and TX ring all full: TX backpressure stalled
    /// the processing loop.
    Tx,
    /// An injected fault killed the frame (bit error, corrupted
    /// writeback) — not a congestion drop.
    Fault,
}

impl DropClass {
    /// The class's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            DropClass::Dma => "dma",
            DropClass::Core => "core",
            DropClass::Tx => "tx",
            DropClass::Fault => "fault",
        }
    }
}

/// Where in its lifecycle a packet is — one event per boundary crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The load generator created and departed the frame.
    Inject {
        /// Frame length in bytes.
        len: u32,
    },
    /// The frame started serializing onto a link.
    WireTx {
        /// Frame length in bytes.
        len: u32,
    },
    /// The frame was delivered at the far end of a link.
    WireRx,
    /// The NIC accepted the frame into its RX FIFO.
    FifoEnqueue {
        /// FIFO bytes used after the enqueue.
        fifo_used: u64,
    },
    /// The NIC dropped the frame (Fig. 4), with the queue occupancies
    /// observed at drop time.
    Drop {
        /// The Fig. 4 classification.
        class: DropClass,
        /// RX FIFO bytes used at drop time.
        fifo_used: u64,
        /// RX descriptors available to the DMA engine at drop time.
        ring_free: u32,
        /// Occupied TX ring slots at drop time.
        tx_used: u32,
    },
    /// The RX payload DMA was issued toward a ring slot.
    DmaStart {
        /// Destination RX ring slot / mbuf index.
        slot: u32,
        /// Whether DCA steers the write into the LLC.
        dca: bool,
    },
    /// Descriptor writeback made the frame visible in the RX ring.
    RingPublish {
        /// The frame's RX ring slot.
        slot: u32,
    },
    /// Software (PMD poll or NAPI cycle) picked the frame up.
    SwRx,
    /// The frame crossed into the application.
    AppRx,
    /// The application produced this frame (forward, response, or
    /// client-side origination).
    AppTx,
    /// The frame was accepted into the TX ring.
    TxQueue,
    /// TX payload DMA completed; the frame is parked in the TX FIFO.
    TxFifo,
    /// The TX engine handed the frame to the wire.
    TxWire,
    /// The echo arrived back at the load generator.
    EchoRx,
    /// A DMA write was DCA-placed in the LLC (memory-system view).
    DcaPlace {
        /// Bytes written.
        bytes: u32,
    },
    /// Periodic queue-occupancy probe (not tied to one packet).
    ProbeQueues {
        /// RX FIFO bytes used.
        fifo_used: u64,
        /// RX descriptors available to the DMA engine.
        ring_free: u32,
        /// Occupied TX ring slots.
        tx_used: u32,
        /// Written-back packets awaiting software poll.
        visible: u32,
    },
    /// Periodic cache probe: cumulative LLC lookup/miss counters, from
    /// which miss-rate-over-time can be derived by differencing rows.
    ProbeCache {
        /// LLC lookups so far (core + DMA paths).
        lookups: u64,
        /// LLC misses so far (core + DMA paths).
        misses: u64,
    },
    /// A fault fired at this component ([`crate::fault`]). Latency faults
    /// carry the added delay in `ticks`; on/off faults carry 0.
    Fault {
        /// Which fault fired.
        kind: crate::fault::FaultKind,
        /// Added latency in ticks, or 0 for non-latency faults.
        ticks: u64,
    },
}

impl Stage {
    /// The stage's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Inject { .. } => "inject",
            Stage::WireTx { .. } => "wire_tx",
            Stage::WireRx => "wire_rx",
            Stage::FifoEnqueue { .. } => "fifo_enq",
            Stage::Drop { .. } => "drop",
            Stage::DmaStart { .. } => "dma_start",
            Stage::RingPublish { .. } => "ring_pub",
            Stage::SwRx => "sw_rx",
            Stage::AppRx => "app_rx",
            Stage::AppTx => "app_tx",
            Stage::TxQueue => "tx_queue",
            Stage::TxFifo => "tx_fifo",
            Stage::TxWire => "tx_wire",
            Stage::EchoRx => "echo_rx",
            Stage::DcaPlace { .. } => "dca_place",
            Stage::ProbeQueues { .. } => "probe_queues",
            Stage::ProbeCache { .. } => "probe_cache",
            Stage::Fault { .. } => "fault",
        }
    }
}

/// One trace row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated tick (1 tick = 1 ps).
    pub tick: Tick,
    /// The packet this event belongs to, or [`NO_PACKET`].
    pub packet_id: PacketId,
    /// The emitting datapath layer.
    pub component: Component,
    /// The lifecycle stage.
    pub stage: Stage,
}

/// The ring buffer behind a [`Tracer`]. Oldest events are evicted when
/// the buffer is full; [`TraceBuffer::evicted`] counts them so truncation
/// is never silent.
#[derive(Debug)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    evicted: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by ring wrap-around.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Removes and returns all buffered events.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }

    /// Copies the buffered events without removing them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().collect()
    }
}

/// The cloneable handle components emit through.
///
/// A disabled tracer (the default) costs one `Option` check per
/// [`Tracer::emit`]; an enabled tracer additionally applies its component
/// filter mask before buffering.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Rc<RefCell<TraceBuffer>>>,
    mask: u32,
}

impl Tracer {
    /// A disabled tracer: every `emit` is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled tracer over a fresh ring buffer of `capacity` events,
    /// accepting every component.
    pub fn enabled(capacity: usize) -> Self {
        Self {
            shared: Some(Rc::new(RefCell::new(TraceBuffer::new(capacity)))),
            mask: Component::ALL_MASK,
        }
    }

    /// Restricts this handle (and clones of it) to components whose bits
    /// are set in `mask` (see [`Component::bit`]).
    pub fn with_filter(mut self, mask: u32) -> Self {
        self.mask = mask;
        self
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Records one event. Disabled handles return immediately.
    #[inline]
    pub fn emit(&self, tick: Tick, packet_id: PacketId, component: Component, stage: Stage) {
        if let Some(shared) = &self.shared {
            if self.mask & component.bit() != 0 {
                shared.borrow_mut().push(TraceEvent {
                    tick,
                    packet_id,
                    component,
                    stage,
                });
            }
        }
    }

    /// Removes and returns all buffered events.
    pub fn take(&self) -> Vec<TraceEvent> {
        match &self.shared {
            Some(shared) => shared.borrow_mut().drain(),
            None => Vec::new(),
        }
    }

    /// Copies the buffered events without removing them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.shared {
            Some(shared) => shared.borrow().snapshot(),
            None => Vec::new(),
        }
    }

    /// Events evicted by ring wrap-around.
    pub fn evicted(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.borrow().evicted())
    }
}

// ---------------------------------------------------------------------
// Canonical serialization
// ---------------------------------------------------------------------

fn write_stage_fields(out: &mut String, stage: &Stage) {
    use std::fmt::Write;
    match stage {
        Stage::Inject { len } | Stage::WireTx { len } => {
            write!(out, " len={len}").expect("string write");
        }
        Stage::FifoEnqueue { fifo_used } => {
            write!(out, " fifo={fifo_used}").expect("string write");
        }
        Stage::Drop {
            class,
            fifo_used,
            ring_free,
            tx_used,
        } => {
            write!(
                out,
                " class={} fifo={fifo_used} ring_free={ring_free} tx_used={tx_used}",
                class.name()
            )
            .expect("string write");
        }
        Stage::DmaStart { slot, dca } => {
            write!(out, " slot={slot} dca={}", u8::from(*dca)).expect("string write");
        }
        Stage::RingPublish { slot } => {
            write!(out, " slot={slot}").expect("string write");
        }
        Stage::DcaPlace { bytes } => {
            write!(out, " bytes={bytes}").expect("string write");
        }
        Stage::ProbeQueues {
            fifo_used,
            ring_free,
            tx_used,
            visible,
        } => {
            write!(
                out,
                " fifo={fifo_used} ring_free={ring_free} tx_used={tx_used} visible={visible}"
            )
            .expect("string write");
        }
        Stage::ProbeCache { lookups, misses } => {
            write!(out, " lookups={lookups} misses={misses}").expect("string write");
        }
        Stage::Fault { kind, ticks } => {
            write!(out, " kind={} ticks={ticks}", kind.name()).expect("string write");
        }
        Stage::WireRx
        | Stage::SwRx
        | Stage::AppRx
        | Stage::AppTx
        | Stage::TxQueue
        | Stage::TxFifo
        | Stage::TxWire
        | Stage::EchoRx => {}
    }
}

/// One event's canonical line (no trailing newline): stable `k=v` pairs,
/// integers only, independent of host, locale, and wall clock.
pub fn canonical_line(event: &TraceEvent) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(64);
    write!(
        out,
        "t={} pkt={} comp={} stage={}",
        event.tick,
        PktId(event.packet_id),
        event.component.name(),
        event.stage.name()
    )
    .expect("string write");
    write_stage_fields(&mut out, &event.stage);
    out
}

/// Formats [`NO_PACKET`] as `-`.
struct PktId(PacketId);

impl std::fmt::Display for PktId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == NO_PACKET {
            f.write_str("-")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// The canonical text form: one line per event, each `\n`-terminated.
/// Byte-identical across identically-seeded runs.
pub fn canonical_text(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for event in events {
        out.push_str(&canonical_line(event));
        out.push('\n');
    }
    out
}

/// Stable 64-bit FNV-1a hash of the canonical text — the golden-file
/// fingerprint.
pub fn trace_hash(events: &[TraceEvent]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in canonical_text(events).bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// JSON form: an array of flat objects mirroring the canonical fields.
pub fn json(events: &[TraceEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 96 + 4);
    out.push_str("[\n");
    for (i, event) in events.iter().enumerate() {
        out.push_str("  {");
        write!(out, "\"tick\":{}", event.tick).expect("string write");
        if event.packet_id != NO_PACKET {
            write!(out, ",\"packet_id\":{}", event.packet_id).expect("string write");
        }
        write!(
            out,
            ",\"component\":\"{}\",\"stage\":\"{}\"",
            event.component.name(),
            event.stage.name()
        )
        .expect("string write");
        let mut fields = String::new();
        write_stage_fields(&mut fields, &event.stage);
        for pair in fields.split_whitespace() {
            let (k, v) = pair.split_once('=').expect("k=v field");
            if v.chars().all(|c| c.is_ascii_digit()) {
                write!(out, ",\"{k}\":{v}").expect("string write");
            } else {
                write!(out, ",\"{k}\":\"{v}\"").expect("string write");
            }
        }
        out.push('}');
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Parses a `--trace-filter` expression: comma-separated component names
/// into a mask. Returns `Err` naming the first unknown component.
pub fn parse_filter(expr: &str) -> Result<u32, String> {
    let mut mask = 0;
    for name in expr.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let component = Component::parse(name).ok_or_else(|| {
            let known: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
            format!(
                "unknown trace component {name:?}; known: {}",
                known.join(", ")
            )
        })?;
        mask |= component.bit();
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: Tick, pkt: PacketId, stage: Stage) -> TraceEvent {
        TraceEvent {
            tick,
            packet_id: pkt,
            component: Component::Nic,
            stage,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(1, 2, Component::Nic, Stage::SwRx);
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_tracer_records_and_drains() {
        let t = Tracer::enabled(16);
        t.emit(5, 7, Component::Nic, Stage::Inject { len: 64 });
        let clone = t.clone();
        clone.emit(6, 7, Component::Link, Stage::WireRx);
        assert_eq!(t.snapshot().len(), 2);
        let events = t.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tick, 5);
        assert!(t.take().is_empty(), "drained");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let t = Tracer::enabled(3);
        for i in 0..5u64 {
            t.emit(i, i, Component::Nic, Stage::SwRx);
        }
        assert_eq!(t.evicted(), 2);
        let events = t.take();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].tick, 2, "oldest two evicted");
    }

    #[test]
    fn filter_mask_drops_unselected_components() {
        let t = Tracer::enabled(16).with_filter(Component::Nic.bit());
        t.emit(1, 1, Component::Nic, Stage::SwRx);
        t.emit(2, 1, Component::Link, Stage::WireRx);
        let events = t.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].component, Component::Nic);
    }

    #[test]
    fn canonical_line_is_stable() {
        let line = canonical_line(&ev(
            1234,
            7,
            Stage::Drop {
                class: DropClass::Core,
                fifo_used: 16384,
                ring_free: 0,
                tx_used: 3,
            },
        ));
        assert_eq!(
            line,
            "t=1234 pkt=7 comp=nic stage=drop class=core fifo=16384 ring_free=0 tx_used=3"
        );
        let probe = canonical_line(&ev(
            99,
            NO_PACKET,
            Stage::ProbeCache {
                lookups: 10,
                misses: 3,
            },
        ));
        assert_eq!(
            probe,
            "t=99 pkt=- comp=nic stage=probe_cache lookups=10 misses=3"
        );
    }

    #[test]
    fn fault_line_is_stable() {
        let line = canonical_line(&TraceEvent {
            tick: 5,
            packet_id: NO_PACKET,
            component: Component::Pci,
            stage: Stage::Fault {
                kind: crate::fault::FaultKind::PciStall,
                ticks: 200_000,
            },
        });
        assert_eq!(
            line,
            "t=5 pkt=- comp=pci stage=fault kind=pci_stall ticks=200000"
        );
        let drop = canonical_line(&ev(
            6,
            9,
            Stage::Drop {
                class: DropClass::Fault,
                fifo_used: 0,
                ring_free: 32,
                tx_used: 0,
            },
        ));
        assert_eq!(
            drop,
            "t=6 pkt=9 comp=nic stage=drop class=fault fifo=0 ring_free=32 tx_used=0"
        );
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = vec![ev(1, 1, Stage::SwRx), ev(2, 1, Stage::AppRx)];
        let b = a.clone();
        assert_eq!(trace_hash(&a), trace_hash(&b));
        let c = vec![ev(1, 1, Stage::SwRx), ev(3, 1, Stage::AppRx)];
        assert_ne!(trace_hash(&a), trace_hash(&c));
        assert_ne!(trace_hash(&[]), trace_hash(&a));
    }

    #[test]
    fn json_escapes_nothing_exotic_and_parses_shape() {
        let events = vec![
            ev(1, 4, Stage::DmaStart { slot: 2, dca: true }),
            ev(
                2,
                NO_PACKET,
                Stage::ProbeQueues {
                    fifo_used: 1,
                    ring_free: 2,
                    tx_used: 3,
                    visible: 4,
                },
            ),
        ];
        let text = json(&events);
        assert!(text.starts_with("[\n"));
        assert!(text.contains("\"packet_id\":4"));
        assert!(text.contains("\"dca\":1"));
        assert!(!text.contains("packet_id\":18446744073709551615"));
        assert!(text.trim_end().ends_with(']'));
    }

    #[test]
    fn filter_expression_parses() {
        assert_eq!(parse_filter("nic").unwrap(), Component::Nic.bit());
        assert_eq!(
            parse_filter("nic, link").unwrap(),
            Component::Nic.bit() | Component::Link.bit()
        );
        assert!(parse_filter("bogus").is_err());
        assert_eq!(parse_filter("").unwrap(), 0);
    }

    #[test]
    fn component_names_round_trip() {
        for c in Component::ALL {
            assert_eq!(Component::parse(c.name()), Some(c));
        }
        assert_eq!(Component::parse("nope"), None);
    }
}
