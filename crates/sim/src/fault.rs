//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes component misbehaviour — lossy links, flaky
//! PCI devices, stalled DMA — in a small text grammar
//! (`link.ber=1e-7;pci.stall=200ns@10%;dma.burst=+500ns/1us`). Components
//! hold a cloned [`FaultInjector`] handle and query it at event
//! boundaries, exactly like the trace layer's `Tracer`: a disabled
//! injector (the default) costs one `Option` null-check per query site,
//! so the hooks stay compiled in everywhere.
//!
//! Every probabilistic fault draws from the injector's own seeded
//! SplitMix64/xoshiro256++ streams (one per fault site), independent of
//! the workload RNG — installing a plan never perturbs the workload's
//! draws, and the same `(plan, seed)` yields the same fault pattern on
//! every run. Window-based faults (`@period` forms) are pure functions of
//! the tick and use no randomness at all.
//!
//! The plan grammar, entry by entry (`DUR` is an integer with a
//! `ps`/`ns`/`us`/`ms` suffix; `PCT` is a percentage with a `%` suffix):
//!
//! | Entry | Meaning |
//! |---|---|
//! | `link.ber=1e-7` | Link bit-error rate; per-frame FCS-failure drops |
//! | `nic.fifo_stuck=2us@20us` | RX FIFO reads stuck-full for 2 µs every 20 µs |
//! | `nic.wb_delay=500ns@10%` | Descriptor writeback delayed 500 ns with p=10 % |
//! | `nic.wb_corrupt=1%` | Descriptor writeback corrupted (frame lost) with p=1 % |
//! | `pci.stall=200ns@10%` | Config-space read stalls 200 ns with p=10 % |
//! | `pci.master_clear=1us@50us` | Bus-master enable reads cleared for 1 µs every 50 µs |
//! | `dma.burst=+500ns/1us@10us` | +500 ns DMA latency during 1 µs bursts every 10 µs |
//! | `dma.dca_miss=20%` | DCA placement forced to miss (DRAM) with p=20 % |
//!
//! `dma.burst`'s `@period` is optional and defaults to 10× the burst
//! duration.

use std::cell::RefCell;
use std::rc::Rc;

use crate::random::SimRng;
use crate::tick::{ms, ns, us, Tick};

/// Which fault fired — carried by `Stage::Fault` trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A link bit error corrupted a frame (FCS/checksum failure).
    LinkBitError,
    /// The RX FIFO read stuck-full to an arriving frame.
    FifoStuck,
    /// A descriptor writeback was delayed.
    WbDelay,
    /// A descriptor writeback was corrupted; the frame is lost.
    WbCorrupt,
    /// A PCI config-space read stalled.
    PciStall,
    /// The PCI bus-master enable read as transiently cleared.
    PciMasterClear,
    /// A DMA transaction fell inside an added-latency burst.
    DmaBurst,
    /// A DCA placement was forced to miss into DRAM.
    DcaForcedMiss,
}

impl FaultKind {
    /// The kind's canonical lowercase name (trace serialization).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LinkBitError => "link_ber",
            FaultKind::FifoStuck => "fifo_stuck",
            FaultKind::WbDelay => "wb_delay",
            FaultKind::WbCorrupt => "wb_corrupt",
            FaultKind::PciStall => "pci_stall",
            FaultKind::PciMasterClear => "master_clear",
            FaultKind::DmaBurst => "dma_burst",
            FaultKind::DcaForcedMiss => "dca_miss",
        }
    }
}

/// A periodic fault window: active for `duration` out of every `period`
/// ticks, phase-locked to tick 0 (deterministic without randomness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Active span at the start of each period.
    pub duration: Tick,
    /// Repetition period.
    pub period: Tick,
}

impl Window {
    /// Whether `now` falls inside an active span.
    pub fn contains(&self, now: Tick) -> bool {
        now % self.period < self.duration
    }

    /// End of the active span covering `now` (meaningful when
    /// [`Window::contains`] holds).
    pub fn end_of(&self, now: Tick) -> Tick {
        now - now % self.period + self.duration
    }
}

/// A probabilistic delay: `extra` ticks with probability `pct` percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delayed {
    /// Added latency when the fault fires.
    pub extra: Tick,
    /// Firing probability, in percent (0–100].
    pub pct: f64,
}

/// An added-latency burst: `extra` ticks on every DMA transaction inside
/// the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Latency added per transaction during a burst.
    pub extra: Tick,
    /// When bursts are active.
    pub window: Window,
}

/// A parsed fault plan. `Default` is the empty plan (no faults).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Link bit-error rate (0.0 = off). Each frame fails FCS with
    /// probability `1 - (1 - ber)^bits`.
    pub link_ber: f64,
    /// RX FIFO stuck-full windows.
    pub fifo_stuck: Option<Window>,
    /// Descriptor-writeback delay fault.
    pub wb_delay: Option<Delayed>,
    /// Descriptor-writeback corruption probability, percent (0.0 = off).
    pub wb_corrupt_pct: f64,
    /// PCI config-space read-stall fault.
    pub pci_stall: Option<Delayed>,
    /// Transient bus-master-enable clear windows.
    pub master_clear: Option<Window>,
    /// DMA added-latency bursts.
    pub dma_burst: Option<Burst>,
    /// DCA forced-miss probability, percent (0.0 = off).
    pub dca_miss_pct: f64,
}

fn parse_duration(s: &str) -> Result<Tick, String> {
    let (digits, unit): (&str, &str) = match s.find(|c: char| !c.is_ascii_digit()) {
        Some(i) => s.split_at(i),
        None => return Err(format!("duration {s:?} needs a ps/ns/us/ms unit")),
    };
    let value: Tick = digits
        .parse()
        .map_err(|_| format!("bad duration value in {s:?}"))?;
    let ticks = match unit {
        "ps" => value,
        "ns" => ns(value),
        "us" => us(value),
        "ms" => ms(value),
        _ => return Err(format!("unknown duration unit {unit:?} in {s:?}")),
    };
    if ticks == 0 {
        return Err(format!("duration {s:?} must be positive"));
    }
    Ok(ticks)
}

fn format_duration(t: Tick) -> String {
    if t.is_multiple_of(ms(1)) {
        format!("{}ms", t / ms(1))
    } else if t.is_multiple_of(us(1)) {
        format!("{}us", t / us(1))
    } else if t.is_multiple_of(ns(1)) {
        format!("{}ns", t / ns(1))
    } else {
        format!("{t}ps")
    }
}

fn parse_pct(s: &str) -> Result<f64, String> {
    let digits = s
        .strip_suffix('%')
        .ok_or_else(|| format!("probability {s:?} needs a % suffix"))?;
    let pct: f64 = digits
        .parse()
        .map_err(|_| format!("bad probability in {s:?}"))?;
    if !(pct > 0.0 && pct <= 100.0) {
        return Err(format!("probability {s:?} must be in (0, 100]"));
    }
    Ok(pct)
}

fn parse_window(s: &str, key: &str) -> Result<Window, String> {
    let (dur, period) = s
        .split_once('@')
        .ok_or_else(|| format!("{key} needs DURATION@PERIOD, got {s:?}"))?;
    let window = Window {
        duration: parse_duration(dur)?,
        period: parse_duration(period)?,
    };
    if window.duration > window.period {
        return Err(format!("{key}: duration exceeds period in {s:?}"));
    }
    Ok(window)
}

fn parse_delayed(s: &str, key: &str) -> Result<Delayed, String> {
    let (dur, pct) = s
        .split_once('@')
        .ok_or_else(|| format!("{key} needs DURATION@PCT%, got {s:?}"))?;
    Ok(Delayed {
        extra: parse_duration(dur)?,
        pct: parse_pct(pct)?,
    })
}

impl FaultPlan {
    /// Parses the text plan grammar (see the module docs). The empty
    /// string is the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in text.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry {entry:?} is not key=value"))?;
            match key.trim() {
                "link.ber" => {
                    let ber: f64 = value
                        .parse()
                        .map_err(|_| format!("bad bit-error rate {value:?}"))?;
                    if !(ber > 0.0 && ber < 1.0) {
                        return Err(format!("link.ber {value:?} must be in (0, 1)"));
                    }
                    plan.link_ber = ber;
                }
                "nic.fifo_stuck" => {
                    plan.fifo_stuck = Some(parse_window(value, "nic.fifo_stuck")?);
                }
                "nic.wb_delay" => plan.wb_delay = Some(parse_delayed(value, "nic.wb_delay")?),
                "nic.wb_corrupt" => plan.wb_corrupt_pct = parse_pct(value)?,
                "pci.stall" => plan.pci_stall = Some(parse_delayed(value, "pci.stall")?),
                "pci.master_clear" => {
                    plan.master_clear = Some(parse_window(value, "pci.master_clear")?);
                }
                "dma.burst" => {
                    let body = value
                        .strip_prefix('+')
                        .ok_or_else(|| format!("dma.burst needs +EXTRA/DURATION, got {value:?}"))?;
                    let (extra, rest) = body
                        .split_once('/')
                        .ok_or_else(|| format!("dma.burst needs +EXTRA/DURATION, got {value:?}"))?;
                    let (duration, period) = match rest.split_once('@') {
                        Some((d, p)) => (parse_duration(d)?, parse_duration(p)?),
                        None => {
                            let d = parse_duration(rest)?;
                            (d, d * 10)
                        }
                    };
                    if duration > period {
                        return Err(format!("dma.burst: duration exceeds period in {value:?}"));
                    }
                    plan.dma_burst = Some(Burst {
                        extra: parse_duration(extra)?,
                        window: Window { duration, period },
                    });
                }
                "dma.dca_miss" => plan.dca_miss_pct = parse_pct(value)?,
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// The most aggressive preset: every fault at high intensity. Used by
    /// the no-hang regression suite.
    pub fn aggressive() -> FaultPlan {
        FaultPlan::parse(
            "link.ber=1e-4;nic.fifo_stuck=5us@20us;nic.wb_delay=2us@50%;\
             nic.wb_corrupt=10%;pci.stall=1us@50%;pci.master_clear=10us@40us;\
             dma.burst=+2us/5us@15us;dma.dca_miss=50%",
        )
        .expect("preset parses")
    }
}

impl std::fmt::Display for FaultPlan {
    /// The canonical text form; `FaultPlan::parse` round-trips it.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<String> = Vec::new();
        if self.link_ber > 0.0 {
            entries.push(format!("link.ber={:e}", self.link_ber));
        }
        if let Some(w) = &self.fifo_stuck {
            entries.push(format!(
                "nic.fifo_stuck={}@{}",
                format_duration(w.duration),
                format_duration(w.period)
            ));
        }
        if let Some(d) = &self.wb_delay {
            entries.push(format!(
                "nic.wb_delay={}@{}%",
                format_duration(d.extra),
                d.pct
            ));
        }
        if self.wb_corrupt_pct > 0.0 {
            entries.push(format!("nic.wb_corrupt={}%", self.wb_corrupt_pct));
        }
        if let Some(d) = &self.pci_stall {
            entries.push(format!("pci.stall={}@{}%", format_duration(d.extra), d.pct));
        }
        if let Some(w) = &self.master_clear {
            entries.push(format!(
                "pci.master_clear={}@{}",
                format_duration(w.duration),
                format_duration(w.period)
            ));
        }
        if let Some(b) = &self.dma_burst {
            entries.push(format!(
                "dma.burst=+{}/{}@{}",
                format_duration(b.extra),
                format_duration(b.window.duration),
                format_duration(b.window.period)
            ));
        }
        if self.dca_miss_pct > 0.0 {
            entries.push(format!("dma.dca_miss={}%", self.dca_miss_pct));
        }
        f.write_str(&entries.join(";"))
    }
}

/// Cumulative per-fault injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Frames dropped by link bit errors (FCS failures).
    pub link_bit_errors: u64,
    /// Arrivals refused by a stuck-full RX FIFO window.
    pub fifo_stuck_hits: u64,
    /// Delayed descriptor writebacks.
    pub wb_delays: u64,
    /// Corrupted descriptor writebacks (frames lost).
    pub wb_corrupts: u64,
    /// Stalled PCI config-space reads.
    pub pci_stalls: u64,
    /// DMA attempts blocked by a cleared bus-master enable.
    pub master_clear_blocks: u64,
    /// DMA transactions slowed by a latency burst.
    pub dma_bursts: u64,
    /// DCA placements forced to miss into DRAM.
    pub dca_forced_misses: u64,
}

impl FaultCounts {
    /// Total injections of any kind.
    pub fn total(&self) -> u64 {
        self.link_bit_errors
            + self.fifo_stuck_hits
            + self.wb_delays
            + self.wb_corrupts
            + self.pci_stalls
            + self.master_clear_blocks
            + self.dma_bursts
            + self.dca_forced_misses
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    seed: u64,
    rng_link: SimRng,
    rng_wb_delay: SimRng,
    rng_wb_corrupt: SimRng,
    rng_pci: SimRng,
    rng_dca: SimRng,
    counts: FaultCounts,
}

impl FaultState {
    fn new(plan: FaultPlan, seed: u64) -> Self {
        // One independent stream per probabilistic fault site, so adding
        // draws at one site never perturbs another.
        let mut base = SimRng::seed_from(seed);
        Self {
            plan,
            seed,
            rng_link: base.fork(1),
            rng_wb_delay: base.fork(2),
            rng_wb_corrupt: base.fork(3),
            rng_pci: base.fork(4),
            rng_dca: base.fork(5),
            counts: FaultCounts::default(),
        }
    }
}

/// The cloneable handle components query at event boundaries.
///
/// A disabled injector (the default) answers every query with "no fault"
/// after a single `Option` null-check — the same discipline as the trace
/// layer's `Tracer`.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    shared: Option<Rc<RefCell<FaultState>>>,
}

impl FaultInjector {
    /// A disabled injector: every query is a no-fault no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled injector executing `plan` with its own RNG streams
    /// seeded from `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            shared: Some(Rc::new(RefCell::new(FaultState::new(plan, seed)))),
        }
    }

    /// Whether a plan is installed.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The installed plan, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.shared.as_ref().map(|s| s.borrow().plan.clone())
    }

    /// The fault seed, if a plan is installed.
    pub fn seed(&self) -> Option<u64> {
        self.shared.as_ref().map(|s| s.borrow().seed)
    }

    /// A snapshot of the injection counters (zeros when disabled).
    pub fn counts(&self) -> FaultCounts {
        self.shared
            .as_ref()
            .map_or(FaultCounts::default(), |s| s.borrow().counts)
    }

    /// Clears the injection counters (end of warm-up). RNG streams and
    /// the plan are untouched.
    pub fn reset_counts(&self) {
        if let Some(s) = &self.shared {
            s.borrow_mut().counts = FaultCounts::default();
        }
    }

    /// Registers the `system.fault.*` statistics section.
    ///
    /// No-op when disabled, mirroring the conditional fault section of the
    /// legacy dump: a run without an installed plan has no fault stats.
    pub fn register_stats(&self, reg: &mut crate::stats::StatsRegistry) {
        let Some(shared) = &self.shared else {
            return;
        };
        let s = shared.borrow();
        let fc = s.counts;
        reg.scoped("system.fault", |reg| {
            reg.text("plan", &s.plan, "installed fault plan");
            reg.scalar("seed", s.seed, "fault RNG seed");
            reg.scalar(
                "linkBitErrors",
                fc.link_bit_errors,
                "frames corrupted on the wire (FCS fail)",
            );
            reg.scalar(
                "fifoStuckHits",
                fc.fifo_stuck_hits,
                "RX receptions inside a stuck-full FIFO window",
            );
            reg.scalar(
                "wbDelays",
                fc.wb_delays,
                "delayed descriptor writeback batches",
            );
            reg.scalar(
                "wbCorrupts",
                fc.wb_corrupts,
                "corrupted descriptor writebacks (frame lost)",
            );
            reg.scalar("pciStalls", fc.pci_stalls, "stalled PCI config reads");
            reg.scalar(
                "masterClearBlocks",
                fc.master_clear_blocks,
                "DMA attempts blocked by master-enable clear",
            );
            reg.scalar(
                "dmaBursts",
                fc.dma_bursts,
                "DMA accesses hit by a latency burst",
            );
            reg.scalar(
                "dcaForcedMisses",
                fc.dca_forced_misses,
                "DCA placements forced to miss the LLC",
            );
            reg.scalar("total", fc.total(), "injected faults (all sites)");
        });
    }

    /// Whether a `frame_bits`-bit frame fails FCS under the plan's
    /// bit-error rate.
    #[inline]
    pub fn link_bit_error(&self, frame_bits: u64) -> bool {
        if let Some(shared) = &self.shared {
            let mut s = shared.borrow_mut();
            if s.plan.link_ber > 0.0 {
                let p = 1.0 - (1.0 - s.plan.link_ber).powi(frame_bits.min(i32::MAX as u64) as i32);
                if s.rng_link.chance(p) {
                    s.counts.link_bit_errors += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Whether the RX FIFO reads stuck-full at `now`.
    #[inline]
    pub fn fifo_stuck(&self, now: Tick) -> bool {
        if let Some(shared) = &self.shared {
            let mut s = shared.borrow_mut();
            if let Some(w) = s.plan.fifo_stuck {
                if w.contains(now) {
                    s.counts.fifo_stuck_hits += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Extra latency for a descriptor writeback (0 = no fault).
    #[inline]
    pub fn wb_delay(&self) -> Tick {
        if let Some(shared) = &self.shared {
            let mut s = shared.borrow_mut();
            if let Some(d) = s.plan.wb_delay {
                if s.rng_wb_delay.chance(d.pct / 100.0) {
                    s.counts.wb_delays += 1;
                    return d.extra;
                }
            }
        }
        0
    }

    /// Whether this descriptor writeback is corrupted (frame lost).
    #[inline]
    pub fn wb_corrupt(&self) -> bool {
        if let Some(shared) = &self.shared {
            let mut s = shared.borrow_mut();
            if s.plan.wb_corrupt_pct > 0.0 {
                let p = s.plan.wb_corrupt_pct / 100.0;
                if s.rng_wb_corrupt.chance(p) {
                    s.counts.wb_corrupts += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Extra latency for a PCI config-space read (0 = no fault).
    #[inline]
    pub fn pci_stall(&self) -> Tick {
        if let Some(shared) = &self.shared {
            let mut s = shared.borrow_mut();
            if let Some(d) = s.plan.pci_stall {
                if s.rng_pci.chance(d.pct / 100.0) {
                    s.counts.pci_stalls += 1;
                    return d.extra;
                }
            }
        }
        0
    }

    /// Whether the bus-master enable reads cleared at `now` (DMA engines
    /// must not start transactions).
    #[inline]
    pub fn master_cleared(&self, now: Tick) -> bool {
        if let Some(shared) = &self.shared {
            let mut s = shared.borrow_mut();
            if let Some(w) = s.plan.master_clear {
                if w.contains(now) {
                    s.counts.master_clear_blocks += 1;
                    return true;
                }
            }
        }
        false
    }

    /// End of the master-clear window covering `now`, if inside one —
    /// lets the node schedule a DMA retry instead of spinning.
    #[inline]
    pub fn master_window_end(&self, now: Tick) -> Option<Tick> {
        let shared = self.shared.as_ref()?;
        let s = shared.borrow();
        let w = s.plan.master_clear?;
        w.contains(now).then(|| w.end_of(now))
    }

    /// Extra latency for a DMA transaction issued at `now` (0 = outside
    /// any burst).
    #[inline]
    pub fn dma_burst_extra(&self, now: Tick) -> Tick {
        if let Some(shared) = &self.shared {
            let mut s = shared.borrow_mut();
            if let Some(b) = s.plan.dma_burst {
                if b.window.contains(now) {
                    s.counts.dma_bursts += 1;
                    return b.extra;
                }
            }
        }
        0
    }

    /// Whether this DCA placement is forced to miss into DRAM.
    #[inline]
    pub fn dca_force_miss(&self) -> bool {
        if let Some(shared) = &self.shared {
            let mut s = shared.borrow_mut();
            if s.plan.dca_miss_pct > 0.0 {
                let p = s.plan.dca_miss_pct / 100.0;
                if s.rng_dca.chance(p) {
                    s.counts.dca_forced_misses += 1;
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_parses_and_prints_empty() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.to_string(), "");
    }

    #[test]
    fn issue_example_parses() {
        let plan =
            FaultPlan::parse("link.ber=1e-7;pci.stall=200ns@10%;dma.burst=+500ns/1us").unwrap();
        assert_eq!(plan.link_ber, 1e-7);
        let stall = plan.pci_stall.unwrap();
        assert_eq!(stall.extra, ns(200));
        assert_eq!(stall.pct, 10.0);
        let burst = plan.dma_burst.unwrap();
        assert_eq!(burst.extra, ns(500));
        assert_eq!(burst.window.duration, us(1));
        assert_eq!(burst.window.period, us(10), "default period = 10x duration");
    }

    #[test]
    fn display_round_trips() {
        let text = "link.ber=1e-7;nic.fifo_stuck=2us@20us;nic.wb_delay=500ns@10%;\
                    nic.wb_corrupt=1%;pci.stall=200ns@10%;pci.master_clear=1us@50us;\
                    dma.burst=+500ns/1us@10us;dma.dca_miss=20%";
        let plan = FaultPlan::parse(text).unwrap();
        let printed = plan.to_string();
        assert_eq!(FaultPlan::parse(&printed).unwrap(), plan);
        assert_eq!(printed, text);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "link.ber",                    // no value
            "link.ber=2.0",                // out of range
            "link.ber=-1e-9",              // negative
            "nose.ber=1e-7",               // unknown key
            "nic.fifo_stuck=2us",          // missing period
            "nic.fifo_stuck=20us@2us",     // duration > period
            "nic.wb_delay=500ns@10",       // missing %
            "nic.wb_corrupt=150%",         // > 100
            "nic.wb_corrupt=0%",           // zero probability
            "pci.stall=200@10%",           // missing unit
            "pci.stall=0ns@10%",           // zero duration
            "dma.burst=500ns/1us",         // missing +
            "dma.burst=+500ns",            // missing /duration
            "dma.burst=+500ns/9us@2us",    // duration > period
            "link.ber=1e-7;;nic.wb_delay", // second entry malformed
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn windows_are_phase_locked() {
        let w = Window {
            duration: us(2),
            period: us(10),
        };
        assert!(w.contains(0));
        assert!(w.contains(us(2) - 1));
        assert!(!w.contains(us(2)));
        assert!(w.contains(us(10)));
        assert_eq!(w.end_of(us(11)), us(12));
    }

    #[test]
    fn disabled_injector_injects_nothing() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        assert!(!inj.link_bit_error(12_000));
        assert!(!inj.fifo_stuck(0));
        assert_eq!(inj.wb_delay(), 0);
        assert!(!inj.wb_corrupt());
        assert_eq!(inj.pci_stall(), 0);
        assert!(!inj.master_cleared(0));
        assert_eq!(inj.master_window_end(0), None);
        assert_eq!(inj.dma_burst_extra(0), 0);
        assert!(!inj.dca_force_miss());
        assert_eq!(inj.counts(), FaultCounts::default());
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let plan = FaultPlan::parse("link.ber=1e-5;nic.wb_corrupt=5%").unwrap();
        let a = FaultInjector::new(plan.clone(), 7);
        let b = FaultInjector::new(plan.clone(), 7);
        let c = FaultInjector::new(plan, 8);
        let pat = |inj: &FaultInjector| -> Vec<bool> {
            (0..2_000).map(|_| inj.link_bit_error(12_144)).collect()
        };
        let pa = pat(&a);
        assert_eq!(pa, pat(&b));
        assert_ne!(pa, pat(&c), "different seed, different pattern");
        assert!(pa.iter().any(|&hit| hit), "1e-5 over 12k bits must fire");
        assert_eq!(a.counts().link_bit_errors, b.counts().link_bit_errors);
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        let plan = FaultPlan::parse("link.ber=1e-3;nic.wb_corrupt=50%").unwrap();
        let a = FaultInjector::new(plan.clone(), 42);
        let b = FaultInjector::new(plan, 42);
        // Interleave extra wb_corrupt draws on `b` only: the link stream
        // must be unaffected.
        let pa: Vec<bool> = (0..500).map(|_| a.link_bit_error(12_144)).collect();
        let pb: Vec<bool> = (0..500)
            .map(|_| {
                let _ = b.wb_corrupt();
                b.link_bit_error(12_144)
            })
            .collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn counters_track_injections() {
        let plan = FaultPlan::parse("nic.fifo_stuck=1us@2us;dma.burst=+100ns/1us@2us").unwrap();
        let inj = FaultInjector::new(plan, 1);
        assert!(inj.fifo_stuck(0));
        assert!(!inj.fifo_stuck(us(1)));
        assert_eq!(inj.dma_burst_extra(0), ns(100));
        assert_eq!(inj.dma_burst_extra(us(1)), 0);
        let counts = inj.counts();
        assert_eq!(counts.fifo_stuck_hits, 1);
        assert_eq!(counts.dma_bursts, 1);
        assert_eq!(counts.total(), 2);
        inj.reset_counts();
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn register_stats_is_conditional_on_a_plan() {
        use crate::stats::{StatValue, StatsRegistry};
        let mut reg = StatsRegistry::new();
        FaultInjector::disabled().register_stats(&mut reg);
        assert!(reg.is_empty(), "disabled injector registers nothing");
        let inj = FaultInjector::new(FaultPlan::parse("link.ber=1e-4").unwrap(), 7);
        inj.register_stats(&mut reg);
        assert_eq!(reg.get("system.fault.seed"), Some(&StatValue::Scalar(7)));
        assert_eq!(reg.get("system.fault.total"), Some(&StatValue::Scalar(0)));
        assert_eq!(
            reg.get("system.fault.plan"),
            Some(&StatValue::Text("link.ber=1e-4".into()))
        );
    }

    #[test]
    fn aggressive_preset_enables_everything() {
        let plan = FaultPlan::aggressive();
        assert!(plan.link_ber > 0.0);
        assert!(plan.fifo_stuck.is_some());
        assert!(plan.wb_delay.is_some());
        assert!(plan.wb_corrupt_pct > 0.0);
        assert!(plan.pci_stall.is_some());
        assert!(plan.master_clear.is_some());
        assert!(plan.dma_burst.is_some());
        assert!(plan.dca_miss_pct > 0.0);
        // And it survives a print/parse round trip like any other plan.
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }
}
