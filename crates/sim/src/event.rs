//! A deterministic pending-event set.
//!
//! [`EventQueue`] orders events by `(tick, priority, insertion sequence)`.
//! Ties at the same tick are broken first by [`Priority`] (lower value runs
//! first, mirroring gem5's event priorities) and then by insertion order, so
//! simulations are reproducible regardless of allocator or hash-map state.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::tick::Tick;

/// Scheduling priority for events that share a tick. Lower runs first.
///
/// The default priority is [`Priority::NORMAL`]. The named levels mirror the
/// ordering needs of the NIC/CPU models: link delivery happens before DMA
/// completion, which happens before software progress at the same tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub i16);

impl Priority {
    /// Runs before everything else at a tick (e.g. statistics resets).
    pub const MINIMUM: Priority = Priority(i16::MIN);
    /// Wire/link events: packet delivery onto a device.
    pub const LINK: Priority = Priority(-30);
    /// DMA transaction completion.
    pub const DMA: Priority = Priority(-20);
    /// Device-internal bookkeeping (descriptor writeback, interrupts).
    pub const DEVICE: Priority = Priority(-10);
    /// Ordinary events.
    pub const NORMAL: Priority = Priority(0);
    /// Software progress (core run-loop iterations).
    pub const CPU: Priority = Priority(10);
    /// Runs after everything else at a tick (e.g. sampling probes).
    pub const MAXIMUM: Priority = Priority(i16::MAX);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

/// A scheduled event: when it fires, at what priority, and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<E> {
    /// Tick at which the event fires.
    pub tick: Tick,
    /// Tie-break priority within the tick.
    pub priority: Priority,
    /// Monotonic insertion sequence number (final tie-break).
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: E,
}

struct HeapEntry<E> {
    tick: Tick,
    priority: Priority,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.priority == other.priority && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        (other.tick, other.priority, other.seq).cmp(&(self.tick, self.priority, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// The queue tracks the current simulated time: popping an event advances
/// [`EventQueue::now`] to that event's tick. Scheduling into the past is a
/// bug and panics.
///
/// # Example
///
/// ```
/// use simnet_sim::{EventQueue, Priority, tick};
///
/// let mut q = EventQueue::new();
/// q.schedule_with_priority(tick::ns(2), Priority::CPU, "cpu");
/// q.schedule_with_priority(tick::ns(2), Priority::LINK, "link");
/// // Same tick: the link event runs first.
/// assert_eq!(q.pop().unwrap().payload, "link");
/// assert_eq!(q.pop().unwrap().payload, "cpu");
/// assert_eq!(q.now(), tick::ns(2));
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    now: Tick,
    next_seq: u64,
    scheduled: u64,
    executed: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at tick 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            scheduled: 0,
            executed: 0,
        }
    }

    /// Current simulated time: the tick of the most recently popped event.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled since creation.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events executed (popped) since creation.
    pub fn executed_count(&self) -> u64 {
        self.executed
    }

    /// Schedules `payload` at `tick` with [`Priority::NORMAL`].
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`EventQueue::now`].
    pub fn schedule(&mut self, tick: Tick, payload: E) {
        self.schedule_with_priority(tick, Priority::NORMAL, payload);
    }

    /// Schedules `payload` `delta` ticks after the current time.
    pub fn schedule_in(&mut self, delta: Tick, payload: E) {
        self.schedule(self.now.saturating_add(delta), payload);
    }

    /// Schedules `payload` at `tick` with an explicit priority.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is before [`EventQueue::now`].
    pub fn schedule_with_priority(&mut self, tick: Tick, priority: Priority, payload: E) {
        assert!(
            tick >= self.now,
            "scheduling into the past: tick {tick} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(HeapEntry {
            tick,
            priority,
            seq,
            payload,
        });
    }

    /// Tick of the next pending event, if any.
    pub fn peek_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.tick)
    }

    /// Pops the next event and advances the clock to its tick.
    pub fn pop(&mut self) -> Option<Event<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.tick >= self.now);
        self.now = entry.tick;
        self.executed += 1;
        Some(Event {
            tick: entry.tick,
            priority: entry.priority,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Pops the next event only if it fires at or before `limit`.
    pub fn pop_until(&mut self, limit: Tick) -> Option<Event<E>> {
        match self.peek_tick() {
            Some(t) if t <= limit => self.pop(),
            _ => None,
        }
    }

    /// Discards all pending events without advancing time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("scheduled", &self.scheduled)
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tick;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_tick_fifo_within_priority() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn priority_breaks_ties() {
        let mut q = EventQueue::new();
        q.schedule_with_priority(5, Priority::CPU, "cpu");
        q.schedule_with_priority(5, Priority::LINK, "link");
        q.schedule_with_priority(5, Priority::DMA, "dma");
        assert_eq!(q.pop().unwrap().payload, "link");
        assert_eq!(q.pop().unwrap().payload, "dma");
        assert_eq!(q.pop().unwrap().payload, "cpu");
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(tick::ns(4), ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), tick::ns(4));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, 1);
        q.pop();
        q.schedule_in(50, 2);
        let e = q.pop().unwrap();
        assert_eq!(e.tick, 150);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(10, "early");
        q.schedule(100, "late");
        assert_eq!(q.pop_until(50).unwrap().payload, "early");
        assert!(q.pop_until(50).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(100).unwrap().payload, "late");
    }

    #[test]
    fn counts_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.executed_count(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
