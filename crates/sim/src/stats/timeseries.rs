//! Interval time-series storage and serialization.
//!
//! The interval sampler (a periodic simulation event) snapshots a fixed
//! column schema every N simulated microseconds and appends one
//! [`TimeSeries`] row. Rows serialize to ndjson (one JSON object per
//! line — easy to stream into pandas/jq) or CSV, so drop-onset dynamics
//! like Fig. 4's FIFO-fill → writeback-stall → drop-burst sequence become
//! plottable over simulated time instead of a single end-of-run number.
//!
//! Column values are typed ([`SampleValue::Int`] for exact counters whose
//! interval deltas must sum exactly, [`SampleValue::Float`] for derived
//! rates); non-finite floats serialize as `null`/empty so a bad sample can
//! never corrupt the artifact.

use std::fmt::Write as _;

/// Whether a column holds exact integer counts or derived floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Exact integer counter or gauge.
    Int,
    /// Derived floating-point value (rate, fraction).
    Float,
}

/// One column of the time-series schema.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name (ndjson key / CSV header).
    pub name: &'static str,
    /// The column's value type.
    pub kind: ColumnKind,
    /// One-line description (documented in EXPERIMENTS.md).
    pub desc: &'static str,
}

impl ColumnSpec {
    /// An integer column.
    pub const fn int(name: &'static str, desc: &'static str) -> Self {
        Self {
            name,
            kind: ColumnKind::Int,
            desc,
        }
    }

    /// A floating-point column.
    pub const fn float(name: &'static str, desc: &'static str) -> Self {
        Self {
            name,
            kind: ColumnKind::Float,
            desc,
        }
    }
}

/// One sampled cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleValue {
    /// Exact integer.
    Int(u64),
    /// Derived float.
    Float(f64),
}

impl SampleValue {
    /// The value as f64 (lossy for huge ints, fine for plotting).
    pub fn as_f64(&self) -> f64 {
        match self {
            SampleValue::Int(v) => *v as f64,
            SampleValue::Float(v) => *v,
        }
    }

    /// The value as u64 (0 for non-finite floats, truncated otherwise).
    pub fn as_u64(&self) -> u64 {
        match self {
            SampleValue::Int(v) => *v,
            SampleValue::Float(v) if v.is_finite() && *v >= 0.0 => *v as u64,
            SampleValue::Float(_) => 0,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            SampleValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            SampleValue::Float(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            SampleValue::Float(_) => out.push_str("null"),
        }
    }

    fn write_csv(&self, out: &mut String) {
        match self {
            SampleValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            SampleValue::Float(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            SampleValue::Float(_) => {}
        }
    }
}

/// An interval-sampled statistics time series: a fixed column schema plus
/// one row per sample interval.
///
/// ```
/// use simnet_sim::stats::{ColumnSpec, SampleValue, TimeSeries};
/// let mut ts = TimeSeries::new(vec![
///     ColumnSpec::float("t_us", "sample time"),
///     ColumnSpec::int("drops", "drops this interval"),
/// ]);
/// ts.push_row(vec![SampleValue::Float(100.0), SampleValue::Int(3)]);
/// assert_eq!(ts.len(), 1);
/// assert_eq!(ts.int_column("drops"), vec![3]);
/// assert!(ts.to_ndjson().contains("\"drops\":3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    columns: Vec<ColumnSpec>,
    rows: Vec<Vec<SampleValue>>,
    /// Non-finite float cells pushed so far (serialized as `null`/empty);
    /// surfaced as the `system.sampler.nonfinite` statistic so a NaN rate
    /// is distinguishable from a true zero in the artifacts.
    nonfinite: u64,
}

impl TimeSeries {
    /// Creates an empty series over `columns`.
    pub fn new(columns: Vec<ColumnSpec>) -> Self {
        Self {
            columns,
            rows: Vec::new(),
            nonfinite: 0,
        }
    }

    /// The column schema.
    pub fn columns(&self) -> &[ColumnSpec] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the schema.
    pub fn push_row(&mut self, row: Vec<SampleValue>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != schema width {}",
            row.len(),
            self.columns.len()
        );
        self.nonfinite += row
            .iter()
            .filter(|v| matches!(v, SampleValue::Float(f) if !f.is_finite()))
            .count() as u64;
        self.rows.push(row);
    }

    /// Number of non-finite float cells pushed since creation (or the
    /// last [`TimeSeries::clear`]). These serialize as JSON `null` /
    /// empty CSV fields rather than a forged `0`.
    pub fn nonfinite_count(&self) -> u64 {
        self.nonfinite
    }

    /// All rows in sample order.
    pub fn rows(&self) -> &[Vec<SampleValue>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were sampled.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Discards all rows (warm-up reset), keeping the schema. The
    /// non-finite cell count follows the rows back to zero.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.nonfinite = 0;
    }

    /// The named column as exact integers (panics if the name is unknown).
    pub fn int_column(&self, name: &str) -> Vec<u64> {
        let idx = self
            .column_index(name)
            .unwrap_or_else(|| panic!("no column named {name:?}"));
        self.rows.iter().map(|r| r[idx].as_u64()).collect()
    }

    /// The named column as f64 (panics if the name is unknown).
    pub fn float_column(&self, name: &str) -> Vec<f64> {
        let idx = self
            .column_index(name)
            .unwrap_or_else(|| panic!("no column named {name:?}"));
        self.rows.iter().map(|r| r[idx].as_f64()).collect()
    }

    /// Serializes as ndjson: one `{"col":value,…}` object per line.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push('{');
            for (i, (col, value)) in self.columns.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":", col.name);
                value.write_json(&mut out);
            }
            out.push_str("}\n");
        }
        out
    }

    /// Serializes as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(col.name);
        }
        out.push('\n');
        for row in &self.rows {
            for (i, value) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                value.write_csv(&mut out);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col() -> TimeSeries {
        TimeSeries::new(vec![
            ColumnSpec::float("t_us", "time"),
            ColumnSpec::int("n", "count"),
        ])
    }

    #[test]
    fn rows_round_trip() {
        let mut ts = two_col();
        ts.push_row(vec![SampleValue::Float(1.5), SampleValue::Int(2)]);
        ts.push_row(vec![SampleValue::Float(2.5), SampleValue::Int(5)]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.int_column("n"), vec![2, 5]);
        assert_eq!(ts.float_column("t_us"), vec![1.5, 2.5]);
    }

    #[test]
    fn ndjson_one_object_per_line() {
        let mut ts = two_col();
        ts.push_row(vec![SampleValue::Float(1.5), SampleValue::Int(2)]);
        let text = ts.to_ndjson();
        assert_eq!(text.lines().count(), 1);
        assert_eq!(text.trim(), "{\"t_us\":1.5,\"n\":2}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut ts = two_col();
        ts.push_row(vec![SampleValue::Float(1.5), SampleValue::Int(2)]);
        let text = ts.to_csv();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("t_us,n"));
        assert_eq!(lines.next(), Some("1.5,2"));
    }

    #[test]
    fn non_finite_floats_serialize_safely() {
        let mut ts = two_col();
        ts.push_row(vec![SampleValue::Float(f64::NAN), SampleValue::Int(1)]);
        assert!(ts.to_ndjson().contains("\"t_us\":null"));
        assert!(ts.to_csv().lines().nth(1).unwrap().starts_with(','));
        assert_eq!(ts.float_column("t_us").len(), 1);
        assert_eq!(ts.rows()[0][0].as_u64(), 0);
    }

    #[test]
    fn nonfinite_cells_are_counted_not_zeroed() {
        let mut ts = two_col();
        assert_eq!(ts.nonfinite_count(), 0);
        ts.push_row(vec![SampleValue::Float(1.0), SampleValue::Int(1)]);
        assert_eq!(ts.nonfinite_count(), 0);
        ts.push_row(vec![SampleValue::Float(f64::NAN), SampleValue::Int(2)]);
        ts.push_row(vec![SampleValue::Float(f64::INFINITY), SampleValue::Int(3)]);
        assert_eq!(ts.nonfinite_count(), 2);
        // The artifact never shows a forged zero: the NaN row's cell is
        // null in ndjson and empty in CSV, while a genuine 0.0 prints.
        ts.push_row(vec![SampleValue::Float(0.0), SampleValue::Int(4)]);
        let ndjson = ts.to_ndjson();
        assert_eq!(ndjson.matches("\"t_us\":null").count(), 2);
        assert!(ndjson.contains("\"t_us\":0"));
        // Warm-up reset discards the rows and their count together.
        ts.clear();
        assert_eq!(ts.nonfinite_count(), 0);
    }

    #[test]
    fn clear_keeps_schema() {
        let mut ts = two_col();
        ts.push_row(vec![SampleValue::Float(1.0), SampleValue::Int(1)]);
        ts.clear();
        assert!(ts.is_empty());
        assert_eq!(ts.columns().len(), 2);
        ts.push_row(vec![SampleValue::Float(2.0), SampleValue::Int(2)]);
        assert_eq!(ts.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        two_col().push_row(vec![SampleValue::Int(1)]);
    }
}
