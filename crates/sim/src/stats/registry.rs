//! Hierarchical statistics registry.
//!
//! gem5 20.0+ organizes statistics as a tree of named groups: every
//! `SimObject` registers its stats under a dotted path
//! (`system.cpu.committedInsts`), and `stats.txt` is *generated* from the
//! registry instead of hand-written. [`StatsRegistry`] brings that model
//! here: components register named values with descriptions under the
//! current group prefix, and renderers ([`StatsRegistry::render_gem5`])
//! walk the registry. A counter a component registers becomes visible in
//! every dump for free — nothing to hand-enumerate in the harness.
//!
//! Components expose an inherent `register_stats(&self, reg)` method (with
//! extra context arguments where a derived stat needs them, e.g. the
//! current tick for a utilization). The component owns its full dotted
//! path: it pushes its own group (`system.nic`, `system.mem_ctrls`, …)
//! so renaming never silently happens at a call site.
//!
//! The registry carries a [`DumpLevel`]: [`DumpLevel::Compat`] restricts
//! output to the legacy hand-written stat set (golden-file compatible),
//! [`DumpLevel::Full`] lets components add newer counters on top.

use std::fmt::Write as _;

/// One registered statistic value.
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// An integer count.
    Scalar(u64),
    /// A derived floating-point value (rates, fractions).
    Float(f64),
    /// A free-form text value (e.g. an installed fault plan).
    Text(String),
}

impl std::fmt::Display for StatValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatValue::Scalar(v) => write!(f, "{v}"),
            StatValue::Float(v) => write!(f, "{v:.6}"),
            StatValue::Text(v) => write!(f, "{v}"),
        }
    }
}

/// One registered statistic: full dotted path, value, description.
#[derive(Debug, Clone, PartialEq)]
pub struct StatEntry {
    /// Full dotted path (`system.nic.rxPackets`).
    pub path: String,
    /// The value at registration time.
    pub value: StatValue,
    /// One-line description (the `# …` column of `stats.txt`).
    pub desc: String,
}

/// How much of the registry a dump includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DumpLevel {
    /// Only the legacy hand-written stat set — byte-compatible with the
    /// pre-registry `stats.txt` output.
    #[default]
    Compat,
    /// Everything components register, including post-migration counters.
    Full,
}

/// An ordered, hierarchical collection of statistics.
///
/// Entries keep registration order, so renderers are deterministic and a
/// generated dump can match a legacy hand-written one byte for byte.
///
/// ```
/// use simnet_sim::stats::{StatsRegistry, StatValue};
/// let mut reg = StatsRegistry::new();
/// reg.scalar("sim_ticks", 42, "simulated ticks");
/// reg.push_group("system.nic");
/// reg.scalar("rxPackets", 7, "frames accepted");
/// reg.pop_group();
/// assert_eq!(reg.get("system.nic.rxPackets"), Some(&StatValue::Scalar(7)));
/// assert!(reg.render_gem5().contains("system.nic.rxPackets"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatsRegistry {
    entries: Vec<StatEntry>,
    prefix: Vec<String>,
    level: DumpLevel,
}

impl StatsRegistry {
    /// Creates an empty registry at [`DumpLevel::Compat`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry at the given level.
    pub fn with_level(level: DumpLevel) -> Self {
        Self {
            level,
            ..Self::default()
        }
    }

    /// Whether components should register post-migration extras.
    pub fn full(&self) -> bool {
        self.level == DumpLevel::Full
    }

    /// Pushes a group name; subsequent registrations nest under it.
    pub fn push_group(&mut self, name: impl Into<String>) {
        self.prefix.push(name.into());
    }

    /// Pops the innermost group.
    ///
    /// # Panics
    ///
    /// Panics if no group is open.
    pub fn pop_group(&mut self) {
        self.prefix.pop().expect("pop_group without a push_group");
    }

    /// Runs `f` with `name` pushed as a group.
    pub fn scoped(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Self)) {
        self.push_group(name);
        f(self);
        self.pop_group();
    }

    fn path_of(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            let mut p = self.prefix.join(".");
            p.push('.');
            p.push_str(name);
            p
        }
    }

    /// Registers an integer statistic under the current group.
    pub fn scalar(&mut self, name: &str, value: u64, desc: &str) {
        self.entries.push(StatEntry {
            path: self.path_of(name),
            value: StatValue::Scalar(value),
            desc: desc.to_string(),
        });
    }

    /// Registers a floating-point statistic under the current group.
    pub fn float(&mut self, name: &str, value: f64, desc: &str) {
        self.entries.push(StatEntry {
            path: self.path_of(name),
            value: StatValue::Float(value),
            desc: desc.to_string(),
        });
    }

    /// Registers a text statistic under the current group.
    pub fn text(&mut self, name: &str, value: impl std::fmt::Display, desc: &str) {
        self.entries.push(StatEntry {
            path: self.path_of(name),
            value: StatValue::Text(value.to_string()),
            desc: desc.to_string(),
        });
    }

    /// All entries in registration order.
    pub fn entries(&self) -> &[StatEntry] {
        &self.entries
    }

    /// Number of registered statistics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a statistic by its full dotted path (first match).
    pub fn get(&self, path: &str) -> Option<&StatValue> {
        self.entries
            .iter()
            .find(|e| e.path == path)
            .map(|e| &e.value)
    }

    /// Appends every entry of `other` (in its registration order) after
    /// this registry's entries. The entries carry their full dotted
    /// paths, so the current group prefix does not apply. This is how a
    /// sharded run reassembles one dump from per-shard registry
    /// fragments without re-walking the components.
    pub fn extend(&mut self, other: &StatsRegistry) {
        self.entries.extend(other.entries.iter().cloned());
    }

    /// Renders every entry in gem5's `stats.txt` line format:
    /// `name value # description`, 52/16-column aligned.
    pub fn render_gem5(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let path = &e.path;
            let desc = &e.desc;
            let _ = match &e.value {
                StatValue::Scalar(v) => writeln!(out, "{path:<52} {v:>16} # {desc}"),
                StatValue::Float(v) => writeln!(out, "{path:<52} {v:>16.6} # {desc}"),
                StatValue::Text(v) => writeln!(out, "{path:<52} {v:>16} # {desc}"),
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_groups_build_dotted_paths() {
        let mut reg = StatsRegistry::new();
        reg.push_group("system");
        reg.push_group("cpu");
        reg.scalar("committedInsts", 10, "instructions committed");
        reg.pop_group();
        reg.pop_group();
        assert_eq!(reg.entries()[0].path, "system.cpu.committedInsts");
        assert_eq!(
            reg.get("system.cpu.committedInsts"),
            Some(&StatValue::Scalar(10))
        );
    }

    #[test]
    fn scoped_restores_prefix() {
        let mut reg = StatsRegistry::new();
        reg.scoped("system.nic", |r| r.scalar("rxPackets", 1, "rx"));
        reg.scalar("sim_ticks", 2, "ticks");
        assert_eq!(reg.entries()[0].path, "system.nic.rxPackets");
        assert_eq!(reg.entries()[1].path, "sim_ticks");
    }

    #[test]
    fn render_matches_legacy_line_format() {
        let mut reg = StatsRegistry::new();
        reg.scalar("sim_ticks", 42, "simulated ticks (ps)");
        reg.float("system.cpu.ipc", 1.25, "instructions per cycle");
        let text = reg.render_gem5();
        // Exactly the historic `{name:<52} {value:>16} # {desc}` layout.
        assert!(text.contains(&format!(
            "{:<52} {:>16} # simulated ticks (ps)\n",
            "sim_ticks", 42
        )));
        assert!(text.contains(&format!(
            "{:<52} {:>16.6} # instructions per cycle\n",
            "system.cpu.ipc", 1.25
        )));
    }

    #[test]
    fn levels_gate_extras() {
        let compat = StatsRegistry::new();
        let full = StatsRegistry::with_level(DumpLevel::Full);
        assert!(!compat.full());
        assert!(full.full());
    }

    #[test]
    #[should_panic(expected = "pop_group")]
    fn unbalanced_pop_panics() {
        StatsRegistry::new().pop_group();
    }

    #[test]
    fn extend_appends_fragments_in_order() {
        let mut main = StatsRegistry::new();
        main.scalar("sim_ticks", 1, "ticks");
        let mut frag = StatsRegistry::new();
        frag.scoped("system.nic", |r| r.scalar("rxPackets", 7, "frames"));
        main.extend(&frag);
        main.scalar("after", 2, "post-fragment entry keeps ordering");
        let paths: Vec<_> = main.entries().iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["sim_ticks", "system.nic.rxPackets", "after"]);
        assert_eq!(
            main.get("system.nic.rxPackets"),
            Some(&StatValue::Scalar(7))
        );
        // The fragment's render is a verbatim slice of the merged render.
        assert!(main.render_gem5().contains(&frag.render_gem5()));
    }
}
