//! gem5-style simulation statistics.
//!
//! Components record into these structures while the simulation runs; the
//! harness reads them out at the end (or resets them after warm-up, the way
//! gem5 resets stats after `m5 resetstats`).
//!
//! * [`Counter`] — a monotonically increasing event count.
//! * [`Running`] — a constant-space running mean/stddev/min/max (Welford).
//! * [`Histogram`] — fixed-width bins with under/overflow buckets.
//! * [`SampleSet`] — a bounded sample store with exact quantiles, used for
//!   the load generator's per-packet round-trip latency report
//!   (mean, median, standard deviation, tails — §IV).

mod counter;
mod histogram;
mod running;
mod samples;

pub use counter::Counter;
pub use histogram::Histogram;
pub use running::Running;
pub use samples::{LatencySummary, SampleSet};
