//! gem5-style simulation statistics.
//!
//! Components record into these structures while the simulation runs; the
//! harness reads them out at the end (or resets them after warm-up, the way
//! gem5 resets stats after `m5 resetstats`).
//!
//! * [`Counter`] — a monotonically increasing event count.
//! * [`Running`] — a constant-space running mean/stddev/min/max (Welford).
//! * [`Histogram`] — fixed-width bins with under/overflow buckets.
//! * [`SampleSet`] — a bounded sample store with exact quantiles, used for
//!   the load generator's per-packet round-trip latency report
//!   (mean, median, standard deviation, tails — §IV).
//! * [`StatsRegistry`] — the gem5-20.0-style hierarchical registry:
//!   components register named stats under dotted paths with descriptions
//!   and dumps are *generated* from the registry.
//! * [`TimeSeries`] — interval-sampled stat rows with ndjson/CSV
//!   serialization (the `--stats-out` artifact).
//! * [`Profiler`] — per-event-kind host-time attribution for the
//!   simulator's own event loop (`--profile`).

mod counter;
mod histogram;
mod profile;
mod registry;
mod running;
mod samples;
mod timeseries;

pub use counter::Counter;
pub use histogram::Histogram;
pub use profile::Profiler;
pub use registry::{DumpLevel, StatEntry, StatValue, StatsRegistry};
pub use running::Running;
pub use samples::{LatencySummary, SampleSet};
pub use timeseries::{ColumnKind, ColumnSpec, SampleValue, TimeSeries};
