//! A monotonically increasing event counter.

/// A named event count, e.g. packets received or LLC misses.
///
/// ```
/// use simnet_sim::stats::Counter;
/// let mut rx = Counter::default();
/// rx.inc();
/// rx.add(3);
/// assert_eq!(rx.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Resets to zero (post-warm-up stats reset).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// This counter as a fraction of `total` (0.0 when `total` is 0).
    pub fn fraction_of(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.value as f64 / total as f64
        }
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value)
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c += 9;
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn fraction_handles_zero_total() {
        let mut c = Counter::new();
        c.add(5);
        assert_eq!(c.fraction_of(0), 0.0);
        assert!((c.fraction_of(20) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Counter::new().to_string(), "0");
    }
}
