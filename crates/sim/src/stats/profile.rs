//! Simulator self-profiling: where does wall-clock time go?
//!
//! The paper's Fig. 20 asks how much host time a simulation costs; this
//! module answers the next question — *which component's events* cost it.
//! The harness's event loop, when profiling is enabled, attributes the
//! host time of each popped event (pop + dispatch + handler) to that
//! event's kind, so the end-of-run [`Profiler::render`] table shows
//! per-kind and per-component host-time shares and pinpoints the next hot
//! path to optimise.
//!
//! Profiling is off by default and the unprofiled event loop is untouched
//! (no `Instant::now` calls), following the same zero-cost-when-off
//! discipline as the tracer and the fault injector.

use std::fmt::Write as _;

/// Host-time and event-count attribution over a fixed set of event kinds.
///
/// Kinds are registered up front as `(kind, component)` label pairs; the
/// event loop records `(kind index, elapsed nanoseconds)` per event and
/// the total loop time once per `run_until` call.
///
/// ```
/// use simnet_sim::stats::Profiler;
/// let mut p = Profiler::new(vec![("software", "cpu"), ("rx_dma", "dma")]);
/// p.record(0, 1_500);
/// p.record(1, 500);
/// p.add_loop_nanos(2_100);
/// assert_eq!(p.events(), 2);
/// assert!(p.coverage() > 0.9);
/// assert!(p.render().contains("software"));
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    labels: Vec<(&'static str, &'static str)>,
    counts: Vec<u64>,
    nanos: Vec<u64>,
    loop_nanos: u64,
}

impl Profiler {
    /// Creates a profiler over `(kind, component)` label pairs.
    pub fn new(labels: Vec<(&'static str, &'static str)>) -> Self {
        let n = labels.len();
        Self {
            labels,
            counts: vec![0; n],
            nanos: vec![0; n],
            loop_nanos: 0,
        }
    }

    /// Attributes one event of kind `idx` costing `nanos` host-ns.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn record(&mut self, idx: usize, nanos: u64) {
        self.counts[idx] += 1;
        self.nanos[idx] += nanos;
    }

    /// Attributes `count` events of kind `idx` costing `nanos` host-ns
    /// in one record — used when folding pre-aggregated attributions
    /// (e.g. a shard's synchronization-idle residual) into a profile.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn record_bulk(&mut self, idx: usize, count: u64, nanos: u64) {
        self.counts[idx] += count;
        self.nanos[idx] += nanos;
    }

    /// Adds measured event-loop wall time (the attribution denominator).
    pub fn add_loop_nanos(&mut self, nanos: u64) {
        self.loop_nanos += nanos;
    }

    /// Folds another profile into this one, matching rows by
    /// `(kind, component)` label (appending labels this profile lacks).
    /// Event counts, attributed nanoseconds, and loop time all add, so
    /// merging per-shard profiles yields one report whose shares still
    /// sum to the merged coverage — the cross-thread 100%-attribution
    /// view. Note the merged `loop_nanos` is summed *CPU* time across
    /// shard threads, not elapsed wall time.
    pub fn merge(&mut self, other: &Profiler) {
        for (kind, comp, count, nanos) in other.kinds() {
            let idx = match self
                .labels
                .iter()
                .position(|&(k, c)| k == kind && c == comp)
            {
                Some(i) => i,
                None => {
                    self.labels.push((kind, comp));
                    self.counts.push(0);
                    self.nanos.push(0);
                    self.labels.len() - 1
                }
            };
            self.counts[idx] += count;
            self.nanos[idx] += nanos;
        }
        self.loop_nanos += other.loop_nanos;
    }

    /// Total events attributed.
    pub fn events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total host nanoseconds attributed to event kinds.
    pub fn attributed_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Total measured event-loop nanoseconds.
    pub fn loop_nanos(&self) -> u64 {
        self.loop_nanos
    }

    /// Fraction of loop time attributed to a kind (1.0 when no loop time
    /// was measured — an empty run attributes everything).
    pub fn coverage(&self) -> f64 {
        if self.loop_nanos == 0 {
            return 1.0;
        }
        self.attributed_nanos() as f64 / self.loop_nanos as f64
    }

    /// Per-kind rows `(kind, component, events, nanos)`, attribution order.
    pub fn kinds(&self) -> Vec<(&'static str, &'static str, u64, u64)> {
        self.labels
            .iter()
            .zip(&self.counts)
            .zip(&self.nanos)
            .map(|(((kind, comp), &count), &nanos)| (*kind, *comp, count, nanos))
            .collect()
    }

    /// Host time and event counts aggregated per component,
    /// heaviest first.
    pub fn by_component(&self) -> Vec<(&'static str, u64, u64)> {
        let mut agg: Vec<(&'static str, u64, u64)> = Vec::new();
        for (_, comp, count, nanos) in self.kinds() {
            match agg.iter_mut().find(|(c, _, _)| *c == comp) {
                Some(row) => {
                    row.1 += count;
                    row.2 += nanos;
                }
                None => agg.push((comp, count, nanos)),
            }
        }
        agg.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        agg
    }

    /// Renders the end-of-run profile table (the Fig. 20
    /// "where does wall-clock go" view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let loop_ms = self.loop_nanos as f64 / 1e6;
        let _ = writeln!(
            out,
            "simulator self-profile: {} events in {:.2} ms host time \
             ({:.1}% attributed)",
            self.events(),
            loop_ms,
            self.coverage() * 100.0
        );
        let _ = writeln!(
            out,
            "{:<14} {:<10} {:>12} {:>10} {:>8} {:>10}",
            "kind", "component", "events", "host_ms", "share", "ns/event"
        );
        let denom = self.loop_nanos.max(1) as f64;
        let mut rows = self.kinds();
        rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
        for (kind, comp, count, nanos) in rows {
            if count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<14} {:<10} {:>12} {:>10.3} {:>7.1}% {:>10.0}",
                kind,
                comp,
                count,
                nanos as f64 / 1e6,
                nanos as f64 / denom * 100.0,
                nanos as f64 / count as f64
            );
        }
        let _ = writeln!(out, "per-component shares:");
        for (comp, count, nanos) in self.by_component() {
            if count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<12} {:>6.1}%  ({} events, {:.3} ms)",
                comp,
                nanos as f64 / denom * 100.0,
                count,
                nanos as f64 / 1e6
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profiler {
        let mut p = Profiler::new(vec![
            ("software", "cpu"),
            ("rx_dma", "dma"),
            ("tx_dma", "dma"),
        ]);
        p.record(0, 6_000);
        p.record(1, 2_000);
        p.record(2, 1_000);
        p.record(0, 1_000);
        p.add_loop_nanos(10_500);
        p
    }

    #[test]
    fn totals_add_up() {
        let p = sample();
        assert_eq!(p.events(), 4);
        assert_eq!(p.attributed_nanos(), 10_000);
        assert_eq!(p.loop_nanos(), 10_500);
        assert!((p.coverage() - 10_000.0 / 10_500.0).abs() < 1e-12);
    }

    #[test]
    fn components_aggregate_across_kinds() {
        let p = sample();
        let by = p.by_component();
        assert_eq!(by[0], ("cpu", 2, 7_000));
        assert_eq!(by[1], ("dma", 2, 3_000));
    }

    #[test]
    fn render_mentions_kinds_and_shares() {
        let text = sample().render();
        assert!(text.contains("software"));
        assert!(text.contains("per-component shares"));
        assert!(text.contains("cpu"));
        assert!(text.contains("% attributed"));
    }

    #[test]
    fn merge_matches_labels_and_appends_strangers() {
        let mut a = sample();
        let mut b = Profiler::new(vec![("rx_dma", "dma"), ("sync_idle", "sim")]);
        b.record(0, 500);
        b.record_bulk(1, 1, 4_000);
        b.add_loop_nanos(4_500);
        a.merge(&b);
        assert_eq!(a.events(), 6);
        assert_eq!(a.attributed_nanos(), 14_500);
        assert_eq!(a.loop_nanos(), 15_000);
        let kinds = a.kinds();
        let rx = kinds.iter().find(|k| k.0 == "rx_dma").unwrap();
        assert_eq!((rx.2, rx.3), (2, 2_500));
        let idle = kinds.iter().find(|k| k.0 == "sync_idle").unwrap();
        assert_eq!((idle.2, idle.3), (1, 4_000));
        // Shares over the merged denominator still sum to the coverage.
        assert!((a.coverage() - 14_500.0 / 15_000.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_has_full_coverage() {
        let p = Profiler::new(vec![("a", "x")]);
        assert_eq!(p.events(), 0);
        assert_eq!(p.coverage(), 1.0);
        assert!(p.render().contains("0 events"));
    }
}
