//! Bounded sample storage with exact quantiles.

/// A bounded store of observations with exact order statistics.
///
/// `EtherLoadGen` reports mean, median, standard deviation and tail latency
/// of network packets (§IV); this type backs that report. Up to `capacity`
/// samples are kept; beyond that, reservoir sampling keeps a uniform random
/// subset (deterministic, seeded by insertion index) so the quantiles stay
/// representative without unbounded memory.
///
/// ```
/// use simnet_sim::stats::SampleSet;
/// let mut s = SampleSet::with_capacity(1024);
/// for v in 1..=100 {
///     s.record(v as f64);
/// }
/// let summary = s.summary();
/// assert_eq!(summary.count, 100);
/// assert!((summary.median - 50.5).abs() < 1.0);
/// assert!((summary.p99 - 99.0).abs() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SampleSet {
    samples: Vec<f64>,
    capacity: usize,
    seen: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    rejected: u64,
}

/// Summary of a [`SampleSet`]: the statistics row `EtherLoadGen` prints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of observations recorded (including evicted ones).
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile (tail latency).
    pub p99: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl LatencySummary {
    /// An all-zero summary (no observations).
    pub fn empty() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            median: 0.0,
            stddev: 0.0,
            p90: 0.0,
            p95: 0.0,
            p99: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }
}

impl Default for SampleSet {
    fn default() -> Self {
        Self::with_capacity(1 << 20)
    }
}

impl SampleSet {
    /// Creates a sample set keeping at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "sample capacity must be positive");
        Self {
            samples: Vec::new(),
            capacity,
            seen: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rejected: 0,
        }
    }

    /// Records one observation.
    ///
    /// Non-finite observations are rejected (counted in
    /// [`SampleSet::rejected`]): a NaN in the store would panic the
    /// quantile sort, and an infinity would pin mean/min/max.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            self.rejected += 1;
            return;
        }
        self.seen += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.store(value);
    }

    /// Retains `value` in the bounded store, assuming `seen` has already
    /// been advanced past it.
    fn store(&mut self, value: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(value);
        } else {
            // Deterministic reservoir replacement: SplitMix-style hash of
            // the insertion index selects the victim slot.
            let mut x = self.seen.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 31;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            let slot = x % self.seen;
            if (slot as usize) < self.capacity {
                self.samples[slot as usize] = value;
            }
        }
    }

    /// Folds another sample set into this one.
    ///
    /// Exact aggregates (count, sum, sum of squares, min/max, rejections)
    /// add exactly; retained samples append while capacity allows and then
    /// fall back to the same deterministic reservoir replacement as
    /// [`SampleSet::record`]. Merging per-shard sets in a fixed order is
    /// therefore deterministic, and when the combined retained samples fit
    /// the capacity (the common case — per-run sample counts sit far below
    /// the reservoir bound) the merged quantiles are computed over the
    /// exact union multiset.
    pub fn merge(&mut self, other: &SampleSet) {
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.rejected += other.rejected;
        let evicted = other.seen - other.samples.len() as u64;
        for &value in &other.samples {
            self.seen += 1;
            self.store(value);
        }
        // Observations the other set saw but no longer retains still count
        // toward the merged mean/stddev via the summed moments.
        self.seen += evicted;
    }

    /// Total observations recorded (not just retained).
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Non-finite observations rejected by [`SampleSet::record`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Exact quantile `q` in `[0, 1]` over the retained samples.
    /// Returns 0.0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Arithmetic mean over all recorded observations.
    pub fn mean(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.sum / self.seen as f64
        }
    }

    /// Population standard deviation over all recorded observations.
    pub fn stddev(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.seen as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }

    /// Builds the full summary report.
    pub fn summary(&self) -> LatencySummary {
        if self.seen == 0 {
            return LatencySummary::empty();
        }
        // Sort once for all quantiles.
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let q = |q: f64| -> f64 {
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
        };
        LatencySummary {
            count: self.seen,
            mean: self.mean(),
            median: q(0.5),
            stddev: self.stddev(),
            p90: q(0.9),
            p95: q(0.95),
            p99: q(0.99),
            min: self.min,
            max: self.max,
        }
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        let cap = self.capacity;
        *self = Self::with_capacity(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = SampleSet::with_capacity(8);
        assert!(s.is_empty());
        assert_eq!(s.summary(), LatencySummary::empty());
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn exact_quantiles_small() {
        let mut s = SampleSet::with_capacity(100);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(v);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.25), 2.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let mut s = SampleSet::with_capacity(1000);
        for v in 1..=100 {
            s.record(v as f64);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 100);
        assert!((sum.mean - 50.5).abs() < 1e-9);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 100.0);
        assert!(sum.p90 >= sum.median);
        assert!(sum.p95 >= sum.p90);
        assert!(sum.p99 >= sum.p95);
    }

    #[test]
    fn reservoir_keeps_capacity() {
        let mut s = SampleSet::with_capacity(64);
        for v in 0..10_000 {
            s.record(v as f64);
        }
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.samples.len(), 64);
        // Mean and min/max are exact regardless of sampling.
        assert!((s.mean() - 4999.5).abs() < 1e-9);
        let sum = s.summary();
        assert_eq!(sum.min, 0.0);
        assert_eq!(sum.max, 9999.0);
        // The sampled median is near the true median.
        assert!((sum.median - 5000.0).abs() < 1500.0);
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut s = SampleSet::with_capacity(32);
            for v in 0..1000 {
                s.record((v * 7 % 97) as f64);
            }
            s.summary()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_restores_capacity() {
        let mut s = SampleSet::with_capacity(8);
        for v in 0..100 {
            s.record(v as f64);
        }
        s.reset();
        assert!(s.is_empty());
        s.record(1.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn merge_unions_exact_below_capacity() {
        let mut a = SampleSet::with_capacity(100);
        let mut b = SampleSet::with_capacity(100);
        for v in [1.0, 3.0, 5.0] {
            a.record(v);
        }
        for v in [2.0, 4.0] {
            b.record(v);
        }
        b.record(f64::NAN);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.rejected(), 1);
        let sum = a.summary();
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 5.0);
        assert!((sum.mean - 3.0).abs() < 1e-12);
        // Quantiles see the exact union multiset {1,2,3,4,5}.
        assert_eq!(a.quantile(0.0), 1.0);
        assert_eq!(a.quantile(0.5), 3.0);
        assert_eq!(a.quantile(1.0), 5.0);
        // Merging an empty set is a no-op.
        let before = a.summary();
        a.merge(&SampleSet::with_capacity(4));
        assert_eq!(a.summary(), before);
    }

    #[test]
    fn merge_over_capacity_is_deterministic_and_counts_evictions() {
        let run = || {
            let mut a = SampleSet::with_capacity(16);
            let mut b = SampleSet::with_capacity(16);
            for v in 0..200 {
                a.record(v as f64);
                b.record((v * 3 % 101) as f64);
            }
            a.merge(&b);
            (a.count(), a.summary())
        };
        let (count, summary) = run();
        // Both sets saw 200 each, retained 16: evicted ones still count.
        assert_eq!(count, 400);
        assert!(summary.mean.is_finite());
        assert_eq!(run(), (count, summary));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        SampleSet::with_capacity(0);
    }

    #[test]
    fn non_finite_samples_cannot_panic_quantiles() {
        let mut s = SampleSet::with_capacity(8);
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.rejected(), 2);
        // The sort inside summary() would panic if NaN had been stored.
        let sum = s.summary();
        assert_eq!(sum.median, 2.0);
        assert_eq!(sum.max, 2.0);
        assert!(sum.mean.is_finite());
    }
}
