//! Fixed-width binned histogram with under/overflow buckets.

/// A histogram over `[lo, hi)` with `bins` equal-width buckets.
///
/// Values below `lo` land in the underflow bucket; values at or above `hi`
/// land in the overflow bucket. The load generator uses this for its packet
/// forwarding-latency histogram (§IV).
///
/// ```
/// use simnet_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(0.5);
/// h.record(9.9);
/// h.record(42.0);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(4), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    rejected: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram bounds inverted: [{lo},{hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            rejected: 0,
        }
    }

    /// Records one value.
    ///
    /// NaN values are rejected (counted in [`Histogram::rejected`]) rather
    /// than binned: the `(value - lo) / width as usize` cast would
    /// otherwise silently place NaN in bin 0. ±∞ land in the
    /// under/overflow buckets like any other out-of-range value.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            self.rejected += 1;
        } else if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// Number of bins.
    pub fn bin_len(&self) -> usize {
        self.bins.len()
    }

    /// The `[lo, hi)` span of bin `idx`.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let lo = self.lo + width * idx as f64;
        (lo, lo + width)
    }

    /// Count below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN values rejected by [`Histogram::record`] (not part of
    /// [`Histogram::total`]).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total recorded values including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Folds another histogram into this one by exact per-bucket adds.
    ///
    /// # Panics
    ///
    /// Panics if the geometries (`[lo, hi)` span or bin count) differ —
    /// bucket-wise addition would silently misbin otherwise.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram merge needs identical geometry"
        );
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.rejected += other.rejected;
    }

    /// Zeroes all buckets.
    pub fn reset(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.underflow = 0;
        self.overflow = 0;
        self.rejected = 0;
    }

    /// Iterates `(bin_lo, bin_hi, count)` over the in-range bins.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| {
            let (lo, hi) = self.bin_range(i);
            (lo, hi, self.bins[i])
        })
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "histogram [{}, {}) n={}", self.lo, self.hi, self.total())?;
        if self.underflow > 0 {
            writeln!(f, "  <{}: {}", self.lo, self.underflow)?;
        }
        for (lo, hi, count) in self.iter() {
            if count > 0 {
                writeln!(f, "  [{lo:.3}, {hi:.3}): {count}")?;
            }
        }
        if self.overflow > 0 {
            writeln!(f, "  >={}: {}", self.hi, self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn places_values_in_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(99.0);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(10.0, 20.0, 2);
        h.record(9.0);
        h.record(20.0);
        h.record(1e9);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(0.0, 1.0, 4);
        let (lo0, hi0) = h.bin_range(0);
        let (lo3, hi3) = h.bin_range(3);
        assert_eq!(lo0, 0.0);
        assert!((hi0 - 0.25).abs() < 1e-12);
        assert!((lo3 - 0.75).abs() < 1e-12);
        assert!((hi3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.5);
        h.record(5.0);
        h.reset();
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_bad_bounds() {
        Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    fn nan_is_rejected_not_binned() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.record(f64::NAN);
        h.record(-f64::NAN);
        // Without the guard both NaNs would silently land in bin 0.
        assert_eq!(h.bin_count(0), 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.rejected(), 2);
        // Real samples still work after the bad ones.
        h.record(1.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn infinities_land_in_flow_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.rejected(), 0);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn reset_clears_rejected() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(f64::NAN);
        h.reset();
        assert_eq!(h.rejected(), 0);
    }

    #[test]
    fn merge_adds_buckets_exactly() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.5);
        b.record(-1.0);
        b.record(99.0);
        b.record(f64::NAN);
        a.merge(&b);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.rejected(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "identical geometry")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.merge(&Histogram::new(0.0, 10.0, 4));
    }

    #[test]
    fn display_mentions_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        let s = h.to_string();
        assert!(s.contains("n=1"));
    }
}
