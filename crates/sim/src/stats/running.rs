//! Constant-space running statistics (Welford's online algorithm).

/// Running mean / standard deviation / min / max over a value stream.
///
/// Suitable for high-volume per-packet measurements where storing samples
/// would be too expensive.
///
/// ```
/// use simnet_sim::stats::Running;
/// let mut r = Running::default();
/// for v in [1.0, 2.0, 3.0] {
///     r.record(v);
/// }
/// assert_eq!(r.count(), 3);
/// assert!((r.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(r.min(), Some(1.0));
/// assert_eq!(r.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    rejected: u64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    ///
    /// Non-finite observations (NaN, ±∞) are rejected: a single NaN would
    /// otherwise poison the mean/min/max for the rest of the run, and an
    /// infinity would pin the mean. Rejections are counted in
    /// [`Running::rejected`].
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            self.rejected += 1;
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite observations rejected by [`Running::record`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merges another accumulator into this one (parallel sweep reduction).
    pub fn merge(&mut self, other: &Running) {
        self.rejected += other.rejected;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let rejected = self.rejected;
            *self = *other;
            self.rejected = rejected;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = mean;
        self.m2 = m2;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Display for Running {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.stddev(), 0.0);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
    }

    #[test]
    fn known_variance() {
        let mut r = Running::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.record(v);
        }
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert!((r.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &v in &values[..37] {
            a.record(v);
        }
        for &v in &values[37..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.record(1.0);
        let before = a;
        a.merge(&Running::new());
        assert_eq!(a, before);

        let mut e = Running::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn non_finite_cannot_poison_the_mean() {
        let mut r = Running::new();
        r.record(1.0);
        r.record(f64::NAN);
        r.record(f64::INFINITY);
        r.record(f64::NEG_INFINITY);
        r.record(3.0);
        assert_eq!(r.count(), 2);
        assert_eq!(r.rejected(), 3);
        assert!((r.mean() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), Some(1.0));
        assert_eq!(r.max(), Some(3.0));
        assert!(r.stddev().is_finite());
    }

    #[test]
    fn merge_carries_rejections_both_ways() {
        let mut a = Running::new();
        a.record(f64::NAN); // a is empty but has a rejection
        let mut b = Running::new();
        b.record(2.0);
        b.record(f64::INFINITY);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.rejected(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);

        let mut c = Running::new();
        c.record(4.0);
        c.merge(&a);
        assert_eq!(c.count(), 2);
        assert_eq!(c.rejected(), 2);
        assert!((c.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sum_is_mean_times_count() {
        let mut r = Running::new();
        for v in [1.5, 2.5, 3.0] {
            r.record(v);
        }
        assert!((r.sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut r = Running::new();
        r.record(5.0);
        r.reset();
        assert_eq!(r.count(), 0);
    }
}
