//! The simulated time base and conversions.
//!
//! One [`Tick`] is one picosecond of simulated time, matching gem5's global
//! tick resolution. All component latencies, link serialization times and
//! clock periods are expressed in ticks.

/// Simulated time in picoseconds.
pub type Tick = u64;

/// Ticks per picosecond (the base unit).
pub const PS: Tick = 1;
/// Ticks per nanosecond.
pub const NS: Tick = 1_000;
/// Ticks per microsecond.
pub const US: Tick = 1_000_000;
/// Ticks per millisecond.
pub const MS: Tick = 1_000_000_000;
/// Ticks per second.
pub const S: Tick = 1_000_000_000_000;

/// Converts nanoseconds to ticks.
///
/// All unit conversions are checked: an unchecked `n * NS` silently wraps
/// in release builds, so a large CLI-supplied duration would fold back
/// into a short (or past) tick instead of failing. Overflow panics, in
/// const and runtime contexts alike.
///
/// ```
/// assert_eq!(simnet_sim::tick::ns(3), 3_000);
/// ```
///
/// # Panics
///
/// Panics if the duration exceeds the `u64` tick horizon (~213 days).
#[inline]
pub const fn ns(n: u64) -> Tick {
    match n.checked_mul(NS) {
        Some(t) => t,
        None => panic!("tick::ns overflow: duration exceeds the u64 tick horizon"),
    }
}

/// Converts microseconds to ticks.
///
/// # Panics
///
/// Panics if the duration exceeds the `u64` tick horizon (see [`ns`]).
#[inline]
pub const fn us(n: u64) -> Tick {
    match n.checked_mul(US) {
        Some(t) => t,
        None => panic!("tick::us overflow: duration exceeds the u64 tick horizon"),
    }
}

/// Converts milliseconds to ticks.
///
/// # Panics
///
/// Panics if the duration exceeds the `u64` tick horizon (see [`ns`]).
#[inline]
pub const fn ms(n: u64) -> Tick {
    match n.checked_mul(MS) {
        Some(t) => t,
        None => panic!("tick::ms overflow: duration exceeds the u64 tick horizon"),
    }
}

/// Converts seconds to ticks.
///
/// # Panics
///
/// Panics if the duration exceeds the `u64` tick horizon (see [`ns`]).
#[inline]
pub const fn s(n: u64) -> Tick {
    match n.checked_mul(S) {
        Some(t) => t,
        None => panic!("tick::s overflow: duration exceeds the u64 tick horizon"),
    }
}

/// Converts ticks to fractional nanoseconds.
#[inline]
pub fn to_ns(t: Tick) -> f64 {
    t as f64 / NS as f64
}

/// Converts ticks to fractional microseconds.
#[inline]
pub fn to_us(t: Tick) -> f64 {
    t as f64 / US as f64
}

/// Converts ticks to fractional seconds.
#[inline]
pub fn to_secs(t: Tick) -> f64 {
    t as f64 / S as f64
}

/// A fixed clock frequency, used to convert between cycles and ticks.
///
/// ```
/// use simnet_sim::tick::Frequency;
/// let f = Frequency::ghz(2.0);
/// assert_eq!(f.period(), 500); // 500 ps per cycle
/// assert_eq!(f.cycles_to_ticks(4), 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        Self { hz }
    }

    /// Creates a frequency from megahertz.
    pub fn mhz(mhz: f64) -> Self {
        Self::hz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn ghz(ghz: f64) -> Self {
        Self::hz(ghz * 1e9)
    }

    /// Returns the frequency in hertz.
    pub fn as_hz(&self) -> f64 {
        self.hz
    }

    /// Returns the frequency in gigahertz.
    pub fn as_ghz(&self) -> f64 {
        self.hz / 1e9
    }

    /// Clock period in ticks, rounded to the nearest tick (minimum 1).
    pub fn period(&self) -> Tick {
        ((S as f64 / self.hz).round() as Tick).max(1)
    }

    /// Converts a cycle count to ticks at this frequency.
    pub fn cycles_to_ticks(&self, cycles: u64) -> Tick {
        ((cycles as f64) * (S as f64) / self.hz).round() as Tick
    }

    /// Converts fractional cycles to ticks at this frequency.
    pub fn cycles_f64_to_ticks(&self, cycles: f64) -> Tick {
        (cycles * (S as f64) / self.hz).round() as Tick
    }

    /// Converts a tick span to whole cycles at this frequency (rounded down).
    pub fn ticks_to_cycles(&self, ticks: Tick) -> u64 {
        ((ticks as f64) * self.hz / S as f64) as u64
    }
}

impl Default for Frequency {
    /// 3 GHz, the paper's baseline core frequency (Table I).
    fn default() -> Self {
        Self::ghz(3.0)
    }
}

/// A link or bus bandwidth, used to convert bytes to serialization delay.
///
/// ```
/// use simnet_sim::tick::Bandwidth;
/// let bw = Bandwidth::gbps(100.0);
/// // 100 Gbps = 12.5 GB/s -> 80 ps per byte
/// assert_eq!(bw.bytes_to_ticks(1), 80);
/// assert_eq!(bw.bytes_to_ticks(1500), 120_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    bits_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not strictly positive and finite.
    pub fn bps(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "bandwidth must be positive");
        Self { bits_per_sec: bps }
    }

    /// Creates a bandwidth from gigabits per second.
    pub fn gbps(gbps: f64) -> Self {
        Self::bps(gbps * 1e9)
    }

    /// Creates a bandwidth from megabits per second.
    pub fn mbps(mbps: f64) -> Self {
        Self::bps(mbps * 1e6)
    }

    /// Returns the bandwidth in gigabits per second.
    pub fn as_gbps(&self) -> f64 {
        self.bits_per_sec / 1e9
    }

    /// Returns the bandwidth in bits per second.
    pub fn as_bps(&self) -> f64 {
        self.bits_per_sec
    }

    /// Serialization delay in ticks for `bytes` bytes (rounded, minimum 0).
    pub fn bytes_to_ticks(&self, bytes: u64) -> Tick {
        ((bytes as f64 * 8.0) * (S as f64) / self.bits_per_sec).round() as Tick
    }

    /// The throughput achieved by moving `bytes` bytes in `ticks` ticks,
    /// in gigabits per second. Returns 0.0 for a zero time span.
    pub fn measured_gbps(bytes: u64, ticks: Tick) -> f64 {
        if ticks == 0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) / (ticks as f64 / S as f64) / 1e9
    }
}

impl Default for Bandwidth {
    /// 100 Gbps, the paper's network bandwidth (Table I).
    fn default() -> Self {
        Self::gbps(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_scale() {
        assert_eq!(NS, 1_000 * PS);
        assert_eq!(US, 1_000 * NS);
        assert_eq!(MS, 1_000 * US);
        assert_eq!(S, 1_000 * MS);
    }

    #[test]
    fn conversions_accept_the_exact_horizon() {
        // The largest representable duration in each unit must convert,
        // one past it must panic (covered below), and none may wrap.
        assert_eq!(ns(u64::MAX / NS), (u64::MAX / NS) * NS);
        assert_eq!(us(u64::MAX / US), (u64::MAX / US) * US);
        assert_eq!(ms(u64::MAX / MS), (u64::MAX / MS) * MS);
        assert_eq!(s(u64::MAX / S), (u64::MAX / S) * S);
    }

    #[test]
    #[should_panic(expected = "tick::ns overflow")]
    fn ns_past_horizon_panics_instead_of_wrapping() {
        ns(u64::MAX / NS + 1);
    }

    #[test]
    #[should_panic(expected = "tick::us overflow")]
    fn us_past_horizon_panics_instead_of_wrapping() {
        us(u64::MAX / US + 1);
    }

    #[test]
    #[should_panic(expected = "tick::ms overflow")]
    fn ms_past_horizon_panics_instead_of_wrapping() {
        ms(u64::MAX / MS + 1);
    }

    #[test]
    #[should_panic(expected = "tick::s overflow")]
    fn s_past_horizon_panics_instead_of_wrapping() {
        s(u64::MAX / S + 1);
    }

    #[test]
    fn conversion_round_trips() {
        assert_eq!(ns(1_500), us(1) + ns(500));
        assert!((to_ns(ns(7)) - 7.0).abs() < 1e-12);
        assert!((to_us(us(3)) - 3.0).abs() < 1e-12);
        assert!((to_secs(s(2)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_periods() {
        assert_eq!(Frequency::ghz(1.0).period(), 1_000);
        assert_eq!(Frequency::ghz(2.0).period(), 500);
        assert_eq!(Frequency::ghz(4.0).period(), 250);
        assert_eq!(Frequency::ghz(3.0).period(), 333);
    }

    #[test]
    fn frequency_cycle_conversions() {
        let f = Frequency::ghz(2.0);
        assert_eq!(f.cycles_to_ticks(10), 5_000);
        assert_eq!(f.ticks_to_cycles(5_000), 10);
        assert_eq!(f.cycles_f64_to_ticks(0.5), 250);
    }

    #[test]
    fn default_frequency_is_three_ghz() {
        assert!((Frequency::default().as_ghz() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn frequency_rejects_zero() {
        Frequency::hz(0.0);
    }

    #[test]
    fn bandwidth_serialization_delay() {
        let bw = Bandwidth::gbps(10.0);
        // 10 Gbps -> 0.8 ns per byte.
        assert_eq!(bw.bytes_to_ticks(1), 800);
        assert_eq!(bw.bytes_to_ticks(1000), 800_000);
    }

    #[test]
    fn bandwidth_measurement() {
        // 1000 bytes in 80 ns = 100 Gbps.
        let gbps = Bandwidth::measured_gbps(1000, ns(80));
        assert!((gbps - 100.0).abs() < 1e-9);
        assert_eq!(Bandwidth::measured_gbps(100, 0), 0.0);
    }

    #[test]
    fn default_bandwidth_is_hundred_gbps() {
        assert!((Bandwidth::default().as_gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_rejects_negative() {
        Bandwidth::bps(-1.0);
    }
}
