//! Deterministic discrete-event simulation kernel for `simnet`.
//!
//! This crate is the substrate every other `simnet` crate builds on. It
//! provides:
//!
//! * [`Tick`] — the global simulated time base (1 tick = 1 picosecond, the
//!   same resolution gem5 uses), plus conversion helpers in [`tick`].
//! * [`EventQueue`] — a deterministic, stable-ordered pending-event set
//!   generic over the event payload type. Implemented as a gem5-style
//!   two-level ladder (bucketed near-future window + far-future overflow
//!   heap) that drains same-tick cohorts with one sort instead of
//!   re-heapifying per event; the original heap survives as
//!   [`event::BinaryHeapQueue`], the differential-test reference model.
//! * [`stats`] — gem5-style statistics: scalars, running distributions,
//!   histograms and sample sets with exact quantiles.
//! * [`random`] — seeded pseudo-random distributions (fixed, uniform,
//!   exponential, Zipfian) used by load generators and workloads.
//! * [`trace`] — the packet-lifecycle tracing layer: a ring-buffered
//!   [`Tracer`] handle components clone, canonical text/JSON
//!   serialization, and a stable 64-bit trace hash for golden-file
//!   comparison. Disabled by default; a disabled tracer costs one
//!   null-check per emit.
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   (its own RNG streams, independent of the workload RNG) queried by
//!   components through a cloneable [`FaultInjector`] handle. Disabled by
//!   default with the same null-check discipline as the tracer.
//!
//! # Determinism
//!
//! Two runs with identical configurations and seeds produce identical event
//! orderings and therefore identical statistics. The event queue breaks
//! same-tick ties by (priority, insertion sequence), never by allocation
//! order or hash iteration.
//!
//! # Example
//!
//! ```
//! use simnet_sim::{EventQueue, tick};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Hello, World }
//!
//! let mut q = EventQueue::new();
//! q.schedule(tick::ns(5), Ev::World);
//! q.schedule(tick::ns(1), Ev::Hello);
//! assert_eq!(q.pop().map(|e| e.payload), Some(Ev::Hello));
//! assert_eq!(q.pop().map(|e| e.payload), Some(Ev::World));
//! ```

pub mod event;
pub mod fault;
pub mod random;
pub mod stats;
pub mod tick;
pub mod trace;

pub use event::{Event, EventKey, EventQueue, Priority};
pub use fault::{FaultCounts, FaultInjector, FaultKind, FaultPlan};
pub use tick::Tick;
pub use trace::{Component, DropClass, Stage, TraceEvent, Tracer};
