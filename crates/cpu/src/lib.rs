//! Core timing models for `simnet`.
//!
//! Software (the DPDK/kernel stacks and the benchmark applications) is
//! expressed as a stream of [`Op`]s — compute batches, loads, stores —
//! generated per packet burst. A [`Core`] prices that stream against the
//! [`simnet_mem::MemorySystem`]:
//!
//! * [`CoreKind::InOrder`] serializes every memory access behind the
//!   pipeline (a simple stall-on-use in-order core).
//! * [`CoreKind::OutOfOrder`] overlaps independent misses up to the
//!   window allowed by the reorder buffer, load queue and L1D MSHRs —
//!   which is exactly what the paper's ROB sweep (Fig. 17d–f) and
//!   OoO-vs-in-order comparison (Fig. 16) exercise.
//!
//! Dependent loads ([`Op::DependentLoad`]) serialize even on the OoO core;
//! pointer-chasing code (hash-table walks in the KV store) uses them.

pub mod core;
pub mod ops;

pub use crate::core::{Core, CoreConfig, CoreKind, CoreStats};
pub use ops::Op;
