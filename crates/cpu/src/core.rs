//! The core timing engine.

use std::collections::VecDeque;

use simnet_mem::system::HitLevel;
use simnet_mem::MemorySystem;
use simnet_sim::stats::Counter;
use simnet_sim::tick::{Frequency, Tick};

use crate::ops::Op;

/// Pipeline style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Stall-on-use in-order pipeline: every memory access serializes.
    InOrder,
    /// Out-of-order pipeline: independent misses overlap within the
    /// ROB/LQ/MSHR window.
    OutOfOrder,
}

/// Core microarchitecture parameters (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Pipeline style.
    pub kind: CoreKind,
    /// Superscalar issue width.
    pub width: u64,
    /// Reorder-buffer entries (bounds how far execution runs ahead of an
    /// incomplete load).
    pub rob: usize,
    /// Load-queue entries.
    pub lq: usize,
    /// Store-queue entries.
    pub sq: usize,
    /// Core clock.
    pub frequency: Frequency,
}

impl CoreConfig {
    /// The paper's simulated out-of-order core (Table I): 4-wide, ROB 128,
    /// LQ/SQ 68/72, 3 GHz.
    pub fn table1_ooo() -> Self {
        Self {
            kind: CoreKind::OutOfOrder,
            width: 4,
            rob: 128,
            lq: 68,
            sq: 72,
            frequency: Frequency::ghz(3.0),
        }
    }

    /// A simple in-order core at the same clock (Fig. 16's comparison
    /// point): 2-wide, no memory-level parallelism.
    pub fn in_order() -> Self {
        Self {
            kind: CoreKind::InOrder,
            width: 2,
            rob: 1,
            lq: 1,
            sq: 4,
            frequency: Frequency::ghz(3.0),
        }
    }

    /// Returns this configuration with a different ROB size (Fig. 17d–f).
    pub fn with_rob(mut self, rob: usize) -> Self {
        self.rob = rob.max(1);
        self
    }

    /// Returns this configuration at a different clock (Fig. 15).
    pub fn with_frequency(mut self, freq: Frequency) -> Self {
        self.frequency = freq;
        self
    }

    fn validate(&self) {
        assert!(self.width > 0, "width must be positive");
        assert!(
            self.rob > 0 && self.lq > 0 && self.sq > 0,
            "queues must be positive"
        );
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::table1_ooo()
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: Counter,
    /// Loads issued.
    pub loads: Counter,
    /// Stores issued.
    pub stores: Counter,
    /// Ticks spent in pure compute.
    pub compute_ticks: Counter,
    /// Total ticks from `execute` calls (compute + memory stalls).
    pub total_ticks: Counter,
}

impl CoreStats {
    /// Instructions per cycle over everything executed (0.0 when idle).
    pub fn ipc(&self, freq: Frequency) -> f64 {
        let total = self.total_ticks.value();
        if total == 0 {
            return 0.0;
        }
        self.instructions.value() as f64 / freq.ticks_to_cycles(total) as f64
    }

    /// Fraction of time stalled on memory.
    pub fn stall_fraction(&self) -> f64 {
        let total = self.total_ticks.value();
        if total == 0 {
            return 0.0;
        }
        1.0 - (self.compute_ticks.value() as f64 / total as f64).min(1.0)
    }
}

impl Core {
    /// Registers the `system.cpu.*` statistics section.
    pub fn register_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        self.register_stats_at("system.cpu", reg);
    }

    /// Registers this core's statistics under an arbitrary scope — the
    /// multi-lcore harness uses `system.cpu.lcore<i>` per worker core.
    pub fn register_stats_at(&self, scope: &str, reg: &mut simnet_sim::stats::StatsRegistry) {
        let c = &self.stats;
        reg.scoped(scope, |reg| {
            reg.scalar(
                "committedInsts",
                c.instructions.value(),
                "instructions committed",
            );
            reg.scalar("num_loads", c.loads.value(), "loads issued");
            reg.scalar("num_stores", c.stores.value(), "stores issued");
            reg.float("ipc", c.ipc(self.cfg.frequency), "instructions per cycle");
            reg.float(
                "stall_fraction",
                c.stall_fraction(),
                "fraction of time memory-stalled",
            );
            if reg.full() {
                reg.scalar(
                    "compute_ticks",
                    c.compute_ticks.value(),
                    "ticks spent in pure compute",
                );
                reg.scalar(
                    "total_ticks",
                    c.total_ticks.value(),
                    "ticks across all execute calls",
                );
            }
        });
    }
}

/// A single core executing op streams against a memory system.
///
/// ```
/// use simnet_cpu::{Core, CoreConfig, Op};
/// use simnet_mem::{MemoryConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
/// let mut core = Core::new(CoreConfig::table1_ooo());
/// let done = core.execute(0, &[Op::Compute(400)], &mut mem);
/// // 400 instructions, 4-wide at 3 GHz -> 100 cycles = ~33.3 ns.
/// assert!((33_000..34_000).contains(&done));
/// ```
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    stats: CoreStats,
}

impl Core {
    /// Creates a core.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            stats: CoreStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    /// Changes the clock frequency (Fig. 15 sweeps this).
    pub fn set_frequency(&mut self, freq: Frequency) {
        self.cfg.frequency = freq;
    }

    /// Executes `ops` starting at `now`; returns the completion tick.
    /// The pipeline drains at the end of the stream (a run-to-completion
    /// loop iteration boundary).
    pub fn execute(&mut self, now: Tick, ops: &[Op], mem: &mut MemorySystem) -> Tick {
        // Keep the memory system's notion of the core clock in sync so
        // L1/L2 hit latencies scale with frequency.
        if mem.core_frequency() != self.cfg.frequency {
            mem.set_core_frequency(self.cfg.frequency);
        }
        let done = match self.cfg.kind {
            CoreKind::InOrder => self.execute_in_order(now, ops, mem),
            CoreKind::OutOfOrder => self.execute_ooo(now, ops, mem),
        };
        self.stats.total_ticks.add(done - now);
        done
    }

    fn compute_ticks(&self, instructions: u64) -> Tick {
        self.cfg
            .frequency
            .cycles_f64_to_ticks(instructions as f64 / self.cfg.width as f64)
    }

    fn execute_in_order(&mut self, now: Tick, ops: &[Op], mem: &mut MemorySystem) -> Tick {
        let mut cursor = now;
        // Even a stall-on-use core has a small store buffer; it uses the
        // same drain mechanism as the OoO core, just with far fewer
        // entries, so store-heavy streams back-pressure sooner.
        let mut stores: VecDeque<Tick> = VecDeque::new();
        let issue_slot = self
            .cfg
            .frequency
            .cycles_f64_to_ticks(1.0 / self.cfg.width as f64);
        for op in ops {
            match *op {
                Op::Compute(n) => {
                    let t = self.compute_ticks(n);
                    cursor += t;
                    self.stats.compute_ticks.add(t);
                    self.stats.instructions.add(n);
                }
                Op::Load(addr) | Op::DependentLoad(addr) => {
                    let (lat, _) = mem.core_read(cursor, addr, 8);
                    cursor += lat; // stall-on-use: every load serializes
                    self.stats.loads.inc();
                    self.stats.instructions.inc();
                }
                Op::Store(addr) => {
                    while stores.len() >= self.cfg.sq {
                        let comp = stores.pop_front().expect("non-empty");
                        cursor = cursor.max(comp);
                    }
                    let (lat, _) = mem.core_write(cursor, addr, 8);
                    stores.push_back(cursor + lat);
                    cursor += issue_slot;
                    self.stats.stores.inc();
                    self.stats.instructions.inc();
                }
                Op::Ifetch(addr) => {
                    let (lat, level) = mem.instr_fetch(cursor, addr);
                    if level != HitLevel::L1 {
                        cursor += lat;
                    }
                }
            }
        }
        for comp in stores {
            cursor = cursor.max(comp);
        }
        cursor
    }

    fn execute_ooo(&mut self, now: Tick, ops: &[Op], mem: &mut MemorySystem) -> Tick {
        let mut cursor = now;
        // (completion tick, instruction index at issue).
        let mut loads: VecDeque<(Tick, u64)> = VecDeque::new();
        let mut stores: VecDeque<Tick> = VecDeque::new();
        let mut instr: u64 = 0;
        let mlp_limit = self.cfg.lq.min(mem.config().l1d_mshrs.max(1));
        let issue_slot = self
            .cfg
            .frequency
            .cycles_f64_to_ticks(1.0 / self.cfg.width as f64);

        for op in ops {
            // Retire any loads that have completed by now.
            while loads.front().is_some_and(|&(c, _)| c <= cursor) {
                loads.pop_front();
            }
            // ROB pressure: cannot run more than `rob` instructions past
            // the oldest incomplete load.
            while let Some(&(comp, idx)) = loads.front() {
                if instr.saturating_sub(idx) >= self.cfg.rob as u64 {
                    cursor = cursor.max(comp);
                    loads.pop_front();
                } else {
                    break;
                }
            }

            match *op {
                Op::Compute(n) => {
                    let t = self.compute_ticks(n);
                    cursor += t;
                    self.stats.compute_ticks.add(t);
                    self.stats.instructions.add(n);
                    instr += n;
                }
                Op::Load(addr) => {
                    // MSHR/LQ limit: wait for the oldest load if full.
                    while loads.len() >= mlp_limit {
                        let (comp, _) = loads.pop_front().expect("non-empty");
                        cursor = cursor.max(comp);
                    }
                    let (lat, level) = mem.core_read(cursor, addr, 8);
                    if level != HitLevel::L1 {
                        loads.push_back((cursor + lat, instr));
                    }
                    cursor += issue_slot;
                    self.stats.loads.inc();
                    self.stats.instructions.inc();
                    instr += 1;
                }
                Op::DependentLoad(addr) => {
                    let (lat, _) = mem.core_read(cursor, addr, 8);
                    cursor += lat; // serializes the dependence chain
                    self.stats.loads.inc();
                    self.stats.instructions.inc();
                    instr += 1;
                }
                Op::Store(addr) => {
                    while stores.len() >= self.cfg.sq {
                        let comp = stores.pop_front().expect("non-empty");
                        cursor = cursor.max(comp);
                    }
                    let (lat, _) = mem.core_write(cursor, addr, 8);
                    stores.push_back(cursor + lat);
                    cursor += issue_slot;
                    self.stats.stores.inc();
                    self.stats.instructions.inc();
                    instr += 1;
                }
                Op::Ifetch(addr) => {
                    let (lat, level) = mem.instr_fetch(cursor, addr);
                    if level != HitLevel::L1 {
                        // Front-end stall; fetch is in-order even OoO.
                        cursor += lat;
                    }
                }
            }
        }

        // Drain: the loop iteration is complete when all in-flight memory
        // operations have retired.
        for (comp, _) in loads {
            cursor = cursor.max(comp);
        }
        for comp in stores {
            cursor = cursor.max(comp);
        }
        cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_mem::MemoryConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig::table1_gem5())
    }

    fn miss_addrs(n: usize, stride: u64) -> Vec<Op> {
        (0..n as u64)
            .map(|i| Op::Load(0x7000_0000 + i * stride))
            .collect()
    }

    #[test]
    fn compute_throughput_matches_width() {
        let mut m = mem();
        let mut core = Core::new(CoreConfig::table1_ooo());
        let done = core.execute(0, &[Op::Compute(1200)], &mut m);
        // 1200 instr / 4-wide = 300 cycles at 3 GHz ≈ 100 ns.
        assert!((99_000..101_000).contains(&done), "done={done}");
    }

    #[test]
    fn frequency_scales_compute() {
        let mut m = mem();
        let mut slow = Core::new(CoreConfig::table1_ooo().with_frequency(Frequency::ghz(1.0)));
        let mut fast = Core::new(CoreConfig::table1_ooo().with_frequency(Frequency::ghz(4.0)));
        let t_slow = slow.execute(0, &[Op::Compute(400)], &mut m);
        let t_fast = fast.execute(0, &[Op::Compute(400)], &mut m);
        assert_eq!(t_slow, 4 * t_fast);
    }

    #[test]
    fn ooo_overlaps_independent_misses() {
        let ops = miss_addrs(6, 4096); // distinct lines, all DRAM misses
        let mut m1 = mem();
        let mut ooo = Core::new(CoreConfig::table1_ooo());
        let t_ooo = ooo.execute(0, &ops, &mut m1);

        let mut m2 = mem();
        let mut ino = Core::new(CoreConfig::in_order());
        let t_ino = ino.execute(0, &ops, &mut m2);

        assert!(
            t_ooo * 2 < t_ino,
            "OoO ({t_ooo}) should be far faster than in-order ({t_ino})"
        );
    }

    #[test]
    fn dependent_loads_serialize_even_ooo() {
        let dep: Vec<Op> = (0..6u64)
            .map(|i| Op::DependentLoad(0x7100_0000 + i * 4096))
            .collect();
        let indep = miss_addrs(6, 4096);
        let mut m1 = mem();
        let mut c1 = Core::new(CoreConfig::table1_ooo());
        let t_dep = c1.execute(0, &dep, &mut m1);
        let mut m2 = mem();
        let mut c2 = Core::new(CoreConfig::table1_ooo());
        let t_indep = c2.execute(0, &indep, &mut m2);
        assert!(t_dep > t_indep * 2, "dep {t_dep} vs indep {t_indep}");
    }

    #[test]
    fn small_rob_limits_mlp_with_spaced_misses() {
        // Misses separated by enough compute that a small ROB cannot hold
        // two in flight, but a large ROB can.
        let mut ops = Vec::new();
        for i in 0..8u64 {
            ops.push(Op::Load(0x7200_0000 + i * 4096));
            ops.push(Op::Compute(100));
        }
        let mut m1 = mem();
        let mut small = Core::new(CoreConfig::table1_ooo().with_rob(32));
        let t_small = small.execute(0, &ops, &mut m1);
        let mut m2 = mem();
        let mut large = Core::new(CoreConfig::table1_ooo().with_rob(512));
        let t_large = large.execute(0, &ops, &mut m2);
        assert!(
            t_large < t_small,
            "ROB 512 ({t_large}) should beat ROB 32 ({t_small})"
        );
    }

    #[test]
    fn l1_hits_do_not_stall() {
        let mut m = mem();
        let mut core = Core::new(CoreConfig::table1_ooo());
        // Warm one line, then hammer it.
        core.execute(0, &[Op::Load(0x7300_0000)], &mut m);
        let start = 1_000_000;
        let ops = vec![Op::Load(0x7300_0000); 100];
        let done = core.execute(start, &ops, &mut m);
        // 100 issue slots at 4-wide 3 GHz ≈ 25 cycles ≈ 8.3 ns.
        assert!(done - start < 10_000, "hits took {}", done - start);
    }

    #[test]
    fn ifetch_miss_stalls_but_hot_code_is_free() {
        let mut m = mem();
        let mut core = Core::new(CoreConfig::table1_ooo());
        let cold = core.execute(0, &[Op::Ifetch(0x4000_0000)], &mut m);
        let start = cold + 1;
        let warm = core.execute(start, &[Op::Ifetch(0x4000_0000)], &mut m) - start;
        assert!(cold > 0);
        assert_eq!(warm, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mem();
        let mut core = Core::new(CoreConfig::table1_ooo());
        core.execute(
            0,
            &[Op::Compute(10), Op::Load(0x1000), Op::Store(0x2000)],
            &mut m,
        );
        assert_eq!(core.stats().instructions.value(), 12);
        assert_eq!(core.stats().loads.value(), 1);
        assert_eq!(core.stats().stores.value(), 1);
        assert!(core.stats().total_ticks.value() > 0);
        core.reset_stats();
        assert_eq!(core.stats().instructions.value(), 0);
    }

    #[test]
    fn ipc_and_stall_fraction_are_sane() {
        let mut m = mem();
        let mut core = Core::new(CoreConfig::table1_ooo());
        core.execute(0, &miss_addrs(20, 4096), &mut m);
        let ipc = core.stats().ipc(core.config().frequency);
        assert!(ipc > 0.0 && ipc < 4.0);
        let stall = core.stats().stall_fraction();
        assert!(
            stall > 0.5,
            "miss-bound stream should mostly stall: {stall}"
        );
    }

    #[test]
    fn store_queue_backpressure() {
        // More DRAM-missing stores than SQ entries must eventually stall.
        let ops: Vec<Op> = (0..100u64)
            .map(|i| Op::Store(0x7400_0000 + i * 4096))
            .collect();
        let mut m = mem();
        let mut core = Core::new(CoreConfig::table1_ooo());
        let done = core.execute(0, &ops, &mut m);
        // If stores were free this would be ~100 issue slots (~8 ns).
        assert!(done > 100_000, "SQ pressure must show: {done}");
    }

    #[test]
    fn register_stats_reports_the_legacy_cpu_set() {
        use simnet_sim::stats::{DumpLevel, StatValue, StatsRegistry};
        let mut m = mem();
        let mut core = Core::new(CoreConfig::table1_ooo());
        core.execute(0, &[Op::Compute(10), Op::Load(0x1000)], &mut m);
        let mut reg = StatsRegistry::new();
        core.register_stats(&mut reg);
        assert_eq!(
            reg.get("system.cpu.committedInsts"),
            Some(&StatValue::Scalar(11))
        );
        assert!(reg.get("system.cpu.ipc").is_some());
        assert!(
            reg.get("system.cpu.total_ticks").is_none(),
            "compat level omits post-migration extras"
        );
        let mut full = StatsRegistry::with_level(DumpLevel::Full);
        core.register_stats(&mut full);
        assert!(full.get("system.cpu.total_ticks").is_some());
    }

    #[test]
    fn in_order_core_is_deterministic() {
        let run = || {
            let mut m = mem();
            let mut core = Core::new(CoreConfig::in_order());
            core.execute(0, &miss_addrs(10, 4096), &mut m)
        };
        assert_eq!(run(), run());
    }
}
