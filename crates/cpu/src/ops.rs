//! The op-stream vocabulary software models are written in.

use simnet_mem::Addr;

/// One unit of work emitted by a software model.
///
/// Ops model the *performance-relevant* shape of code, not its semantics:
/// a burst of arithmetic is one [`Op::Compute`]; each cache-line (or
/// smaller) touch is one load/store at a concrete simulated address so the
/// cache hierarchy sees a faithful access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` back-to-back ALU/branch instructions (retire at pipeline width).
    Compute(u64),
    /// An independent load of up to 8 bytes; may overlap other loads on an
    /// out-of-order core.
    Load(Addr),
    /// A load on the critical dependence chain (pointer chase); the
    /// pipeline cannot issue past it until it completes.
    DependentLoad(Addr),
    /// A store of up to 8 bytes (retires through the store queue).
    Store(Addr),
    /// An instruction-fetch touch: one line of code footprint at this
    /// address (models i-cache working set).
    Ifetch(Addr),
}

impl Op {
    /// Number of instructions this op represents.
    pub fn instructions(&self) -> u64 {
        match self {
            Op::Compute(n) => *n,
            Op::Load(_) | Op::DependentLoad(_) | Op::Store(_) => 1,
            // A fetched line carries several instructions; the compute they
            // perform is accounted separately by Compute ops.
            Op::Ifetch(_) => 0,
        }
    }

    /// Whether this op references memory data.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Load(_) | Op::DependentLoad(_) | Op::Store(_))
    }
}

/// Convenience: emit loads touching every cache line of `[addr, addr+len)`.
pub fn loads_over(ops: &mut Vec<Op>, addr: Addr, len: u64) {
    let lines = simnet_mem::lines_touched(addr, len);
    let first = addr & !(simnet_mem::CACHE_LINE - 1);
    for i in 0..lines {
        ops.push(Op::Load(first + i * simnet_mem::CACHE_LINE));
    }
}

/// Convenience: emit stores touching every cache line of `[addr, addr+len)`.
pub fn stores_over(ops: &mut Vec<Op>, addr: Addr, len: u64) {
    let lines = simnet_mem::lines_touched(addr, len);
    let first = addr & !(simnet_mem::CACHE_LINE - 1);
    for i in 0..lines {
        ops.push(Op::Store(first + i * simnet_mem::CACHE_LINE));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_accounting() {
        assert_eq!(Op::Compute(10).instructions(), 10);
        assert_eq!(Op::Load(0).instructions(), 1);
        assert_eq!(Op::Store(0).instructions(), 1);
        assert_eq!(Op::Ifetch(0).instructions(), 0);
    }

    #[test]
    fn memory_classification() {
        assert!(Op::Load(0).is_memory());
        assert!(Op::DependentLoad(0).is_memory());
        assert!(Op::Store(0).is_memory());
        assert!(!Op::Compute(1).is_memory());
        assert!(!Op::Ifetch(0).is_memory());
    }

    #[test]
    fn loads_over_covers_lines() {
        let mut ops = Vec::new();
        loads_over(&mut ops, 60, 8); // straddles a boundary
        assert_eq!(ops, vec![Op::Load(0), Op::Load(64)]);
        ops.clear();
        loads_over(&mut ops, 0, 1518);
        assert_eq!(ops.len(), 24);
    }

    #[test]
    fn stores_over_covers_lines() {
        let mut ops = Vec::new();
        stores_over(&mut ops, 128, 64);
        assert_eq!(ops, vec![Op::Store(128)]);
    }
}
