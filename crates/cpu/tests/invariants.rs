//! Property-based invariants of the core timing models.

use proptest::prelude::*;
use simnet_cpu::{Core, CoreConfig, Op};
use simnet_mem::{MemoryConfig, MemorySystem};
use simnet_sim::tick::Frequency;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..200).prop_map(Op::Compute),
        (0u64..1 << 22).prop_map(|o| Op::Load(0x4000_0000 + (o & !7))),
        (0u64..1 << 22).prop_map(|o| Op::DependentLoad(0x5000_0000 + (o & !7))),
        (0u64..1 << 22).prop_map(|o| Op::Store(0x6000_0000 + (o & !7))),
        (0u64..1 << 20).prop_map(|o| Op::Ifetch(0x7000_0000 + (o & !63))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Time always advances by at least the pure-compute lower bound and
    /// execution never goes backwards.
    #[test]
    fn execution_time_bounds(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut core = Core::new(CoreConfig::table1_ooo());
        let start = 1_000_000;
        let end = core.execute(start, &ops, &mut mem);
        prop_assert!(end >= start);
        let instructions: u64 = ops.iter().map(Op::instructions).sum();
        let cfg = *core.config();
        let min_ticks = cfg
            .frequency
            .cycles_f64_to_ticks(instructions as f64 / cfg.width as f64);
        // Allow rounding slop of one cycle per op.
        prop_assert!(
            end - start + 400 * ops.len() as u64 >= min_ticks,
            "faster than the width bound: {} < {min_ticks}",
            end - start
        );
    }

    /// The out-of-order core is never slower than the in-order core on
    /// the same op stream against identical memory images.
    #[test]
    fn ooo_never_loses_to_in_order(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut mem_a = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut ooo = Core::new(CoreConfig::table1_ooo());
        let t_ooo = ooo.execute(0, &ops, &mut mem_a);

        let mut mem_b = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut ino = Core::new(CoreConfig::in_order());
        let t_ino = ino.execute(0, &ops, &mut mem_b);

        // Tolerance: the in-order core is 2-wide, the OoO core 4-wide;
        // for tiny streams rounding can tie them.
        prop_assert!(
            t_ooo <= t_ino + 1_000,
            "OoO ({t_ooo}) slower than in-order ({t_ino})"
        );
    }

    /// Doubling the clock never slows a compute-only stream, and scales
    /// it by exactly 2x when memory is untouched.
    #[test]
    fn frequency_scaling_is_exact_for_compute(n in 1u64..10_000) {
        let ops = [Op::Compute(n)];
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut slow = Core::new(CoreConfig::table1_ooo().with_frequency(Frequency::ghz(1.5)));
        let mut fast = Core::new(CoreConfig::table1_ooo().with_frequency(Frequency::ghz(3.0)));
        let t_slow = slow.execute(0, &ops, &mut mem);
        let t_fast = fast.execute(0, &ops, &mut mem);
        prop_assert!((t_slow as i64 - 2 * t_fast as i64).abs() <= 2,
            "2x clock must halve compute: {t_slow} vs {t_fast}");
    }

    /// Bigger ROBs never hurt.
    #[test]
    fn rob_growth_is_monotone_beneficial(
        ops in prop::collection::vec(op_strategy(), 20..120),
    ) {
        let run = |rob: usize| {
            let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
            let mut core = Core::new(CoreConfig::table1_ooo().with_rob(rob));
            core.execute(0, &ops, &mut mem)
        };
        let small = run(16);
        let large = run(512);
        prop_assert!(large <= small + 1_000, "ROB 512 ({large}) worse than 16 ({small})");
    }

    /// Instruction accounting matches the op stream exactly.
    #[test]
    fn instruction_accounting(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut core = Core::new(CoreConfig::table1_ooo());
        core.execute(0, &ops, &mut mem);
        let expected: u64 = ops.iter().map(Op::instructions).sum();
        prop_assert_eq!(core.stats().instructions.value(), expected);
    }
}
