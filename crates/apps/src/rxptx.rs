//! RXpTX: receive, process for a configurable interval, transmit.
//!
//! "RXpTX receives a burst of packets from NIC, waits for a processing
//! interval, and transmits them over the network. Changing processing time
//! can model network functions with different DMA to core use distances"
//! (§V). The paper sweeps the interval from 10 ns to 10 µs (Fig. 13) and
//! uses 10 ns / 1 µs as its fast/slow configurations.

use simnet_cpu::Op;
use simnet_mem::Addr;
use simnet_nic::i8254x::RxCompletion;
use simnet_sim::tick::Frequency;
use simnet_sim::Tick;
use simnet_stack::{AppAction, PacketApp};

/// The RXpTX application.
#[derive(Debug)]
pub struct RxpTx {
    proc_time: Tick,
    instructions: u64,
    forwarded: u64,
}

impl RxpTx {
    /// Creates RXpTX with the given per-packet processing interval. The
    /// interval is converted to instructions at the paper's reference
    /// core (4-wide, 3 GHz), so it scales with core frequency in the
    /// Fig. 15 sweep — processing is compute, not a wall-clock sleep.
    pub fn new(proc_time: Tick) -> Self {
        let reference = Frequency::ghz(3.0);
        let cycles = reference.ticks_to_cycles(proc_time);
        Self {
            proc_time,
            instructions: cycles * 4,
            forwarded: 0,
        }
    }

    /// The configured processing interval.
    pub fn proc_time(&self) -> Tick {
        self.proc_time
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl PacketApp for RxpTx {
    fn name(&self) -> &'static str {
        "rxptx"
    }

    fn on_burst(&mut self, _count: usize, ops: &mut Vec<Op>) {
        // "Receives a burst of packets from NIC, waits for a processing
        // interval, and transmits them" — the interval is paid once per
        // received burst.
        ops.push(Op::Compute(self.instructions.max(4)));
    }

    fn on_packet(
        &mut self,
        completion: RxCompletion,
        mbuf_addr: Addr,
        ops: &mut Vec<Op>,
    ) -> AppAction {
        // Touch the header (the forwarding decision).
        ops.push(Op::Load(mbuf_addr));
        ops.push(Op::Compute(8));
        self.forwarded += 1;
        // Zero-copy: the owned RX buffer is re-enqueued for TX as-is.
        AppAction::Forward(completion.packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::PacketBuilder;
    use simnet_sim::tick::{ns, us};

    fn completion() -> RxCompletion {
        RxCompletion {
            visible_at: 0,
            packet: PacketBuilder::new().frame_len(128).build(1),
            slot: 0,
        }
    }

    #[test]
    fn processing_time_converts_to_instructions() {
        // 1 µs at 3 GHz, 4-wide = 3000 cycles = 12000 instructions.
        let app = RxpTx::new(us(1));
        assert_eq!(app.instructions, 12_000);
        // 10 ns = 30 cycles = 120 instructions.
        assert_eq!(RxpTx::new(ns(10)).instructions, 120);
    }

    #[test]
    fn forwards_every_packet() {
        let mut app = RxpTx::new(ns(100));
        let mut ops = Vec::new();
        let action = app.on_packet(completion(), 0, &mut ops);
        assert!(matches!(action, AppAction::Forward(_)));
        assert_eq!(app.forwarded(), 1);
        assert_eq!(app.proc_time(), ns(100));
    }

    #[test]
    fn interval_is_paid_once_per_burst() {
        let mut app = RxpTx::new(us(1));
        let mut burst_ops = Vec::new();
        app.on_burst(32, &mut burst_ops);
        let burst_instr: u64 = burst_ops.iter().map(simnet_cpu::Op::instructions).sum();
        assert_eq!(burst_instr, 12_000);
        let mut pkt_ops = Vec::new();
        app.on_packet(completion(), 0, &mut pkt_ops);
        let pkt_instr: u64 = pkt_ops.iter().map(simnet_cpu::Op::instructions).sum();
        assert!(pkt_instr < 100, "per-packet work is small: {pkt_instr}");
    }

    #[test]
    fn longer_interval_means_more_instructions() {
        let fast = RxpTx::new(ns(10));
        let slow = RxpTx::new(us(10));
        assert!(slow.instructions > fast.instructions * 500);
    }

    #[test]
    fn zero_interval_still_costs_something() {
        let mut app = RxpTx::new(0);
        let mut ops = Vec::new();
        app.on_burst(1, &mut ops);
        app.on_packet(completion(), 0, &mut ops);
        let instr: u64 = ops.iter().map(Op::instructions).sum();
        assert!(instr >= 4);
    }
}
