//! TouchFwd and TouchDrop: deep network functions that bring the entire
//! payload to the core.
//!
//! "TouchFwd extends TestPMD with an extra loop that brings the payload to
//! the core (subsequently to L2 and L1 caches). TouchFwd can be used to
//! model deep network functions such as Deep Packet Inspection. ...
//! TouchDrop is a variation of TouchFwd that does not implement the
//! transmission phase" (§V).

use simnet_cpu::{ops, Op};
use simnet_mem::Addr;
use simnet_nic::i8254x::RxCompletion;
use simnet_stack::{AppAction, PacketApp};

/// Instructions of inspection work per payload byte (an unvectorized
/// byte-wise scan loop: load, extract, accumulate, compare, branch).
const INSTRUCTIONS_PER_BYTE: u64 = 10;

fn touch_payload(packet_len: usize, addr: Addr, ops_out: &mut Vec<Op>) {
    let len = packet_len as u64;
    // Every payload cache line comes to the core...
    ops::loads_over(ops_out, addr, len);
    // ...and the byte loop consumes it.
    ops_out.push(Op::Compute(len * INSTRUCTIONS_PER_BYTE));
}

/// TouchFwd: touch every payload byte, then forward at L2.
#[derive(Debug, Default)]
pub struct TouchFwd {
    forwarded: u64,
}

impl TouchFwd {
    /// Creates the application.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl PacketApp for TouchFwd {
    fn name(&self) -> &'static str {
        "touchfwd"
    }

    fn on_packet(
        &mut self,
        completion: RxCompletion,
        mbuf_addr: Addr,
        ops: &mut Vec<Op>,
    ) -> AppAction {
        ops.push(Op::Compute(40));
        touch_payload(completion.packet.len(), mbuf_addr, ops);
        // Owned handle: macswap mutates the pooled buffer in place.
        let mut packet = completion.packet;
        packet.macswap();
        ops.push(Op::Store(mbuf_addr));
        self.forwarded += 1;
        AppAction::Forward(packet)
    }
}

/// TouchDrop: touch every payload byte, then drop.
#[derive(Debug, Default)]
pub struct TouchDrop {
    consumed: u64,
}

impl TouchDrop {
    /// Creates the application.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

impl PacketApp for TouchDrop {
    fn name(&self) -> &'static str {
        "touchdrop"
    }

    fn on_packet(
        &mut self,
        completion: RxCompletion,
        mbuf_addr: Addr,
        ops: &mut Vec<Op>,
    ) -> AppAction {
        ops.push(Op::Compute(30));
        touch_payload(completion.packet.len(), mbuf_addr, ops);
        self.consumed += 1;
        AppAction::Consume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::PacketBuilder;

    fn completion(len: usize) -> RxCompletion {
        RxCompletion {
            visible_at: 0,
            packet: PacketBuilder::new().frame_len(len).build(1),
            slot: 0,
        }
    }

    fn total_instructions(ops: &[Op]) -> u64 {
        ops.iter().map(Op::instructions).sum()
    }

    fn payload_loads(ops: &[Op]) -> usize {
        ops.iter().filter(|o| matches!(o, Op::Load(_))).count()
    }

    #[test]
    fn work_scales_with_packet_size() {
        let mut app = TouchFwd::new();
        let mut small = Vec::new();
        let mut large = Vec::new();
        app.on_packet(completion(64), 0x2000_0000, &mut small);
        app.on_packet(completion(1518), 0x2000_0000, &mut large);
        assert!(total_instructions(&large) > total_instructions(&small) * 15);
        assert_eq!(payload_loads(&small), 1);
        assert_eq!(payload_loads(&large), 24);
    }

    #[test]
    fn touchfwd_forwards_with_macswap() {
        let mut app = TouchFwd::new();
        let mut ops = Vec::new();
        let action = app.on_packet(completion(256), 0, &mut ops);
        assert!(matches!(action, AppAction::Forward(_)));
        assert_eq!(app.forwarded(), 1);
    }

    #[test]
    fn touchdrop_consumes() {
        let mut app = TouchDrop::new();
        let mut ops = Vec::new();
        let action = app.on_packet(completion(256), 0, &mut ops);
        assert_eq!(action, AppAction::Consume);
        assert_eq!(app.consumed(), 1);
    }

    #[test]
    fn touchdrop_does_less_work_than_touchfwd() {
        let mut fwd = TouchFwd::new();
        let mut drop = TouchDrop::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        fwd.on_packet(completion(512), 0, &mut a);
        drop.on_packet(completion(512), 0, &mut b);
        assert!(total_instructions(&b) < total_instructions(&a));
    }
}
