//! The in-memory key-value store backing both memcached applications.
//!
//! The store is *functional* (a real hash map holding real bytes) and
//! *performance-modeled* (each operation emits the op stream of a bucket
//! lookup, entry pointer chase, key compare and value access at concrete
//! simulated heap addresses, so cache behaviour is faithful).

use std::collections::HashMap;

use simnet_cpu::{ops, Op};
use simnet_mem::{layout, Addr};
use simnet_sim::random::{SimRng, Zipf};
use simnet_sim::stats::Counter;

/// Byte stride reserved per entry in the simulated heap.
const ENTRY_STRIDE: u64 = 256;
/// Offset of the entry region above the bucket array.
const ENTRY_REGION_OFFSET: u64 = 16 << 20;

#[derive(Debug, Clone)]
struct Entry {
    index: usize,
    value: Vec<u8>,
}

/// KV-store statistics.
#[derive(Debug, Default, Clone)]
pub struct KvStats {
    /// GET hits.
    pub hits: Counter,
    /// GET misses.
    pub misses: Counter,
    /// SETs applied.
    pub sets: Counter,
}

/// The store.
///
/// ```
/// use simnet_apps::KvStore;
/// let mut store = KvStore::new(4096);
/// let mut ops = Vec::new();
/// store.set(b"k", b"v", &mut ops);
/// assert_eq!(store.get(b"k", &mut ops), Some(&b"v"[..]));
/// assert_eq!(store.get(b"absent", &mut ops), None);
/// assert!(!ops.is_empty(), "operations emit modeled work");
/// ```
#[derive(Debug)]
pub struct KvStore {
    buckets: u64,
    /// Byte offset of this store's heap slice above `HEAP_BASE` — zero
    /// for the legacy whole-store layout, `lcore * 64 MiB` for a shard.
    base_offset: u64,
    map: HashMap<Vec<u8>, Entry>,
    next_entry: usize,
    stats: KvStats,
}

impl KvStore {
    /// Creates a store with `buckets` hash buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: u64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        Self {
            buckets,
            base_offset: 0,
            map: HashMap::new(),
            next_entry: 0,
            stats: KvStats::default(),
        }
    }

    /// Moves the store's bucket array and entry region `offset` bytes up
    /// the simulated heap, so per-lcore shards occupy disjoint slices.
    pub fn with_base_offset(mut self, offset: u64) -> Self {
        self.base_offset = offset;
        self
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Operation statistics.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    fn hash(key: &[u8]) -> u64 {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn bucket_addr(&self, key: &[u8]) -> Addr {
        layout::HEAP_BASE + self.base_offset + (Self::hash(key) % self.buckets) * 8
    }

    fn entry_addr(&self, index: usize) -> Addr {
        layout::HEAP_BASE + self.base_offset + ENTRY_REGION_OFFSET + index as u64 * ENTRY_STRIDE
    }

    fn emit_lookup_path(&self, key: &[u8], entry: Option<&Entry>, ops_out: &mut Vec<Op>) {
        // Hash the key (touches the key bytes)...
        ops_out.push(Op::Compute(30 + 2 * key.len() as u64));
        // ...walk the bucket pointer...
        ops_out.push(Op::DependentLoad(self.bucket_addr(key)));
        if let Some(entry) = entry {
            let addr = self.entry_addr(entry.index);
            // ...chase to the entry and compare the stored key.
            ops_out.push(Op::DependentLoad(addr));
            ops::loads_over(ops_out, addr, key.len().max(8) as u64);
            ops_out.push(Op::Compute(key.len() as u64));
        }
    }

    /// Looks up `key`, emitting the modeled work into `ops_out`.
    pub fn get(&mut self, key: &[u8], ops_out: &mut Vec<Op>) -> Option<&[u8]> {
        // Split borrows: compute the path first.
        let entry_snapshot = self.map.get(key).map(|e| (e.index, e.value.len()));
        match entry_snapshot {
            Some((index, value_len)) => {
                self.emit_lookup_path(
                    key,
                    Some(&Entry {
                        index,
                        value: Vec::new(),
                    }),
                    ops_out,
                );
                // Read the value out of the entry.
                ops::loads_over(
                    ops_out,
                    self.entry_addr(index) + 64,
                    value_len.max(1) as u64,
                );
                self.stats.hits.inc();
                self.map.get(key).map(|e| e.value.as_slice())
            }
            None => {
                self.emit_lookup_path(key, None, ops_out);
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Inserts or replaces `key` → `value`, emitting the modeled work.
    /// The bytes are copied into the store only here, where ownership is
    /// genuinely needed — callers keep their borrowed views.
    pub fn set(&mut self, key: &[u8], value: &[u8], ops_out: &mut Vec<Op>) {
        let index = match self.map.get(key) {
            Some(e) => e.index,
            None => {
                let i = self.next_entry;
                self.next_entry += 1;
                i
            }
        };
        self.emit_lookup_path(
            key,
            Some(&Entry {
                index,
                value: Vec::new(),
            }),
            ops_out,
        );
        // Write the value into the entry.
        let addr = self.entry_addr(index) + 64;
        ops::stores_over(ops_out, addr, value.len().max(1) as u64);
        self.stats.sets.inc();
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.value.clear();
                entry.value.extend_from_slice(value);
            }
            None => {
                self.map.insert(
                    key.to_vec(),
                    Entry {
                        index,
                        value: value.to_vec(),
                    },
                );
            }
        }
    }

    /// Warms the store with `count` keys named by
    /// [`simnet_net::proto::memcached::nth_key`], with Zipfian value
    /// lengths — the paper warms "the Memcached server with 5000 keys"
    /// (§VI.A).
    pub fn warm(&mut self, count: u64, lengths: &Zipf, rng: &mut SimRng) {
        let mut scratch = Vec::new();
        for i in 0..count {
            let key = simnet_net::proto::memcached::nth_key(i);
            let len = lengths.sample(rng) as usize;
            let value = vec![(i % 251) as u8; len];
            self.set(&key, &value, &mut scratch);
            scratch.clear();
        }
    }

    /// Warms this store with the shard of the `count`-key keyspace that
    /// RSS steers to `lcore` (keys whose [`simnet_net::rss::key_shard`]
    /// queue lands on this lcore under the round-robin queue→lcore map).
    /// The RNG is consumed for *every* key — sharded warm-ups across all
    /// lcores reproduce exactly the value lengths [`KvStore::warm`]
    /// would have assigned, regardless of the shard count.
    pub fn warm_shard(
        &mut self,
        count: u64,
        lengths: &Zipf,
        rng: &mut SimRng,
        lcore: usize,
        nlcores: usize,
        nqueues: usize,
    ) {
        let mut scratch = Vec::new();
        for i in 0..count {
            let key = simnet_net::proto::memcached::nth_key(i);
            let len = lengths.sample(rng) as usize;
            if simnet_net::rss::key_shard(&key, nqueues) % nlcores != lcore {
                continue;
            }
            let value = vec![(i % 251) as u8; len];
            self.set(&key, &value, &mut scratch);
            scratch.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::proto::memcached::nth_key;

    #[test]
    fn set_get_round_trip() {
        let mut store = KvStore::new(1024);
        let mut ops = Vec::new();
        store.set(b"alpha", &[1, 2, 3], &mut ops);
        assert_eq!(store.get(b"alpha", &mut ops), Some(&[1u8, 2, 3][..]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().hits.value(), 1);
        assert_eq!(store.stats().sets.value(), 1);
    }

    #[test]
    fn miss_is_counted_and_cheap() {
        let mut store = KvStore::new(1024);
        let mut hit_ops = Vec::new();
        let mut miss_ops = Vec::new();
        store.set(b"k", &[0; 100], &mut Vec::new());
        store.get(b"k", &mut hit_ops);
        store.get(b"nope", &mut miss_ops);
        assert_eq!(store.stats().misses.value(), 1);
        assert!(miss_ops.len() < hit_ops.len());
    }

    #[test]
    fn overwrite_keeps_entry_slot() {
        let mut store = KvStore::new(64);
        let mut ops = Vec::new();
        store.set(b"k", &[1], &mut ops);
        store.set(b"k", &[2, 2], &mut ops);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b"k", &mut ops), Some(&[2u8, 2][..]));
    }

    #[test]
    fn lookups_emit_dependent_chains() {
        let mut store = KvStore::new(64);
        let mut ops = Vec::new();
        store.set(b"key", &[0; 64], &mut Vec::new());
        store.get(b"key", &mut ops);
        let chases = ops
            .iter()
            .filter(|o| matches!(o, Op::DependentLoad(_)))
            .count();
        assert_eq!(chases, 2, "bucket + entry pointer chase");
    }

    #[test]
    fn warm_populates_paper_keyspace() {
        let mut store = KvStore::new(4096);
        let zipf = Zipf::paper_lengths();
        let mut rng = SimRng::seed_from(1);
        store.warm(5000, &zipf, &mut rng);
        assert_eq!(store.len(), 5000);
        let mut ops = Vec::new();
        let v = store.get(&nth_key(1234), &mut ops).expect("warmed key");
        assert!((10..=100).contains(&v.len()));
    }

    #[test]
    fn values_land_at_distinct_heap_addresses() {
        let store = KvStore::new(64);
        assert_ne!(store.entry_addr(0), store.entry_addr(1));
        assert!(store.entry_addr(0) >= layout::HEAP_BASE);
    }

    #[test]
    fn shard_warms_partition_the_keyspace_exactly() {
        let zipf = Zipf::paper_lengths();
        let mut whole = KvStore::new(4096);
        let mut rng = SimRng::seed_from(1);
        whole.warm(5000, &zipf, &mut rng);

        let nlcores = 4;
        let nqueues = 4;
        let mut total = 0;
        for lcore in 0..nlcores {
            let mut shard = KvStore::new(4096).with_base_offset(lcore as u64 * (64 << 20));
            // Same seed per shard: the RNG is consumed for every key, so
            // value lengths match the whole-store warm exactly.
            let mut rng = SimRng::seed_from(1);
            shard.warm_shard(5000, &zipf, &mut rng, lcore, nlcores, nqueues);
            total += shard.len();
            // Spot-check one shard-owned key against the whole store.
            for i in 0..5000u64 {
                let key = simnet_net::proto::memcached::nth_key(i);
                if simnet_net::rss::key_shard(&key, nqueues) % nlcores == lcore {
                    let mut ops = Vec::new();
                    let got = shard.get(&key, &mut ops).expect("shard owns key");
                    let mut ops2 = Vec::new();
                    let want = whole.get(&key, &mut ops2).expect("warmed key");
                    assert_eq!(got, want, "shard value diverged for key {i}");
                    break;
                }
            }
        }
        assert_eq!(total, 5000, "shards partition the keyspace");
    }
}
