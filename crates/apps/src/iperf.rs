//! iperf: the kernel-stack throughput test.
//!
//! The paper uses iperf "as a representative application for comparing
//! DPDK applications to an application that uses Linux kernel networking"
//! (§VII.C). The application side is thin — read the buffer the kernel
//! copied in and account the bytes — so the measured cost is dominated by
//! the kernel stack underneath it.

use simnet_cpu::{ops, Op};
use simnet_mem::Addr;
use simnet_net::tcp;
use simnet_net::Packet;
use simnet_nic::i8254x::RxCompletion;
use simnet_stack::{AppAction, PacketApp};

/// The iperf server application.
#[derive(Debug, Default)]
pub struct Iperf {
    bytes: u64,
    packets: u64,
}

impl Iperf {
    /// Creates the application.
    pub fn new() -> Self {
        Self::default()
    }

    /// Payload bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Packets received.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

impl PacketApp for Iperf {
    fn name(&self) -> &'static str {
        "iperf"
    }

    fn on_packet(
        &mut self,
        completion: RxCompletion,
        user_buf: Addr,
        ops_out: &mut Vec<Op>,
    ) -> AppAction {
        let len = completion.packet.len() as u64;
        // iperf reads the received buffer (in the user-space copy the
        // kernel produced) and updates counters.
        ops::loads_over(ops_out, user_buf, len);
        ops_out.push(Op::Compute(len / 8 + 60));
        self.bytes += len;
        self.packets += 1;
        AppAction::Consume
    }
}

/// The iperf **TCP** server: a stream sink with a real (if minimal) TCP
/// state machine — the receiving end of the load generator's TCP client
/// mode (the paper's future-work extension).
///
/// Behaviour: answers SYN with SYN-ACK; accepts in-order segments,
/// advancing `rcv_nxt` and acknowledging cumulatively; answers
/// out-of-order segments (after a drop) with duplicate ACKs so the client
/// fast-retransmits.
#[derive(Debug, Default)]
pub struct IperfTcp {
    established: bool,
    rcv_nxt: u32,
    iss: u32,
    bytes: u64,
    segments: u64,
    dup_acks_sent: u64,
    out_of_order: u64,
}

impl IperfTcp {
    /// Creates the server.
    pub fn new() -> Self {
        Self::default()
    }

    /// In-order payload bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// In-order segments received.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Duplicate ACKs sent (loss signals).
    pub fn dup_acks_sent(&self) -> u64 {
        self.dup_acks_sent
    }

    /// Out-of-order segments observed.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    fn reply(
        &self,
        request: &RxCompletion,
        ip: &simnet_net::ipv4::Ipv4Header,
        tcp_in: &tcp::TcpHeader,
        reply_flags: u8,
        seq: u32,
    ) -> Packet {
        let eth = request
            .packet
            .ethernet()
            .expect("parsed frame has ethernet");
        let header = tcp::TcpHeader::new(
            tcp_in.dst_port,
            tcp_in.src_port,
            seq,
            self.rcv_nxt,
            reply_flags,
            0xFFFF,
        );
        tcp::build_tcp_frame(
            request.packet.id(),
            eth.dst,
            eth.src,
            ip.dst,
            ip.src,
            header,
            &[],
        )
    }
}

impl PacketApp for IperfTcp {
    fn name(&self) -> &'static str {
        "iperf-tcp"
    }

    fn on_packet(
        &mut self,
        completion: RxCompletion,
        user_buf: Addr,
        ops_out: &mut Vec<Op>,
    ) -> AppAction {
        let Some((ip, header, payload)) = tcp::parse_tcp_frame(&completion.packet) else {
            return AppAction::Consume;
        };
        // TCP input processing costs beyond the generic kernel path.
        ops_out.push(Op::Compute(400));

        if header.has(tcp::flags::SYN) {
            self.established = true;
            self.iss = 90_000;
            self.rcv_nxt = header.seq.wrapping_add(1);
            let synack = self.reply(
                &completion,
                &ip,
                &header,
                tcp::flags::SYN | tcp::flags::ACK,
                self.iss,
            );
            return AppAction::Respond(synack);
        }
        if !self.established {
            return AppAction::Consume;
        }
        if payload.is_empty() {
            return AppAction::Consume; // bare ACK from the client
        }

        if header.seq == self.rcv_nxt {
            self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
            self.bytes += payload.len() as u64;
            self.segments += 1;
            // The application reads the received stream.
            ops::loads_over(ops_out, user_buf, payload.len() as u64);
            ops_out.push(Op::Compute(payload.len() as u64 / 8 + 60));
        } else {
            // A hole (dropped segment): duplicate ACK re-advertises rcv_nxt.
            self.out_of_order += 1;
            self.dup_acks_sent += 1;
        }
        let ack = self.reply(
            &completion,
            &ip,
            &header,
            tcp::flags::ACK,
            self.iss.wrapping_add(1),
        );
        AppAction::Respond(ack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::PacketBuilder;

    #[test]
    fn accounts_bytes_and_consumes() {
        let mut app = Iperf::new();
        let completion = RxCompletion {
            visible_at: 0,
            packet: PacketBuilder::new().frame_len(1024).build(1),
            slot: 0,
        };
        let mut ops = Vec::new();
        let action = app.on_packet(completion, 0x5000_0000, &mut ops);
        assert_eq!(action, AppAction::Consume);
        assert_eq!(app.bytes(), 1024);
        assert_eq!(app.packets(), 1);
        let loads = ops.iter().filter(|o| matches!(o, Op::Load(_))).count();
        assert_eq!(loads, 16);
    }

    use simnet_net::tcp::{build_tcp_frame, flags, parse_tcp_frame, TcpHeader};
    use simnet_net::MacAddr;

    fn tcp_completion(header: TcpHeader, payload: &[u8]) -> RxCompletion {
        RxCompletion {
            visible_at: 0,
            packet: build_tcp_frame(
                1,
                MacAddr::simulated(2),
                MacAddr::simulated(1),
                [10, 0, 0, 2],
                [10, 0, 0, 1],
                header,
                payload,
            ),
            slot: 0,
        }
    }

    #[test]
    fn tcp_server_handshakes() {
        let mut app = IperfTcp::new();
        let syn = TcpHeader::new(40_001, 5_001, 1_000, 0, flags::SYN, 0xFFFF);
        let mut ops = Vec::new();
        let AppAction::Respond(reply) = app.on_packet(tcp_completion(syn, &[]), 0, &mut ops) else {
            panic!("SYN gets a reply");
        };
        let (_, h, _) = parse_tcp_frame(&reply).unwrap();
        assert!(h.has(flags::SYN | flags::ACK));
        assert_eq!(h.ack, 1_001);
        // Reply is addressed back at the client.
        assert_eq!(reply.ethernet().unwrap().dst, MacAddr::simulated(2));
    }

    #[test]
    fn tcp_server_accepts_in_order_and_dup_acks_holes() {
        let mut app = IperfTcp::new();
        let mut ops = Vec::new();
        let syn = TcpHeader::new(40_001, 5_001, 1_000, 0, flags::SYN, 0xFFFF);
        app.on_packet(tcp_completion(syn, &[]), 0, &mut ops);

        // In-order segment at seq 1001.
        let seg1 = TcpHeader::new(40_001, 5_001, 1_001, 0, flags::ACK | flags::PSH, 0xFFFF);
        let AppAction::Respond(ack1) =
            app.on_packet(tcp_completion(seg1, &[9u8; 100]), 0x5000_0000, &mut ops)
        else {
            panic!("data gets acked");
        };
        let (_, h1, _) = parse_tcp_frame(&ack1).unwrap();
        assert_eq!(h1.ack, 1_101);
        assert_eq!(app.bytes(), 100);

        // A hole: segment at 1301 while 1101 is expected -> duplicate ACK.
        let seg_hole = TcpHeader::new(40_001, 5_001, 1_301, 0, flags::ACK | flags::PSH, 0xFFFF);
        let AppAction::Respond(dup) =
            app.on_packet(tcp_completion(seg_hole, &[9u8; 100]), 0x5000_0000, &mut ops)
        else {
            panic!("holes get duplicate ACKs");
        };
        let (_, hd, _) = parse_tcp_frame(&dup).unwrap();
        assert_eq!(hd.ack, 1_101, "duplicate ACK re-advertises rcv_nxt");
        assert_eq!(app.bytes(), 100, "out-of-order data not counted");
        assert_eq!(app.dup_acks_sent(), 1);

        // The retransmission fills the hole.
        let seg_fill = TcpHeader::new(40_001, 5_001, 1_101, 0, flags::ACK | flags::PSH, 0xFFFF);
        app.on_packet(tcp_completion(seg_fill, &[9u8; 100]), 0x5000_0000, &mut ops);
        assert_eq!(app.bytes(), 200);
    }

    #[test]
    fn tcp_server_ignores_noise() {
        let mut app = IperfTcp::new();
        let mut ops = Vec::new();
        // Non-TCP frame.
        let udp = RxCompletion {
            visible_at: 0,
            packet: PacketBuilder::new().frame_len(64).build(0),
            slot: 0,
        };
        assert_eq!(app.on_packet(udp, 0, &mut ops), AppAction::Consume);
        // Data before a handshake.
        let seg = TcpHeader::new(1, 2, 5, 0, flags::ACK, 10);
        assert_eq!(
            app.on_packet(tcp_completion(seg, &[1u8; 10]), 0, &mut ops),
            AppAction::Consume
        );
        assert_eq!(app.bytes(), 0);
    }
}
