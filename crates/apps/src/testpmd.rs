//! TestPMD: the unmodified `dpdk-testpmd` forwarding application.
//!
//! "TestPMD is a shallow network function, meaning that it only uses the
//! L2 header (14 bytes) to make the forwarding decision" (§V). Per packet
//! it reads the Ethernet header, optionally swaps the MAC addresses, and
//! re-enqueues the same mbuf for transmission — no payload access, which
//! is why large-packet TestPMD is DMA-bound, not core-bound (Fig. 6).

use simnet_cpu::Op;
use simnet_mem::Addr;
use simnet_nic::i8254x::RxCompletion;
use simnet_stack::{AppAction, PacketApp};

/// testpmd forwarding mode (`--forward-mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardMode {
    /// Forward as-is.
    Io,
    /// Swap source/destination MACs before forwarding.
    #[default]
    MacSwap,
}

/// The TestPMD application.
#[derive(Debug, Default)]
pub struct TestPmd {
    mode: ForwardMode,
    forwarded: u64,
}

impl TestPmd {
    /// Creates TestPMD in `macswap` mode (the paper's configuration).
    pub fn new() -> Self {
        Self::with_mode(ForwardMode::MacSwap)
    }

    /// Creates TestPMD with an explicit forwarding mode.
    pub fn with_mode(mode: ForwardMode) -> Self {
        Self { mode, forwarded: 0 }
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl PacketApp for TestPmd {
    fn name(&self) -> &'static str {
        "testpmd"
    }

    fn on_packet(
        &mut self,
        completion: RxCompletion,
        mbuf_addr: Addr,
        ops: &mut Vec<Op>,
    ) -> AppAction {
        // Forwarding decision over the 14-byte L2 header.
        ops.push(Op::Compute(40));
        // The completion is owned: re-enqueue the same buffer, as real
        // testpmd re-enqueues the same mbuf.
        let mut packet = completion.packet;
        if self.mode == ForwardMode::MacSwap {
            // Read-modify-write of the header line.
            ops.push(Op::Load(mbuf_addr));
            ops.push(Op::Store(mbuf_addr));
            ops.push(Op::Compute(20));
            packet.macswap();
        }
        self.forwarded += 1;
        AppAction::Forward(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::{MacAddr, PacketBuilder};

    fn completion(len: usize) -> RxCompletion {
        RxCompletion {
            visible_at: 0,
            packet: PacketBuilder::new()
                .dst(MacAddr::simulated(1))
                .src(MacAddr::simulated(2))
                .frame_len(len)
                .build(5),
            slot: 0,
        }
    }

    #[test]
    fn macswap_swaps_and_forwards() {
        let mut app = TestPmd::new();
        let mut ops = Vec::new();
        let action = app.on_packet(completion(64), 0x2000_0000, &mut ops);
        let AppAction::Forward(pkt) = action else {
            panic!("testpmd forwards");
        };
        assert_eq!(pkt.ethernet().unwrap().dst, MacAddr::simulated(2));
        assert_eq!(pkt.ethernet().unwrap().src, MacAddr::simulated(1));
        assert_eq!(app.forwarded(), 1);
    }

    #[test]
    fn io_mode_leaves_header_untouched() {
        let mut app = TestPmd::with_mode(ForwardMode::Io);
        let mut ops = Vec::new();
        let AppAction::Forward(pkt) = app.on_packet(completion(64), 0, &mut ops) else {
            panic!("forwards");
        };
        assert_eq!(pkt.ethernet().unwrap().dst, MacAddr::simulated(1));
    }

    #[test]
    fn forwarding_preserves_packet_identity() {
        // The trace layer (`simnet_sim::trace`) follows one packet id from
        // injection through the TX mirror; an app that forwards under a
        // fresh id would break every echoed lifecycle in the trace.
        for mode in [ForwardMode::Io, ForwardMode::MacSwap] {
            let mut app = TestPmd::with_mode(mode);
            let mut ops = Vec::new();
            let AppAction::Forward(pkt) = app.on_packet(completion(256), 0, &mut ops) else {
                panic!("forwards");
            };
            assert_eq!(pkt.id(), 5, "forwarded packet keeps the RX packet id");
        }
    }

    #[test]
    fn work_is_independent_of_packet_size() {
        // The shallow-function property: same op count for 64B and 1518B.
        let mut app = TestPmd::new();
        let mut small = Vec::new();
        let mut large = Vec::new();
        app.on_packet(completion(64), 0, &mut small);
        app.on_packet(completion(1518), 0, &mut large);
        assert_eq!(small.len(), large.len());
    }
}
