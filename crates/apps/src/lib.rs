//! The `simnet` network benchmark suite (§V of the paper).
//!
//! "We introduce six networking applications, four of which are
//! network-intensive microbenchmarks and two real in-memory key-value
//! stores":
//!
//! | App | Module | Character |
//! |---|---|---|
//! | `TestPMD` | [`testpmd`] | shallow L2 forward (macswap), core-bound only at small packets |
//! | `TouchFwd` | [`touch`] | forwards while touching the whole payload (deep network function) |
//! | `TouchDrop` | [`touch`] | touches the whole payload, then drops |
//! | `RXpTX` | [`rxptx`] | receive → configurable processing interval → transmit |
//! | `MemcachedDPDK` | [`memcached`] | KV store over the DPDK stack |
//! | `MemcachedKernel` | [`memcached`] | KV store over the kernel stack |
//!
//! Plus [`iperf`], the kernel-stack throughput test the paper uses as the
//! kernel-networking representative in its sensitivity studies (§VII.C).
//!
//! Every app implements [`simnet_stack::PacketApp`], emitting compute and
//! concrete memory-touch ops that the core model prices.

pub mod iperf;
pub mod kvstore;
pub mod memcached;
pub mod rxptx;
pub mod testpmd;
pub mod touch;

pub use iperf::{Iperf, IperfTcp};
pub use kvstore::KvStore;
pub use memcached::{MemcachedDpdk, MemcachedKernel};
pub use rxptx::RxpTx;
pub use testpmd::{ForwardMode, TestPmd};
pub use touch::{TouchDrop, TouchFwd};
