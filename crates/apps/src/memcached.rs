//! The two memcached servers: MemcachedDPDK and MemcachedKernel.
//!
//! "MemcachedDPDK is a simple in-memory key-value store implemented on top
//! of DPDK ... MemcachedKernel is an in-memory key-value store implemented
//! using the memcached library and Linux POSIX APIs" (§V). Both parse the
//! memcached-over-UDP protocol, execute against the same [`KvStore`], and
//! respond; the kernel variant additionally pays an event-loop dispatch
//! cost (libevent) on top of the kernel stack's own syscall/copy costs.

use simnet_cpu::{ops, Op};
use simnet_mem::Addr;
use simnet_net::ethernet::ETHERNET_HEADER_LEN;
use simnet_net::ipv4::IPV4_HEADER_LEN;
use simnet_net::proto::memcached::{
    decode_request_datagram, encode_response_datagram_into, response_datagram_len, Request,
    Response,
};
use simnet_net::udp::UDP_HEADER_LEN;
use simnet_net::{Packet, PacketBuilder};
use simnet_nic::i8254x::RxCompletion;
use simnet_sim::stats::Counter;
use simnet_stack::footprint::FootprintStream;
use simnet_stack::{AppAction, PacketApp};

use crate::kvstore::KvStore;

/// Base of the memcached application's instruction footprint.
const APP_CODE_BASE: simnet_mem::Addr = simnet_mem::layout::WORKSET_BASE + (48 << 20);
/// Base of the memcached application's connection/state footprint.
const APP_STATE_BASE: simnet_mem::Addr = simnet_mem::layout::WORKSET_BASE + (56 << 20);

/// Shared server logic.
#[derive(Debug)]
struct Server {
    store: KvStore,
    /// Application-level instructions per request beyond the KV work
    /// (command parsing, item bookkeeping, stats, response assembly —
    /// real memcached spends tens of thousands of instructions per
    /// request).
    dispatch_instructions: u64,
    /// Application code footprint (drives the Fig. 10/11 L1/L2
    /// sensitivity of the memcached series).
    code: FootprintStream,
    /// Connection/item metadata footprint.
    state: FootprintStream,
    responses: Counter,
    parse_errors: Counter,
}

impl Server {
    fn handle(
        &mut self,
        completion: RxCompletion,
        buf_addr: Addr,
        ops_out: &mut Vec<Op>,
    ) -> AppAction {
        let Some((ip, udp, payload)) = completion.packet.udp() else {
            self.parse_errors.inc();
            return AppAction::Consume;
        };
        let Ok((header, request)) = decode_request_datagram(payload) else {
            self.parse_errors.inc();
            return AppAction::Consume;
        };

        // Parse + dispatch: the request bytes come to the core, the
        // event/dispatch code is fetched, connection state is walked.
        ops_out.push(Op::Compute(self.dispatch_instructions));
        self.code.emit_ifetches(ops_out, 18);
        self.state.emit_loads(ops_out, 16);
        ops::loads_over(ops_out, buf_addr, completion.packet.len() as u64);

        // The response borrows a hit's value straight out of the store:
        // no copy until the bytes land in the reply frame.
        let response = match request {
            Request::Get { key } => match self.store.get(key, ops_out) {
                Some(value) => Response::Hit { value },
                None => Response::Miss,
            },
            Request::Set { key, value } => {
                self.store.set(key, value, ops_out);
                Response::Stored
            }
        };

        // Encode the response directly into the (pooled) reply frame.
        ops_out.push(Op::Compute(120));
        let datagram_len = response_datagram_len(&response);
        let eth = completion
            .packet
            .ethernet()
            .expect("udp() implies a valid ethernet header");
        let natural = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + datagram_len;
        let reply: Packet = PacketBuilder::new()
            .dst(eth.src)
            .src(eth.dst)
            .udp(ip.dst, ip.src, udp.dst_port, udp.src_port)
            .frame_len(natural.max(simnet_net::MIN_FRAME_LEN))
            .build_with(completion.packet.id(), datagram_len, |buf| {
                encode_response_datagram_into(buf, header.request_id, &response);
            });
        self.responses.inc();
        AppAction::Respond(reply)
    }
}

/// Memcached on the DPDK stack.
#[derive(Debug)]
pub struct MemcachedDpdk {
    server: Server,
}

impl MemcachedDpdk {
    /// Creates the server around a warmed (or empty) store.
    pub fn new(store: KvStore) -> Self {
        Self::for_lcore(store, 0)
    }

    /// Creates a per-lcore server shard: code and connection-state
    /// footprints land in that lcore's private slice of the address map.
    /// `for_lcore(store, 0)` is exactly `new(store)`.
    pub fn for_lcore(store: KvStore, lcore: usize) -> Self {
        let off = lcore as u64 * (64 << 20);
        Self {
            server: Server {
                store,
                dispatch_instructions: 10_000,
                code: FootprintStream::new(APP_CODE_BASE + off, 768 << 10, 0.7, 0xD9D1),
                state: FootprintStream::new(APP_STATE_BASE + off, 1 << 20, 0.5, 0xD9D2),
                responses: Counter::new(),
                parse_errors: Counter::new(),
            },
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &KvStore {
        &self.server.store
    }

    /// Responses sent.
    pub fn responses(&self) -> u64 {
        self.server.responses.value()
    }

    /// Requests that failed to parse.
    pub fn parse_errors(&self) -> u64 {
        self.server.parse_errors.value()
    }
}

impl PacketApp for MemcachedDpdk {
    fn name(&self) -> &'static str {
        "memcached-dpdk"
    }

    fn on_packet(
        &mut self,
        completion: RxCompletion,
        buf_addr: Addr,
        ops: &mut Vec<Op>,
    ) -> AppAction {
        self.server.handle(completion, buf_addr, ops)
    }
}

/// Memcached on the kernel stack (the `memcached` binary with libevent).
#[derive(Debug)]
pub struct MemcachedKernel {
    server: Server,
}

impl MemcachedKernel {
    /// Creates the server around a warmed (or empty) store.
    pub fn new(store: KvStore) -> Self {
        Self::for_lcore(store, 0)
    }

    /// Creates a per-lcore server shard (worker-thread memcached): code
    /// and connection-state footprints land in that lcore's private
    /// slice of the address map. `for_lcore(store, 0)` is `new(store)`.
    pub fn for_lcore(store: KvStore, lcore: usize) -> Self {
        let off = lcore as u64 * (64 << 20);
        Self {
            server: Server {
                store,
                // libevent dispatch, connection bookkeeping, per-thread
                // stats, slab accounting: the full memcached binary.
                dispatch_instructions: 18_000,
                code: FootprintStream::new(APP_CODE_BASE + off, 1536 << 10, 0.6, 0xD9D3),
                state: FootprintStream::new(APP_STATE_BASE + off, 2 << 20, 0.5, 0xD9D4),
                responses: Counter::new(),
                parse_errors: Counter::new(),
            },
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &KvStore {
        &self.server.store
    }

    /// Responses sent.
    pub fn responses(&self) -> u64 {
        self.server.responses.value()
    }
}

impl PacketApp for MemcachedKernel {
    fn name(&self) -> &'static str {
        "memcached-kernel"
    }

    fn on_packet(
        &mut self,
        completion: RxCompletion,
        buf_addr: Addr,
        ops: &mut Vec<Op>,
    ) -> AppAction {
        self.server.handle(completion, buf_addr, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::proto::memcached::{
        decode_response_datagram, encode_request_datagram, nth_key,
    };
    use simnet_net::MacAddr;
    use simnet_sim::random::{SimRng, Zipf};

    fn warmed_store() -> KvStore {
        let mut store = KvStore::new(4096);
        store.warm(100, &Zipf::paper_lengths(), &mut SimRng::seed_from(9));
        store
    }

    fn request_packet(request_id: u16, request: &Request) -> RxCompletion {
        let datagram = encode_request_datagram(request_id, request);
        RxCompletion {
            visible_at: 0,
            packet: PacketBuilder::new()
                .dst(MacAddr::simulated(1))
                .src(MacAddr::simulated(2))
                .udp([10, 0, 0, 2], [10, 0, 0, 1], 40_000, 11_211)
                .payload(&datagram)
                .frame_len(128)
                .build(77),
            slot: 0,
        }
    }

    #[test]
    fn get_hit_produces_addressed_reply() {
        let mut app = MemcachedDpdk::new(warmed_store());
        let completion = request_packet(42, &Request::Get { key: &nth_key(5) });
        let mut ops = Vec::new();
        let AppAction::Respond(reply) = app.on_packet(completion, 0x5000_0000, &mut ops) else {
            panic!("server must respond");
        };
        // Reply goes back to the requester with swapped addressing.
        let eth = reply.ethernet().unwrap();
        assert_eq!(eth.dst, MacAddr::simulated(2));
        assert_eq!(eth.src, MacAddr::simulated(1));
        let (ip, udp, payload) = reply.udp().expect("valid reply frame");
        assert_eq!(ip.dst, [10, 0, 0, 2]);
        assert_eq!(udp.dst_port, 40_000);
        let (hdr, response) = decode_response_datagram(payload).unwrap();
        assert_eq!(hdr.request_id, 42);
        assert!(matches!(response, Response::Hit { .. }));
        assert_eq!(app.responses(), 1);
    }

    #[test]
    fn get_missing_key_is_a_miss() {
        let mut app = MemcachedDpdk::new(warmed_store());
        let completion = request_packet(1, &Request::Get { key: b"not-a-key" });
        let mut ops = Vec::new();
        let AppAction::Respond(reply) = app.on_packet(completion, 0, &mut ops) else {
            panic!("respond");
        };
        let (_, _, payload) = reply.udp().unwrap();
        let (_, response) = decode_response_datagram(payload).unwrap();
        assert_eq!(response, Response::Miss);
    }

    #[test]
    fn set_stores_and_acknowledges() {
        let mut app = MemcachedDpdk::new(KvStore::new(64));
        let completion = request_packet(
            2,
            &Request::Set {
                key: b"new",
                value: &[9; 40],
            },
        );
        let mut ops = Vec::new();
        let AppAction::Respond(reply) = app.on_packet(completion, 0, &mut ops) else {
            panic!("respond");
        };
        let (_, _, payload) = reply.udp().unwrap();
        let (_, response) = decode_response_datagram(payload).unwrap();
        assert_eq!(response, Response::Stored);
        assert_eq!(app.store().len(), 1);
    }

    #[test]
    fn garbage_is_consumed_not_answered() {
        let mut app = MemcachedDpdk::new(KvStore::new(64));
        let completion = RxCompletion {
            visible_at: 0,
            packet: PacketBuilder::new().frame_len(64).build(0),
            slot: 0,
        };
        let mut ops = Vec::new();
        assert_eq!(app.on_packet(completion, 0, &mut ops), AppAction::Consume);
        assert_eq!(app.parse_errors(), 1);
    }

    #[test]
    fn kernel_variant_costs_more_dispatch() {
        let mut dpdk = MemcachedDpdk::new(warmed_store());
        let mut kernel = MemcachedKernel::new(warmed_store());
        let completion = request_packet(3, &Request::Get { key: &nth_key(1) });
        let mut a = Vec::new();
        let mut b = Vec::new();
        dpdk.on_packet(completion.clone(), 0, &mut a);
        kernel.on_packet(completion, 0, &mut b);
        let instr = |ops: &[Op]| ops.iter().map(Op::instructions).sum::<u64>();
        assert!(instr(&b) > instr(&a) + 5000);
        assert_eq!(kernel.responses(), 1);
    }
}
