//! Microbenchmarks of the simulator's hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use simnet_cpu::{Core, CoreConfig, Op};
use simnet_mem::{
    AccessClass, Cache, CacheConfig, DramConfig, DramController, MemoryConfig, MemorySystem,
};
use simnet_net::{MacAddr, PacketBuilder};
use simnet_nic::{Nic, NicConfig};
use simnet_sim::event::BinaryHeapQueue;
use simnet_sim::trace::Tracer;
use simnet_sim::EventQueue;

fn bench_event_queue(c: &mut Criterion) {
    // Ladder queue (the production `EventQueue`) against the retained
    // `BinaryHeapQueue` reference on the same workload. For the full
    // scenario matrix and the committed baseline see
    // `src/bin/queue_bench.rs` / BENCH_event_queue.json.
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(i * 7 % 997, i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            sum
        })
    });
    c.bench_function("event_queue_push_pop_1k_heap_ref", |b| {
        b.iter(|| {
            let mut q = BinaryHeapQueue::new();
            for i in 0..1000u64 {
                q.schedule(i * 7 % 997, i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            sum
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_lookup_fill_stream", |b| {
        let mut cache = Cache::new("bench", CacheConfig::new(1 << 20, 8));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x1D872B41);
            let addr = (i ^ (i >> 13)) & 0xFF_FFFF;
            if !cache.lookup(addr, AccessClass::Core, false) {
                cache.fill(addr, AccessClass::Core, false);
            }
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_streaming_access", |b| {
        let mut dram = DramController::new(DramConfig::ddr4_2400(2));
        let mut now = 0;
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            now = dram.access(now, addr, addr.is_multiple_of(128));
            now
        })
    });
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("memory_system_dma_write_1518", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut now = 0;
        let mut slot = 0usize;
        b.iter(|| {
            slot = (slot + 1) % 1024;
            let done = mem.dma_write(now, simnet_mem::layout::mbuf_addr(slot), 1518);
            now = done.max(now);
            done
        })
    });
}

fn bench_core(c: &mut Criterion) {
    c.bench_function("ooo_core_mixed_ops", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut core = Core::new(CoreConfig::table1_ooo());
        let ops: Vec<Op> = (0..64u64)
            .flat_map(|i| [Op::Compute(50), Op::Load(0x4000_0000 + i * 320)])
            .collect();
        let mut now = 0;
        b.iter(|| {
            now = core.execute(now, &ops, &mut mem);
            now
        })
    });
}

fn bench_packet_build(c: &mut Criterion) {
    c.bench_function("packet_builder_udp", |b| {
        let mut builder = PacketBuilder::new();
        builder
            .dst(MacAddr::simulated(1))
            .src(MacAddr::simulated(2))
            .udp([10, 0, 0, 1], [10, 0, 0, 2], 4000, 11211)
            .payload(&[7u8; 100])
            .frame_len(256);
        let mut id = 0;
        b.iter(|| {
            id += 1;
            builder.build(id)
        })
    });
}

fn rx_loop(
    nic: &mut Nic,
    mem: &mut MemorySystem,
    builder: &mut PacketBuilder,
    now: &mut u64,
    id: &mut u64,
) -> u64 {
    *id += 1;
    *now += 30_000;
    let _ = nic.wire_rx(*now, builder.build(*id));
    if let Some(t) = nic.rx_dma_start(*now, mem) {
        *now = (*now).max(t);
    }
    while let Some(t) = nic.rx_dma_advance(*now, mem) {
        *now = (*now).max(t);
    }
    let polled = nic.rx_poll(*now, 32);
    nic.rx_ring_post(polled.len());
    *now
}

/// The NIC RX hot path with tracing disabled (the default — one `Option`
/// null-check per emit site) versus enabled. The disabled variant is the
/// cost every ordinary run pays for the trace layer existing at all.
fn bench_nic_trace_overhead(c: &mut Criterion) {
    let mut builder = PacketBuilder::new();
    builder
        .dst(MacAddr::simulated(1))
        .src(MacAddr::simulated(9))
        .frame_len(1518);

    c.bench_function("nic_rx_path_trace_disabled", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut nic = Nic::new(NicConfig::paper_default());
        nic.rx_ring_post(1024);
        let (mut now, mut id) = (0u64, 0u64);
        b.iter(|| rx_loop(&mut nic, &mut mem, &mut builder, &mut now, &mut id))
    });
    c.bench_function("nic_rx_path_trace_enabled", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut nic = Nic::new(NicConfig::paper_default());
        // A small ring in drop-oldest mode: steady-state cost, no growth.
        nic.set_tracer(Tracer::enabled(4096));
        nic.rx_ring_post(1024);
        let (mut now, mut id) = (0u64, 0u64);
        b.iter(|| rx_loop(&mut nic, &mut mem, &mut builder, &mut now, &mut id))
    });
}

/// The NIC RX hot path with no fault plan installed (the default — one
/// `Option` null-check per query site) versus an active plan. The
/// disabled variant must stay within noise of `nic_rx_path_trace_disabled`
/// above: fault injection is zero-cost when unused.
fn bench_nic_fault_overhead(c: &mut Criterion) {
    use simnet_sim::fault::{FaultInjector, FaultPlan};

    let mut builder = PacketBuilder::new();
    builder
        .dst(MacAddr::simulated(1))
        .src(MacAddr::simulated(9))
        .frame_len(1518);

    c.bench_function("nic_rx_path_faults_disabled", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut nic = Nic::new(NicConfig::paper_default());
        nic.set_fault_injector(FaultInjector::disabled());
        nic.rx_ring_post(1024);
        let (mut now, mut id) = (0u64, 0u64);
        b.iter(|| rx_loop(&mut nic, &mut mem, &mut builder, &mut now, &mut id))
    });
    c.bench_function("nic_rx_path_faults_enabled", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut nic = Nic::new(NicConfig::paper_default());
        // A low-intensity plan: per-frame RNG draws without drowning the
        // path in actual drops.
        let plan = FaultPlan::parse("link.ber=1e-9;dma.burst=+500ns/1us@100us").unwrap();
        nic.set_fault_injector(FaultInjector::new(plan, 42));
        nic.rx_ring_post(1024);
        let (mut now, mut id) = (0u64, 0u64);
        b.iter(|| rx_loop(&mut nic, &mut mem, &mut builder, &mut now, &mut id))
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_cache, bench_dram, bench_memory_system,
              bench_core, bench_packet_build, bench_nic_trace_overhead,
              bench_nic_fault_overhead
}
criterion_main!(components);
