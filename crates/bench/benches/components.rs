//! Microbenchmarks of the simulator's hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use simnet_cpu::{Core, CoreConfig, Op};
use simnet_mem::{AccessClass, Cache, CacheConfig, DramConfig, DramController, MemoryConfig, MemorySystem};
use simnet_net::{MacAddr, PacketBuilder};
use simnet_sim::EventQueue;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(i * 7 % 997, i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            sum
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_lookup_fill_stream", |b| {
        let mut cache = Cache::new("bench", CacheConfig::new(1 << 20, 8));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x1D872B41);
            let addr = (i ^ (i >> 13)) & 0xFF_FFFF;
            if !cache.lookup(addr, AccessClass::Core, false) {
                cache.fill(addr, AccessClass::Core, false);
            }
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_streaming_access", |b| {
        let mut dram = DramController::new(DramConfig::ddr4_2400(2));
        let mut now = 0;
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            now = dram.access(now, addr, addr % 128 == 0);
            now
        })
    });
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("memory_system_dma_write_1518", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut now = 0;
        let mut slot = 0usize;
        b.iter(|| {
            slot = (slot + 1) % 1024;
            let done = mem.dma_write(now, simnet_mem::layout::mbuf_addr(slot), 1518);
            now = done.max(now);
            done
        })
    });
}

fn bench_core(c: &mut Criterion) {
    c.bench_function("ooo_core_mixed_ops", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut core = Core::new(CoreConfig::table1_ooo());
        let ops: Vec<Op> = (0..64u64)
            .flat_map(|i| [Op::Compute(50), Op::Load(0x4000_0000 + i * 320)])
            .collect();
        let mut now = 0;
        b.iter(|| {
            now = core.execute(now, &ops, &mut mem);
            now
        })
    });
}

fn bench_packet_build(c: &mut Criterion) {
    c.bench_function("packet_builder_udp", |b| {
        let mut builder = PacketBuilder::new();
        builder
            .dst(MacAddr::simulated(1))
            .src(MacAddr::simulated(2))
            .udp([10, 0, 0, 1], [10, 0, 0, 2], 4000, 11211)
            .payload(&[7u8; 100])
            .frame_len(256);
        let mut id = 0;
        b.iter(|| {
            id += 1;
            builder.build(id)
        })
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_cache, bench_dram, bench_memory_system,
              bench_core, bench_packet_build
}
criterion_main!(components);
