//! One benchmark group per paper table/figure.
//!
//! Each group (a) prints a reduced set of the figure's rows once, so
//! `cargo bench` output shows the reproduced series, and (b) benchmarks
//! that figure's representative simulation kernel so regressions in the
//! simulator's speed show up per-experiment.
//!
//! The full-fidelity sweeps live in the `repro` binary
//! (`cargo run --release -p simnet-harness --bin repro`).

use criterion::{criterion_group, criterion_main, Criterion};
use simnet_cpu::CoreKind;
use simnet_harness::experiments::{self, Effort};
use simnet_harness::{find_msb, run_point, AppSpec, RunConfig, SystemConfig};
use simnet_sim::tick::{ns, us, Frequency};

fn print_header(name: &str) {
    println!("\n===== {name} =====");
}

fn bench_table1(c: &mut Criterion) {
    print_header("Table I — system configurations");
    let out = experiments::table1::run();
    out.emit(std::path::Path::new("results/bench"));
    c.bench_function("table1_config", |b| {
        b.iter(|| {
            let cfg = SystemConfig::gem5();
            std::hint::black_box(cfg.mem.llc.size)
        })
    });
}

fn bench_fig05(c: &mut Criterion) {
    print_header("Fig. 5 — drop breakdown at the knee");
    let cfg = SystemConfig::gem5();
    for (spec, size) in [(AppSpec::TestPmd, 64), (AppSpec::TestPmd, 1518)] {
        let s = run_point(&cfg, &spec, size, 70.0, RunConfig::fast());
        let (dma, core, tx) = s.drop_breakdown;
        println!(
            "{}-{}B overload: Core {:.0}% Dma {:.0}% Tx {:.0}%",
            spec.label(),
            size,
            core * 100.0,
            dma * 100.0,
            tx * 100.0
        );
    }
    c.bench_function("fig05_drop_breakdown", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::TestPmd, 64, 70.0, RunConfig::fast()))
    });
}

fn curve_rows(spec: AppSpec, loads: &[f64], size: usize) {
    for cfg in [SystemConfig::gem5(), SystemConfig::altra()] {
        for &offered in loads {
            let s = run_point(&cfg, &spec, size, offered, RunConfig::fast());
            println!(
                "{:6} {}B offered {:5.1}G -> achieved {:5.1}G drop {:4.1}%",
                cfg.name,
                size,
                offered,
                s.achieved_gbps(),
                s.drop_rate * 100.0
            );
        }
    }
}

fn bench_fig06(c: &mut Criterion) {
    print_header("Fig. 6 — TestPMD bandwidth vs drop");
    curve_rows(AppSpec::TestPmd, &[20.0, 60.0], 1518);
    let cfg = SystemConfig::gem5();
    c.bench_function("fig06_testpmd_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::TestPmd, 1518, 60.0, RunConfig::fast()))
    });
}

fn bench_fig07(c: &mut Criterion) {
    print_header("Fig. 7 — TouchFwd bandwidth vs drop");
    curve_rows(AppSpec::TouchFwd, &[4.0, 12.0], 512);
    let cfg = SystemConfig::gem5();
    c.bench_function("fig07_touchfwd_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::TouchFwd, 512, 12.0, RunConfig::fast()))
    });
}

fn bench_fig08(c: &mut Criterion) {
    print_header("Fig. 8 — RXpTX-10ns bandwidth vs drop");
    curve_rows(AppSpec::RxpTx(ns(10)), &[20.0, 60.0], 256);
    let cfg = SystemConfig::gem5();
    c.bench_function("fig08_rxptx10ns_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::RxpTx(ns(10)), 256, 40.0, RunConfig::fast()))
    });
}

fn bench_fig09(c: &mut Criterion) {
    print_header("Fig. 9 — RXpTX-1us bandwidth vs drop");
    curve_rows(AppSpec::RxpTx(us(1)), &[8.0, 24.0], 256);
    let cfg = SystemConfig::gem5();
    c.bench_function("fig09_rxptx1us_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::RxpTx(us(1)), 256, 16.0, RunConfig::fast()))
    });
}

fn msb_row(cfg: &SystemConfig, label: &str, spec: AppSpec, size: usize) {
    let m = find_msb(cfg, &spec, size, 0.5, 90.0, 5, RunConfig::fast());
    println!(
        "{label}: {} {size}B MSB = {:.1} Gbps",
        spec.label(),
        m.msb_or_zero()
    );
}

fn bench_fig10(c: &mut Criterion) {
    print_header("Fig. 10 — L1 size sensitivity");
    for l1 in [16u64 << 10, 1 << 20] {
        let cfg = SystemConfig::gem5().with_l1_size(l1);
        msb_row(&cfg, &format!("L1 {}KiB", l1 >> 10), AppSpec::TestPmd, 128);
    }
    let cfg = SystemConfig::gem5().with_l1_size(16 << 10);
    c.bench_function("fig10_l1_msb", |b| {
        b.iter(|| {
            find_msb(
                &cfg,
                &AppSpec::TestPmd,
                128,
                1.0,
                60.0,
                4,
                RunConfig::fast(),
            )
        })
    });
}

fn bench_fig11(c: &mut Criterion) {
    print_header("Fig. 11 — L2 size sensitivity");
    for l2 in [256u64 << 10, 4 << 20] {
        let cfg = SystemConfig::gem5().with_l2_size(l2);
        msb_row(&cfg, &format!("L2 {}KiB", l2 >> 10), AppSpec::TestPmd, 128);
    }
    let cfg = SystemConfig::gem5().with_l2_size(256 << 10);
    c.bench_function("fig11_l2_msb", |b| {
        b.iter(|| {
            find_msb(
                &cfg,
                &AppSpec::TestPmd,
                128,
                1.0,
                60.0,
                4,
                RunConfig::fast(),
            )
        })
    });
}

fn bench_fig12(c: &mut Criterion) {
    print_header("Fig. 12 — LLC size sensitivity");
    for llc in [4u64 << 20, 64 << 20] {
        let cfg = SystemConfig::gem5().with_llc_size(llc);
        msb_row(
            &cfg,
            &format!("LLC {}MiB", llc >> 20),
            AppSpec::TestPmd,
            128,
        );
    }
    let cfg = SystemConfig::gem5().with_llc_size(4 << 20);
    c.bench_function("fig12_llc_msb", |b| {
        b.iter(|| {
            find_msb(
                &cfg,
                &AppSpec::TestPmd,
                128,
                1.0,
                60.0,
                4,
                RunConfig::fast(),
            )
        })
    });
}

fn bench_fig13(c: &mut Criterion) {
    print_header("Fig. 13 — DCA leak (processing-time sweep)");
    let cfg = SystemConfig::gem5()
        .with_llc_size(1 << 20)
        .with_rx_ring(4096);
    for proc in [ns(10), us(1), us(5)] {
        let s = run_point(&cfg, &AppSpec::RxpTx(proc), 256, 20.0, RunConfig::fast());
        println!(
            "proc {:>6}ns: drop {:4.1}% LLC miss {:4.1}%",
            proc / 1_000,
            s.drop_rate * 100.0,
            s.llc_miss_rate * 100.0
        );
    }
    c.bench_function("fig13_dca_leak_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::RxpTx(us(1)), 256, 20.0, RunConfig::fast()))
    });
}

fn bench_fig14(c: &mut Criterion) {
    print_header("Fig. 14 — DCA on/off");
    for dca in [true, false] {
        let cfg = SystemConfig::gem5().with_dca(dca);
        msb_row(
            &cfg,
            if dca { "DCA on " } else { "DCA off" },
            AppSpec::TestPmd,
            512,
        );
    }
    let cfg = SystemConfig::gem5().with_dca(false);
    c.bench_function("fig14_dca_off_msb", |b| {
        b.iter(|| {
            find_msb(
                &cfg,
                &AppSpec::TestPmd,
                512,
                1.0,
                60.0,
                4,
                RunConfig::fast(),
            )
        })
    });
}

fn bench_fig15(c: &mut Criterion) {
    print_header("Fig. 15 — core frequency");
    for ghz in [1.0, 4.0] {
        let cfg = SystemConfig::gem5().with_frequency(Frequency::ghz(ghz));
        msb_row(&cfg, &format!("{ghz:.0} GHz"), AppSpec::TestPmd, 128);
    }
    let cfg = SystemConfig::gem5().with_frequency(Frequency::ghz(1.0));
    c.bench_function("fig15_freq_msb", |b| {
        b.iter(|| {
            find_msb(
                &cfg,
                &AppSpec::TestPmd,
                128,
                1.0,
                60.0,
                4,
                RunConfig::fast(),
            )
        })
    });
}

fn bench_fig16(c: &mut Criterion) {
    print_header("Fig. 16 — OoO vs in-order");
    for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        let cfg = SystemConfig::gem5().with_core_kind(kind);
        msb_row(&cfg, &format!("{kind:?}"), AppSpec::TouchFwd, 128);
    }
    let cfg = SystemConfig::gem5().with_core_kind(CoreKind::InOrder);
    c.bench_function("fig16_inorder_msb", |b| {
        b.iter(|| {
            find_msb(
                &cfg,
                &AppSpec::TouchFwd,
                128,
                0.25,
                20.0,
                4,
                RunConfig::fast(),
            )
        })
    });
}

fn bench_fig17(c: &mut Criterion) {
    print_header("Fig. 17 — memory channels & ROB");
    for ch in [1usize, 8, 16] {
        let cfg = SystemConfig::gem5().with_dca(false).with_channels(ch);
        msb_row(&cfg, &format!("{ch} ch, DCA off"), AppSpec::TestPmd, 1518);
    }
    for rob in [32usize, 512] {
        let cfg = SystemConfig::gem5().with_rob(rob);
        msb_row(&cfg, &format!("ROB {rob}"), AppSpec::TouchFwd, 1518);
    }
    let cfg = SystemConfig::gem5().with_dca(false).with_channels(1);
    c.bench_function("fig17_channels_msb", |b| {
        b.iter(|| {
            find_msb(
                &cfg,
                &AppSpec::TestPmd,
                1518,
                1.0,
                60.0,
                4,
                RunConfig::fast(),
            )
        })
    });
}

fn bench_fig18(c: &mut Criterion) {
    print_header("Fig. 18 — memcached throughput vs drop");
    let cfg = SystemConfig::gem5();
    for spec in [AppSpec::MemcachedDpdk, AppSpec::MemcachedKernel] {
        for krps in [150.0, 900.0] {
            let s = run_point(&cfg, &spec, 0, krps, RunConfig::long());
            println!(
                "{:16} offered {:4.0}k -> achieved {:4.0}k unanswered {:4.1}%",
                spec.label(),
                krps,
                s.achieved_rps() / 1e3,
                s.report.drop_rate * 100.0
            );
        }
    }
    c.bench_function("fig18_memcached_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::MemcachedDpdk, 0, 400.0, RunConfig::fast()))
    });
}

fn bench_fig19(c: &mut Criterion) {
    print_header("Fig. 19 — memcached latency vs frequency");
    for ghz in [1.0, 3.0] {
        let cfg = SystemConfig::gem5().with_frequency(Frequency::ghz(ghz));
        let s = run_point(&cfg, &AppSpec::MemcachedDpdk, 0, 400.0, RunConfig::long());
        println!(
            "{ghz:.0} GHz @400k: mean latency {:7.1} us, drop {:4.1}%",
            s.report.latency.mean / 1e6,
            s.report.drop_rate * 100.0
        );
    }
    let cfg = SystemConfig::gem5().with_frequency(Frequency::ghz(1.0));
    c.bench_function("fig19_latency_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::MemcachedDpdk, 0, 400.0, RunConfig::fast()))
    });
}

fn bench_fig20(c: &mut Criterion) {
    print_header("Fig. 20 — EtherLoadGen vs dual-mode simulation time");
    let cfg = SystemConfig::gem5();
    let rc = RunConfig::fast();
    let lg = run_point(&cfg, &AppSpec::MemcachedDpdk, 0, 300.0, rc);
    let dual = simnet_harness::msb::run_dual_point(&cfg, &AppSpec::MemcachedDpdk, 0, 300.0, rc);
    println!(
        "loadgen-mode: {} events in {:.3}s | dual-mode: {} events in {:.3}s",
        lg.events, lg.host_seconds, dual.events, dual.host_seconds
    );
    let mut group = c.benchmark_group("fig20_speedup");
    group.bench_function("loadgen_mode", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::MemcachedDpdk, 0, 300.0, rc))
    });
    group.bench_function("dual_mode", |b| {
        b.iter(|| simnet_harness::msb::run_dual_point(&cfg, &AppSpec::MemcachedDpdk, 0, 300.0, rc))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    print_header("Ablations — writeback threshold / DCA ways / open-vs-closed");
    let out = experiments::ablations::writeback_threshold(Effort::Quick);
    out.emit(std::path::Path::new("results/bench"));
    let mut cfg = SystemConfig::gem5();
    cfg.nic = cfg.nic.with_wb_threshold(64);
    c.bench_function("ablation_wb64_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::TestPmd, 256, 30.0, RunConfig::fast()))
    });
}

fn bench_tcp(c: &mut Criterion) {
    print_header("Extension — TCP stream");
    let out = experiments::tcp_ext::run(Effort::Quick);
    out.emit(std::path::Path::new("results/bench"));
    let cfg = SystemConfig::gem5();
    c.bench_function("tcp_window16_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::IperfTcp, 1518, 16.0, RunConfig::fast()))
    });
}

fn bench_headline(c: &mut Criterion) {
    print_header("Headline — kernel vs userspace bandwidth");
    let out = experiments::headline::run(Effort::Quick);
    out.emit(std::path::Path::new("results/bench"));
    let cfg = SystemConfig::gem5();
    c.bench_function("headline_iperf_point", |b| {
        b.iter(|| run_point(&cfg, &AppSpec::Iperf, 1518, 8.0, RunConfig::fast()))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = figures;
    config = config();
    targets = bench_table1, bench_fig05, bench_fig06, bench_fig07, bench_fig08,
              bench_fig09, bench_fig10, bench_fig11, bench_fig12, bench_fig13,
              bench_fig14, bench_fig15, bench_fig16, bench_fig17, bench_fig18,
              bench_fig19, bench_fig20, bench_headline, bench_ablations, bench_tcp
}
criterion_main!(figures);
