//! Parallel sharded-simulation benchmark: the 8-client incast and the
//! 4-queue memcached point-to-point scenario swept across worker thread
//! counts on the conservative link-lookahead driver, emitting/checking
//! the committed `BENCH_parallel.json`.
//!
//! ```text
//! parallel_bench [--out FILE] [--check BASELINE] [--max-regress PCT]
//! ```
//!
//! Each row runs the sharded driver (`run_observed_parallel`) and
//! records:
//!
//! * `krps` — the achieved request rate. *Simulation-deterministic*: the
//!   conservative sync protocol makes the event schedule a pure function
//!   of seed and config, so this must be bit-equal across thread counts
//!   — asserted in-binary every run, and gated exactly by `--check`.
//! * `events_per_host_sec` — simulator throughput (total events / wall
//!   time). Host-noisy; this is the quantity parallelism improves.
//! * `speedup` — `events_per_host_sec` relative to the same scenario's
//!   1-thread row. Host-noisy.
//!
//! Honest non-scaling row: point-to-point decomposes into only two
//! shards (host + loadgen), so `par_mc_4q` is capped near 2x in the
//! best case and dominated by the host shard in practice — it is
//! reported, never speedup-gated.
//!
//! The ISSUE's hard self-gate — **>= 1.7x** events/host-sec at 4
//! threads on the 8-client incast — is a wall-clock claim about
//! parallel hardware, so it is applied only when the host actually
//! exposes >= 4 cores (`host_cores` in the JSON records what the
//! measurement machine had). On smaller hosts the rows are still
//! produced and the determinism gate still applies, but the speedup
//! gate is skipped with an explicit note rather than failing on
//! physics.

use std::process::ExitCode;
use std::time::Instant;

use simnet_harness::config::TopoConfig;
use simnet_harness::{
    auto_threads, run_observed_parallel, AppSpec, ObserveOpts, RunConfig, SystemConfig,
};
use simnet_sim::tick::us;

/// Offered aggregate rate (Gbps of 1518 B frames) past the host's knee
/// for the incast scenario — same operating point as `topo_bench`.
const OFFERED_GBPS: f64 = 120.0;
const FRAME: usize = 1518;
/// Offered request rate (kRPS) past the 4-lcore memcached knee — same
/// operating point as `mq_bench`.
const OFFERED_KRPS: f64 = 3_200.0;
/// Hard speedup floor at 4 threads on the incast scenario, applied when
/// the host has at least [`GATE_THREADS`] cores.
const GATE_SPEEDUP: f64 = 1.7;
const GATE_THREADS: usize = 4;

struct Row {
    scenario: &'static str,
    threads: usize,
    shards: usize,
    krps: f64,
    events: u64,
    events_per_host_sec: f64,
}

impl Row {
    fn name(&self) -> String {
        format!("{}_t{}", self.scenario, self.threads)
    }
}

fn run_row(
    scenario: &'static str,
    cfg: &SystemConfig,
    spec: &AppSpec,
    size: usize,
    offered: f64,
    threads: usize,
) -> Row {
    let start = Instant::now();
    let o = run_observed_parallel(
        cfg,
        spec,
        size,
        offered,
        RunConfig::long(),
        threads,
        ObserveOpts::default(),
    );
    let host = start.elapsed().as_secs_f64();
    Row {
        scenario,
        threads: o.threads,
        shards: o.shards,
        krps: o.summary.achieved_rps() / 1e3,
        events: o.summary.events,
        events_per_host_sec: if host > 0.0 {
            o.summary.events as f64 / host
        } else {
            0.0
        },
    }
}

fn run_rows() -> Vec<Row> {
    let mut rows = Vec::new();

    // 8-client incast: 10 shards (host + switch + 8 client fleets), the
    // scenario the tentpole exists to accelerate.
    let incast = SystemConfig::gem5().with_topo(TopoConfig::incast(8).with_latency_spread(us(10)));
    for threads in [1usize, 2, 4] {
        rows.push(run_row(
            "par_incast_8c",
            &incast,
            &AppSpec::TestPmd,
            FRAME,
            OFFERED_GBPS,
            threads,
        ));
    }

    // 4-queue memcached point-to-point: only 2 shards (host + loadgen),
    // and the host shard dominates — the honest non-scaling row.
    let mc = SystemConfig::gem5().with_queues(4).with_lcores(4);
    for threads in [1usize, 2] {
        rows.push(run_row(
            "par_mc_4q",
            &mc,
            &AppSpec::MemcachedDpdk,
            0,
            OFFERED_KRPS,
            threads,
        ));
    }
    rows
}

/// The 1-thread row of `row`'s scenario, the speedup denominator.
fn base_of<'a>(rows: &'a [Row], row: &Row) -> &'a Row {
    rows.iter()
        .find(|r| r.scenario == row.scenario && r.threads == 1)
        .expect("every scenario runs threads=1 first")
}

fn fmt_json(rows: &[Row], host_cores: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-parallel-v1\",\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"offered_gbps\": {OFFERED_GBPS},\n"));
    out.push_str(&format!("  \"offered_krps\": {OFFERED_KRPS},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let base = base_of(rows, r);
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"shards\": {}, \"krps\": {:.1}, \"events_per_host_sec\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.name(),
            r.threads,
            r.shards,
            r.krps,
            r.events_per_host_sec,
            r.events_per_host_sec / base.events_per_host_sec.max(1e-9),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"name": ..., "krps": ...` pairs out of a baseline JSON.
/// Hand-rolled (no serde in the workspace), tied to our own writer.
/// `krps` is the gated metric because it is simulation-deterministic;
/// `speedup` is wall-clock and depends on the measurement host.
fn parse_baseline_krps(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(k_at) = line.find("\"krps\": ") else {
            continue;
        };
        let k_rest = &line[k_at + 8..];
        let digits: String = k_rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(krps) = digits.parse::<f64>() {
            out.push((name.to_string(), krps));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut max_regress = 20.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => {
                    eprintln!("--check requires a baseline file path");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regress" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => max_regress = v,
                _ => {
                    eprintln!("--max-regress requires a positive percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: parallel_bench [--out FILE] [--check BASELINE] [--max-regress PCT]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let host_cores = auto_threads();
    println!("parallel sharding bench ({host_cores} host cores):");
    let rows = run_rows();
    for r in &rows {
        let base = base_of(&rows, r);
        println!(
            "  {:<18} {} shards  {:>8.1} kRPS   {:>10.0} ev/host-s   speedup {:.2}x",
            r.name(),
            r.shards,
            r.krps,
            r.events_per_host_sec,
            r.events_per_host_sec / base.events_per_host_sec.max(1e-9),
        );
    }

    // Determinism gate, unconditional: within a scenario every thread
    // count must reproduce the 1-thread schedule bit-for-bit.
    for r in &rows {
        let base = base_of(&rows, r);
        if r.events != base.events || r.krps != base.krps {
            eprintln!(
                "error: {} diverged from {} (events {} vs {}, krps {:.3} vs {:.3}) — \
                 thread count changed the simulation",
                r.name(),
                base.name(),
                r.events,
                base.events,
                r.krps,
                base.krps
            );
            return ExitCode::FAILURE;
        }
    }

    // Speedup self-gate: a wall-clock claim, only meaningful on a host
    // that can actually run 4 workers in parallel.
    let gated = rows
        .iter()
        .find(|r| r.scenario == "par_incast_8c" && r.threads == GATE_THREADS)
        .expect("incast always sweeps 4 threads");
    let speedup = gated.events_per_host_sec / base_of(&rows, gated).events_per_host_sec.max(1e-9);
    if host_cores >= GATE_THREADS {
        if speedup < GATE_SPEEDUP {
            eprintln!(
                "error: {} speedup {speedup:.2}x is below the {GATE_SPEEDUP}x floor",
                gated.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "  gate {}: speedup {speedup:.2}x >= {GATE_SPEEDUP}x ok",
            gated.name()
        );
    } else {
        println!(
            "  gate {}: skipped — host has {host_cores} core(s), < {GATE_THREADS} \
             needed for a wall-clock speedup claim (speedup measured {speedup:.2}x)",
            gated.name()
        );
    }

    let json = fmt_json(&rows, host_cores);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: could not read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = parse_baseline_krps(&baseline);
        if base.is_empty() {
            eprintln!("error: no krps entries found in baseline {path}");
            return ExitCode::FAILURE;
        }
        let mut failed = false;
        for (name, base_krps) in &base {
            let Some(r) = rows.iter().find(|r| &r.name() == name) else {
                eprintln!("warning: baseline row {name} not measured; skipping");
                continue;
            };
            let floor = base_krps / (1.0 + max_regress / 100.0);
            let status = if r.krps < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  check {name}: {:.1} kRPS vs baseline {base_krps:.1} kRPS \
                 (floor {floor:.1}) {status}",
                r.krps
            );
        }
        if failed {
            eprintln!("error: parallel scenarios regressed more than {max_regress}% vs {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
