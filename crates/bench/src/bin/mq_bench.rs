//! Multi-queue scaling benchmark: MemcachedDPDK driven past its knee at
//! `(nqueues, lcores)` ∈ {(1,1), (2,2), (4,4)}, emitting/checking the
//! committed `BENCH_mq.json`.
//!
//! ```text
//! mq_bench [--out FILE] [--check BASELINE] [--max-regress PCT]
//! ```
//!
//! Each row runs the real simulation at a deliberately saturating
//! offered rate and records:
//!
//! * `krps` — the achieved request rate, i.e. the configuration's knee.
//!   This is *simulation-deterministic*: a pure function of the seed and
//!   config, immune to host noise, so the scaling gate built on it is
//!   exact.
//! * `events_per_host_sec` — simulator effort, honestly reported so the
//!   configuration cost of extra queues/lcores is visible. Host-noisy;
//!   informational only, never gated.
//! * `speedup` — achieved krps relative to the (1,1) row.
//!
//! The bench self-gates: it exits nonzero unless the (4,4) row sustains
//! **>= 1.5x** the (1,1) request rate — the PR's acceptance floor for
//! the multi-queue tentpole. `--check` compares each row's speedup
//! against the committed baseline with a regression tolerance on top.

use std::process::ExitCode;
use std::time::Instant;

use simnet_harness::{run_point, AppSpec, RunConfig, SystemConfig};

/// Offered request rate (kRPS) far past the 4-lcore knee, so every row
/// reports its saturation point.
const OFFERED_KRPS: f64 = 3_200.0;

struct Row {
    nqueues: usize,
    lcores: usize,
    krps: f64,
    events_per_host_sec: f64,
}

impl Row {
    fn name(&self) -> String {
        format!("mc_dpdk_{}q{}l", self.nqueues, self.lcores)
    }
}

fn run_rows() -> Vec<Row> {
    [(1usize, 1usize), (2, 2), (4, 4)]
        .iter()
        .map(|&(nq, lc)| {
            let cfg = SystemConfig::gem5().with_queues(nq).with_lcores(lc);
            let start = Instant::now();
            let s = run_point(
                &cfg,
                &AppSpec::MemcachedDpdk,
                0,
                OFFERED_KRPS,
                RunConfig::long(),
            );
            let host = start.elapsed().as_secs_f64();
            Row {
                nqueues: nq,
                lcores: lc,
                krps: s.achieved_rps() / 1e3,
                events_per_host_sec: if host > 0.0 {
                    s.events as f64 / host
                } else {
                    0.0
                },
            }
        })
        .collect()
}

fn fmt_json(rows: &[Row], base_krps: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-mq-v1\",\n");
    out.push_str(&format!("  \"offered_krps\": {OFFERED_KRPS},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"queues\": {}, \"lcores\": {}, \"krps\": {:.1}, \"events_per_host_sec\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.name(),
            r.nqueues,
            r.lcores,
            r.krps,
            r.events_per_host_sec,
            r.krps / base_krps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"name": ..., "speedup": ...` pairs out of a baseline JSON.
/// Hand-rolled (no serde in the workspace), tied to our own writer.
fn parse_baseline_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(sp_at) = line.find("\"speedup\": ") else {
            continue;
        };
        let sp_rest = &line[sp_at + 11..];
        let digits: String = sp_rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(speedup) = digits.parse::<f64>() {
            out.push((name.to_string(), speedup));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut max_regress = 20.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => {
                    eprintln!("--check requires a baseline file path");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regress" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => max_regress = v,
                _ => {
                    eprintln!("--max-regress requires a positive percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: mq_bench [--out FILE] [--check BASELINE] [--max-regress PCT]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!("multi-queue scaling bench (memcached-dpdk @ {OFFERED_KRPS} kRPS offered):");
    let rows = run_rows();
    let base_krps = rows[0].krps.max(1e-9);
    for r in &rows {
        println!(
            "  {:<14} {:>8.1} kRPS   {:>10.0} ev/host-s   speedup {:.2}x",
            r.name(),
            r.krps,
            r.events_per_host_sec,
            r.krps / base_krps
        );
    }

    // The tentpole's acceptance floor, gated unconditionally: 4 lcores
    // must sustain >= 1.5x the single-core request rate.
    let top = rows.last().expect("rows always run");
    let top_speedup = top.krps / base_krps;
    if top_speedup < 1.5 {
        eprintln!(
            "error: {} speedup {top_speedup:.2}x is below the 1.5x floor",
            top.name()
        );
        return ExitCode::FAILURE;
    }

    let json = fmt_json(&rows, base_krps);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: could not read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = parse_baseline_speedups(&baseline);
        if base.is_empty() {
            eprintln!("error: no speedup entries found in baseline {path}");
            return ExitCode::FAILURE;
        }
        let mut failed = false;
        for (name, base_speedup) in &base {
            let Some(r) = rows.iter().find(|r| &r.name() == name) else {
                eprintln!("warning: baseline row {name} not measured; skipping");
                continue;
            };
            let speedup = r.krps / base_krps;
            let floor = base_speedup / (1.0 + max_regress / 100.0);
            let status = if speedup < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  check {name}: speedup {speedup:.2}x vs baseline {base_speedup:.2}x \
                 (floor {floor:.2}x) {status}"
            );
        }
        if failed {
            eprintln!("error: multi-queue scaling regressed more than {max_regress}% vs {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
