//! Burst-transport benchmark: wire deliveries moved through the event
//! queue one-event-per-packet (scalar) vs coalesced into [`Burst`]
//! carriers (up to 32 packets per queue event, constituents recovered
//! analytically at their reserved `(tick, seq)` keys), emitting/checking
//! the committed `BENCH_burst.json`.
//!
//! ```text
//! burst_bench [--scale F] [--out FILE] [--check BASELINE] [--max-regress PCT]
//! ```
//!
//! The microbench scenarios replay the *steady-state* event pattern the
//! simulator produces at the testpmd knee (64 B @ 70 Gbps: ~7 ns
//! inter-arrival, 100 µs one-way wire latency). The defining feature of
//! that regime is the bandwidth-delay product: ~14k frames are in flight
//! per direction, so the queue persistently holds ~14k pending arrival
//! events (scalar) vs ~450 carriers (burst transport). Each scenario
//! runs the churn loop — pop a delivery, schedule its echo's return
//! arrival a horizon ahead — isolated at the queue-transport layer where
//! the batching lives:
//!
//! * `testpmd_knee_rx_stream` — one wire direction's delivery stream in
//!   knee steady state. This is the headline: the bench itself fails
//!   unless the burst transport moves deliveries at **>= 2x** the scalar
//!   events/host-second here. The win is part amortization (one queue
//!   round-trip per 32 deliveries) and part cache footprint (the
//!   pending set shrinks 32x; constituents stream out of one contiguous
//!   carrier instead of scattered queue slots).
//! * `ragged_tail_33_spill` — the same churn at burst 33, so every
//!   carrier spills past the inline capacity and drains a ragged tail
//!   through the heap-backed spill vector.
//! * `interposed_alternating` — a rate-matched interposer stream (the
//!   same-tick DMA kicks / departures of the end-to-end schedule) woven
//!   between deliveries, so nearly every constituent's inline check
//!   fails and the remainder requeues under its original key. This is
//!   deliberately honest: the expected speedup is ~1x or below, and the
//!   committed baseline guards it against becoming a pathological
//!   slowdown.
//! * `size1_degenerate` — `--burst=1` semantics: every batch flushes at
//!   size one as the original scalar event, so the burst transport must
//!   cost about the same as the scalar path (~1x).
//!
//! The `end_to_end` row runs the real simulation at the knee with
//! `burst=1` vs `burst=32` and records both events/host-second honestly
//! — byte-identical schedules mean the executed-event count is *equal*
//! by construction, and the ratio hovers near 1 because the end-to-end
//! schedule has an interposing event between any two deliveries (see
//! EXPERIMENTS.md for why the transport win does not survive the full
//! handler mix).

use std::process::ExitCode;
use std::time::Instant;

use simnet_harness::{run_observed, AppSpec, ObserveOpts, RunConfig, SystemConfig};
use simnet_net::burst::Burst;
use simnet_net::Packet;
use simnet_sim::{EventQueue, Priority};

/// Queue payloads of the replay: a scalar delivery, a burst carrier, or
/// an interposing event (the DMA-kick / departure stand-in).
enum Ev {
    Rx(Packet),
    Carrier(Box<Burst>),
    Kick,
}

/// The steady-state replay point: how many deliveries are in flight
/// (the queue's persistent pending depth), how far ahead an echo's
/// return arrival is scheduled, and how many deliveries to churn.
#[derive(Clone, Copy)]
struct Knee {
    /// Pending deliveries at any instant — the bandwidth-delay product.
    depth: u64,
    /// Echo return-arrival lookahead in ticks (the one-way wire latency).
    horizon: u64,
    /// Deliveries to churn through the timed loop.
    rounds: u64,
    /// Whether a rate-matched interposer stream rides along.
    interposed: bool,
}

/// Inter-arrival gap of 64 B frames at ~70 Gbps, in ticks.
const KNEE_GAP: u64 = 7;

/// One-way wire latency at the paper's 100 µs point, in ticks.
const KNEE_HORIZON: u64 = 100_000;

/// In-flight 64 B frames at the knee: horizon / gap, rounded to bursts.
const KNEE_DEPTH: u64 = 14_336;

/// Scalar transport in knee steady state: every delivery is its own
/// queue event; popping one schedules its echo's return arrival a
/// horizon ahead, so the pending depth never shrinks. Returns the
/// elapsed nanoseconds of the steady churn loop alone — priming the
/// bandwidth-delay product into the queue is setup, not the regime
/// under measurement, and at small `--scale` it would otherwise
/// dominate the timing.
fn scalar_steady(k: Knee) -> u64 {
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut acc = 0u64;
    let mut t = 0u64;
    for i in 0..k.depth {
        t += KNEE_GAP;
        q.schedule_with_priority(t, Priority::LINK, Ev::Rx(Packet::zeroed(i, 64)));
        if k.interposed {
            q.schedule_with_priority(t + 1, Priority::DMA, Ev::Kick);
        }
    }
    let mut delivered = 0u64;
    let start = Instant::now();
    while delivered < k.rounds {
        let ev = q.pop().expect("steady queue never drains");
        match ev.payload {
            Ev::Rx(p) => {
                acc = acc.wrapping_add(ev.tick ^ p.id());
                q.schedule_with_priority(ev.tick + k.horizon, Priority::LINK, Ev::Rx(p));
                delivered += 1;
            }
            Ev::Kick => {
                acc = acc.wrapping_add(1);
                q.schedule_with_priority(ev.tick + k.horizon, Priority::DMA, Ev::Kick);
            }
            Ev::Carrier(_) => unreachable!("scalar transport schedules no carriers"),
        }
    }
    let elapsed = start.elapsed().as_nanos() as u64;
    std::hint::black_box(acc);
    elapsed
}

/// Burst transport in knee steady state: deliveries travel as carriers;
/// each drained constituent's echo coalesces into an accumulating
/// carrier (reserving its scalar seq) flushed every `burst_size`. The
/// drain dispatches constituents inline while nothing pending sorts
/// before them and requeues the remainder under its next constituent's
/// original key otherwise — the simulator's `coalesce_delivery` /
/// `flush_coalescer` / `handle_burst` logic, spent carriers recycled.
/// Like [`scalar_steady`], returns the elapsed nanoseconds of the
/// steady churn loop alone (priming excluded).
fn burst_steady(k: Knee, burst_size: usize) -> u64 {
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut spare: Vec<Box<Burst>> = Vec::new();
    let mut acc = 0u64;
    let mut t = 0u64;
    let mut coalescer: Box<Burst> = Box::default();
    for id in 0..k.depth {
        t += KNEE_GAP;
        coalesce(
            &mut q,
            &mut spare,
            &mut coalescer,
            burst_size,
            t,
            Packet::zeroed(id, 64),
        );
        if k.interposed {
            q.schedule_with_priority(t + 1, Priority::DMA, Ev::Kick);
        }
    }
    // Priming ends on a batch boundary or a partial batch: flush the
    // remainder so the steady loop starts from an empty coalescer (an
    // early flush never changes dispatch order, only amortization).
    if let Some(b) = flush(&mut q, std::mem::take(&mut coalescer)) {
        spare.push(b);
    }

    let mut delivered = 0u64;
    let start = Instant::now();
    while delivered < k.rounds {
        let ev = q.pop().expect("steady queue never drains");
        match ev.payload {
            Ev::Rx(p) => {
                // A size-1 flush travelled as the original scalar event.
                acc = acc.wrapping_add(ev.tick ^ p.id());
                let echo = ev.tick + k.horizon;
                coalesce(&mut q, &mut spare, &mut coalescer, burst_size, echo, p);
                delivered += 1;
            }
            Ev::Kick => {
                acc = acc.wrapping_add(1);
                q.schedule_with_priority(ev.tick + k.horizon, Priority::DMA, Ev::Kick);
            }
            Ev::Carrier(mut b) => {
                let (tick, _, p) = b.take_next().expect("carriers are never queued empty");
                acc = acc.wrapping_add(tick ^ p.id());
                let mut flushed = coalesce(
                    &mut q,
                    &mut spare,
                    &mut coalescer,
                    burst_size,
                    tick + k.horizon,
                    p,
                );
                delivered += 1;
                // The queue's next pending key changes only when something
                // is scheduled (a coalescer flush); between mutations the
                // inline-dispatch bound is a loop invariant, so hoist it —
                // the same decisions as re-peeking per constituent, minus
                // the per-iteration queue access.
                let mut limit = q.peek_key();
                loop {
                    let Some((ct, cs)) = b.peek() else {
                        b.reset();
                        spare.push(b);
                        break;
                    };
                    if flushed {
                        limit = q.peek_key();
                        flushed = false;
                    }
                    if limit.is_some_and(|n| n < (ct, Priority::LINK, cs)) {
                        q.schedule_keyed(ct, Priority::LINK, cs, Ev::Carrier(b));
                        break;
                    }
                    q.advance_inline(ct);
                    let (ct, _, p) = b.take_next().expect("peeked above");
                    acc = acc.wrapping_add(ct ^ p.id());
                    flushed = coalesce(
                        &mut q,
                        &mut spare,
                        &mut coalescer,
                        burst_size,
                        ct + k.horizon,
                        p,
                    );
                    delivered += 1;
                }
            }
        }
    }
    let elapsed = start.elapsed().as_nanos() as u64;
    std::hint::black_box(acc);
    elapsed
}

/// Routes one delivery into the accumulating carrier, reserving its
/// scalar seq, and flushes the batch once it reaches `burst_size` —
/// the simulator's `coalesce_delivery`, with spent-carrier recycling.
/// Returns whether a flush mutated the queue (the caller's hoisted
/// inline-dispatch bound must be recomputed).
///
/// The spare list holds `Box<Burst>` deliberately: a queued carrier
/// travels as `Ev::Carrier(Box<Burst>)`, and recycling the box itself
/// is what keeps flushes free of per-batch allocations.
#[allow(clippy::vec_box)]
#[inline]
fn coalesce(
    q: &mut EventQueue<Ev>,
    spare: &mut Vec<Box<Burst>>,
    coalescer: &mut Box<Burst>,
    burst_size: usize,
    tick: u64,
    packet: Packet,
) -> bool {
    let seq = q.reserve_seq();
    coalescer.push(tick, seq, packet);
    if coalescer.remaining() >= burst_size {
        let full = std::mem::replace(coalescer, spare.pop().unwrap_or_default());
        if let Some(b) = flush(q, full) {
            spare.push(b);
        }
        true
    } else {
        false
    }
}

/// Inserts a carrier under its first constituent's reserved key. A
/// size-1 batch degenerates to the original scalar event — mirroring
/// the simulator's `flush_coalescer` — and hands its (empty) box back
/// for recycling.
fn flush(q: &mut EventQueue<Ev>, mut carrier: Box<Burst>) -> Option<Box<Burst>> {
    let (tick, seq) = carrier.peek()?;
    if carrier.remaining() == 1 {
        let (t, s, p) = carrier.take_next().expect("peeked above");
        q.schedule_keyed(t, Priority::LINK, s, Ev::Rx(p));
        carrier.reset();
        Some(carrier)
    } else {
        q.schedule_keyed(tick, Priority::LINK, seq, Ev::Carrier(carrier));
        None
    }
}

/// Times scalar vs burst over `reps` interleaved repetitions and returns
/// the minimum ns per delivery for each. The closures self-time their
/// steady loop (priming excluded) and return elapsed nanoseconds.
/// Interleaved so ambient host noise hits both alike; the *minimum*
/// because on a shared host noise is strictly additive — a rep can be
/// slowed by interference but never sped up — so min-of-reps is the
/// lowest-variance estimator of the true per-delivery cost (the same
/// reasoning as `timeit`'s `min`).
fn time_pair_ns_per_delivery(
    reps: u64,
    deliveries_per_rep: u64,
    mut scalar: impl FnMut() -> u64,
    mut burst: impl FnMut() -> u64,
) -> (f64, f64) {
    let _warm = (scalar(), burst());
    let mut scalar_best = u64::MAX;
    let mut burst_best = u64::MAX;
    for _ in 0..reps {
        scalar_best = scalar_best.min(scalar());
        burst_best = burst_best.min(burst());
    }
    (
        scalar_best as f64 / deliveries_per_rep as f64,
        burst_best as f64 / deliveries_per_rep as f64,
    )
}

struct Scenario {
    name: &'static str,
    scalar_ns: f64,
    burst_ns: f64,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.burst_ns
    }
}

fn run_scenarios(scale: f64) -> Vec<Scenario> {
    let s = |n: u64| ((n as f64 * scale).round() as u64).max(1);
    let mut out = Vec::new();
    let reps = 9;

    let knee = Knee {
        depth: KNEE_DEPTH,
        horizon: KNEE_HORIZON,
        rounds: s(262_144),
        interposed: false,
    };

    // Scenario 1: the knee's RX delivery stream in steady state.
    let (scalar_ns, burst_ns) = time_pair_ns_per_delivery(
        reps,
        knee.rounds,
        || scalar_steady(knee),
        || burst_steady(knee, 32),
    );
    out.push(Scenario {
        name: "testpmd_knee_rx_stream",
        scalar_ns,
        burst_ns,
    });

    // Scenario 2: the same churn at burst 33 — every carrier spills.
    let (scalar_ns, burst_ns) = time_pair_ns_per_delivery(
        reps,
        knee.rounds,
        || scalar_steady(knee),
        || burst_steady(knee, 33),
    );
    out.push(Scenario {
        name: "ragged_tail_33_spill",
        scalar_ns,
        burst_ns,
    });

    // Scenario 3: an interposer between every pair of deliveries — the
    // end-to-end regime, where equivalence forces a requeue per
    // constituent. Honest expectation: ~1x or below.
    let interposed = Knee {
        interposed: true,
        rounds: s(131_072),
        ..knee
    };
    let (scalar_ns, burst_ns) = time_pair_ns_per_delivery(
        reps,
        interposed.rounds,
        || scalar_steady(interposed),
        || burst_steady(interposed, 32),
    );
    out.push(Scenario {
        name: "interposed_alternating",
        scalar_ns,
        burst_ns,
    });

    // Scenario 4: `--burst=1` semantics — size-1 batches degenerate to
    // scalar events; the transport must cost ~nothing extra.
    let degenerate = Knee {
        rounds: s(131_072),
        ..knee
    };
    let (scalar_ns, burst_ns) = time_pair_ns_per_delivery(
        reps,
        degenerate.rounds,
        || scalar_steady(degenerate),
        || burst_steady(degenerate, 1),
    );
    out.push(Scenario {
        name: "size1_degenerate",
        scalar_ns,
        burst_ns,
    });
    out
}

/// End-to-end honesty row: the real simulation at the knee, `burst=1`
/// vs `burst=32`. The schedules are byte-identical, so the event counts
/// match exactly; only host time may differ.
struct EndToEnd {
    events: u64,
    scalar_eps: f64,
    burst_eps: f64,
}

fn end_to_end() -> EndToEnd {
    let cfg = SystemConfig::gem5();
    let point = |burst: usize| {
        let start = Instant::now();
        let run = run_observed(
            &cfg,
            &AppSpec::TestPmd,
            64,
            70.0,
            RunConfig::fast(),
            ObserveOpts {
                burst,
                ..Default::default()
            },
        );
        (
            run.summary.events,
            run.summary.events as f64 / start.elapsed().as_secs_f64(),
        )
    };
    let (scalar_events, scalar_eps) = point(1);
    let (burst_events, burst_eps) = point(32);
    assert_eq!(
        scalar_events, burst_events,
        "burst=1 and burst=32 must execute identical event counts"
    );
    EndToEnd {
        events: scalar_events,
        scalar_eps,
        burst_eps,
    }
}

fn fmt_json(scenarios: &[Scenario], e2e: &EndToEnd, scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-burst-v1\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ns_per_delivery\": {:.2}, \"burst_ns_per_delivery\": {:.2}, \"speedup\": {:.3}}}{}\n",
            sc.name,
            sc.scalar_ns,
            sc.burst_ns,
            sc.speedup(),
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"end_to_end\": {{\"name\": \"testpmd_64B_70gbps_knee\", \"events\": {}, \"burst1_events_per_host_sec\": {:.0}, \"burst32_events_per_host_sec\": {:.0}, \"ratio\": {:.3}}}\n",
        e2e.events,
        e2e.scalar_eps,
        e2e.burst_eps,
        e2e.burst_eps / e2e.scalar_eps
    ));
    out.push_str("}\n");
    out
}

/// Pulls `"name": ..., "speedup": ...` pairs out of a baseline JSON.
/// Hand-rolled (no serde in the workspace), tied to our own writer.
fn parse_baseline_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(sp_at) = line.find("\"speedup\": ") else {
            continue;
        };
        let sp_rest = &line[sp_at + 11..];
        let digits: String = sp_rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(speedup) = digits.parse::<f64>() {
            out.push((name.to_string(), speedup));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut scale = 1.0f64;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut max_regress = 20.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => {
                    eprintln!("--check requires a baseline file path");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regress" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => max_regress = v,
                _ => {
                    eprintln!("--max-regress requires a positive percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: burst_bench [--scale F] [--out FILE] [--check BASELINE] [--max-regress PCT]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!("burst-transport bench (scale {scale}):");
    let scenarios = run_scenarios(scale);
    for sc in &scenarios {
        println!(
            "  {:<24} scalar {:>7.2} ns/dlv   burst {:>7.2} ns/dlv   speedup {:.2}x",
            sc.name,
            sc.scalar_ns,
            sc.burst_ns,
            sc.speedup()
        );
    }
    let e2e = end_to_end();
    println!(
        "  {:<24} {} events; burst=1 {:.0} ev/host-s, burst=32 {:.0} ev/host-s (ratio {:.2})",
        "testpmd_64B_70gbps_knee",
        e2e.events,
        e2e.scalar_eps,
        e2e.burst_eps,
        e2e.burst_eps / e2e.scalar_eps
    );

    // The tentpole's headline, gated unconditionally: the burst
    // transport must move the knee's delivery stream at >= 2x the
    // scalar events/host-second.
    let headline = scenarios
        .iter()
        .find(|s| s.name == "testpmd_knee_rx_stream")
        .expect("headline scenario always runs");
    if headline.speedup() < 2.0 {
        eprintln!(
            "error: testpmd_knee_rx_stream speedup {:.2}x is below the 2x floor",
            headline.speedup()
        );
        return ExitCode::FAILURE;
    }

    let json = fmt_json(&scenarios, &e2e, scale);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: could not read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = parse_baseline_speedups(&baseline);
        if base.is_empty() {
            eprintln!("error: no speedup entries found in baseline {path}");
            return ExitCode::FAILURE;
        }
        let mut failed = false;
        for (name, base_speedup) in &base {
            let Some(sc) = scenarios.iter().find(|s| s.name == name) else {
                eprintln!("warning: baseline scenario {name} not measured; skipping");
                continue;
            };
            let floor = base_speedup / (1.0 + max_regress / 100.0);
            let status = if sc.speedup() < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  check {name}: speedup {:.2}x vs baseline {:.2}x (floor {:.2}x) {status}",
                sc.speedup(),
                base_speedup,
                floor
            );
        }
        if failed {
            eprintln!(
                "error: burst-transport speedup regressed more than {max_regress}% vs {path}"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
