//! Packet-pool benchmark: pooled [`Packet`] (mempool + COW handles) vs
//! a deep-copy `Vec<u8>` packet — the representation the hot path used
//! before the mempool — emitting/checking the committed
//! `BENCH_pkt_pool.json`.
//!
//! ```text
//! pkt_bench [--scale F] [--out FILE] [--check BASELINE] [--max-regress PCT]
//! ```
//!
//! * `--scale F` multiplies iteration counts (CI smoke uses 0.2).
//! * `--out FILE` writes the measured JSON.
//! * `--check BASELINE` compares the measured pooled-vs-vec *speedup
//!   ratio* per scenario against the committed baseline and exits
//!   non-zero if any scenario regressed by more than `--max-regress`
//!   percent (default 20). Ratios, not absolute nanoseconds, so the
//!   check is meaningful across host machines.
//!
//! The workloads mirror the simulator's real per-packet life cycle: an
//! allocate-touch-free churn (loadgen builds, NIC consumes), a clone
//! fan-out (the per-hop `completion.packet.clone()` the mempool
//! removed), and the full RX→app→TX forwarding trip with a MAC swap.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use simnet_harness::{run_point, AppSpec, RunConfig, SystemConfig};
use simnet_net::Packet;

/// The pre-mempool packet: id + owned bytes, deep-copied on clone. This
/// is byte-for-byte what `simnet-net::Packet` stored before the pool.
#[derive(Clone)]
struct VecPacket {
    id: u64,
    data: Vec<u8>,
}

impl VecPacket {
    fn zeroed(id: u64, len: usize) -> Self {
        Self {
            id,
            data: vec![0u8; len],
        }
    }

    fn macswap(&mut self) {
        for i in 0..6 {
            self.data.swap(i, 6 + i);
        }
    }
}

/// Allocate-touch-free churn: the loadgen/NIC edge of the pipeline.
/// Every iteration allocates a frame, stamps a header word, reads the
/// tail, and drops it. Pooled allocation recycles one freelist slot;
/// the Vec baseline round-trips the allocator every time.
fn alloc_touch_free_pooled(n: u64, len: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        let mut p = Packet::zeroed(i, len);
        black_box(p.bytes_mut())[0] = i as u8;
        acc = acc.wrapping_add(u64::from(black_box(p.bytes())[len - 1]) ^ p.id());
    }
    acc
}

fn alloc_touch_free_vec(n: u64, len: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        let mut p = VecPacket::zeroed(i, len);
        black_box(&mut p.data)[0] = i as u8;
        acc = acc.wrapping_add(u64::from(black_box(&p.data)[len - 1]) ^ p.id);
    }
    acc
}

/// Clone fan-out: one live frame handed to `n` observers that only
/// read — the exact shape of the per-hop `completion.packet.clone()`
/// the zero-copy handoff removed. Pooled clones bump a refcount; Vec
/// clones memcpy the full frame.
fn clone_fanout_pooled(n: u64, len: usize) -> u64 {
    let source = Packet::zeroed(1, len);
    let mut acc = 0u64;
    for i in 0..n {
        let c = black_box(source.clone());
        acc = acc.wrapping_add(u64::from(c.bytes()[(i as usize) % len]));
    }
    acc
}

fn clone_fanout_vec(n: u64, len: usize) -> u64 {
    let source = VecPacket::zeroed(1, len);
    let mut acc = 0u64;
    for i in 0..n {
        let c = black_box(source.clone());
        acc = acc.wrapping_add(u64::from(c.data[(i as usize) % len]));
    }
    acc
}

/// The full forwarding trip. Pooled semantics: the frame moves by value
/// through RX completion → app → TX request, and the app's MAC swap
/// mutates the unique buffer in place. Vec semantics (the old code):
/// RX clones into the completion, the app clones again for the TX
/// request, and the swap runs on the second copy.
fn forward_trip_pooled(n: u64, len: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        let mut rx = Packet::zeroed(i, len); // DMA writeback
        black_box(rx.bytes_mut())[12] = 0x08; // ethertype stamp
        let mut owned = black_box(rx); // by-value handoff to the app
        owned.macswap();
        acc = acc.wrapping_add(u64::from(black_box(owned.bytes())[6])); // TX consumes
    }
    acc
}

fn forward_trip_vec(n: u64, len: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        let mut wire = VecPacket::zeroed(i, len); // DMA writeback
        black_box(&mut wire.data)[12] = 0x08;
        let rx = black_box(wire.clone()); // completion kept a copy
        let mut tx = black_box(rx.clone()); // app forwarded a copy
        tx.macswap();
        acc = acc.wrapping_add(u64::from(black_box(&tx.data)[6]));
    }
    acc
}

/// Times the two representations over `reps` **interleaved** repetitions
/// (pooled, vec, pooled, vec, …) and returns the median ns/packet for
/// each. Interleaving means ambient host noise hits both alike, keeping
/// the *ratio* stable even when absolute numbers wobble; the median
/// discards stray slow reps entirely.
fn time_pair_ns_per_pkt(
    reps: u64,
    pkts_per_rep: u64,
    mut pooled: impl FnMut() -> u64,
    mut vec: impl FnMut() -> u64,
) -> (f64, f64) {
    // One warm-up rep each (also pre-populates the freelist), then the
    // timed ones; black-box the checksum.
    let mut sink = pooled().wrapping_add(vec());
    let mut pooled_reps = Vec::with_capacity(reps as usize);
    let mut vec_reps = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let start = Instant::now();
        sink = sink.wrapping_add(pooled());
        pooled_reps.push(start.elapsed().as_nanos() as f64 / pkts_per_rep as f64);
        let start = Instant::now();
        sink = sink.wrapping_add(vec());
        vec_reps.push(start.elapsed().as_nanos() as f64 / pkts_per_rep as f64);
    }
    std::hint::black_box(sink);
    (median(&mut pooled_reps), median(&mut vec_reps))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Scenario {
    name: &'static str,
    pooled_ns: f64,
    vec_ns: f64,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        self.vec_ns / self.pooled_ns
    }
}

fn run_scenarios(scale: f64) -> Vec<Scenario> {
    let s = |n: u64| ((n as f64 * scale).round() as u64).max(1);
    let mut out = Vec::new();

    // Scenario 1: allocation churn on full-size frames.
    let n = s(1_000_000);
    let (pooled_ns, vec_ns) = time_pair_ns_per_pkt(
        9,
        n,
        || alloc_touch_free_pooled(n, 1518),
        || alloc_touch_free_vec(n, 1518),
    );
    out.push(Scenario {
        name: "alloc_touch_free_1518",
        pooled_ns,
        vec_ns,
    });

    // Scenario 2: allocation churn on mid-size frames (the 512 B
    // class), where allocator traffic rather than frame zeroing
    // dominates the per-packet cost.
    let n = s(1_000_000);
    let (pooled_ns, vec_ns) = time_pair_ns_per_pkt(
        9,
        n,
        || alloc_touch_free_pooled(n, 256),
        || alloc_touch_free_vec(n, 256),
    );
    out.push(Scenario {
        name: "alloc_touch_free_256",
        pooled_ns,
        vec_ns,
    });

    // Scenario 3: clone fan-out on full-size frames (the removed
    // per-hop deep copy).
    let n = s(1_000_000);
    let (pooled_ns, vec_ns) = time_pair_ns_per_pkt(
        9,
        n,
        || clone_fanout_pooled(n, 1518),
        || clone_fanout_vec(n, 1518),
    );
    out.push(Scenario {
        name: "clone_fanout_1518",
        pooled_ns,
        vec_ns,
    });

    // Scenario 4: the full RX→app→TX trip, by-value vs clone-per-hop.
    let n = s(1_000_000);
    let (pooled_ns, vec_ns) = time_pair_ns_per_pkt(
        9,
        n,
        || forward_trip_pooled(n, 1518),
        || forward_trip_vec(n, 1518),
    );
    out.push(Scenario {
        name: "forward_trip_1518",
        pooled_ns,
        vec_ns,
    });

    // Scenario 5: minimum-size frames through the smallest (128 B)
    // class — the dominant workload of the paper's 64 B sweeps.
    let n = s(1_000_000);
    let (pooled_ns, vec_ns) = time_pair_ns_per_pkt(
        9,
        n,
        || alloc_touch_free_pooled(n, 64),
        || alloc_touch_free_vec(n, 64),
    );
    out.push(Scenario {
        name: "alloc_touch_free_64",
        pooled_ns,
        vec_ns,
    });
    out
}

/// End-to-end: testpmd moving 1518B frames at 40 Gbps — the
/// handler-bound regime where per-packet storage costs dominate the
/// host profile. The Vec representation is no longer pluggable into the
/// simulation, so this row records the pooled build's absolute
/// events/second for trending.
fn end_to_end() -> (f64, u64, f64) {
    let cfg = SystemConfig::gem5();
    let start = Instant::now();
    let s = run_point(&cfg, &AppSpec::TestPmd, 1518, 40.0, RunConfig::fast());
    let host_secs = start.elapsed().as_secs_f64();
    (host_secs, s.events, s.events as f64 / host_secs)
}

fn fmt_json(scenarios: &[Scenario], e2e: (f64, u64, f64), scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-pkt-pool-v1\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"pooled_ns_per_pkt\": {:.2}, \"vec_ns_per_pkt\": {:.2}, \"speedup\": {:.3}}}{}\n",
            sc.name,
            sc.pooled_ns,
            sc.vec_ns,
            sc.speedup(),
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"end_to_end\": {{\"name\": \"testpmd_1518B_40gbps\", \"host_secs\": {:.3}, \"events\": {}, \"events_per_host_sec\": {:.0}}}\n",
        e2e.0, e2e.1, e2e.2
    ));
    out.push_str("}\n");
    out
}

/// Pulls `"name": ..., "speedup": ...` pairs out of a baseline JSON.
/// Hand-rolled (no serde in the workspace), tied to our own writer.
fn parse_baseline_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(sp_at) = line.find("\"speedup\": ") else {
            continue;
        };
        let sp_rest = &line[sp_at + 11..];
        let digits: String = sp_rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(speedup) = digits.parse::<f64>() {
            out.push((name.to_string(), speedup));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut scale = 1.0f64;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut max_regress = 20.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => {
                    eprintln!("--check requires a baseline file path");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regress" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => max_regress = v,
                _ => {
                    eprintln!("--max-regress requires a positive percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: pkt_bench [--scale F] [--out FILE] [--check BASELINE] [--max-regress PCT]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!("packet-pool bench (scale {scale}):");
    let scenarios = run_scenarios(scale);
    for sc in &scenarios {
        println!(
            "  {:<24} pooled {:>7.2} ns/pkt   vec {:>7.2} ns/pkt   speedup {:.2}x",
            sc.name,
            sc.pooled_ns,
            sc.vec_ns,
            sc.speedup()
        );
    }
    let e2e = end_to_end();
    println!(
        "  {:<24} {:.3} host-s for {} events ({:.0} events/host-s)",
        "testpmd_1518B_40gbps", e2e.0, e2e.1, e2e.2
    );

    let json = fmt_json(&scenarios, e2e, scale);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: could not read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = parse_baseline_speedups(&baseline);
        if base.is_empty() {
            eprintln!("error: no speedup entries found in baseline {path}");
            return ExitCode::FAILURE;
        }
        let mut failed = false;
        for (name, base_speedup) in &base {
            let Some(sc) = scenarios.iter().find(|s| s.name == name) else {
                eprintln!("warning: baseline scenario {name} not measured; skipping");
                continue;
            };
            let floor = base_speedup / (1.0 + max_regress / 100.0);
            let status = if sc.speedup() < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  check {name}: speedup {:.2}x vs baseline {:.2}x (floor {:.2}x) {status}",
                sc.speedup(),
                base_speedup,
                floor
            );
        }
        if failed {
            eprintln!("error: pooled-packet speedup regressed more than {max_regress}% vs {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
