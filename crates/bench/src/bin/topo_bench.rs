//! Topology fan-in benchmark: TestPMD driven past saturation through
//! incast fabrics of 1, 4, and 8 clients, emitting/checking the
//! committed `BENCH_topo.json`.
//!
//! ```text
//! topo_bench [--out FILE] [--check BASELINE] [--max-regress PCT]
//! ```
//!
//! Each row runs the real simulation at a deliberately saturating
//! offered rate and records:
//!
//! * `krps` — the achieved request rate through the fabric (each echoed
//!   frame is one request-response). *Simulation-deterministic*: a pure
//!   function of the seed and config, immune to host noise, so the gate
//!   built on it is exact.
//! * `events_per_host_sec` — simulator effort, honestly reported so the
//!   event cost of switch hops and per-client links is visible.
//!   Host-noisy; informational only, never gated.
//! * `ratio` — achieved krps relative to the 1-client (point-to-point)
//!   row. The fabric only adds trunk serialization and latency, so at a
//!   fixed aggregate rate fan-in must not collapse throughput.
//!
//! The bench self-gates: it exits nonzero unless the 8-client row
//! sustains **>= 0.8x** the point-to-point request rate. `--check`
//! compares each row's ratio against the committed baseline with a
//! regression tolerance on top.

use std::process::ExitCode;
use std::time::Instant;

use simnet_harness::config::TopoConfig;
use simnet_harness::{run_point, AppSpec, RunConfig, SystemConfig};
use simnet_net::topo::{LinkPolicy, TopoLink, Verdict};
use simnet_sim::tick::{us, Bandwidth};

/// Offered aggregate rate (Gbps of 1518 B frames) past the host's knee,
/// so every row reports its saturation point through the fabric.
const OFFERED_GBPS: f64 = 120.0;
const FRAME: usize = 1518;

struct Row {
    clients: usize,
    krps: f64,
    events_per_host_sec: f64,
}

impl Row {
    fn name(&self) -> String {
        format!("topo_incast_{}c", self.clients)
    }
}

fn run_rows() -> Vec<Row> {
    [1usize, 4, 8]
        .iter()
        .map(|&clients| {
            let topo = if clients == 1 {
                TopoConfig::point_to_point()
            } else {
                TopoConfig::incast(clients).with_latency_spread(us(10))
            };
            let cfg = SystemConfig::gem5().with_topo(topo);
            let start = Instant::now();
            let s = run_point(
                &cfg,
                &AppSpec::TestPmd,
                FRAME,
                OFFERED_GBPS,
                RunConfig::long(),
            );
            let host = start.elapsed().as_secs_f64();
            Row {
                clients,
                krps: s.achieved_rps() / 1e3,
                events_per_host_sec: if host > 0.0 {
                    s.events as f64 / host
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Same-process micro-measurement of the pure-wire fast path: per-call
/// cost of the full `transmit` Verdict path over `transmit_wire` on
/// identical lossless links. This is the overhead the fast path
/// recovers on every degenerate point-to-point hop (the flat fabric
/// cost PR 9 measured); >1.0 means the fast path is cheaper. Host-noisy
/// but same-process, so the two sides see identical machine conditions.
fn measure_wire_fastpath_ratio() -> f64 {
    const CALLS: u64 = 4_000_000;
    let policy = LinkPolicy::wire(Bandwidth::gbps(100.0), us(2));
    let mut slow = TopoLink::new(policy, 1);
    let mut fast = TopoLink::new(policy, 1);
    let mut acc = 0u64;
    let t_slow = Instant::now();
    for i in 0..CALLS {
        match slow.transmit(i * 200, FRAME) {
            Verdict::Deliver(at) => acc ^= at,
            Verdict::TailDrop | Verdict::LossDrop => unreachable!("pure wire"),
        }
    }
    let slow_ns = t_slow.elapsed().as_nanos() as f64;
    let t_fast = Instant::now();
    for i in 0..CALLS {
        acc ^= fast.transmit_wire(i * 200, FRAME);
    }
    let fast_ns = t_fast.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    slow_ns / fast_ns.max(1.0)
}

fn fmt_json(rows: &[Row], base_krps: f64, wire_fastpath_ratio: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-topo-v1\",\n");
    out.push_str(&format!("  \"offered_gbps\": {OFFERED_GBPS},\n"));
    out.push_str(&format!("  \"frame_bytes\": {FRAME},\n"));
    out.push_str(&format!(
        "  \"wire_fastpath_ratio\": {wire_fastpath_ratio:.2},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"clients\": {}, \"krps\": {:.1}, \"events_per_host_sec\": {:.0}, \"ratio\": {:.3}}}{}\n",
            r.name(),
            r.clients,
            r.krps,
            r.events_per_host_sec,
            r.krps / base_krps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"name": ..., "ratio": ...` pairs out of a baseline JSON.
/// Hand-rolled (no serde in the workspace), tied to our own writer.
fn parse_baseline_ratios(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(ratio_at) = line.find("\"ratio\": ") else {
            continue;
        };
        let ratio_rest = &line[ratio_at + 9..];
        let digits: String = ratio_rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(ratio) = digits.parse::<f64>() {
            out.push((name.to_string(), ratio));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut max_regress = 20.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => {
                    eprintln!("--check requires a baseline file path");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regress" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => max_regress = v,
                _ => {
                    eprintln!("--max-regress requires a positive percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: topo_bench [--out FILE] [--check BASELINE] [--max-regress PCT]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!("topology fan-in bench (testpmd {FRAME} B @ {OFFERED_GBPS} Gbps offered):");
    let rows = run_rows();
    let base_krps = rows[0].krps.max(1e-9);
    for r in &rows {
        println!(
            "  {:<16} {:>8.1} kRPS   {:>10.0} ev/host-s   ratio {:.2}x",
            r.name(),
            r.krps,
            r.events_per_host_sec,
            r.krps / base_krps
        );
    }

    // The tentpole's acceptance floor, gated unconditionally: 8 clients
    // through the switch must sustain >= 0.8x the point-to-point rate.
    let top = rows.last().expect("rows always run");
    let top_ratio = top.krps / base_krps;
    if top_ratio < 0.8 {
        eprintln!(
            "error: {} ratio {top_ratio:.2}x is below the 0.8x floor",
            top.name()
        );
        return ExitCode::FAILURE;
    }

    let wire_fastpath_ratio = measure_wire_fastpath_ratio();
    println!(
        "  wire fast path: transmit/transmit_wire per-call cost {wire_fastpath_ratio:.2}x \
         (recovered Verdict-path overhead; informational)"
    );

    let json = fmt_json(&rows, base_krps, wire_fastpath_ratio);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: could not read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = parse_baseline_ratios(&baseline);
        if base.is_empty() {
            eprintln!("error: no ratio entries found in baseline {path}");
            return ExitCode::FAILURE;
        }
        let mut failed = false;
        for (name, base_ratio) in &base {
            let Some(r) = rows.iter().find(|r| &r.name() == name) else {
                eprintln!("warning: baseline row {name} not measured; skipping");
                continue;
            };
            let ratio = r.krps / base_krps;
            let floor = base_ratio / (1.0 + max_regress / 100.0);
            let status = if ratio < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  check {name}: ratio {ratio:.2}x vs baseline {base_ratio:.2}x \
                 (floor {floor:.2}x) {status}"
            );
        }
        if failed {
            eprintln!("error: topology fan-in regressed more than {max_regress}% vs {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
