//! Event-queue benchmark: ladder [`EventQueue`] vs the
//! [`BinaryHeapQueue`] reference, plus an end-to-end testpmd-at-knee
//! run, emitting/checking the committed `BENCH_event_queue.json`.
//!
//! ```text
//! queue_bench [--scale F] [--out FILE] [--check BASELINE] [--max-regress PCT]
//! ```
//!
//! * `--scale F` multiplies iteration counts (CI smoke uses 0.2).
//! * `--out FILE` writes the measured JSON.
//! * `--check BASELINE` compares the measured ladder-vs-heap *speedup
//!   ratio* per microbench scenario against the committed baseline and
//!   exits non-zero if any scenario regressed by more than
//!   `--max-regress` percent (default 20). Ratios, not absolute
//!   nanoseconds, so the check is meaningful across host machines.
//!
//! The microbench workloads mirror the simulator's real event mix (see
//! `PROFILE_KINDS` in `simnet-harness`): a deep steady-state pending set
//! with near-future churn, same-tick multi-priority cohorts, and
//! far-future timers crossing the ladder's overflow boundary.

use std::process::ExitCode;
use std::time::Instant;

use simnet_harness::{run_point, AppSpec, RunConfig, SystemConfig};
use simnet_sim::event::BinaryHeapQueue;
use simnet_sim::{EventQueue, Priority, Tick};

/// The queue surface both implementations share, for generic workloads.
trait Queue {
    fn schedule_with_priority(&mut self, tick: Tick, priority: Priority, payload: u64);
    fn pop_key(&mut self) -> Option<(Tick, i16, u64)>;
    fn now(&self) -> Tick;
}

impl Queue for EventQueue<u64> {
    fn schedule_with_priority(&mut self, tick: Tick, priority: Priority, payload: u64) {
        EventQueue::schedule_with_priority(self, tick, priority, payload);
    }
    fn pop_key(&mut self) -> Option<(Tick, i16, u64)> {
        self.pop().map(|e| (e.tick, e.priority.0, e.payload))
    }
    fn now(&self) -> Tick {
        EventQueue::now(self)
    }
}

impl Queue for BinaryHeapQueue<u64> {
    fn schedule_with_priority(&mut self, tick: Tick, priority: Priority, payload: u64) {
        BinaryHeapQueue::schedule_with_priority(self, tick, priority, payload);
    }
    fn pop_key(&mut self) -> Option<(Tick, i16, u64)> {
        self.pop().map(|e| (e.tick, e.priority.0, e.payload))
    }
    fn now(&self) -> Tick {
        BinaryHeapQueue::now(self)
    }
}

/// Deterministic xorshift; the workloads must be identical across
/// implementations and runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Priorities in the simulator's real mix.
const PRIORITIES: &[Priority] = &[
    Priority::LINK,
    Priority::DMA,
    Priority::DEVICE,
    Priority::NORMAL,
    Priority::CPU,
];

/// Bulk load `n` events over a ~4 µs horizon (the span the simulator's
/// pending set actually occupies), then drain everything.
fn bulk_push_pop<Q: Queue>(q: &mut Q, n: u64) -> u64 {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for i in 0..n {
        let tick = rng.next() % 4_000_000; // within 4 µs
        let prio = PRIORITIES[(rng.next() % PRIORITIES.len() as u64) as usize];
        q.schedule_with_priority(tick, prio, i);
    }
    let mut acc = 0u64;
    while let Some((t, _, p)) = q.pop_key() {
        acc = acc.wrapping_add(t ^ p);
    }
    acc
}

/// Steady-state churn: `depth` pending events; each step pops one and
/// schedules a near-future successor, with a same-tick kick every 4th
/// step and a far-future timer every 64th — the simulator's pattern.
fn steady_churn<Q: Queue>(q: &mut Q, depth: u64, steps: u64) -> u64 {
    let mut rng = Rng(0xD1B54A32D192ED03);
    let mut label = 0u64;
    for _ in 0..depth {
        let tick = rng.next() % 2_000_000; // 2 µs spread
        let prio = PRIORITIES[(rng.next() % PRIORITIES.len() as u64) as usize];
        q.schedule_with_priority(tick, prio, label);
        label += 1;
    }
    let mut acc = 0u64;
    for step in 0..steps {
        let Some((t, _, p)) = q.pop_key() else { break };
        acc = acc.wrapping_add(t ^ p);
        let now = q.now();
        let (delta, prio) = if step % 64 == 63 {
            (100_000_000, Priority::MAXIMUM) // 100 µs sampling timer
        } else if step % 4 == 3 {
            (0, Priority::DMA) // same-tick DMA kick
        } else {
            (
                rng.next() % 200_000, // within 200 ns
                PRIORITIES[(rng.next() % PRIORITIES.len() as u64) as usize],
            )
        };
        q.schedule_with_priority(now + delta, prio, label);
        label += 1;
    }
    acc
}

/// Shallow sparse churn: the `repro` sweep's dominant regime — a handful
/// of pending events with 0.1–10 µs gaps (memcached timers, low-rate
/// iperf points), where a binary heap is nearly free because it is tiny
/// and L1-resident.
fn shallow_sparse<Q: Queue>(q: &mut Q, steps: u64) -> u64 {
    let mut rng = Rng(0x2545F4914F6CDD1D);
    let mut label = 0u64;
    for _ in 0..6 {
        q.schedule_with_priority(rng.next() % 2_000_000, Priority::NORMAL, label);
        label += 1;
    }
    let mut acc = 0u64;
    for step in 0..steps {
        let Some((t, _, p)) = q.pop_key() else { break };
        acc = acc.wrapping_add(t ^ p);
        let now = q.now();
        let delta = if step % 32 == 31 {
            100_000_000 // 100 µs sampling timer -> overflow
        } else {
            100_000 + rng.next() % 10_000_000 // 0.1-10 µs gap
        };
        q.schedule_with_priority(
            now + delta,
            PRIORITIES[(rng.next() % PRIORITIES.len() as u64) as usize],
            label,
        );
        label += 1;
    }
    acc
}

/// Same-tick cohorts: `cohorts` ticks, each flooded with `width` events
/// at mixed priorities, drained tick by tick.
fn cohort_flood<Q: Queue>(q: &mut Q, cohorts: u64, width: u64) -> u64 {
    let mut rng = Rng(0xA0761D6478BD642F);
    let mut label = 0u64;
    for c in 0..cohorts {
        let tick = c * 512; // one cohort every 512 ps
        for _ in 0..width {
            let prio = PRIORITIES[(rng.next() % PRIORITIES.len() as u64) as usize];
            q.schedule_with_priority(tick, prio, label);
            label += 1;
        }
    }
    let mut acc = 0u64;
    while let Some((t, _, p)) = q.pop_key() {
        acc = acc.wrapping_add(t ^ p);
    }
    acc
}

/// Times the two implementations over `reps` **interleaved** repetitions
/// (ladder, heap, ladder, heap, …) and returns the median ns/event for
/// each. Interleaving means ambient host noise (a stolen core, a
/// frequency dip) hits both implementations alike, keeping the *ratio*
/// stable even when absolute numbers wobble; the median discards stray
/// slow reps entirely.
fn time_pair_ns_per_event(
    reps: u64,
    events_per_rep: u64,
    mut ladder: impl FnMut() -> u64,
    mut heap: impl FnMut() -> u64,
) -> (f64, f64) {
    // One warm-up rep each, then the timed ones; black-box the checksum.
    let mut sink = ladder().wrapping_add(heap());
    let mut ladder_reps = Vec::with_capacity(reps as usize);
    let mut heap_reps = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let start = Instant::now();
        sink = sink.wrapping_add(ladder());
        ladder_reps.push(start.elapsed().as_nanos() as f64 / events_per_rep as f64);
        let start = Instant::now();
        sink = sink.wrapping_add(heap());
        heap_reps.push(start.elapsed().as_nanos() as f64 / events_per_rep as f64);
    }
    std::hint::black_box(sink);
    (median(&mut ladder_reps), median(&mut heap_reps))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Scenario {
    name: &'static str,
    ladder_ns: f64,
    heap_ns: f64,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        self.heap_ns / self.ladder_ns
    }
}

fn run_scenarios(scale: f64) -> Vec<Scenario> {
    let s = |n: u64| ((n as f64 * scale).round() as u64).max(1);
    let mut out = Vec::new();

    // Scenario 1: bulk load + full drain, 64k events.
    let n = s(65_536);
    let (ladder_ns, heap_ns) = time_pair_ns_per_event(
        9,
        2 * n,
        || bulk_push_pop(&mut EventQueue::new(), n),
        || bulk_push_pop(&mut BinaryHeapQueue::new(), n),
    );
    out.push(Scenario {
        name: "bulk_push_pop_64k",
        ladder_ns,
        heap_ns,
    });

    // Scenario 2: steady-state churn at simulator-realistic depth.
    let (depth, steps) = (8_192, s(400_000));
    let (ladder_ns, heap_ns) = time_pair_ns_per_event(
        9,
        2 * steps,
        || steady_churn(&mut EventQueue::new(), depth, steps),
        || steady_churn(&mut BinaryHeapQueue::new(), depth, steps),
    );
    out.push(Scenario {
        name: "steady_churn_8k",
        ladder_ns,
        heap_ns,
    });

    // Scenario 3: shallow sparse churn (the heap's best case).
    let steps = s(400_000);
    let (ladder_ns, heap_ns) = time_pair_ns_per_event(
        9,
        2 * steps,
        || shallow_sparse(&mut EventQueue::new(), steps),
        || shallow_sparse(&mut BinaryHeapQueue::new(), steps),
    );
    out.push(Scenario {
        name: "shallow_sparse_6",
        ladder_ns,
        heap_ns,
    });

    // Scenario 4: same-tick cohort floods.
    let (cohorts, width) = (s(8_192), 8);
    let (ladder_ns, heap_ns) = time_pair_ns_per_event(
        9,
        2 * cohorts * width,
        || cohort_flood(&mut EventQueue::new(), cohorts, width),
        || cohort_flood(&mut BinaryHeapQueue::new(), cohorts, width),
    );
    out.push(Scenario {
        name: "same_tick_cohorts_8x",
        ladder_ns,
        heap_ns,
    });
    out
}

/// End-to-end: testpmd at the 70 Gbps knee (the Fig. 5 operating point),
/// timed on the host. The heap is not pluggable into the simulation, so
/// this row records the ladder's absolute events/second for trending.
fn end_to_end() -> (f64, u64, f64) {
    let cfg = SystemConfig::gem5();
    let start = Instant::now();
    let s = run_point(&cfg, &AppSpec::TestPmd, 64, 70.0, RunConfig::fast());
    let host_secs = start.elapsed().as_secs_f64();
    (host_secs, s.events, s.events as f64 / host_secs)
}

fn fmt_json(scenarios: &[Scenario], e2e: (f64, u64, f64), scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-event-queue-v1\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ladder_ns_per_event\": {:.2}, \"heap_ns_per_event\": {:.2}, \"speedup\": {:.3}}}{}\n",
            sc.name,
            sc.ladder_ns,
            sc.heap_ns,
            sc.speedup(),
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"end_to_end\": {{\"name\": \"testpmd_64B_70gbps_knee\", \"host_secs\": {:.3}, \"events\": {}, \"events_per_host_sec\": {:.0}}}\n",
        e2e.0, e2e.1, e2e.2
    ));
    out.push_str("}\n");
    out
}

/// Pulls `"name": ..., "speedup": ...` pairs out of a baseline JSON.
/// Hand-rolled (no serde in the workspace), tied to our own writer.
fn parse_baseline_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(sp_at) = line.find("\"speedup\": ") else {
            continue;
        };
        let sp_rest = &line[sp_at + 11..];
        let digits: String = sp_rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(speedup) = digits.parse::<f64>() {
            out.push((name.to_string(), speedup));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut scale = 1.0f64;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut max_regress = 20.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => {
                    eprintln!("--check requires a baseline file path");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regress" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => max_regress = v,
                _ => {
                    eprintln!("--max-regress requires a positive percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: queue_bench [--scale F] [--out FILE] [--check BASELINE] [--max-regress PCT]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!("event-queue bench (scale {scale}):");
    let scenarios = run_scenarios(scale);
    for sc in &scenarios {
        println!(
            "  {:<24} ladder {:>7.2} ns/ev   heap {:>7.2} ns/ev   speedup {:.2}x",
            sc.name,
            sc.ladder_ns,
            sc.heap_ns,
            sc.speedup()
        );
    }
    let e2e = end_to_end();
    println!(
        "  {:<24} {:.3} host-s for {} events ({:.0} events/host-s)",
        "testpmd_64B_70gbps_knee", e2e.0, e2e.1, e2e.2
    );

    let json = fmt_json(&scenarios, e2e, scale);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: could not read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = parse_baseline_speedups(&baseline);
        if base.is_empty() {
            eprintln!("error: no speedup entries found in baseline {path}");
            return ExitCode::FAILURE;
        }
        let mut failed = false;
        for (name, base_speedup) in &base {
            let Some(sc) = scenarios.iter().find(|s| s.name == name) else {
                eprintln!("warning: baseline scenario {name} not measured; skipping");
                continue;
            };
            let floor = base_speedup / (1.0 + max_regress / 100.0);
            let status = if sc.speedup() < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  check {name}: speedup {:.2}x vs baseline {:.2}x (floor {:.2}x) {status}",
                sc.speedup(),
                base_speedup,
                floor
            );
        }
        if failed {
            eprintln!("error: ladder speedup regressed more than {max_regress}% vs {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
