//! Benchmark support crate. The actual benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion group per paper table/figure, each running
//!   the corresponding experiment kernel at reduced scale and printing
//!   the same rows the paper reports.
//! * `components` — microbenchmarks of the simulator's hot paths (cache
//!   lookups, DRAM accesses, event queue, packet building, full node
//!   simulation throughput).
//!
//! One real binary, `queue_bench` (`src/bin/queue_bench.rs`), measures
//! the two-level ladder [`simnet_sim::EventQueue`] against the
//! [`simnet_sim::event::BinaryHeapQueue`] reference across workload
//! shapes (bulk push/pop, steady churn, shallow sparse timers, same-tick
//! cohorts) plus an end-to-end testpmd run. It writes and regression-checks
//! the committed `BENCH_event_queue.json` baseline:
//!
//! ```text
//! queue_bench --out BENCH_event_queue.json       # regenerate baseline
//! queue_bench --check BENCH_event_queue.json     # fail if >20% slower
//! queue_bench --scale 0.1                        # reduced-scale smoke
//! ```
