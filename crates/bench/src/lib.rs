//! Benchmark support crate. The actual benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion group per paper table/figure, each running
//!   the corresponding experiment kernel at reduced scale and printing
//!   the same rows the paper reports.
//! * `components` — microbenchmarks of the simulator's hot paths (cache
//!   lookups, DRAM accesses, event queue, packet building, full node
//!   simulation throughput).
