//! Memcached client mode: GET/SET request generation with per-request
//! latency tracking.
//!
//! §VI.A: the client "generates key and value sizes using a Zipfian
//! distribution ... min = 10, max = 100, and skew = 0.5", with an 80%
//! GET ratio, and "the hardware EtherLoadGen model tracks a map of
//! outstanding requests using the request ID field in the Memcached
//! request packet."

use simnet_net::ethernet::ETHERNET_HEADER_LEN;
use simnet_net::ipv4::IPV4_HEADER_LEN;
use simnet_net::proto::memcached::{
    decode_response_datagram, encode_request_datagram_into, nth_key_into, request_datagram_len,
    Request, Response, NTH_KEY_LEN,
};
use simnet_net::udp::UDP_HEADER_LEN;
use simnet_net::{MacAddr, Packet, PacketBuilder, MIN_FRAME_LEN};
use simnet_sim::random::{Distribution, SimRng, Zipf};
use simnet_sim::stats::Counter;
use simnet_sim::tick::{Tick, S};

/// Sentinel for a free slot in the outstanding-request table (no real
/// send timestamp can reach it).
const NO_REQUEST: Tick = Tick::MAX;

/// Memcached client-mode parameters and state.
#[derive(Debug, Clone)]
pub struct MemcachedClientConfig {
    /// Request inter-arrival distribution (ticks).
    pub interarrival: Distribution,
    /// Fraction of GET requests (the paper uses 0.8).
    pub get_ratio: f64,
    /// Number of distinct keys (the paper warms 5000).
    pub key_space: u64,
    /// Value-length distribution for SETs.
    pub lengths: Zipf,
    /// Server (node-under-test) MAC.
    pub server_mac: MacAddr,
    /// Client MAC.
    pub client_mac: MacAddr,
    /// Per-key source ports steering each request onto the RSS queue
    /// that owns the key's shard (index = `key_shard(key, len)`). `None`
    /// sends every request from the single legacy source port.
    pub shard_ports: Option<Vec<u16>>,
    /// Send timestamps of outstanding requests, indexed by request id
    /// (a flat array beats a hash map in the per-request hot path;
    /// [`NO_REQUEST`] marks free slots).
    outstanding: Vec<Tick>,
    outstanding_count: usize,
    /// Reusable SET-value staging buffer (steady-state allocation-free).
    value_scratch: Vec<u8>,
    /// GET hits observed.
    pub hits: Counter,
    /// GET misses observed.
    pub misses: Counter,
    /// SET acknowledgements observed.
    pub stored: Counter,
    /// Responses that matched no outstanding request id.
    pub unmatched: Counter,
}

impl MemcachedClientConfig {
    /// A paper-style client: `rps` requests/second, 80% GET, 5000 keys,
    /// Zipf(10, 100, 0.5) lengths.
    pub fn paper_client(rps: f64, server_mac: MacAddr, client_mac: MacAddr) -> Self {
        assert!(rps > 0.0, "request rate must be positive");
        Self {
            interarrival: Distribution::Exponential {
                mean: S as f64 / rps,
            },
            get_ratio: 0.8,
            key_space: 5_000,
            lengths: Zipf::paper_lengths(),
            server_mac,
            client_mac,
            shard_ports: None,
            outstanding: vec![NO_REQUEST; 1 << 16],
            outstanding_count: 0,
            value_scratch: Vec::new(),
            hits: Counter::new(),
            misses: Counter::new(),
            stored: Counter::new(),
            unmatched: Counter::new(),
        }
    }

    /// The mean offered load in requests per second.
    pub fn offered_rps(&self) -> f64 {
        S as f64 / self.interarrival.mean()
    }

    /// Outstanding (unanswered) requests.
    pub fn outstanding_len(&self) -> usize {
        self.outstanding_count
    }

    pub(crate) fn build(&mut self, id: u64, now: Tick, rng: &mut SimRng) -> (Packet, Option<Tick>) {
        let request_id = (id % u64::from(u16::MAX) + 1) as u16;
        // Key on the stack, SET value in a reused scratch buffer, and the
        // datagram encoded straight into the pooled frame: a request
        // costs no heap allocation.
        let mut key = [0u8; NTH_KEY_LEN];
        nth_key_into(
            rng.uniform_u64(0, self.key_space.saturating_sub(1)),
            &mut key,
        );
        let request = if rng.chance(self.get_ratio) {
            Request::Get { key: &key }
        } else {
            let len = self.lengths.sample(rng) as usize;
            self.value_scratch.clear();
            self.value_scratch.resize(len, 0xA5);
            Request::Set {
                key: &key,
                value: &self.value_scratch,
            }
        };
        let datagram_len = request_datagram_len(&request);
        let natural = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + datagram_len;
        let src_port = match &self.shard_ports {
            Some(ports) => ports[simnet_net::rss::key_shard(&key, ports.len())],
            None => 40_000,
        };
        let packet = PacketBuilder::new()
            .dst(self.server_mac)
            .src(self.client_mac)
            .udp([10, 0, 0, 2], [10, 0, 0, 1], src_port, 11_211)
            .frame_len(natural.max(MIN_FRAME_LEN))
            .build_with(id, datagram_len, |buf| {
                encode_request_datagram_into(buf, request_id, &request);
            });
        if self.outstanding[request_id as usize] == NO_REQUEST {
            self.outstanding_count += 1;
        }
        self.outstanding[request_id as usize] = now;
        let interval = self.interarrival.sample(rng).round() as Tick;
        (packet, Some(interval.max(1)))
    }

    /// Matches a response to its request; returns the round-trip time.
    pub(crate) fn match_response(&mut self, now: Tick, packet: &Packet) -> Option<Tick> {
        let (_, _, payload) = packet.udp()?;
        let Ok((header, response)) = decode_response_datagram(payload) else {
            self.unmatched.inc();
            return None;
        };
        match response {
            Response::Hit { .. } => self.hits.inc(),
            Response::Miss => self.misses.inc(),
            Response::Stored => self.stored.inc(),
        }
        let slot = &mut self.outstanding[header.request_id as usize];
        if *slot == NO_REQUEST {
            self.unmatched.inc();
            return None;
        }
        let sent = *slot;
        *slot = NO_REQUEST;
        self.outstanding_count -= 1;
        Some(now.saturating_sub(sent))
    }

    pub(crate) fn reset_stats(&mut self) {
        self.hits.reset();
        self.misses.reset();
        self.stored.reset();
        self.unmatched.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::proto::memcached::encode_response_datagram;

    fn client() -> MemcachedClientConfig {
        MemcachedClientConfig::paper_client(100_000.0, MacAddr::simulated(1), MacAddr::simulated(2))
    }

    #[test]
    fn offered_rps_round_trips() {
        let c = client();
        assert!((c.offered_rps() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn requests_are_valid_memcached_datagrams() {
        let mut c = client();
        let mut rng = SimRng::seed_from(3);
        let (pkt, interval) = c.build(0, 1_000, &mut rng);
        assert!(interval.unwrap() > 0);
        let (_, udp, payload) = pkt.udp().expect("valid UDP frame");
        assert_eq!(udp.dst_port, 11_211);
        let (hdr, req) = simnet_net::proto::memcached::decode_request_datagram(payload).unwrap();
        assert_eq!(hdr.request_id, 1);
        assert!(req.key().starts_with(b"key:"));
        assert_eq!(c.outstanding_len(), 1);
    }

    #[test]
    fn get_set_mix_approximates_ratio() {
        let mut c = client();
        let mut rng = SimRng::seed_from(4);
        let mut gets = 0;
        for i in 0..1000 {
            let (pkt, _) = c.build(i, 0, &mut rng);
            let (_, _, payload) = pkt.udp().unwrap();
            let (_, req) = simnet_net::proto::memcached::decode_request_datagram(payload).unwrap();
            if matches!(req, Request::Get { .. }) {
                gets += 1;
            }
        }
        assert!((700..900).contains(&gets), "gets={gets}");
    }

    #[test]
    fn response_matching_computes_rtt() {
        let mut c = client();
        let mut rng = SimRng::seed_from(5);
        let (request, _) = c.build(0, 10_000, &mut rng);
        let (ip, udp, _) = request.udp().unwrap();
        // Fake the server's reply.
        let datagram = encode_response_datagram(1, &Response::Stored);
        let reply = PacketBuilder::new()
            .dst(MacAddr::simulated(2))
            .src(MacAddr::simulated(1))
            .udp(ip.dst, ip.src, udp.dst_port, udp.src_port)
            .payload(&datagram)
            .frame_len(64)
            .build(0);
        let rtt = c.match_response(60_000, &reply);
        assert_eq!(rtt, Some(50_000));
        assert_eq!(c.stored.value(), 1);
        assert_eq!(c.outstanding_len(), 0);
        // A duplicate reply is unmatched.
        assert_eq!(c.match_response(70_000, &reply), None);
        assert_eq!(c.unmatched.value(), 1);
    }
}
