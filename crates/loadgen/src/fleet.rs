//! A fleet of synthetic client endpoints driven from compact per-flow
//! state.
//!
//! Topology runs put N clients behind a switch (incast). Materializing N
//! full [`EtherLoadGen`](crate::EtherLoadGen) objects would cost N RNGs,
//! N sample sets, and N outstanding maps for what is structurally one
//! workload; the fleet instead keeps **one** builder, **one** RNG, and
//! **one** latency aggregate, plus a few words of per-flow state per
//! client (next departure tick, tx/rx counters). Client *i*'s identity is
//! derived, not stored: MAC `simulated(CLIENT_MAC_BASE + i)`, source IP
//! `10.0.1.i`, and a source port chosen per frame from the client's flow
//! set — round-robin by default, Zipf-skewed popularity when configured.
//!
//! Frames are RSS-hashable UDP tuples with the departure timestamp in
//! the payload (written pre-checksum, see `simnet_net::timestamp`), so a
//! multi-queue server NIC spreads the fleet across its RX queues and
//! echoes carry the RTT back.

use simnet_net::{timestamp, MacAddr, Packet, PacketBuilder};
use simnet_sim::random::{SimRng, Zipf};
use simnet_sim::stats::{Counter, Histogram, SampleSet, StatsRegistry};
use simnet_sim::tick::{us, Bandwidth, Tick};
use simnet_sim::trace::{Component, Stage, Tracer};

use crate::report::LoadGenReport;

/// First `MacAddr::simulated` index used for fleet clients (the server
/// and the legacy single loadgen use low indices).
pub const CLIENT_MAC_BASE: u32 = 100;

/// First source port of each client's flow set.
pub const FLEET_PORT_BASE: u16 = 40_000;

/// A fleet of synthetic clients sharing one builder and one RNG.
///
/// A fleet may be a *slice* of a larger logical fleet
/// ([`ClientFleet::fixed_rate_slice`]): it then owns `clients` local
/// endpoints whose global indices start at `index_base` within
/// `total_clients`. Identity (MAC, source IP, packet id, departure
/// phase) is always derived from the *global* index, so carving one
/// logical fleet into per-shard slices reproduces exactly the packets
/// the whole fleet would have produced.
pub struct ClientFleet {
    clients: usize,
    /// Size of the logical fleet this instance is a slice of
    /// (== `clients` for a whole fleet).
    total_clients: usize,
    /// Global index of local client 0.
    index_base: usize,
    frame_len: usize,
    /// Per-client fixed inter-departure (aggregate interval × total
    /// clients of the logical fleet).
    interval: Tick,
    server: MacAddr,
    dst_ip: [u8; 4],
    dst_port: u16,
    flows_per_client: u16,
    zipf: Option<Zipf>,
    rng: SimRng,
    /// Compact per-flow state: the next departure tick per client.
    next_departure: Vec<Tick>,
    /// Per-client tx/rx frame counts (fleet-level stats keep one
    /// aggregate latency set; these stay for per-client drop accounting).
    client_tx: Vec<u64>,
    client_rx: Vec<u64>,
    /// Per-client departure counters backing packet ids. Separate from
    /// `client_tx` because ids must keep advancing across the warm-up
    /// stats reset.
    client_seq: Vec<u64>,
    tx_packets: Counter,
    tx_bytes: Counter,
    rx_packets: Counter,
    rx_bytes: Counter,
    latency: SampleSet,
    latency_histogram: Histogram,
    tracer: Tracer,
}

impl ClientFleet {
    /// A fleet of `clients` endpoints together offering `aggregate`
    /// frame-byte goodput of `frame_len`-byte frames at `server`.
    /// Departures are fixed-rate per client and phase-staggered so the
    /// aggregate stream is evenly spaced — client *i*'s first frame
    /// leaves at `i × aggregate_interval`.
    pub fn fixed_rate(
        clients: usize,
        frame_len: usize,
        aggregate: Bandwidth,
        server: MacAddr,
        seed: u64,
    ) -> Self {
        Self::slice(
            clients,
            clients,
            0,
            frame_len,
            aggregate,
            server,
            SimRng::seed_from(seed),
        )
    }

    /// A slice of a logical `total_clients`-endpoint fleet: the
    /// `local_clients` endpoints whose global indices are
    /// `index_base .. index_base + local_clients`. `aggregate` is the
    /// goodput of the *whole* logical fleet, exactly as passed to
    /// [`ClientFleet::fixed_rate`]; this slice offers its proportional
    /// share on the same staggered departure grid. The slice's RNG
    /// stream is decorrelated by `index_base` (stable under any
    /// thread-count or shard-placement choice).
    pub fn fixed_rate_slice(
        local_clients: usize,
        total_clients: usize,
        index_base: usize,
        frame_len: usize,
        aggregate: Bandwidth,
        server: MacAddr,
        seed: u64,
    ) -> Self {
        assert!(
            index_base + local_clients <= total_clients,
            "slice [{index_base}, {}) overruns the {total_clients}-client fleet",
            index_base + local_clients
        );
        Self::slice(
            local_clients,
            total_clients,
            index_base,
            frame_len,
            aggregate,
            server,
            SimRng::seed_for_shard(seed, index_base as u64),
        )
    }

    fn slice(
        clients: usize,
        total_clients: usize,
        index_base: usize,
        frame_len: usize,
        aggregate: Bandwidth,
        server: MacAddr,
        rng: SimRng,
    ) -> Self {
        assert!(clients >= 1, "a fleet needs at least one client");
        assert!(
            total_clients <= 250,
            "client source IPs live in one /24 (got {total_clients})"
        );
        assert!(
            frame_len >= timestamp::UDP_OFFSET + timestamp::TIMESTAMP_LEN,
            "frame_len {frame_len} cannot hold UDP headers + timestamp"
        );
        let agg_interval = aggregate.bytes_to_ticks(frame_len as u64).max(1);
        let interval = agg_interval * total_clients as Tick;
        ClientFleet {
            clients,
            total_clients,
            index_base,
            frame_len,
            interval,
            server,
            dst_ip: [10, 0, 0, 1],
            dst_port: 9, // discard/echo
            flows_per_client: 1,
            zipf: None,
            rng,
            next_departure: (0..clients)
                .map(|i| (index_base + i) as Tick * agg_interval)
                .collect(),
            client_tx: vec![0; clients],
            client_rx: vec![0; clients],
            client_seq: vec![0; clients],
            tx_packets: Counter::new(),
            tx_bytes: Counter::new(),
            rx_packets: Counter::new(),
            rx_bytes: Counter::new(),
            latency: SampleSet::with_capacity(1 << 18),
            latency_histogram: Histogram::new(0.0, us(1000) as f64, 200),
            tracer: Tracer::disabled(),
        }
    }

    /// Gives every client `flows` source-port flows; `skew > 0` draws
    /// each frame's flow from a Zipf distribution over them (popular
    /// flows dominate), `skew == 0` round-robins.
    pub fn with_flows(mut self, flows: u16, skew: f64) -> Self {
        assert!(flows >= 1, "need at least one flow per client");
        self.flows_per_client = flows;
        self.zipf = (skew > 0.0 && flows > 1).then(|| Zipf::new(0, u64::from(flows) - 1, skew));
        self
    }

    /// Attaches a packet-lifecycle tracer (injections + echo receipts).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of client endpoints in this instance (the local slice).
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Size of the logical fleet this instance belongs to.
    pub fn total_clients(&self) -> usize {
        self.total_clients
    }

    /// Global index of local client 0.
    pub fn index_base(&self) -> usize {
        self.index_base
    }

    /// Local client `i`'s MAC address (derived from its global index).
    pub fn client_mac(&self, client: usize) -> MacAddr {
        debug_assert!(client < self.clients);
        MacAddr::simulated(CLIENT_MAC_BASE + (self.index_base + client) as u32)
    }

    /// The tick at which client `client`'s next frame wants to depart.
    pub fn next_departure(&self, client: usize) -> Tick {
        self.next_departure[client]
    }

    /// Materializes client `client`'s frame departing at `now` and
    /// advances that client's departure clock by the per-client interval.
    pub fn take_packet(&mut self, client: usize, now: Tick) -> Packet {
        // The fleet's staggered fixed-rate grid departs clients in strict
        // global round-robin, so the k-th frame of global client g is the
        // (k × total + g)-th departure fleet-wide. Deriving the id from
        // that identity (instead of a shared take-order counter) makes a
        // slice's ids independent of every other slice.
        let global = (self.index_base + client) as u64;
        let id = self.client_seq[client] * self.total_clients as u64 + global;
        self.client_seq[client] += 1;
        let flow = if self.flows_per_client <= 1 {
            0
        } else if let Some(zipf) = &self.zipf {
            zipf.sample(&mut self.rng) as u16
        } else {
            (id % u64::from(self.flows_per_client)) as u16
        };
        let src_ip = [10, 0, 1, global as u8];
        let src_port = FLEET_PORT_BASE + flow;
        let packet = PacketBuilder::new()
            .dst(self.server)
            .src(self.client_mac(client))
            .udp(src_ip, self.dst_ip, src_port, self.dst_port)
            .frame_len(self.frame_len)
            .build_with(id, self.frame_len - timestamp::UDP_OFFSET, |buf| {
                timestamp::write_timestamp_slice(buf, 0, now);
            });
        self.next_departure[client] = now + self.interval;
        self.client_tx[client] += 1;
        self.tx_packets.inc();
        self.tx_bytes.add(packet.len() as u64);
        self.tracer.emit(
            now,
            packet.id(),
            Component::LoadGen,
            Stage::Inject {
                len: packet.len() as u32,
            },
        );
        packet
    }

    /// Delivers an echo back to client `client`; measures RTT from the
    /// in-payload timestamp.
    pub fn on_rx(&mut self, client: usize, now: Tick, packet: &Packet) {
        self.tracer
            .emit(now, packet.id(), Component::LoadGen, Stage::EchoRx);
        self.client_rx[client] += 1;
        self.rx_packets.inc();
        self.rx_bytes.add(packet.len() as u64);
        if let Some(sent) = timestamp::read_timestamp(packet, timestamp::UDP_OFFSET) {
            let rtt = now.saturating_sub(sent) as f64;
            self.latency.record(rtt);
            self.latency_histogram.record(rtt);
        }
    }

    /// Frames transmitted across the fleet.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets.value()
    }

    /// Echoes received across the fleet.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets.value()
    }

    /// Per-client `(tx, rx)` frame counts.
    pub fn client_counts(&self, client: usize) -> (u64, u64) {
        (self.client_tx[client], self.client_rx[client])
    }

    /// The fleet-aggregate statistics report over `[start, end]`.
    pub fn report(&self, start: Tick, end: Tick) -> LoadGenReport {
        LoadGenReport::compute(
            self.tx_packets.value(),
            self.tx_bytes.value(),
            self.rx_packets.value(),
            self.rx_bytes.value(),
            self.latency.summary(),
            start,
            end,
        )
    }

    /// Registers the `loadgen.*` section (the same shape the single
    /// generator reports, plus the fleet size).
    pub fn register_stats(&self, now: Tick, reg: &mut StatsRegistry) {
        let report = self.report(0, now);
        let summary = &report.latency;
        reg.scoped("loadgen", |reg| {
            reg.scalar("clients", self.clients as u64, "fleet client endpoints");
            reg.scalar("txPackets", report.tx_packets, "packets injected");
            reg.scalar("rxPackets", report.rx_packets, "packets echoed back");
            reg.float("rtt.mean_ns", summary.mean / 1e3, "mean round-trip (ns)");
            reg.float("rtt.p99_ns", summary.p99 / 1e3, "p99 round-trip (ns)");
            if reg.full() {
                reg.scalar("txBytes", report.tx_bytes, "bytes injected");
                reg.scalar("rxBytes", report.rx_bytes, "bytes echoed back");
                reg.scalar("rtt.samples", summary.count, "RTT samples recorded");
                reg.float(
                    "rtt.median_ns",
                    summary.median / 1e3,
                    "median round-trip (ns)",
                );
                reg.float("rtt.p90_ns", summary.p90 / 1e3, "p90 round-trip (ns)");
                reg.float("dropRate", report.drop_rate, "unreturned / injected");
            }
        });
    }

    /// Clears statistics (post-warm-up reset); departure clocks persist.
    pub fn reset_stats(&mut self) {
        self.tx_packets.reset();
        self.tx_bytes.reset();
        self.rx_packets.reset();
        self.rx_bytes.reset();
        self.latency.reset();
        self.latency_histogram.reset();
        self.client_tx.iter_mut().for_each(|c| *c = 0);
        self.client_rx.iter_mut().for_each(|c| *c = 0);
    }

    /// Detaches this slice's statistics and per-client state as a plain
    /// `Send` value, so a shard thread can hand its fleet slice back to
    /// the assembling thread without moving the (tracer-holding, hence
    /// `!Send`) fleet itself.
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            clients: self.clients,
            total_clients: self.total_clients,
            index_base: self.index_base,
            tx_packets: self.tx_packets.value(),
            tx_bytes: self.tx_bytes.value(),
            rx_packets: self.rx_packets.value(),
            rx_bytes: self.rx_bytes.value(),
            latency: self.latency.clone(),
            latency_histogram: self.latency_histogram.clone(),
            client_tx: self.client_tx.clone(),
            client_rx: self.client_rx.clone(),
            client_seq: self.client_seq.clone(),
            next_departure: self.next_departure.clone(),
        }
    }

    /// Folds a slice's statistics into this fleet (which must span the
    /// slice's logical fleet). Counters add exactly; latency samples
    /// merge via [`SampleSet::merge`]; per-client counts land at the
    /// slice's global indices. Used by the sharded driver to reassemble
    /// the whole-fleet report from per-shard slices in global index
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the slice belongs to a differently sized logical fleet
    /// or its clients fall outside this fleet's range.
    pub fn absorb(&mut self, slice: &FleetSnapshot) {
        assert_eq!(
            self.total_clients, slice.total_clients,
            "slice belongs to a different logical fleet"
        );
        assert!(
            slice.index_base + slice.clients <= self.index_base + self.clients,
            "slice clients fall outside this fleet"
        );
        self.tx_packets.add(slice.tx_packets);
        self.tx_bytes.add(slice.tx_bytes);
        self.rx_packets.add(slice.rx_packets);
        self.rx_bytes.add(slice.rx_bytes);
        self.latency.merge(&slice.latency);
        self.latency_histogram.merge(&slice.latency_histogram);
        for j in 0..slice.clients {
            let local = slice.index_base + j - self.index_base;
            self.client_tx[local] += slice.client_tx[j];
            self.client_rx[local] += slice.client_rx[j];
            self.client_seq[local] += slice.client_seq[j];
            self.next_departure[local] = slice.next_departure[j];
        }
    }
}

/// A [`ClientFleet`] slice's statistics and per-client state, detached
/// from the fleet (plain data, `Send`). Produced by
/// [`ClientFleet::snapshot`] on the shard thread that owns the slice and
/// consumed by [`ClientFleet::absorb`] on the assembling thread.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    clients: usize,
    total_clients: usize,
    index_base: usize,
    tx_packets: u64,
    tx_bytes: u64,
    rx_packets: u64,
    rx_bytes: u64,
    latency: SampleSet,
    latency_histogram: Histogram,
    client_tx: Vec<u64>,
    client_rx: Vec<u64>,
    client_seq: Vec<u64>,
    next_departure: Vec<Tick>,
}

impl std::fmt::Debug for ClientFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientFleet")
            .field("clients", &self.clients)
            .field("tx", &self.tx_packets.value())
            .field("rx", &self.rx_packets.value())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::rss::queue_for;

    fn fleet(clients: usize) -> ClientFleet {
        ClientFleet::fixed_rate(
            clients,
            256,
            Bandwidth::gbps(10.0),
            MacAddr::simulated(1),
            7,
        )
    }

    #[test]
    fn departures_are_phase_staggered() {
        let f = fleet(4);
        // 256 B at 10 Gbps = 204.8 ns aggregate interval.
        let agg = Bandwidth::gbps(10.0).bytes_to_ticks(256);
        for c in 0..4 {
            assert_eq!(f.next_departure(c), agg * c as Tick);
        }
    }

    #[test]
    fn per_client_interval_preserves_aggregate_rate() {
        let mut f = fleet(4);
        let t0 = f.next_departure(2);
        f.take_packet(2, t0);
        let agg = Bandwidth::gbps(10.0).bytes_to_ticks(256);
        assert_eq!(f.next_departure(2) - t0, agg * 4);
    }

    #[test]
    fn frames_carry_client_identity_and_stamp() {
        let mut f = fleet(8);
        let pkt = f.take_packet(5, 1_000);
        let eth = pkt.ethernet().unwrap();
        assert_eq!(eth.src, MacAddr::simulated(CLIENT_MAC_BASE + 5));
        assert_eq!(eth.dst, MacAddr::simulated(1));
        let (ip, udp, _) = pkt.udp().expect("checksum must verify");
        assert_eq!(ip.src, [10, 0, 1, 5]);
        assert_eq!(udp.src_port, FLEET_PORT_BASE);
        assert_eq!(
            timestamp::read_timestamp(&pkt, timestamp::UDP_OFFSET),
            Some(1_000)
        );
    }

    #[test]
    fn rtt_measured_through_on_rx() {
        let mut f = fleet(2);
        let pkt = f.take_packet(0, 1_000_000);
        f.on_rx(0, 6_000_000, &pkt);
        let report = f.report(0, 10_000_000);
        assert_eq!(report.latency.count, 1);
        assert_eq!(report.latency.mean, 5_000_000.0);
        assert_eq!(f.client_counts(0), (1, 1));
        assert_eq!(f.client_counts(1), (0, 0));
    }

    #[test]
    fn distinct_clients_spread_across_queues() {
        // Distinct per-client source IPs hash to different queues — the
        // incast fleet exercises a multi-queue NIC without port games.
        let mut f = fleet(16);
        let mut seen = std::collections::HashSet::new();
        for c in 0..16 {
            let t = f.next_departure(c);
            seen.insert(queue_for(&f.take_packet(c, t), 4));
        }
        assert!(
            seen.len() >= 3,
            "16 source IPs hit ≥3 of 4 queues: {seen:?}"
        );
    }

    #[test]
    fn zipf_flows_skew_port_popularity() {
        let mut f = fleet(1).with_flows(8, 1.4);
        let mut counts = [0u32; 8];
        for i in 0..400 {
            let pkt = f.take_packet(0, i * 1000);
            let (_, udp, _) = pkt.udp().unwrap();
            counts[(udp.src_port - FLEET_PORT_BASE) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 2 * min.max(1), "Zipf must skew: {counts:?}");
        // Round-robin control: perfectly flat.
        let mut rr = fleet(1).with_flows(8, 0.0);
        assert!(rr.zipf.is_none());
        let mut rr_counts = [0u32; 8];
        for i in 0..400 {
            let pkt = rr.take_packet(0, i * 1000);
            let (_, udp, _) = pkt.udp().unwrap();
            rr_counts[(udp.src_port - FLEET_PORT_BASE) as usize] += 1;
        }
        assert_eq!(rr_counts, [50; 8]);
    }

    #[test]
    fn replay_is_deterministic() {
        let run = || {
            let mut f = fleet(4).with_flows(4, 1.2);
            let mut ids = Vec::new();
            for i in 0..64 {
                let c = i % 4;
                let t = f.next_departure(c);
                let pkt = f.take_packet(c, t);
                let (_, udp, _) = pkt.udp().unwrap();
                ids.push((pkt.id(), udp.src_port, t));
            }
            ids
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slices_reproduce_the_whole_fleet_packet_for_packet() {
        let agg = Bandwidth::gbps(10.0);
        let server = MacAddr::simulated(1);
        let mut whole = ClientFleet::fixed_rate(4, 256, agg, server, 7);
        let mut slices: Vec<_> = (0..4)
            .map(|g| ClientFleet::fixed_rate_slice(1, 4, g, 256, agg, server, 7))
            .collect();
        for round in 0..16u64 {
            for (c, slice) in slices.iter_mut().enumerate() {
                let t = whole.next_departure(c);
                assert_eq!(slice.next_departure(0), t, "departure grids agree");
                let a = whole.take_packet(c, t);
                let b = slice.take_packet(0, t);
                assert_eq!(a.id(), b.id());
                assert_eq!(a.id(), round * 4 + c as u64, "legacy take-order ids");
                assert_eq!(a.bytes(), b.bytes(), "identical frames");
                // Echo half of them back for the merged report.
                if round % 2 == 0 {
                    whole.on_rx(c, t + 1_000, &a);
                    slice.on_rx(0, t + 1_000, &b);
                }
            }
        }
        // Merging slices in index order reassembles the whole report.
        let mut merged = ClientFleet::fixed_rate(4, 256, agg, server, 7);
        for s in &slices {
            merged.absorb(&s.snapshot());
        }
        let end = us(100);
        assert_eq!(merged.report(0, end), whole.report(0, end));
        for c in 0..4 {
            assert_eq!(merged.client_counts(c), whole.client_counts(c));
            assert_eq!(merged.next_departure(c), whole.next_departure(c));
        }
    }

    #[test]
    fn slice_identity_comes_from_the_global_index() {
        let mut s = ClientFleet::fixed_rate_slice(
            2,
            8,
            5,
            256,
            Bandwidth::gbps(10.0),
            MacAddr::simulated(1),
            7,
        );
        assert_eq!(s.clients(), 2);
        assert_eq!(s.total_clients(), 8);
        assert_eq!(s.index_base(), 5);
        assert_eq!(s.client_mac(1), MacAddr::simulated(CLIENT_MAC_BASE + 6));
        let t = s.next_departure(1);
        let pkt = s.take_packet(1, t);
        let (ip, _, _) = pkt.udp().unwrap();
        assert_eq!(ip.src, [10, 0, 1, 6]);
        assert_eq!(pkt.id(), 6, "first departure of global client 6");
    }

    #[test]
    fn reset_preserves_departure_clocks() {
        let mut f = fleet(2);
        let t = f.next_departure(0);
        f.take_packet(0, t);
        let next = f.next_departure(0);
        f.reset_stats();
        assert_eq!(f.tx_packets(), 0);
        assert_eq!(f.next_departure(0), next);
    }
}
