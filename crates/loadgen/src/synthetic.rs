//! Synthetic traffic: fixed-size Ethernet frames at a configured rate and
//! inter-arrival distribution.

use simnet_net::{timestamp, EtherType, MacAddr, Packet, PacketBuilder};
use simnet_sim::random::{Distribution, SimRng};
use simnet_sim::tick::{Bandwidth, Tick};

/// RSS-hashable addressing for synthetic frames: a UDP/IPv4 4-tuple per
/// frame instead of the raw `EtherType::LoadGen` shell. The source port
/// round-robins over `src_ports` by packet id, so a port list from
/// `simnet_net::rss::ports_for_queues` spreads the stream across every
/// RX queue of a multi-queue NIC (raw frames carry no tuple and pin to
/// queue 0).
#[derive(Debug, Clone)]
pub struct RssTuples {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Destination UDP port.
    pub dst_port: u16,
    /// Source ports cycled by packet id (must be non-empty).
    pub src_ports: Vec<u16>,
}

/// Synthetic-mode parameters.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Frame length in bytes (the paper's 64…1518 B sweep).
    pub frame_len: usize,
    /// Inter-departure distribution, in ticks.
    pub interarrival: Distribution,
    /// Destination MAC (the NIC under test).
    pub dst: MacAddr,
    /// Source MAC (the generator).
    pub src: MacAddr,
    /// Payload offset of the embedded timestamp (§IV: "a configurable
    /// offset").
    pub timestamp_offset: usize,
    /// When set, frames carry this UDP/IPv4 tuple (RSS-hashable) and the
    /// timestamp moves into the UDP payload, written before the checksum.
    pub rss: Option<RssTuples>,
}

impl SyntheticConfig {
    /// Constant-rate traffic achieving `rate` of frame-byte goodput.
    pub fn fixed_rate(frame_len: usize, rate: Bandwidth, dst: MacAddr, src: MacAddr) -> Self {
        Self {
            frame_len,
            interarrival: Distribution::Fixed(rate.bytes_to_ticks(frame_len as u64) as f64),
            dst,
            src,
            timestamp_offset: timestamp::DEFAULT_OFFSET,
            rss: None,
        }
    }

    /// Poisson arrivals at the same average rate.
    pub fn poisson(frame_len: usize, rate: Bandwidth, dst: MacAddr, src: MacAddr) -> Self {
        Self {
            frame_len,
            interarrival: Distribution::Exponential {
                mean: rate.bytes_to_ticks(frame_len as u64) as f64,
            },
            dst,
            src,
            timestamp_offset: timestamp::DEFAULT_OFFSET,
            rss: None,
        }
    }

    /// Switches frames to RSS-hashable UDP tuples: source ports cycle
    /// over `src_ports` by packet id, and the departure timestamp moves
    /// to the UDP payload (frame offset 42), written inside the build so
    /// the UDP checksum still verifies — a post-build stamp would break
    /// verification and pin every frame back to queue 0.
    ///
    /// # Panics
    ///
    /// Panics on an empty port list or a frame too short to carry the
    /// headers plus the in-payload timestamp.
    pub fn with_rss_ports(
        mut self,
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        dst_port: u16,
        src_ports: Vec<u16>,
    ) -> Self {
        assert!(!src_ports.is_empty(), "need at least one source port");
        assert!(
            self.frame_len >= timestamp::UDP_OFFSET + timestamp::TIMESTAMP_LEN,
            "frame_len {} cannot hold UDP headers + timestamp",
            self.frame_len
        );
        self.timestamp_offset = timestamp::UDP_OFFSET;
        self.rss = Some(RssTuples {
            src_ip,
            dst_ip,
            dst_port,
            src_ports,
        });
        self
    }

    /// Whether [`SyntheticConfig::build`] already stamped the departure
    /// tick (the RSS/UDP path stamps pre-checksum; the raw path leaves
    /// stamping to the caller).
    pub(crate) fn stamps_in_build(&self) -> bool {
        self.rss.is_some()
    }

    /// The mean offered load in gigabits per second of frame bytes.
    pub fn offered_gbps(&self) -> f64 {
        let mean = self.interarrival.mean();
        if mean <= 0.0 {
            return f64::INFINITY;
        }
        (self.frame_len as f64 * 8.0) / (mean / simnet_sim::tick::S as f64) / 1e9
    }

    pub(crate) fn build(&self, id: u64, now: Tick, rng: &mut SimRng) -> (Packet, Option<Tick>) {
        let packet = match &self.rss {
            Some(t) => {
                let sport = t.src_ports[(id as usize) % t.src_ports.len()];
                PacketBuilder::new()
                    .dst(self.dst)
                    .src(self.src)
                    .udp(t.src_ip, t.dst_ip, sport, t.dst_port)
                    .frame_len(self.frame_len)
                    .build_with(id, self.frame_len - timestamp::UDP_OFFSET, |buf| {
                        timestamp::write_timestamp_slice(buf, 0, now);
                    })
            }
            None => PacketBuilder::new()
                .dst(self.dst)
                .src(self.src)
                .ethertype(EtherType::LoadGen)
                .frame_len(self.frame_len)
                .build(id),
        };
        let interval = self.interarrival.sample(rng).round() as Tick;
        (packet, Some(interval.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_interval_matches_rate() {
        let cfg = SyntheticConfig::fixed_rate(
            1518,
            Bandwidth::gbps(100.0),
            MacAddr::simulated(1),
            MacAddr::simulated(2),
        );
        // 1518 B at 100 Gbps = 121.44 ns.
        assert_eq!(cfg.interarrival, Distribution::Fixed(121_440.0));
        assert!((cfg.offered_gbps() - 100.0).abs() < 0.1);
    }

    #[test]
    fn build_produces_correct_frames() {
        let cfg = SyntheticConfig::fixed_rate(
            256,
            Bandwidth::gbps(10.0),
            MacAddr::simulated(1),
            MacAddr::simulated(2),
        );
        let mut rng = SimRng::seed_from(1);
        let (pkt, interval) = cfg.build(9, 0, &mut rng);
        assert_eq!(pkt.len(), 256);
        assert_eq!(pkt.id(), 9);
        assert_eq!(pkt.ethernet().unwrap().dst, MacAddr::simulated(1));
        assert_eq!(pkt.ethernet().unwrap().ethertype, EtherType::LoadGen);
        assert!(interval.unwrap() > 0);
    }

    #[test]
    fn poisson_intervals_vary() {
        let cfg = SyntheticConfig::poisson(
            128,
            Bandwidth::gbps(10.0),
            MacAddr::simulated(1),
            MacAddr::simulated(2),
        );
        let mut rng = SimRng::seed_from(2);
        let (_, a) = cfg.build(0, 0, &mut rng);
        let (_, b) = cfg.build(1, 0, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn rss_frames_carry_valid_udp_tuples_and_stamps() {
        let ports = vec![40_000u16, 40_001, 40_002];
        let cfg = SyntheticConfig::fixed_rate(
            256,
            Bandwidth::gbps(10.0),
            MacAddr::simulated(1),
            MacAddr::simulated(2),
        )
        .with_rss_ports([10, 0, 0, 2], [10, 0, 0, 1], 9, ports.clone());
        assert_eq!(cfg.timestamp_offset, timestamp::UDP_OFFSET);
        let mut rng = SimRng::seed_from(1);
        for id in 0..6u64 {
            let (pkt, _) = cfg.build(id, 123_456, &mut rng);
            let (_, udp, _) = pkt.udp().expect("checksum must verify");
            assert_eq!(udp.src_port, ports[(id as usize) % ports.len()]);
            assert_eq!(udp.dst_port, 9);
            assert_eq!(
                timestamp::read_timestamp(&pkt, timestamp::UDP_OFFSET),
                Some(123_456)
            );
        }
    }

    #[test]
    fn rss_frames_spread_across_queues() {
        use simnet_net::rss::{ports_for_queues, queue_for};
        let nq = 4;
        let ports = ports_for_queues([10, 0, 0, 2], [10, 0, 0, 1], 9, nq);
        let cfg = SyntheticConfig::fixed_rate(
            128,
            Bandwidth::gbps(10.0),
            MacAddr::simulated(1),
            MacAddr::simulated(2),
        )
        .with_rss_ports([10, 0, 0, 2], [10, 0, 0, 1], 9, ports);
        let mut rng = SimRng::seed_from(1);
        let queues: Vec<usize> = (0..8u64)
            .map(|id| queue_for(&cfg.build(id, id, &mut rng).0, nq))
            .collect();
        assert_eq!(&queues[..4], &[0, 1, 2, 3], "ports_for_queues round-robin");
        assert_eq!(&queues[4..], &[0, 1, 2, 3]);
    }
}
