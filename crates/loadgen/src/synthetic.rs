//! Synthetic traffic: fixed-size Ethernet frames at a configured rate and
//! inter-arrival distribution.

use simnet_net::{timestamp, EtherType, MacAddr, Packet, PacketBuilder};
use simnet_sim::random::{Distribution, SimRng};
use simnet_sim::tick::{Bandwidth, Tick};

/// Synthetic-mode parameters.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Frame length in bytes (the paper's 64…1518 B sweep).
    pub frame_len: usize,
    /// Inter-departure distribution, in ticks.
    pub interarrival: Distribution,
    /// Destination MAC (the NIC under test).
    pub dst: MacAddr,
    /// Source MAC (the generator).
    pub src: MacAddr,
    /// Payload offset of the embedded timestamp (§IV: "a configurable
    /// offset").
    pub timestamp_offset: usize,
}

impl SyntheticConfig {
    /// Constant-rate traffic achieving `rate` of frame-byte goodput.
    pub fn fixed_rate(frame_len: usize, rate: Bandwidth, dst: MacAddr, src: MacAddr) -> Self {
        Self {
            frame_len,
            interarrival: Distribution::Fixed(rate.bytes_to_ticks(frame_len as u64) as f64),
            dst,
            src,
            timestamp_offset: timestamp::DEFAULT_OFFSET,
        }
    }

    /// Poisson arrivals at the same average rate.
    pub fn poisson(frame_len: usize, rate: Bandwidth, dst: MacAddr, src: MacAddr) -> Self {
        Self {
            frame_len,
            interarrival: Distribution::Exponential {
                mean: rate.bytes_to_ticks(frame_len as u64) as f64,
            },
            dst,
            src,
            timestamp_offset: timestamp::DEFAULT_OFFSET,
        }
    }

    /// The mean offered load in gigabits per second of frame bytes.
    pub fn offered_gbps(&self) -> f64 {
        let mean = self.interarrival.mean();
        if mean <= 0.0 {
            return f64::INFINITY;
        }
        (self.frame_len as f64 * 8.0) / (mean / simnet_sim::tick::S as f64) / 1e9
    }

    pub(crate) fn build(&self, id: u64, rng: &mut SimRng) -> (Packet, Option<Tick>) {
        let packet = PacketBuilder::new()
            .dst(self.dst)
            .src(self.src)
            .ethertype(EtherType::LoadGen)
            .frame_len(self.frame_len)
            .build(id);
        let interval = self.interarrival.sample(rng).round() as Tick;
        (packet, Some(interval.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_interval_matches_rate() {
        let cfg = SyntheticConfig::fixed_rate(
            1518,
            Bandwidth::gbps(100.0),
            MacAddr::simulated(1),
            MacAddr::simulated(2),
        );
        // 1518 B at 100 Gbps = 121.44 ns.
        assert_eq!(cfg.interarrival, Distribution::Fixed(121_440.0));
        assert!((cfg.offered_gbps() - 100.0).abs() < 0.1);
    }

    #[test]
    fn build_produces_correct_frames() {
        let cfg = SyntheticConfig::fixed_rate(
            256,
            Bandwidth::gbps(10.0),
            MacAddr::simulated(1),
            MacAddr::simulated(2),
        );
        let mut rng = SimRng::seed_from(1);
        let (pkt, interval) = cfg.build(9, &mut rng);
        assert_eq!(pkt.len(), 256);
        assert_eq!(pkt.id(), 9);
        assert_eq!(pkt.ethernet().unwrap().dst, MacAddr::simulated(1));
        assert_eq!(pkt.ethernet().unwrap().ethertype, EtherType::LoadGen);
        assert!(interval.unwrap() > 0);
    }

    #[test]
    fn poisson_intervals_vary() {
        let cfg = SyntheticConfig::poisson(
            128,
            Bandwidth::gbps(10.0),
            MacAddr::simulated(1),
            MacAddr::simulated(2),
        );
        let mut rng = SimRng::seed_from(2);
        let (_, a) = cfg.build(0, &mut rng);
        let (_, b) = cfg.build(1, &mut rng);
        assert_ne!(a, b);
    }
}
