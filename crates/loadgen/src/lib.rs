//! `EtherLoadGen` — the hardware load-generator simulation model (§IV).
//!
//! "The hardware load generator model can generate packets at arbitrary
//! rates, sizes, and traffic patterns ... has a single Ethernet port and
//! can directly connect to the NIC port of a simulated node." It replaces
//! the Drive Node of dual-mode simulations (Fig. 1b), so measurements are
//! free of client-side queuing and the client can never be the bottleneck
//! (the Fig. 6 artifact of the software Pktgen client).
//!
//! Modes:
//!
//! * [`synthetic`] — fixed/Poisson inter-arrival Ethernet frames of a
//!   configured size, timestamped in-payload for RTT measurement.
//! * [`trace`] — PCAP replay with destination-MAC rewrite, honoring the
//!   trace's timestamps or overriding the rate.
//! * [`memcached_client`] — GET/SET request generation with Zipfian
//!   key/value lengths and a request-id → departure-time map for
//!   per-request latency (§VI.A).
//!
//! The generator reports mean, median, standard deviation and tail
//! latency, a forwarding-latency histogram, and the drop percentage; the
//! [`ramp`] module implements the "bandwidth test mode that gradually
//! increases the bandwidth to find the maximum sustainable bandwidth".

pub mod fleet;
pub mod memcached_client;
pub mod ramp;
pub mod report;
pub mod synthetic;
pub mod tcp_client;
pub mod trace;

pub use fleet::{ClientFleet, FleetSnapshot};
pub use memcached_client::MemcachedClientConfig;
pub use ramp::{find_knee, RatePoint, MSB_DROP_THRESHOLD};
pub use report::LoadGenReport;
pub use synthetic::{RssTuples, SyntheticConfig};
pub use tcp_client::TcpClientConfig;
pub use trace::TraceConfig;

use simnet_net::{timestamp, Packet};
use simnet_sim::random::SimRng;
use simnet_sim::stats::{Counter, Histogram, SampleSet};
use simnet_sim::tick::{us, Tick};
use simnet_sim::trace::{Component, Stage, Tracer};

/// What kind of traffic the generator produces.
#[derive(Debug, Clone)]
pub enum LoadGenMode {
    /// Synthetic fixed-size Ethernet frames.
    Synthetic(SyntheticConfig),
    /// PCAP trace replay.
    Trace(TraceConfig),
    /// Memcached GET/SET client.
    Memcached(MemcachedClientConfig),
    /// TCP bulk-stream client (the paper's future-work extension: a TCP
    /// state machine inside the load generator).
    Tcp(TcpClientConfig),
}

/// The load generator.
pub struct EtherLoadGen {
    mode: LoadGenMode,
    rng: SimRng,
    next_id: u64,
    next_departure: Option<Tick>,
    /// Open-loop by default; `Some(w)` bounds outstanding packets
    /// (closed-loop client, §IV referencing open vs. closed clients).
    window: Option<usize>,
    limit: Option<u64>,
    tx_packets: Counter,
    tx_bytes: Counter,
    rx_packets: Counter,
    rx_bytes: Counter,
    latency: SampleSet,
    latency_histogram: Histogram,
    first_tx: Option<Tick>,
    last_rx: Tick,
    outstanding: usize,
    tracer: Tracer,
}

impl EtherLoadGen {
    /// Creates a generator in the given mode, seeded for determinism.
    pub fn new(mode: LoadGenMode, seed: u64) -> Self {
        Self {
            mode,
            rng: SimRng::seed_from(seed),
            next_id: 0,
            next_departure: Some(0),
            window: None,
            limit: None,
            tx_packets: Counter::new(),
            tx_bytes: Counter::new(),
            rx_packets: Counter::new(),
            rx_bytes: Counter::new(),
            latency: SampleSet::with_capacity(1 << 18),
            latency_histogram: Histogram::new(0.0, us(1000) as f64, 200),
            first_tx: None,
            last_rx: 0,
            outstanding: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a packet-lifecycle tracer; the generator reports
    /// injections and echo receipts.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Bounds the number of in-flight packets (closed-loop client).
    pub fn set_closed_loop(&mut self, window: usize) {
        self.window = Some(window.max(1));
    }

    /// Stops generating after `count` packets.
    pub fn set_packet_limit(&mut self, count: u64) {
        self.limit = Some(count);
    }

    /// In memcached mode, steers each request's source port so the
    /// server NIC's RSS hash lands the request on the queue owning its
    /// key's shard (`ports[q]` must hash to queue `q`; see
    /// `simnet_net::rss::ports_for_queues`). No-op in other modes.
    pub fn set_memcached_shard_ports(&mut self, ports: Vec<u16>) {
        if let LoadGenMode::Memcached(cfg) = &mut self.mode {
            cfg.shard_ports = Some(ports);
        }
    }

    /// The tick at which the next packet wants to depart, or `None` if
    /// generation is finished or blocked on the closed-loop window.
    pub fn next_departure(&self, now: Tick) -> Option<Tick> {
        if self.limit.is_some_and(|l| self.next_id >= l) {
            return None;
        }
        if self.window.is_some_and(|w| self.outstanding >= w) {
            return None; // unblocked by a future on_rx
        }
        match &self.mode {
            // TCP paces itself: window occupancy and RTO deadlines.
            LoadGenMode::Tcp(cfg) => cfg.next_departure(now),
            _ => self.next_departure.map(|t| t.max(now)),
        }
    }

    /// Materializes the packet departing at `now` and schedules the next
    /// departure. Call only at/after the tick returned by
    /// [`EtherLoadGen::next_departure`].
    pub fn take_packet(&mut self, now: Tick) -> Option<Packet> {
        self.next_departure(now)?;
        let id = self.next_id;
        self.next_id += 1;

        let (mut packet, interval) = match &mut self.mode {
            LoadGenMode::Synthetic(cfg) => cfg.build(id, now, &mut self.rng),
            LoadGenMode::Trace(cfg) => cfg.build(id, now)?,
            LoadGenMode::Memcached(cfg) => cfg.build(id, now, &mut self.rng),
            LoadGenMode::Tcp(cfg) => (cfg.build(id, now)?, None),
        };

        // Synthetic mode stamps the departure tick into the payload at the
        // configurable offset; echoes carry it back for RTT measurement.
        // RSS/UDP frames were already stamped inside the build, before
        // checksumming — stamping here would invalidate the checksum.
        if let LoadGenMode::Synthetic(cfg) = &self.mode {
            if !cfg.stamps_in_build() {
                timestamp::write_timestamp(&mut packet, cfg.timestamp_offset, now);
            }
        }

        if !matches!(self.mode, LoadGenMode::Tcp(_)) {
            self.next_departure = interval.map(|dt| now + dt);
        }
        self.tx_packets.inc();
        self.tx_bytes.add(packet.len() as u64);
        self.first_tx.get_or_insert(now);
        self.outstanding += 1;
        self.tracer.emit(
            now,
            packet.id(),
            Component::LoadGen,
            Stage::Inject {
                len: packet.len() as u32,
            },
        );
        Some(packet)
    }

    /// Delivers a packet returning from the node under test; measures RTT.
    pub fn on_rx(&mut self, now: Tick, packet: &Packet) {
        self.tracer
            .emit(now, packet.id(), Component::LoadGen, Stage::EchoRx);
        self.rx_packets.inc();
        self.rx_bytes.add(packet.len() as u64);
        self.last_rx = self.last_rx.max(now);
        self.outstanding = self.outstanding.saturating_sub(1);

        let rtt = match &mut self.mode {
            LoadGenMode::Synthetic(cfg) => timestamp::read_timestamp(packet, cfg.timestamp_offset)
                .map(|sent| now.saturating_sub(sent)),
            LoadGenMode::Memcached(cfg) => cfg.match_response(now, packet),
            LoadGenMode::Trace(_) => None,
            LoadGenMode::Tcp(cfg) => cfg.on_rx(now, packet),
        };
        if let Some(rtt) = rtt {
            self.latency.record(rtt as f64);
            self.latency_histogram.record(rtt as f64);
        }
    }

    /// Whether a closed-loop sender may have been unblocked by the last
    /// receive (the node should re-query [`EtherLoadGen::next_departure`]).
    pub fn unblocked(&self) -> bool {
        // TCP's window opens on any ACK; closed-loop synthetic clients on
        // any echo.
        matches!(self.mode, LoadGenMode::Tcp(_))
            || self.window.is_some_and(|w| self.outstanding < w)
    }

    /// The TCP client state, when in TCP mode (goodput/retransmission
    /// counters).
    pub fn tcp(&self) -> Option<&TcpClientConfig> {
        match &self.mode {
            LoadGenMode::Tcp(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// Packets transmitted.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets.value()
    }

    /// Packets received back.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets.value()
    }

    /// Echoed/answered packets currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The latency histogram.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_histogram
    }

    /// Builds the statistics report over the window `[start, end]`.
    pub fn report(&self, start: Tick, end: Tick) -> LoadGenReport {
        LoadGenReport::compute(
            self.tx_packets.value(),
            self.tx_bytes.value(),
            self.rx_packets.value(),
            self.rx_bytes.value(),
            self.latency.summary(),
            start,
            end,
        )
    }

    /// Registers the `loadgen.*` statistics section. `now` bounds the
    /// measurement window for the rate/drop computation.
    pub fn register_stats(&self, now: Tick, reg: &mut simnet_sim::stats::StatsRegistry) {
        let report = self.report(0, now);
        let summary = &report.latency;
        reg.scoped("loadgen", |reg| {
            reg.scalar("txPackets", report.tx_packets, "packets injected");
            reg.scalar("rxPackets", report.rx_packets, "packets echoed back");
            reg.float("rtt.mean_ns", summary.mean / 1e3, "mean round-trip (ns)");
            reg.float("rtt.p99_ns", summary.p99 / 1e3, "p99 round-trip (ns)");
            if reg.full() {
                reg.scalar("txBytes", report.tx_bytes, "bytes injected");
                reg.scalar("rxBytes", report.rx_bytes, "bytes echoed back");
                reg.scalar("rtt.samples", summary.count, "RTT samples recorded");
                reg.float(
                    "rtt.median_ns",
                    summary.median / 1e3,
                    "median round-trip (ns)",
                );
                reg.float("rtt.p90_ns", summary.p90 / 1e3, "p90 round-trip (ns)");
                reg.float("dropRate", report.drop_rate, "unreturned / injected");
            }
        });
    }

    /// Clears statistics (post-warm-up reset); generation state persists.
    pub fn reset_stats(&mut self) {
        self.tx_packets.reset();
        self.tx_bytes.reset();
        self.rx_packets.reset();
        self.rx_bytes.reset();
        self.latency.reset();
        self.latency_histogram.reset();
        self.first_tx = None;
        if let LoadGenMode::Memcached(cfg) = &mut self.mode {
            cfg.reset_stats();
        }
        if let LoadGenMode::Tcp(cfg) = &mut self.mode {
            cfg.acked_bytes.reset();
            cfg.retransmissions.reset();
            cfg.timeouts.reset();
        }
    }
}

impl std::fmt::Debug for EtherLoadGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EtherLoadGen")
            .field("tx", &self.tx_packets.value())
            .field("rx", &self.rx_packets.value())
            .field("outstanding", &self.outstanding)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::MacAddr;
    use simnet_sim::tick::Bandwidth;

    fn synthetic_gen(gbps: f64, size: usize) -> EtherLoadGen {
        let cfg = SyntheticConfig::fixed_rate(
            size,
            Bandwidth::gbps(gbps),
            MacAddr::simulated(1),
            MacAddr::simulated(99),
        );
        EtherLoadGen::new(LoadGenMode::Synthetic(cfg), 7)
    }

    #[test]
    fn fixed_rate_departures_are_evenly_spaced() {
        let mut lg = synthetic_gen(10.0, 1000);
        let t0 = lg.next_departure(0).unwrap();
        lg.take_packet(t0).unwrap();
        let t1 = lg.next_departure(t0).unwrap();
        lg.take_packet(t1).unwrap();
        let t2 = lg.next_departure(t1).unwrap();
        // 1000B at 10 Gbps -> 800 ns between departures.
        assert_eq!(t1 - t0, 800_000);
        assert_eq!(t2 - t1, 800_000);
    }

    #[test]
    fn rtt_is_measured_from_embedded_timestamp() {
        let mut lg = synthetic_gen(10.0, 256);
        let pkt = lg.take_packet(1_000_000).unwrap();
        // Echo comes back 5 µs later.
        lg.on_rx(6_000_000, &pkt);
        let report = lg.report(0, 10_000_000);
        assert_eq!(report.latency.count, 1);
        assert_eq!(report.latency.mean, 5_000_000.0);
    }

    #[test]
    fn drop_percentage_reflects_unreturned_packets() {
        let mut lg = synthetic_gen(10.0, 256);
        let mut packets = Vec::new();
        let mut now = 0;
        for _ in 0..10 {
            now = lg.next_departure(now).unwrap();
            packets.push(lg.take_packet(now).unwrap());
        }
        for pkt in &packets[..7] {
            lg.on_rx(now + 1000, pkt);
        }
        let report = lg.report(0, now + 2000);
        assert!((report.drop_rate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn packet_limit_stops_generation() {
        let mut lg = synthetic_gen(10.0, 64);
        lg.set_packet_limit(3);
        let mut now = 0;
        for _ in 0..3 {
            now = lg.next_departure(now).unwrap();
            lg.take_packet(now).unwrap();
        }
        assert_eq!(lg.next_departure(now), None);
        assert_eq!(lg.tx_packets(), 3);
    }

    #[test]
    fn closed_loop_blocks_at_window() {
        let mut lg = synthetic_gen(100.0, 64);
        lg.set_closed_loop(2);
        let t0 = lg.next_departure(0).unwrap();
        let a = lg.take_packet(t0).unwrap();
        let t1 = lg.next_departure(t0).unwrap();
        lg.take_packet(t1).unwrap();
        assert_eq!(lg.next_departure(t1), None, "window of 2 is full");
        assert!(!lg.unblocked());
        lg.on_rx(t1 + 100, &a);
        assert!(lg.unblocked());
        assert!(lg.next_departure(t1 + 100).is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let cfg = SyntheticConfig::poisson(
                128,
                Bandwidth::gbps(20.0),
                MacAddr::simulated(1),
                MacAddr::simulated(2),
            );
            let mut lg = EtherLoadGen::new(LoadGenMode::Synthetic(cfg), 42);
            let mut times = Vec::new();
            let mut now = 0;
            for _ in 0..50 {
                now = lg.next_departure(now).unwrap();
                lg.take_packet(now).unwrap();
                times.push(now);
            }
            times
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn register_stats_reports_packets_and_rtt() {
        use simnet_sim::stats::{DumpLevel, StatValue, StatsRegistry};

        let mut lg = synthetic_gen(10.0, 256);
        let pkt = lg.take_packet(1_000_000).unwrap();
        lg.on_rx(6_000_000, &pkt); // 5 µs RTT

        let mut reg = StatsRegistry::new();
        lg.register_stats(10_000_000, &mut reg);
        assert_eq!(reg.get("loadgen.txPackets"), Some(&StatValue::Scalar(1)));
        assert_eq!(reg.get("loadgen.rxPackets"), Some(&StatValue::Scalar(1)));
        assert_eq!(
            reg.get("loadgen.rtt.mean_ns"),
            Some(&StatValue::Float(5_000.0))
        );
        assert!(reg.get("loadgen.dropRate").is_none(), "full-only stat");

        let mut full = StatsRegistry::with_level(DumpLevel::Full);
        lg.register_stats(10_000_000, &mut full);
        assert_eq!(reg.get("loadgen.txPackets"), Some(&StatValue::Scalar(1)));
        assert_eq!(full.get("loadgen.dropRate"), Some(&StatValue::Float(0.0)));
    }

    #[test]
    fn reset_stats_preserves_schedule() {
        let mut lg = synthetic_gen(10.0, 256);
        let t0 = lg.next_departure(0).unwrap();
        lg.take_packet(t0).unwrap();
        lg.reset_stats();
        assert_eq!(lg.tx_packets(), 0);
        assert!(lg.next_departure(t0).is_some());
    }
}
