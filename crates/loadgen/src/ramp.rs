//! The bandwidth-test mode: finding the maximum sustainable bandwidth.
//!
//! §IV: "`EtherLoadGen` also supports a bandwidth test mode where it
//! gradually increases the bandwidth to find the maximum sustainable
//! bandwidth of a server, which is the bandwidth at the knee of the
//! bandwidth vs. packet drop graph." §VII.C pins the definition used for
//! the sensitivity studies: "the network bandwidth at the point on the
//! bandwidth versus packet drop graph where the drop rate exceeds 1%."

/// One measured point of a bandwidth ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Offered load (Gbps of frame bytes, or kRPS for request workloads).
    pub offered: f64,
    /// Achieved throughput at that load (same unit).
    pub achieved: f64,
    /// Observed drop rate in `[0, 1]`.
    pub drop_rate: f64,
}

/// The MSB drop-rate threshold (1%, §VII.C).
pub const MSB_DROP_THRESHOLD: f64 = 0.01;

/// Finds the knee of a ramp: the highest offered load whose drop rate is
/// at or below `threshold`, linearly interpolated against the first point
/// that exceeds it. Returns `None` if the very first point already drops
/// too much, and the last point's offered load if nothing ever drops.
///
/// Points must be sorted by increasing offered load.
///
/// ```
/// use simnet_loadgen::{find_knee, RatePoint};
/// let ramp = [
///     RatePoint { offered: 10.0, achieved: 10.0, drop_rate: 0.0 },
///     RatePoint { offered: 20.0, achieved: 20.0, drop_rate: 0.005 },
///     RatePoint { offered: 30.0, achieved: 24.0, drop_rate: 0.05 },
/// ];
/// let msb = find_knee(&ramp, 0.01).unwrap();
/// assert!(msb > 20.0 && msb < 30.0);
/// ```
pub fn find_knee(points: &[RatePoint], threshold: f64) -> Option<f64> {
    let mut last_good: Option<&RatePoint> = None;
    for point in points {
        if point.drop_rate <= threshold {
            last_good = Some(point);
        } else {
            return match last_good {
                Some(good) => {
                    // Interpolate between the last sustainable point and
                    // the first unsustainable one.
                    let span = point.drop_rate - good.drop_rate;
                    if span <= 0.0 {
                        Some(good.offered)
                    } else {
                        let f = (threshold - good.drop_rate) / span;
                        Some(good.offered + f * (point.offered - good.offered))
                    }
                }
                None => None,
            };
        }
    }
    last_good.map(|p| p.offered)
}

/// Builds a geometric ramp of offered loads from `lo` to `hi` (inclusive)
/// with `steps` points — the schedule the bandwidth-test mode sweeps.
///
/// # Panics
///
/// Panics if the bounds are non-positive, inverted, or `steps < 2`.
pub fn geometric_ramp(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(steps >= 2, "need at least two steps");
    let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|i| lo * ratio.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(offered: f64, drop: f64) -> RatePoint {
        RatePoint {
            offered,
            achieved: offered * (1.0 - drop),
            drop_rate: drop,
        }
    }

    #[test]
    fn knee_interpolates_at_threshold() {
        let ramp = [point(10.0, 0.0), point(20.0, 0.0), point(40.0, 0.03)];
        let msb = find_knee(&ramp, 0.01).unwrap();
        // Interpolated a third of the way from 20 to 40.
        assert!((msb - 26.666).abs() < 0.01, "msb={msb}");
    }

    #[test]
    fn no_drops_returns_last_offered() {
        let ramp = [point(10.0, 0.0), point(20.0, 0.005)];
        assert_eq!(find_knee(&ramp, 0.01), Some(20.0));
    }

    #[test]
    fn immediate_overload_returns_none() {
        let ramp = [point(10.0, 0.5)];
        assert_eq!(find_knee(&ramp, 0.01), None);
        assert_eq!(find_knee(&[], 0.01), None);
    }

    #[test]
    fn flat_drop_profile_uses_last_good() {
        let ramp = [point(10.0, 0.01), point(20.0, 0.01), point(30.0, 0.4)];
        let msb = find_knee(&ramp, 0.01).unwrap();
        assert!(msb >= 20.0);
    }

    #[test]
    fn geometric_ramp_spans_range() {
        let ramp = geometric_ramp(1.0, 100.0, 5);
        assert_eq!(ramp.len(), 5);
        assert!((ramp[0] - 1.0).abs() < 1e-9);
        assert!((ramp[4] - 100.0).abs() < 1e-6);
        assert!(ramp.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "need 0 < lo < hi")]
    fn bad_ramp_bounds_rejected() {
        geometric_ramp(10.0, 5.0, 3);
    }
}
