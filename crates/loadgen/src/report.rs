//! The load generator's statistics report.

use simnet_sim::stats::LatencySummary;
use simnet_sim::tick::{Bandwidth, Tick};

/// The statistics `EtherLoadGen` writes at the end of a run (§IV): packet
/// and byte counts, achieved bandwidths, drop percentage, and the RTT
/// summary (mean/median/stddev/tails).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenReport {
    /// Packets transmitted toward the node under test.
    pub tx_packets: u64,
    /// Frame bytes transmitted.
    pub tx_bytes: u64,
    /// Packets received back.
    pub rx_packets: u64,
    /// Frame bytes received back.
    pub rx_bytes: u64,
    /// Offered load over the window, Gbps of frame bytes.
    pub offered_gbps: f64,
    /// Achieved (echoed) bandwidth over the window, Gbps.
    pub achieved_gbps: f64,
    /// Requests (packets) per second received back.
    pub achieved_rps: f64,
    /// Fraction of transmitted packets never seen again.
    pub drop_rate: f64,
    /// Round-trip latency summary.
    pub latency: LatencySummary,
}

impl LoadGenReport {
    /// Computes a report from raw counters over the window `[start, end]`.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        tx_packets: u64,
        tx_bytes: u64,
        rx_packets: u64,
        rx_bytes: u64,
        latency: LatencySummary,
        start: Tick,
        end: Tick,
    ) -> Self {
        let window = end.saturating_sub(start);
        let drop_rate = if tx_packets == 0 {
            0.0
        } else {
            1.0 - (rx_packets.min(tx_packets) as f64 / tx_packets as f64)
        };
        Self {
            tx_packets,
            tx_bytes,
            rx_packets,
            rx_bytes,
            offered_gbps: Bandwidth::measured_gbps(tx_bytes, window),
            achieved_gbps: Bandwidth::measured_gbps(rx_bytes, window),
            achieved_rps: if window == 0 {
                0.0
            } else {
                rx_packets as f64 / (window as f64 / simnet_sim::tick::S as f64)
            },
            drop_rate,
            latency,
        }
    }
}

impl std::fmt::Display for LoadGenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tx={} rx={} offered={:.2} Gbps achieved={:.2} Gbps ({:.0} rps) drops={:.2}%",
            self.tx_packets,
            self.rx_packets,
            self.offered_gbps,
            self.achieved_gbps,
            self.achieved_rps,
            self.drop_rate * 100.0
        )?;
        write!(
            f,
            "rtt: mean={:.1} ns median={:.1} ns sd={:.1} ns p99={:.1} ns (n={})",
            self.latency.mean / 1e3,
            self.latency.median / 1e3,
            self.latency.stddev / 1e3,
            self.latency.p99 / 1e3,
            self.latency.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_and_drop_math() {
        let r = LoadGenReport::compute(
            100,
            100 * 1000,
            80,
            80 * 1000,
            LatencySummary::empty(),
            0,
            simnet_sim::tick::us(8),
        );
        // 100 kB in 8 µs = 100 Gbps offered.
        assert!((r.offered_gbps - 100.0).abs() < 1e-9);
        assert!((r.achieved_gbps - 80.0).abs() < 1e-9);
        assert!((r.drop_rate - 0.2).abs() < 1e-12);
        assert!((r.achieved_rps - 10e6).abs() < 1.0);
    }

    #[test]
    fn empty_window_is_safe() {
        let r = LoadGenReport::compute(0, 0, 0, 0, LatencySummary::empty(), 5, 5);
        assert_eq!(r.drop_rate, 0.0);
        assert_eq!(r.achieved_gbps, 0.0);
        assert_eq!(r.achieved_rps, 0.0);
    }

    #[test]
    fn more_rx_than_tx_is_clamped() {
        // Echoes from warm-up packets can outnumber window TX; drop rate
        // must not go negative.
        let r = LoadGenReport::compute(10, 1000, 12, 1200, LatencySummary::empty(), 0, 100);
        assert_eq!(r.drop_rate, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let r = LoadGenReport::compute(1, 64, 1, 64, LatencySummary::empty(), 0, 1000);
        let s = r.to_string();
        assert!(s.contains("tx=1"));
        assert!(s.contains("rtt:"));
    }
}
