//! Trace mode: PCAP replay.
//!
//! §IV: the generator "parses PCAP files ... and reads the networking
//! trace for each packet. It then modifies the destination physical
//! address in the packet's Ethernet header to match the one in the
//! simulated system. The modified packet is dispatched ... at either a
//! statically configured rate or based on the timestamp information from
//! the original trace."

use std::io::Read;

use simnet_net::ethernet::set_destination;
use simnet_net::pcap::{PcapError, PcapReader, PcapRecord};
use simnet_net::{MacAddr, Packet};
use simnet_sim::Tick;

/// How replayed packets are paced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Use the inter-packet gaps recorded in the trace.
    HonorTimestamps,
    /// Send at a fixed interval, overriding the trace timing.
    FixedInterval(Tick),
}

/// Trace-mode parameters and cursor state.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    records: Vec<PcapRecord>,
    cursor: usize,
    pacing: Pacing,
    rewrite_dst: MacAddr,
    /// Restart from the beginning when the trace ends.
    pub loop_replay: bool,
}

impl TraceConfig {
    /// Builds trace mode from in-memory records.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn from_records(records: Vec<PcapRecord>, pacing: Pacing, rewrite_dst: MacAddr) -> Self {
        assert!(!records.is_empty(), "trace must contain packets");
        Self {
            records,
            cursor: 0,
            pacing,
            rewrite_dst,
            loop_replay: false,
        }
    }

    /// Reads a PCAP stream (e.g. a file captured with tcpdump or the
    /// simulator's pdump tap) into trace mode.
    ///
    /// # Errors
    ///
    /// Propagates PCAP parse errors.
    pub fn from_pcap<R: Read>(
        reader: R,
        pacing: Pacing,
        rewrite_dst: MacAddr,
    ) -> Result<Self, PcapError> {
        let records = PcapReader::new(reader)?.read_all()?;
        if records.is_empty() {
            return Err(PcapError::Truncated);
        }
        Ok(Self::from_records(records, pacing, rewrite_dst))
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub(crate) fn build(&mut self, id: u64, _now: Tick) -> Option<(Packet, Option<Tick>)> {
        if self.cursor >= self.records.len() {
            if self.loop_replay {
                self.cursor = 0;
            } else {
                return None;
            }
        }
        let record = &self.records[self.cursor];
        // One copy of the record bytes straight into a pooled buffer —
        // no per-replay `Vec` clone.
        let mut packet = Packet::copy_from_slice(id, &record.data);
        if packet.len() >= simnet_net::ETHERNET_HEADER_LEN {
            set_destination(packet.bytes_mut(), self.rewrite_dst);
        }

        let next_cursor = self.cursor + 1;
        let interval = match self.pacing {
            Pacing::FixedInterval(dt) => Some(dt.max(1)),
            Pacing::HonorTimestamps => {
                let this_tick = record.tick;
                let next_tick = if next_cursor < self.records.len() {
                    Some(self.records[next_cursor].tick)
                } else if self.loop_replay {
                    // Wrap-around gap: reuse the first inter-packet gap.
                    self.records
                        .get(1)
                        .map(|r| this_tick + (r.tick - self.records[0].tick))
                } else {
                    None
                };
                next_tick
                    .map(|t| t.saturating_sub(this_tick).max(1))
                    .or(Some(1))
            }
        };
        self.cursor = next_cursor;
        Some((packet, interval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_net::pcap::PcapWriter;
    use simnet_net::PacketBuilder;

    fn sample_trace() -> Vec<PcapRecord> {
        vec![
            PcapRecord {
                tick: 1_000,
                data: PacketBuilder::new().frame_len(64).build(0).into_bytes(),
                orig_len: 64,
            },
            PcapRecord {
                tick: 5_000,
                data: PacketBuilder::new().frame_len(128).build(0).into_bytes(),
                orig_len: 128,
            },
            PcapRecord {
                tick: 6_000,
                data: PacketBuilder::new().frame_len(256).build(0).into_bytes(),
                orig_len: 256,
            },
        ]
    }

    #[test]
    fn honor_timestamps_reproduces_gaps() {
        let mut cfg = TraceConfig::from_records(
            sample_trace(),
            Pacing::HonorTimestamps,
            MacAddr::simulated(7),
        );
        let (_, i1) = cfg.build(0, 0).unwrap();
        let (_, i2) = cfg.build(1, 0).unwrap();
        assert_eq!(i1, Some(4_000));
        assert_eq!(i2, Some(1_000));
    }

    #[test]
    fn fixed_interval_overrides_trace_timing() {
        let mut cfg = TraceConfig::from_records(
            sample_trace(),
            Pacing::FixedInterval(250),
            MacAddr::simulated(7),
        );
        let (_, i1) = cfg.build(0, 0).unwrap();
        assert_eq!(i1, Some(250));
    }

    #[test]
    fn destination_mac_is_rewritten() {
        let mut cfg = TraceConfig::from_records(
            sample_trace(),
            Pacing::HonorTimestamps,
            MacAddr::simulated(42),
        );
        let (pkt, _) = cfg.build(0, 0).unwrap();
        assert_eq!(pkt.ethernet().unwrap().dst, MacAddr::simulated(42));
    }

    #[test]
    fn exhausted_trace_stops_unless_looping() {
        let mut cfg = TraceConfig::from_records(
            sample_trace(),
            Pacing::FixedInterval(10),
            MacAddr::simulated(1),
        );
        for i in 0..3 {
            assert!(cfg.build(i, 0).is_some());
        }
        assert!(cfg.build(3, 0).is_none());

        cfg.loop_replay = true;
        let (pkt, _) = cfg.build(4, 0).expect("loops back to start");
        assert_eq!(pkt.len(), 64);
    }

    #[test]
    fn round_trips_through_pcap_bytes() {
        let mut buf = Vec::new();
        {
            let mut writer = PcapWriter::new(&mut buf).unwrap();
            for r in sample_trace() {
                writer.write_packet(r.tick, &r.data).unwrap();
            }
        }
        let cfg = TraceConfig::from_pcap(&buf[..], Pacing::HonorTimestamps, MacAddr::simulated(1))
            .unwrap();
        assert_eq!(cfg.len(), 3);
    }

    #[test]
    #[should_panic(expected = "must contain packets")]
    fn empty_trace_rejected() {
        TraceConfig::from_records(vec![], Pacing::HonorTimestamps, MacAddr::ZERO);
    }
}
