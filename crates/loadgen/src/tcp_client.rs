//! TCP client mode: the state machine the paper defers to future work.
//!
//! §V: "adding support for TCP would require implementing a TCP state
//! machine inside EtherLoadGen (which is a future work)". This module is
//! that extension: an iperf-style bulk-stream sender with a three-way
//! handshake, a fixed congestion window, cumulative ACK processing,
//! duplicate-ACK fast retransmit and RTO-based go-back-N recovery — enough
//! protocol to exercise a TCP sink on the simulated kernel stack,
//! including loss recovery when the NIC drops segments.

use std::collections::BTreeMap;

use simnet_net::tcp::{self, build_tcp_frame, flags, parse_tcp_frame, TcpHeader};
use simnet_net::{MacAddr, Packet};
use simnet_sim::stats::Counter;
use simnet_sim::tick::{us, Tick};

/// Connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Nothing sent yet.
    Closed,
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Handshake complete; streaming.
    Established,
}

/// TCP client-mode parameters and state.
#[derive(Debug, Clone)]
pub struct TcpClientConfig {
    /// Server (node under test) MAC.
    pub server_mac: MacAddr,
    /// Client MAC.
    pub client_mac: MacAddr,
    /// Payload bytes per segment (1448 fills a 1518 B frame).
    pub mss: usize,
    /// Fixed window, in segments (the "offered load" knob of a
    /// window-limited sender).
    pub window_segments: usize,
    /// Current retransmission timeout (adaptive: SRTT + 4·RTTVAR,
    /// Jacobson/Karels, clamped to `[RTO_MIN, RTO_MAX]`).
    pub rto: Tick,
    /// Smoothed RTT estimate (0 until the first sample).
    srtt: Tick,
    /// RTT variance estimate.
    rttvar: Tick,
    /// Congestion window in segments (Reno: slow start + AIMD). The
    /// effective send window is `min(cwnd, window_segments)`.
    cwnd: f64,
    /// Slow-start threshold in segments.
    ssthresh: f64,

    state: State,
    /// First unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Server's initial sequence number + 1 (what we acknowledge).
    rcv_nxt: u32,
    rto_deadline: Option<Tick>,
    dup_acks: u32,
    /// Send time per in-flight segment seq (cleared on retransmission —
    /// Karn's rule — so RTT samples never come from retransmits).
    send_times: BTreeMap<u32, Tick>,
    /// Cumulative payload bytes acknowledged.
    pub acked_bytes: Counter,
    /// Segments retransmitted.
    pub retransmissions: Counter,
    /// RTO expirations.
    pub timeouts: Counter,
}

/// Lower RTO clamp.
const RTO_MIN: Tick = us(400);
/// Upper RTO clamp.
const RTO_MAX: Tick = us(20_000);

const ISS: u32 = 1_000;
const SRC_IP: [u8; 4] = [10, 0, 0, 2];
const DST_IP: [u8; 4] = [10, 0, 0, 1];
const SRC_PORT: u16 = 40_001;
/// iperf's well-known control/data port.
pub const TCP_SERVER_PORT: u16 = 5_001;

impl TcpClientConfig {
    /// Creates a bulk-stream client with the given window (segments of
    /// `mss` payload bytes).
    pub fn new(
        server_mac: MacAddr,
        client_mac: MacAddr,
        window_segments: usize,
        mss: usize,
    ) -> Self {
        assert!(window_segments > 0, "window must be positive");
        assert!((1..=1448).contains(&mss), "mss must fit a standard frame");
        Self {
            server_mac,
            client_mac,
            mss,
            window_segments,
            rto: us(600), // initial guess; adapts after the first sample
            srtt: 0,
            rttvar: 0,
            cwnd: 2.0,
            ssthresh: f64::INFINITY,
            state: State::Closed,
            snd_una: ISS,
            snd_nxt: ISS,
            rcv_nxt: 0,
            rto_deadline: None,
            dup_acks: 0,
            send_times: BTreeMap::new(),
            acked_bytes: Counter::new(),
            retransmissions: Counter::new(),
            timeouts: Counter::new(),
        }
    }

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// Payload bytes in flight.
    pub fn bytes_in_flight(&self) -> u64 {
        self.snd_nxt.wrapping_sub(self.snd_una) as u64
    }

    /// The effective send window in bytes: the configured window capped
    /// by the congestion window.
    fn effective_window_bytes(&self) -> u64 {
        let segments = (self.cwnd.floor() as usize).clamp(1, self.window_segments);
        (segments * self.mss) as u64
    }

    /// Current congestion window, in segments.
    pub fn cwnd_segments(&self) -> f64 {
        self.cwnd
    }

    /// Goodput over a window, in Gbps of acknowledged payload.
    pub fn goodput_gbps(&self, window: Tick) -> f64 {
        if window == 0 {
            return 0.0;
        }
        self.acked_bytes.value() as f64 * 8.0 / (window as f64 / simnet_sim::tick::S as f64) / 1e9
    }

    /// When the client next wants to transmit, if ever.
    pub(crate) fn next_departure(&self, now: Tick) -> Option<Tick> {
        match self.state {
            State::Closed => Some(now),
            State::SynSent => self.rto_deadline.map(|d| d.max(now)),
            State::Established => {
                if self.bytes_in_flight() + self.mss as u64 <= self.effective_window_bytes() {
                    Some(now) // window open: send immediately
                } else {
                    self.rto_deadline.map(|d| d.max(now)) // wait for ACK or RTO
                }
            }
        }
    }

    /// Builds the next frame to transmit at `now`.
    pub(crate) fn build(&mut self, id: u64, now: Tick) -> Option<Packet> {
        match self.state {
            State::Closed => {
                self.state = State::SynSent;
                self.rto_deadline = Some(now + self.rto);
                let header = TcpHeader::new(SRC_PORT, TCP_SERVER_PORT, ISS, 0, flags::SYN, 0xFFFF);
                Some(self.frame(id, header, &[]))
            }
            State::SynSent => {
                // SYN retransmission on RTO.
                if self.rto_deadline.is_some_and(|d| now >= d) {
                    self.timeouts.inc();
                    self.retransmissions.inc();
                    self.rto_deadline = Some(now + self.rto);
                    let header =
                        TcpHeader::new(SRC_PORT, TCP_SERVER_PORT, ISS, 0, flags::SYN, 0xFFFF);
                    return Some(self.frame(id, header, &[]));
                }
                None
            }
            State::Established => {
                let rto_expired =
                    self.rto_deadline.is_some_and(|d| now >= d) && self.bytes_in_flight() > 0;
                let seq = if rto_expired {
                    // Go-back-N: resume from the first unacknowledged byte,
                    // with exponential RTO backoff (undone by new samples)
                    // and a collapse of the congestion window.
                    self.timeouts.inc();
                    self.retransmissions.inc();
                    self.send_times.clear(); // Karn: no samples from retransmits
                    self.rto = (self.rto * 2).min(RTO_MAX);
                    let flight_segments = (self.bytes_in_flight() / self.mss as u64).max(2) as f64;
                    self.ssthresh = (flight_segments / 2.0).max(2.0);
                    self.cwnd = 1.0;
                    self.snd_nxt = self.snd_una;
                    self.snd_una
                } else if self.bytes_in_flight() + self.mss as u64 <= self.effective_window_bytes()
                {
                    self.snd_nxt
                } else {
                    return None;
                };
                let payload = vec![0x55u8; self.mss];
                let header = TcpHeader::new(
                    SRC_PORT,
                    TCP_SERVER_PORT,
                    seq,
                    self.rcv_nxt,
                    flags::ACK | flags::PSH,
                    0xFFFF,
                );
                if !rto_expired {
                    self.send_times.insert(seq, now);
                }
                self.snd_nxt = seq.wrapping_add(self.mss as u32);
                self.rto_deadline = Some(now + self.rto);
                Some(self.frame(id, header, &payload))
            }
        }
    }

    /// Processes a frame from the server; returns an RTT sample if this
    /// ACK timed a (non-retransmitted) segment.
    pub(crate) fn on_rx(&mut self, now: Tick, packet: &Packet) -> Option<Tick> {
        let (_, header, _) = parse_tcp_frame(packet)?;
        match self.state {
            State::Closed => None,
            State::SynSent => {
                if header.has(flags::SYN | flags::ACK) && header.ack == ISS.wrapping_add(1) {
                    self.state = State::Established;
                    self.rcv_nxt = header.seq.wrapping_add(1);
                    self.snd_una = header.ack;
                    self.snd_nxt = header.ack;
                    self.rto_deadline = None;
                }
                None
            }
            State::Established => {
                if !header.has(flags::ACK) {
                    return None;
                }
                if tcp::seq_lt(self.snd_una, header.ack) {
                    let advanced = header.ack.wrapping_sub(self.snd_una);
                    self.acked_bytes.add(advanced as u64);
                    self.snd_una = header.ack;
                    self.dup_acks = 0;
                    // Reno growth: exponential in slow start, additive in
                    // congestion avoidance.
                    let acked_segments = (advanced as f64 / self.mss as f64).max(1.0);
                    if self.cwnd < self.ssthresh {
                        self.cwnd += acked_segments;
                    } else {
                        self.cwnd += acked_segments / self.cwnd.max(1.0);
                    }
                    self.cwnd = self.cwnd.min(self.window_segments as f64);
                    self.rto_deadline = if self.bytes_in_flight() > 0 {
                        Some(now + self.rto)
                    } else {
                        None
                    };
                    // RTT from the newest fully acknowledged timed segment.
                    let mut sample = None;
                    let acked: Vec<u32> = self
                        .send_times
                        .range(..)
                        .map(|(&s, _)| s)
                        .filter(|&s| tcp::seq_lt(s, header.ack))
                        .collect();
                    for seq in acked {
                        if let Some(sent) = self.send_times.remove(&seq) {
                            sample = Some(now.saturating_sub(sent));
                        }
                    }
                    if let Some(rtt) = sample {
                        self.update_rto(rtt);
                    }
                    sample
                } else if header.ack == self.snd_una && self.bytes_in_flight() > 0 {
                    self.dup_acks += 1;
                    if self.dup_acks == 3 {
                        // Fast retransmit + multiplicative decrease.
                        self.dup_acks = 0;
                        self.retransmissions.inc();
                        self.send_times.clear();
                        let flight_segments =
                            (self.bytes_in_flight() / self.mss as u64).max(2) as f64;
                        self.ssthresh = (flight_segments / 2.0).max(2.0);
                        self.cwnd = self.ssthresh;
                        self.snd_nxt = self.snd_una;
                        self.rto_deadline = Some(now); // send immediately
                    }
                    None
                } else {
                    None
                }
            }
        }
    }

    /// Jacobson/Karels RTO adaptation.
    fn update_rto(&mut self, rtt: Tick) {
        if self.srtt == 0 {
            self.srtt = rtt;
            self.rttvar = rtt / 2;
        } else {
            let err = self.srtt.abs_diff(rtt);
            self.rttvar = (3 * self.rttvar + err) / 4;
            self.srtt = (7 * self.srtt + rtt) / 8;
        }
        self.rto = (self.srtt + 4 * self.rttvar).clamp(RTO_MIN, RTO_MAX);
    }

    fn frame(&self, id: u64, header: TcpHeader, payload: &[u8]) -> Packet {
        build_tcp_frame(
            id,
            self.client_mac,
            self.server_mac,
            SRC_IP,
            DST_IP,
            header,
            payload,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(window: usize) -> TcpClientConfig {
        TcpClientConfig::new(MacAddr::simulated(1), MacAddr::simulated(2), window, 1448)
    }

    fn synack(client_cfg: &TcpClientConfig) -> Packet {
        let header = TcpHeader::new(
            TCP_SERVER_PORT,
            SRC_PORT,
            50_000,
            ISS + 1,
            flags::SYN | flags::ACK,
            0xFFFF,
        );
        build_tcp_frame(
            0,
            client_cfg.server_mac,
            client_cfg.client_mac,
            DST_IP,
            SRC_IP,
            header,
            &[],
        )
    }

    fn ack(client_cfg: &TcpClientConfig, ack_no: u32) -> Packet {
        let header = TcpHeader::new(
            TCP_SERVER_PORT,
            SRC_PORT,
            50_001,
            ack_no,
            flags::ACK,
            0xFFFF,
        );
        build_tcp_frame(
            0,
            client_cfg.server_mac,
            client_cfg.client_mac,
            DST_IP,
            SRC_IP,
            header,
            &[],
        )
    }

    #[test]
    fn slow_start_grows_cwnd_on_acks() {
        let mut c = client(64);
        c.build(0, 0);
        c.on_rx(1_000, &synack(&c));
        assert_eq!(c.cwnd_segments(), 2.0);
        c.build(1, 2_000);
        c.build(2, 2_001);
        let ack1 = (ISS + 1).wrapping_add(1448);
        c.on_rx(210_000, &ack(&c, ack1));
        assert!(c.cwnd_segments() >= 3.0, "exponential growth in slow start");
    }

    #[test]
    fn handshake_then_streams_within_window() {
        let mut c = client(2);
        // SYN departs immediately.
        let syn = c.build(0, 0).expect("SYN");
        let (_, h, _) = parse_tcp_frame(&syn).unwrap();
        assert!(h.has(flags::SYN));
        assert!(!c.is_established());

        c.on_rx(1_000, &synack(&c));
        assert!(c.is_established());

        // Window of 2 segments: two sends, then blocked.
        assert!(c.build(1, 2_000).is_some());
        assert!(c.build(2, 3_000).is_some());
        assert_eq!(c.bytes_in_flight(), 2 * 1448);
        assert!(c.build(3, 4_000).is_none(), "window closed");

        // Cumulative ACK of the first segment reopens one slot.
        let first_ack = (ISS + 1).wrapping_add(1448);
        let rtt = c.on_rx(300_000, &ack(&c, first_ack));
        assert_eq!(rtt, Some(298_000), "RTT measured from segment send");
        assert_eq!(c.acked_bytes.value(), 1448);
        assert!(c.next_departure(300_000) == Some(300_000));
        assert!(c.build(4, 300_000).is_some());
    }

    #[test]
    fn syn_retransmits_on_rto() {
        let mut c = client(1);
        c.build(0, 0).expect("SYN");
        assert!(c.build(1, 1_000).is_none(), "before RTO: wait");
        let deadline = c.next_departure(1_000).expect("RTO scheduled");
        let retx = c.build(2, deadline).expect("SYN retransmit");
        let (_, h, _) = parse_tcp_frame(&retx).unwrap();
        assert!(h.has(flags::SYN));
        assert_eq!(c.retransmissions.value(), 1);
        assert_eq!(c.timeouts.value(), 1);
    }

    #[test]
    fn rto_triggers_go_back_n() {
        let mut c = client(4);
        c.build(0, 0);
        c.on_rx(1_000, &synack(&c));
        // Slow start opens with cwnd = 2: only two segments may fly.
        assert!(c.build(1, 2_000).is_some());
        assert!(c.build(2, 2_001).is_some());
        assert!(c.build(3, 2_002).is_none(), "cwnd=2 blocks the third");
        let first_seq = ISS + 1;
        assert_eq!(c.bytes_in_flight(), 2 * 1448);
        // No ACKs arrive; the RTO fires, cwnd collapses to 1 and the
        // stream resends from snd_una.
        let deadline = c.next_departure(10_000).expect("RTO pending");
        let retx = c.build(9, deadline).expect("go-back-N resend");
        let (_, h, _) = parse_tcp_frame(&retx).unwrap();
        assert_eq!(h.seq, first_seq);
        assert!(c.timeouts.value() >= 1);
        assert!(c.cwnd_segments() <= 1.0, "multiplicative collapse on RTO");
    }

    #[test]
    fn triple_duplicate_ack_fast_retransmits() {
        let mut c = client(8);
        c.build(0, 0);
        c.on_rx(1_000, &synack(&c));
        for i in 0..4u64 {
            c.build(1 + i, 2_000);
        }
        let una = ISS + 1;
        for _ in 0..3 {
            c.on_rx(5_000, &ack(&c, una));
        }
        assert_eq!(c.retransmissions.value(), 1, "fast retransmit armed");
        let retx = c.build(9, 5_000).expect("resend hole");
        let (_, h, _) = parse_tcp_frame(&retx).unwrap();
        assert_eq!(h.seq, una);
    }

    #[test]
    fn retransmitted_segments_never_give_rtt_samples() {
        let mut c = client(1); // window of 1: the next send can only be a resend
        c.build(0, 0);
        c.on_rx(1_000, &synack(&c));
        c.build(1, 2_000);
        let deadline = c.next_departure(2_500).expect("RTO deadline");
        assert!(deadline > 2_500, "window closed; only the RTO remains");
        c.build(2, deadline); // RTO resend clears send_times (Karn)
        assert_eq!(c.timeouts.value(), 1);
        let first_ack = (ISS + 1).wrapping_add(1448);
        let rtt = c.on_rx(deadline + 1_000, &ack(&c, first_ack));
        assert_eq!(rtt, None, "Karn's rule");
        assert!(c.acked_bytes.value() > 0);
    }
}
