//! NIC configuration.

use simnet_net::MacAddr;

use crate::regs::NicCompatMode;

/// Parameters of the simulated i8254x-style NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicConfig {
    /// RX descriptor ring entries (Fig. 13 uses 4096). With multiple
    /// queues, *each* queue gets a ring of this many entries.
    pub rx_ring_size: usize,
    /// RX/TX queue pairs. 1 reproduces the single-ring i8254x exactly;
    /// 2..=8 enables RSS steering across per-queue rings and FIFO
    /// partitions (82574/82599-style multi-queue).
    pub num_queues: usize,
    /// TX descriptor ring entries.
    pub tx_ring_size: usize,
    /// On-chip RX FIFO capacity in bytes.
    pub rx_fifo_bytes: u64,
    /// On-chip TX FIFO capacity in bytes.
    pub tx_fifo_bytes: u64,
    /// Descriptor-cache capacity ("usually 32 to 64 descriptors",
    /// §III.A.3).
    pub desc_cache_size: usize,
    /// Descriptors fetched per replenish DMA.
    pub desc_refill_batch: usize,
    /// Initial RX descriptor writeback threshold — the parameter the paper
    /// adds so PMD operation doesn't degrade to whole-cache batches.
    pub wb_threshold: usize,
    /// The port's MAC address.
    pub mac: MacAddr,
    /// Baseline-gem5 vs extended register semantics.
    pub compat: NicCompatMode,
    /// Whether the PCI vendor ID reads back wrong (as on gem5, where
    /// "unmodified DPDK cannot fetch the correct vendor ID ... we suspect
    /// this is because some manufacturer-specific information is missing
    /// in the gem5 NIC model", §III.B). Defaults to `true` to match gem5;
    /// DPDK's EAL must then be configured to skip the vendor check.
    pub vendor_id_broken: bool,
}

impl NicConfig {
    /// The configuration used for the paper-style experiments.
    pub fn paper_default() -> Self {
        Self {
            rx_ring_size: 1024,
            num_queues: 1,
            tx_ring_size: 1024,
            rx_fifo_bytes: 192 << 10,
            tx_fifo_bytes: 96 << 10,
            desc_cache_size: 64,
            desc_refill_batch: 32,
            wb_threshold: 4,
            mac: MacAddr::simulated(1),
            compat: NicCompatMode::Extended,
            vendor_id_broken: true,
        }
    }

    /// Returns this configuration with a different RX ring size.
    pub fn with_rx_ring(mut self, entries: usize) -> Self {
        self.rx_ring_size = entries;
        self
    }

    /// Returns this configuration with a different RX/TX queue count.
    pub fn with_queues(mut self, queues: usize) -> Self {
        self.num_queues = queues;
        self
    }

    /// Returns this configuration with a different writeback threshold.
    pub fn with_wb_threshold(mut self, threshold: usize) -> Self {
        self.wb_threshold = threshold.max(1);
        self
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.rx_ring_size > 0 && self.tx_ring_size > 0,
            "rings must be non-empty"
        );
        assert!(
            self.rx_fifo_bytes > 0 && self.tx_fifo_bytes > 0,
            "FIFOs must be non-empty"
        );
        assert!(
            self.desc_cache_size > 0,
            "descriptor cache must be non-empty"
        );
        assert!(
            self.desc_refill_batch > 0 && self.desc_refill_batch <= self.desc_cache_size,
            "refill batch must fit the descriptor cache"
        );
        assert!(
            self.wb_threshold > 0,
            "writeback threshold must be positive"
        );
        assert!(
            (1..=8).contains(&self.num_queues),
            "queue count must be 1..=8"
        );
        assert!(
            self.num_queues * self.rx_ring_size <= 8192,
            "total RX descriptors must fit the global mbuf index space \
             below the stack mempools (8192 buffers)"
        );
        assert!(
            self.rx_fifo_bytes as usize >= self.num_queues
                && self.tx_fifo_bytes as usize >= self.num_queues,
            "per-queue FIFO partitions must be non-empty"
        );
    }
}

impl Default for NicConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NicConfig::default().validate();
    }

    #[test]
    fn builders_adjust_fields() {
        let cfg = NicConfig::paper_default()
            .with_rx_ring(4096)
            .with_wb_threshold(0);
        assert_eq!(cfg.rx_ring_size, 4096);
        assert_eq!(cfg.wb_threshold, 1); // floored
    }

    #[test]
    fn queue_builder_validates() {
        for n in 1..=8 {
            NicConfig::paper_default().with_queues(n).validate();
        }
    }

    #[test]
    #[should_panic(expected = "queue count")]
    fn queue_count_is_bounded() {
        NicConfig::paper_default().with_queues(9).validate();
    }

    #[test]
    #[should_panic(expected = "global mbuf index space")]
    fn total_descriptors_bounded_by_mbuf_space() {
        NicConfig::paper_default()
            .with_rx_ring(4096)
            .with_queues(4)
            .validate();
    }

    #[test]
    #[should_panic(expected = "refill batch")]
    fn refill_batch_must_fit_cache() {
        let mut cfg = NicConfig::paper_default();
        cfg.desc_refill_batch = cfg.desc_cache_size + 1;
        cfg.validate();
    }
}
