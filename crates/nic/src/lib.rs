//! The simulated NIC: an i8254x-style (Intel e1000-family) device model,
//! extended the way the paper extends gem5's (§III.A):
//!
//! * a **descriptor cache** whose writeback threshold is a user-visible
//!   parameter (§III.A.3 — without it, a polling-mode driver sees packets
//!   land in unrealistic 32–64 packet batches);
//! * an **interrupt mask register** with working read/write methods
//!   (§III.A.5 — present but unimplemented in baseline gem5, which keeps
//!   DPDK's PMD from launching);
//! * a PCI configuration space (from [`simnet_pci`]) with the
//!   interrupt-disable and byte-granular-access fixes;
//! * DMA through [`simnet_mem::MemorySystem`], so Direct Cache Access and
//!   I/O-bus saturation behave per §III.A.4 and Fig. 6.
//!
//! The packet life cycle matches Fig. 3: wire → RX FIFO → DMA → RX ring →
//! software poll → TX ring → DMA → TX FIFO → wire. The Fig. 4 finite-state
//! machine ([`drop_fsm::DropFsm`]) classifies every drop as a DmaDrop,
//! CoreDrop or TxDrop.

pub mod config;
pub mod drop_fsm;
pub mod fifo;
pub mod i8254x;
pub mod link;
pub mod regs;

pub use config::NicConfig;
pub use drop_fsm::{DropFsm, DropKind};
pub use fifo::ByteFifo;
pub use i8254x::{Nic, RxCompletion};
pub use link::EtherLink;
pub use regs::{NicCompatMode, RegisterFile};
