//! A point-to-point Ethernet link.

use simnet_sim::stats::Counter;
use simnet_sim::tick::{Bandwidth, Tick};

use simnet_net::ethernet::WIRE_OVERHEAD;

/// One direction of a full-duplex Ethernet link: serialization at the line
/// rate (including preamble + inter-frame gap) plus propagation latency.
///
/// ```
/// use simnet_nic::EtherLink;
/// use simnet_sim::tick::{Bandwidth, us};
/// let mut link = EtherLink::new(Bandwidth::gbps(100.0), us(100));
/// let arrival = link.transmit(0, 1518);
/// // (1518 + 20) bytes at 100 Gbps = 123.04 ns, plus 100 µs propagation.
/// assert_eq!(arrival, 123_040 + us(100));
/// ```
#[derive(Debug)]
pub struct EtherLink {
    bandwidth: Bandwidth,
    latency: Tick,
    busy_until: Tick,
    /// Frames transmitted.
    pub frames: Counter,
    /// Frame bytes transmitted (excluding wire overhead).
    pub bytes: Counter,
}

impl EtherLink {
    /// Creates a link with the given line rate and one-way propagation
    /// latency.
    pub fn new(bandwidth: Bandwidth, latency: Tick) -> Self {
        Self {
            bandwidth,
            latency,
            busy_until: 0,
            frames: Counter::new(),
            bytes: Counter::new(),
        }
    }

    /// The line rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> Tick {
        self.latency
    }

    /// Transmits a frame of `frame_len` bytes starting no earlier than
    /// `now`; returns its **arrival tick** at the far end. Back-to-back
    /// frames serialize behind each other.
    pub fn transmit(&mut self, now: Tick, frame_len: usize) -> Tick {
        let start = now.max(self.busy_until);
        let wire_bytes = frame_len as u64 + WIRE_OVERHEAD as u64;
        let done = start + self.bandwidth.bytes_to_ticks(wire_bytes);
        self.busy_until = done;
        self.frames.inc();
        self.bytes.add(frame_len as u64);
        done + self.latency
    }

    /// The earliest time a new frame could start serializing.
    pub fn next_free(&self) -> Tick {
        self.busy_until
    }

    /// Clears statistics (busy horizon persists).
    pub fn reset_stats(&mut self) {
        self.frames.reset();
        self.bytes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_sim::tick::{ns, us};

    #[test]
    fn serialization_includes_wire_overhead() {
        let mut link = EtherLink::new(Bandwidth::gbps(10.0), 0);
        // (64 + 20) bytes at 10 Gbps = 67.2 ns.
        assert_eq!(link.transmit(0, 64), 67_200);
    }

    #[test]
    fn propagation_latency_added() {
        let mut link = EtherLink::new(Bandwidth::gbps(10.0), us(100));
        let arrival = link.transmit(0, 64);
        assert_eq!(arrival, 67_200 + us(100));
    }

    #[test]
    fn frames_serialize_back_to_back() {
        let mut link = EtherLink::new(Bandwidth::gbps(10.0), 0);
        let a = link.transmit(0, 64);
        let b = link.transmit(0, 64);
        assert_eq!(b - a, ns(67) + 200);
        assert_eq!(link.frames.value(), 2);
        assert_eq!(link.bytes.value(), 128);
    }

    #[test]
    fn line_rate_caps_throughput() {
        let mut link = EtherLink::new(Bandwidth::gbps(100.0), 0);
        let n = 1000u64;
        let mut last = 0;
        for _ in 0..n {
            last = link.transmit(0, 1518);
        }
        let gbps = Bandwidth::measured_gbps(1518 * n, last);
        assert!(gbps < 100.0);
        assert!(gbps > 95.0, "goodput {gbps}");
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut link = EtherLink::new(Bandwidth::gbps(10.0), 0);
        link.transmit(0, 64);
        let arrival = link.transmit(us(10), 64);
        assert_eq!(arrival, us(10) + 67_200);
    }
}
