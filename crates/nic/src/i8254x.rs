//! The NIC device: Fig. 3's packet life cycle as a timed state machine.
//!
//! The device is passive: an enclosing node (see `simnet-harness`)
//! delivers wire packets, kicks the DMA engines when their pipelined
//! completions fire, and polls/submits on behalf of software. Every method
//! takes `now` and returns the ticks at which things finish, so the node's
//! event queue carries the schedule.

use std::collections::VecDeque;

use simnet_mem::system::DmaTiming;
use simnet_mem::{layout, MemorySystem};
use simnet_net::{MacAddr, Packet};
use simnet_pci::{CompatMode, ConfigSpace};
use simnet_sim::fault::{FaultInjector, FaultKind};
use simnet_sim::stats::Counter;
use simnet_sim::trace::{Component, Stage, Tracer, NO_PACKET};
use simnet_sim::Tick;

use crate::config::NicConfig;
use crate::drop_fsm::{BufferState, DropFsm, DropKind};
use crate::fifo::ByteFifo;
use crate::regs::{irq, NicCompatMode, RegisterFile};

/// Intel's vendor id (the e1000 PMD matches on this).
pub const VENDOR_INTEL: u16 = 0x8086;
/// The 82540EM device id modeled by gem5's i8254xGBe.
pub const DEVICE_82540EM: u16 = 0x100e;

/// A received packet exposed to software after descriptor writeback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxCompletion {
    /// When the descriptor writeback made this packet visible.
    pub visible_at: Tick,
    /// The packet data (now resident in the mbuf).
    pub packet: Packet,
    /// RX ring slot / mbuf index holding the data.
    pub slot: usize,
}

/// A TX request: the packet and the mbuf index its bytes live in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRequest {
    /// The frame to transmit.
    pub packet: Packet,
    /// The mbuf index the NIC must DMA-read the payload from.
    pub mbuf: usize,
}

/// NIC-level counters.
#[derive(Debug, Default)]
pub struct NicStats {
    /// Frames accepted from the wire.
    pub rx_frames: Counter,
    /// Bytes accepted from the wire.
    pub rx_bytes: Counter,
    /// Frames handed to the wire.
    pub tx_frames: Counter,
    /// Bytes handed to the wire.
    pub tx_bytes: Counter,
    /// Descriptor writeback DMA transactions.
    pub desc_writebacks: Counter,
    /// Descriptor-cache replenish DMA transactions.
    pub desc_refills: Counter,
    /// RX engine went idle because the FIFO was empty.
    pub rx_idle_fifo_empty: Counter,
    /// RX engine went idle because no descriptors were available.
    pub rx_idle_no_desc: Counter,
}

/// The simulated NIC.
pub struct Nic {
    cfg: NicConfig,
    regs: RegisterFile,
    pci: ConfigSpace,
    fsm: DropFsm,
    stats: NicStats,
    tracer: Tracer,
    faults: FaultInjector,

    // --- RX path ---
    rx_fifo: ByteFifo<Packet>,
    /// Descriptors posted by software, not yet prefetched into the cache.
    rx_avail: usize,
    /// Prefetched descriptors, immediately usable by the DMA engine.
    desc_cache: usize,
    /// Next ring slot the DMA engine will fill.
    rx_next_slot: usize,
    /// In-flight packet DMA: (pipeline-ready tick, data-complete tick, slot).
    rx_inflight: Option<(Tick, Tick, usize)>,
    /// Completed packets awaiting descriptor writeback: (complete, packet, slot).
    rx_pending_wb: Vec<(Tick, Packet, usize)>,
    /// Written-back packets visible to software.
    rx_visible: VecDeque<RxCompletion>,

    // --- TX path ---
    tx_queue: VecDeque<TxRequest>,
    tx_inflight: Option<Tick>,
    /// Occupied TX ring slots (freed on TX descriptor writeback).
    tx_occupancy: usize,
    /// Pending occupancy releases: (tick, count).
    tx_releases: VecDeque<(Tick, usize)>,
    /// Deferred RX descriptor posts: (tick, count).
    rx_posts: VecDeque<(Tick, usize)>,
    /// TX completions not yet written back.
    tx_pending_wb: usize,
    tx_next_slot: usize,
    /// Packets whose payload DMA finished, waiting for the wire.
    tx_fifo: ByteFifo<Packet>,
    /// Wire-ready ticks for the packets in `tx_fifo`, in order.
    tx_wire_ready: VecDeque<Tick>,
}

impl Nic {
    /// Creates a NIC.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    pub fn new(cfg: NicConfig) -> Self {
        cfg.validate();
        let pci_mode = match cfg.compat {
            NicCompatMode::Baseline => CompatMode::Baseline,
            NicCompatMode::Extended => CompatMode::Extended,
        };
        let mut regs = RegisterFile::new(cfg.compat);
        let _ = regs.write(crate::regs::offsets::WBTHRESH, cfg.wb_threshold as u32);
        let _ = regs.write(crate::regs::offsets::RDLEN, cfg.rx_ring_size as u32);
        let _ = regs.write(crate::regs::offsets::TDLEN, cfg.tx_ring_size as u32);
        let vendor = if cfg.vendor_id_broken {
            0x0000
        } else {
            VENDOR_INTEL
        };
        Self {
            regs,
            pci: ConfigSpace::new(vendor, DEVICE_82540EM, pci_mode),
            fsm: DropFsm::new(),
            stats: NicStats::default(),
            tracer: Tracer::disabled(),
            faults: FaultInjector::disabled(),
            rx_fifo: ByteFifo::new(cfg.rx_fifo_bytes),
            rx_avail: 0,
            desc_cache: 0,
            rx_next_slot: 0,
            rx_inflight: None,
            rx_pending_wb: Vec::new(),
            rx_visible: VecDeque::new(),
            tx_queue: VecDeque::new(),
            tx_inflight: None,
            tx_occupancy: 0,
            tx_releases: VecDeque::new(),
            rx_posts: VecDeque::new(),
            tx_pending_wb: 0,
            tx_next_slot: 0,
            tx_fifo: ByteFifo::new(cfg.tx_fifo_bytes),
            tx_wire_ready: VecDeque::new(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// The port's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.cfg.mac
    }

    /// The register file (MMIO).
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// The PCI configuration space.
    pub fn pci_config_mut(&mut self) -> &mut ConfigSpace {
        &mut self.pci
    }

    /// Read-only PCI configuration space.
    pub fn pci_config(&self) -> &ConfigSpace {
        &self.pci
    }

    /// The drop-classification FSM and its counters.
    pub fn drop_fsm(&self) -> &DropFsm {
        &self.fsm
    }

    /// Attaches a packet-lifecycle tracer (see `simnet_sim::trace`),
    /// shared with the device's PCI config space.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.pci.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches a fault injector (see `simnet_sim::fault`), shared with
    /// the device's PCI config space.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.pci.set_fault_injector(faults.clone());
        self.faults = faults;
    }

    /// Diagnostic: RX FIFO bytes currently used.
    pub fn rx_fifo_used(&self) -> u64 {
        self.rx_fifo.used()
    }

    /// Diagnostic: RX FIFO capacity in bytes.
    pub fn rx_fifo_capacity(&self) -> u64 {
        self.rx_fifo.capacity()
    }

    /// Diagnostic: occupied TX ring slots (as last settled).
    pub fn tx_ring_used(&self) -> usize {
        self.tx_occupancy
    }

    /// Device counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Clears statistics (post-warm-up).
    pub fn reset_stats(&mut self) {
        self.fsm.reset_stats();
        self.stats = NicStats::default();
    }

    /// Registers the `system.nic.*` statistics section (device counters
    /// plus the Fig. 4 drop-classification counters).
    pub fn register_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        let s = &self.stats;
        let fsm = &self.fsm;
        reg.scoped("system.nic", |reg| {
            reg.scalar(
                "rxPackets",
                s.rx_frames.value(),
                "frames accepted from the wire",
            );
            reg.scalar(
                "rxBytes",
                s.rx_bytes.value(),
                "bytes accepted from the wire",
            );
            reg.scalar(
                "txPackets",
                s.tx_frames.value(),
                "frames handed to the wire",
            );
            reg.scalar("txBytes", s.tx_bytes.value(), "bytes handed to the wire");
            reg.scalar(
                "descWritebacks",
                s.desc_writebacks.value(),
                "descriptor writeback DMAs",
            );
            reg.scalar(
                "descRefills",
                s.desc_refills.value(),
                "descriptor cache refills",
            );
            reg.scalar(
                "dmaDrops",
                fsm.dma_drops.value(),
                "drops: DMA engine behind (Fig. 4)",
            );
            reg.scalar(
                "coreDrops",
                fsm.core_drops.value(),
                "drops: core behind (Fig. 4)",
            );
            reg.scalar(
                "txDrops",
                fsm.tx_drops.value(),
                "drops: TX backpressure (Fig. 4)",
            );
            reg.float("dropRate", fsm.drop_rate(), "dropped / observed");
            if reg.full() {
                reg.scalar(
                    "rxIdleFifoEmpty",
                    s.rx_idle_fifo_empty.value(),
                    "RX engine idle: FIFO empty",
                );
                reg.scalar(
                    "rxIdleNoDesc",
                    s.rx_idle_no_desc.value(),
                    "RX engine idle: no descriptors",
                );
                reg.scalar(
                    "rx_fifo_occupancy",
                    self.rx_fifo.used(),
                    "RX FIFO bytes in use at dump time",
                );
                reg.scalar(
                    "rx_fifo_peak",
                    self.rx_fifo.high_watermark(),
                    "highest RX FIFO byte occupancy observed",
                );
            }
        });
    }

    /// Registers `system.nic.faultDrops` — kept out of
    /// [`Nic::register_stats`] because the legacy dump places it inside
    /// the conditional fault section.
    pub fn register_fault_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        reg.scalar(
            "system.nic.faultDrops",
            self.fsm.fault_drops.value(),
            "drops caused by injected faults",
        );
    }

    fn settle(&mut self, now: Tick) {
        while let Some(&(t, n)) = self.tx_releases.front() {
            if t <= now {
                self.tx_occupancy = self.tx_occupancy.saturating_sub(n);
                self.tx_releases.pop_front();
            } else {
                break;
            }
        }
        while let Some(&(t, n)) = self.rx_posts.front() {
            if t <= now {
                self.rx_avail = (self.rx_avail + n).min(self.cfg.rx_ring_size);
                self.rx_posts.pop_front();
            } else {
                break;
            }
        }
    }

    fn buffer_state(&self, incoming_len: u64) -> BufferState {
        // The ring counts as full when the free descriptors (posted tail
        // space plus the NIC's cached ones) fall below one replenish
        // batch — the RXDMT0-style low-threshold condition. Software owns
        // everything else (used descriptors awaiting poll), which is
        // exactly the "core is behind" state of §VII.A.
        let free = self.rx_avail + self.desc_cache;
        BufferState {
            rx_fifo_full: !self.rx_fifo.fits(incoming_len),
            rx_ring_full: free <= self.cfg.desc_refill_batch,
            tx_ring_full: self.tx_occupancy >= self.cfg.tx_ring_size,
        }
    }

    // ------------------------------------------------------------------
    // RX path
    // ------------------------------------------------------------------

    /// A frame arrives from the wire at `now`. Returns `Some(kind)` if it
    /// was dropped (RX FIFO overrun), classified per Fig. 4.
    pub fn wire_rx(&mut self, now: Tick, packet: Packet) -> Option<DropKind> {
        self.settle(now);
        let len = packet.len() as u64;
        // Injected link bit error: the frame fails its FCS check at the
        // MAC and is discarded before it can touch any buffer.
        if self.faults.link_bit_error(len * 8) {
            let kind = self.fsm.on_fault_drop();
            self.tracer.emit(
                now,
                packet.id(),
                Component::Nic,
                Stage::Fault {
                    kind: FaultKind::LinkBitError,
                    ticks: 0,
                },
            );
            self.tracer.emit(
                now,
                packet.id(),
                Component::Nic,
                Stage::Drop {
                    class: kind.trace_class(),
                    fifo_used: self.rx_fifo.used(),
                    ring_free: (self.rx_avail + self.desc_cache) as u32,
                    tx_used: self.tx_occupancy as u32,
                },
            );
            return Some(kind);
        }
        let mut observed = self.buffer_state(len);
        // Injected stuck-full window: the FIFO refuses the frame whatever
        // its real occupancy; the Fig. 4 FSM classifies as usual.
        if self.faults.fifo_stuck(now) {
            observed.rx_fifo_full = true;
            self.tracer.emit(
                now,
                packet.id(),
                Component::Nic,
                Stage::Fault {
                    kind: FaultKind::FifoStuck,
                    ticks: 0,
                },
            );
        }
        let verdict = self.fsm.on_packet_rx(observed);
        if verdict.is_some() {
            if std::env::var_os("SIMNET_TRACE_DROP").is_some() {
                eprintln!(
                    "drop t={now} kind={verdict:?} avail={} cache={} pending={} visible={} inflight={}",
                    self.rx_avail,
                    self.desc_cache,
                    self.rx_pending_wb.len(),
                    self.rx_visible.len(),
                    self.rx_inflight.map(|(r, _, _)| r as i64 - now as i64).unwrap_or(-1)
                );
            }
            self.regs.raise_cause(irq::RXO);
            if let Some(kind) = verdict {
                self.tracer.emit(
                    now,
                    packet.id(),
                    Component::Nic,
                    Stage::Drop {
                        class: kind.trace_class(),
                        fifo_used: self.rx_fifo.used(),
                        ring_free: (self.rx_avail + self.desc_cache) as u32,
                        tx_used: self.tx_occupancy as u32,
                    },
                );
            }
            return verdict;
        }
        self.stats.rx_frames.inc();
        self.stats.rx_bytes.add(len);
        let packet_id = packet.id();
        self.rx_fifo
            .push(len, packet)
            .unwrap_or_else(|_| unreachable!("FSM verified the FIFO fits"));
        self.tracer.emit(
            now,
            packet_id,
            Component::Nic,
            Stage::FifoEnqueue {
                fifo_used: self.rx_fifo.used(),
            },
        );
        None
    }

    /// Whether the RX DMA engine is idle but has work at `now` (the node
    /// should schedule an [`Nic::rx_dma_advance`]).
    pub fn rx_dma_needs_kick(&mut self, now: Tick) -> bool {
        self.settle(now);
        self.rx_inflight.is_none()
            && !self.rx_fifo.is_empty()
            && (self.desc_cache > 0 || self.rx_avail > 0)
    }

    /// Starts DMA for the packet at the FIFO head, if the engine is idle
    /// and a descriptor is available. Returns the tick at which the engine
    /// pipeline can accept the next packet (schedule
    /// [`Nic::rx_dma_advance`] there).
    pub fn rx_dma_start(&mut self, now: Tick, mem: &mut MemorySystem) -> Option<Tick> {
        if self.rx_inflight.is_some() {
            return None;
        }
        let Some((len, head)) = self.rx_fifo.peek() else {
            self.stats.rx_idle_fifo_empty.inc();
            return None;
        };
        let head_id = head.id();

        self.settle(now);
        // A transiently cleared bus-master enable blocks new DMA; the
        // node schedules a retry at the end of the fault window.
        if self.faults.master_cleared(now) {
            self.tracer.emit(
                now,
                NO_PACKET,
                Component::Pci,
                Stage::Fault {
                    kind: FaultKind::PciMasterClear,
                    ticks: 0,
                },
            );
            return None;
        }
        let mut t = now;
        // Replenish the descriptor cache if needed (and possible).
        if self.desc_cache == 0 {
            if self.rx_avail == 0 {
                self.stats.rx_idle_no_desc.inc();
                return None; // RX ring empty: engine stalls until post
            }
            let n = self.cfg.desc_refill_batch.min(self.rx_avail);
            let addr = layout::rx_desc_addr(self.rx_next_slot, self.cfg.rx_ring_size);
            let timing = mem.dma_read_control(t, addr, n as u64 * layout::DESC_SIZE);
            if std::env::var_os("SIMNET_TRACE_REFILL").is_some() && timing.complete > t + 500_000 {
                eprintln!(
                    "refill slow t={t} data_ready={} complete={} n={n}",
                    timing.next_issue, timing.complete
                );
            }
            t = timing.complete;
            self.desc_cache += n;
            self.rx_avail -= n;
            self.stats.desc_refills.inc();
        }

        self.desc_cache -= 1;
        let slot = self.rx_next_slot;
        self.rx_next_slot = (self.rx_next_slot + 1) % self.cfg.rx_ring_size;
        let timing: DmaTiming = mem.dma_write_timed(t, layout::mbuf_addr(slot), len);
        self.tracer.emit(
            t,
            head_id,
            Component::Nic,
            Stage::DmaStart {
                slot: slot as u32,
                dca: mem.config().dca_enabled,
            },
        );
        self.rx_inflight = Some((timing.next_issue, timing.complete, slot));
        Some(timing.next_issue)
    }

    /// Advances the RX engine at a pipeline-ready tick: retires the
    /// in-flight packet (moving it toward descriptor writeback) and starts
    /// the next one. Returns the next advance tick, if any.
    pub fn rx_dma_advance(&mut self, now: Tick, mem: &mut MemorySystem) -> Option<Tick> {
        if let Some((ready, complete, slot)) = self.rx_inflight {
            if ready > now {
                return Some(ready);
            }
            self.rx_inflight = None;
            let (_, packet) = self.rx_fifo.pop().expect("in-flight packet is FIFO head");
            self.rx_pending_wb.push((complete, packet, slot));
            let threshold = self.regs.writeback_threshold();
            if self.rx_pending_wb.len() >= threshold {
                self.flush_rx_writeback(now, mem);
            }
        }
        let next = self.rx_dma_start(now, mem);
        if next.is_none() && !self.rx_pending_wb.is_empty() {
            // Engine going idle: flush the sub-threshold remainder so the
            // last packets of a burst become visible (RDTR timer ~ 0).
            self.flush_rx_writeback(now, mem);
        }
        next
    }

    fn flush_rx_writeback(&mut self, now: Tick, mem: &mut MemorySystem) {
        if self.rx_pending_wb.is_empty() {
            return;
        }
        let count = self.rx_pending_wb.len();
        let first_slot = self.rx_pending_wb[0].2;
        let addr = layout::rx_desc_addr(first_slot, self.cfg.rx_ring_size);
        let data_done = self
            .rx_pending_wb
            .iter()
            .map(|&(t, _, _)| t)
            .max()
            .expect("non-empty");
        let timing =
            mem.dma_write_control(now.max(data_done), addr, count as u64 * layout::DESC_SIZE);
        // Injected writeback delay: the whole batch lands late (one roll
        // per writeback transaction).
        let delay = self.faults.wb_delay();
        let visible_at = timing.complete + delay;
        if delay > 0 {
            self.tracer.emit(
                timing.complete,
                NO_PACKET,
                Component::Nic,
                Stage::Fault {
                    kind: FaultKind::WbDelay,
                    ticks: delay,
                },
            );
        }
        for (_, packet, slot) in std::mem::take(&mut self.rx_pending_wb) {
            // Injected writeback corruption: the descriptor's status bits
            // are garbage, software never sees the frame, and the mbuf
            // leaks until the ring wraps — a classified fault drop.
            if self.faults.wb_corrupt() {
                let kind = self.fsm.on_fault_drop();
                self.tracer.emit(
                    visible_at,
                    packet.id(),
                    Component::Nic,
                    Stage::Fault {
                        kind: FaultKind::WbCorrupt,
                        ticks: 0,
                    },
                );
                self.tracer.emit(
                    visible_at,
                    packet.id(),
                    Component::Nic,
                    Stage::Drop {
                        class: kind.trace_class(),
                        fifo_used: self.rx_fifo.used(),
                        ring_free: (self.rx_avail + self.desc_cache) as u32,
                        tx_used: self.tx_occupancy as u32,
                    },
                );
                continue;
            }
            self.tracer.emit(
                visible_at,
                packet.id(),
                Component::Nic,
                Stage::RingPublish { slot: slot as u32 },
            );
            self.rx_visible.push_back(RxCompletion {
                visible_at,
                packet,
                slot,
            });
        }
        self.stats.desc_writebacks.inc();
        self.regs.raise_cause(irq::RXT0);
    }

    /// Software posts `count` RX descriptors (tail bump after freeing
    /// mbufs), effective immediately. Returns whether the RX engine was
    /// stalled and should be kicked.
    pub fn rx_ring_post(&mut self, count: usize) -> bool {
        let was_stalled = self.desc_cache == 0 && self.rx_avail == 0;
        self.rx_avail = (self.rx_avail + count).min(self.cfg.rx_ring_size);
        was_stalled && !self.rx_fifo.is_empty()
    }

    /// Software posts `count` RX descriptors effective at tick `at` — the
    /// stack calls this with the tick its loop iteration *finishes*, so
    /// the tail bump lands when the store actually retires, not when the
    /// iteration was scheduled.
    pub fn rx_ring_post_at(&mut self, at: Tick, count: usize) {
        if count > 0 {
            self.rx_posts.push_back((at, count));
        }
    }

    /// Diagnostic: descriptors currently available to the DMA engine.
    pub fn rx_descriptors_available(&self) -> usize {
        self.rx_avail + self.desc_cache
    }

    /// Diagnostic: packets written back and awaiting software poll.
    pub fn rx_visible_len(&self) -> usize {
        self.rx_visible.len()
    }

    /// Tick at which the oldest written-back packet became (or becomes)
    /// visible to software, if any — lets an idle poll loop sleep until
    /// there is work instead of simulating every empty spin.
    pub fn rx_next_visible_at(&self) -> Option<Tick> {
        self.rx_visible.front().map(|c| c.visible_at)
    }

    /// Number of packets visible to a poll at `now`.
    pub fn rx_visible_count(&self, now: Tick) -> usize {
        self.rx_visible
            .iter()
            .take_while(|c| c.visible_at <= now)
            .count()
    }

    /// Polls up to `max` received packets visible at `now` (the PMD's
    /// `rx_burst` device side).
    pub fn rx_poll(&mut self, now: Tick, max: usize) -> Vec<RxCompletion> {
        let mut out = Vec::new();
        self.rx_poll_into(now, max, &mut out);
        out
    }

    /// [`Nic::rx_poll`] into a caller-owned buffer: appends up to
    /// `max - out.len()` completions, reusing the caller's allocation —
    /// the form the stacks' steady-state loops use, so a descriptor
    /// drain costs no host allocation per poll.
    pub fn rx_poll_into(&mut self, now: Tick, max: usize, out: &mut Vec<RxCompletion>) {
        while out.len() < max {
            match self.rx_visible.front() {
                Some(c) if c.visible_at <= now => {
                    out.push(self.rx_visible.pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // TX path
    // ------------------------------------------------------------------

    /// Free TX ring slots at `now`.
    pub fn tx_free_slots(&mut self, now: Tick) -> usize {
        self.settle(now);
        self.cfg.tx_ring_size - self.tx_occupancy
    }

    /// Software submits TX requests (tail bump). Requests beyond the free
    /// ring slots are returned (the caller must retry — this is the
    /// backpressure that produces TxDrops). Returns `(accepted, rejected)`.
    pub fn tx_submit(&mut self, now: Tick, requests: Vec<TxRequest>) -> (usize, Vec<TxRequest>) {
        self.settle(now);
        let free = self.cfg.tx_ring_size - self.tx_occupancy;
        let take = free.min(requests.len());
        let mut rejected = requests;
        let accepted: Vec<TxRequest> = rejected.drain(..take).collect();
        self.tx_occupancy += accepted.len();
        for req in &accepted {
            self.tracer
                .emit(now, req.packet.id(), Component::Nic, Stage::TxQueue);
        }
        self.tx_queue.extend(accepted);
        (take, rejected)
    }

    /// Whether the TX DMA engine is idle but has work.
    pub fn tx_dma_needs_kick(&self) -> bool {
        self.tx_inflight.is_none() && !self.tx_queue.is_empty()
    }

    /// Advances the TX engine: fetches the next queued packet's descriptor
    /// and payload from memory, parking the frame in the TX FIFO. Returns
    /// the pipeline-ready tick at which to call this again, or `None` when
    /// the engine idles (empty queue or full FIFO).
    ///
    /// Frames become wire-ready at their payload-completion ticks; drain
    /// them with [`Nic::tx_take_wire_packet`].
    pub fn tx_dma_advance(&mut self, now: Tick, mem: &mut MemorySystem) -> Option<Tick> {
        if let Some(ready) = self.tx_inflight {
            if ready > now {
                return Some(ready);
            }
            self.tx_inflight = None;
        }

        let head_len = self.tx_queue.front().map(|r| r.packet.len() as u64)?;
        if !self.tx_fifo.fits(head_len) {
            // Wire is behind; the node re-kicks after draining the FIFO.
            return None;
        }
        if self.faults.master_cleared(now) {
            self.tracer.emit(
                now,
                NO_PACKET,
                Component::Pci,
                Stage::Fault {
                    kind: FaultKind::PciMasterClear,
                    ticks: 0,
                },
            );
            return None;
        }
        let req = self.tx_queue.pop_front().expect("head exists");

        // Fetch the TX descriptor, then the payload.
        let slot = self.tx_next_slot;
        self.tx_next_slot = (self.tx_next_slot + 1) % self.cfg.tx_ring_size;
        let desc = mem.dma_read_control(
            now,
            layout::tx_desc_addr(slot, self.cfg.tx_ring_size),
            layout::DESC_SIZE,
        );
        let payload = mem.dma_read_timed(desc.next_issue, layout::mbuf_addr(req.mbuf), head_len);

        self.tracer.emit(
            payload.complete,
            req.packet.id(),
            Component::Nic,
            Stage::TxFifo,
        );
        self.tx_fifo
            .push(head_len, req.packet)
            .unwrap_or_else(|_| unreachable!("fits checked above"));
        self.tx_wire_ready.push_back(payload.complete);

        // TX descriptor writeback, batched like RX; ring slots free when
        // the writeback lands.
        self.tx_pending_wb += 1;
        let threshold = self.regs.writeback_threshold();
        if self.tx_pending_wb >= threshold || self.tx_queue.is_empty() {
            let n = self.tx_pending_wb;
            let wb = mem.dma_write_control(
                payload.complete,
                layout::tx_desc_addr(slot, self.cfg.tx_ring_size),
                n as u64 * layout::DESC_SIZE,
            );
            self.tx_releases.push_back((wb.complete, n));
            self.tx_pending_wb = 0;
            self.stats.desc_writebacks.inc();
            self.regs.raise_cause(irq::TXDW);
        }

        self.tx_inflight = Some(payload.next_issue);
        Some(payload.next_issue)
    }

    /// Takes the next packet ready for the wire at or before `now`.
    /// The node serializes it on the link and calls
    /// `tx_take_wire_packet` when the wire accepts it.
    pub fn tx_take_wire_packet(&mut self, now: Tick) -> Option<(Tick, Packet)> {
        let &ready = self.tx_wire_ready.front()?;
        if ready > now {
            return None;
        }
        self.tx_wire_ready.pop_front();
        let (len, packet) = self.tx_fifo.pop()?;
        self.stats.tx_frames.inc();
        self.stats.tx_bytes.add(len);
        self.tracer
            .emit(ready, packet.id(), Component::Nic, Stage::TxWire);
        Some((ready, packet))
    }

    /// Earliest tick at which a TX packet becomes wire-ready.
    pub fn tx_next_wire_ready(&self) -> Option<Tick> {
        self.tx_wire_ready.front().copied()
    }
}

impl std::fmt::Debug for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic")
            .field("mac", &self.cfg.mac)
            .field("rx_fifo_used", &self.rx_fifo.used())
            .field("rx_avail", &self.rx_avail)
            .field("desc_cache", &self.desc_cache)
            .field("tx_occupancy", &self.tx_occupancy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_mem::MemoryConfig;
    use simnet_net::PacketBuilder;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig::table1_gem5())
    }

    fn nic() -> Nic {
        Nic::new(NicConfig::paper_default())
    }

    fn packet(id: u64, len: usize) -> Packet {
        PacketBuilder::new()
            .dst(MacAddr::simulated(1))
            .src(MacAddr::simulated(99))
            .frame_len(len)
            .build(id)
    }

    /// Drives the RX engine until idle, like the node's event loop.
    fn pump_rx(nic: &mut Nic, mut now: Tick, mem: &mut MemorySystem) -> Tick {
        if let Some(t) = nic.rx_dma_start(now, mem) {
            now = t;
        }
        while let Some(t) = nic.rx_dma_advance(now, mem) {
            now = t.max(now + 1);
        }
        now
    }

    #[test]
    fn rx_packet_becomes_visible_after_dma_and_writeback() {
        let mut m = mem();
        let mut n = nic();
        n.rx_ring_post(1024);
        assert!(n.wire_rx(0, packet(1, 256)).is_none());
        assert!(n.rx_dma_needs_kick(0));
        let end = pump_rx(&mut n, 0, &mut m);
        let got = n.rx_poll(end + 1_000_000, 32);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].packet.id(), 1);
        assert!(got[0].visible_at > 0, "DMA + writeback take time");
    }

    #[test]
    fn packets_invisible_before_writeback_tick() {
        let mut m = mem();
        let mut n = nic();
        n.rx_ring_post(1024);
        n.wire_rx(0, packet(1, 256));
        pump_rx(&mut n, 0, &mut m);
        assert_eq!(n.rx_visible_count(0), 0);
        assert_eq!(n.rx_poll(0, 32), vec![]);
    }

    #[test]
    fn no_descriptors_means_no_dma() {
        let mut m = mem();
        let mut n = nic();
        // No rx_ring_post: ring is empty.
        n.wire_rx(0, packet(1, 64));
        assert!(!n.rx_dma_needs_kick(0));
        assert_eq!(n.rx_dma_start(0, &mut m), None);
        // Posting descriptors reports the stall so the node can kick.
        assert!(n.rx_ring_post(64));
    }

    #[test]
    fn fifo_overrun_drops_are_classified_dma_when_ring_has_room() {
        let mut n = nic();
        n.rx_ring_post(1024);
        // Fill the FIFO without ever running the DMA engine.
        let fifo_cap = n.config().rx_fifo_bytes;
        let mut sent = 0u64;
        let mut dropped = None;
        let mut id = 0;
        while dropped.is_none() {
            id += 1;
            dropped = n.wire_rx(0, packet(id, 1518));
            sent += 1;
            assert!(sent < 1_000, "must eventually drop");
        }
        assert_eq!(dropped, Some(DropKind::Dma));
        assert!(sent > fifo_cap / 1518);
        assert_eq!(n.drop_fsm().dma_drops.value(), 1);
    }

    #[test]
    fn fifo_overrun_with_empty_ring_is_core_drop() {
        let mut n = nic();
        // Ring never posted: rx_ring_full. Fill the FIFO.
        let mut dropped = None;
        let mut id = 0;
        while dropped.is_none() {
            id += 1;
            dropped = n.wire_rx(0, packet(id, 1518));
        }
        assert_eq!(dropped, Some(DropKind::Core));
    }

    #[test]
    fn writeback_threshold_batches_visibility() {
        let mut m = mem();
        let mut n = Nic::new(NicConfig::paper_default().with_wb_threshold(8));
        n.rx_ring_post(1024);
        for i in 0..8 {
            n.wire_rx(0, packet(i, 64));
        }
        pump_rx(&mut n, 0, &mut m);
        let got = n.rx_poll(simnet_sim::tick::ms(1), 32);
        assert_eq!(got.len(), 8);
        // All eight became visible at the same writeback tick.
        let t0 = got[0].visible_at;
        assert!(got.iter().all(|c| c.visible_at == t0));
        assert_eq!(n.stats().desc_writebacks.value(), 1);
    }

    #[test]
    fn small_threshold_writes_back_incrementally() {
        let mut m = mem();
        let mut n = Nic::new(NicConfig::paper_default().with_wb_threshold(1));
        n.rx_ring_post(1024);
        for i in 0..4 {
            n.wire_rx(0, packet(i, 64));
        }
        pump_rx(&mut n, 0, &mut m);
        assert!(n.stats().desc_writebacks.value() >= 4);
    }

    #[test]
    fn tx_round_trip_produces_wire_packet() {
        let mut m = mem();
        let mut n = nic();
        let req = TxRequest {
            packet: packet(7, 512),
            mbuf: 3,
        };
        let (accepted, rejected) = n.tx_submit(0, vec![req]);
        assert_eq!(accepted, 1);
        assert!(rejected.is_empty());
        assert!(n.tx_dma_needs_kick());
        let mut now = 0;
        while let Some(t) = n.tx_dma_advance(now, &mut m) {
            now = t.max(now + 1);
        }
        let ready = n.tx_next_wire_ready().expect("one packet pending");
        let (at, pkt) = n.tx_take_wire_packet(ready).expect("wire-ready");
        assert_eq!(pkt.id(), 7);
        assert_eq!(at, ready);
        assert_eq!(n.stats().tx_frames.value(), 1);
        assert_eq!(n.stats().tx_bytes.value(), 512);
    }

    #[test]
    fn tx_ring_backpressure_rejects_excess() {
        let mut n = Nic::new(NicConfig {
            tx_ring_size: 4,
            ..NicConfig::paper_default()
        });
        let reqs: Vec<TxRequest> = (0..6)
            .map(|i| TxRequest {
                packet: packet(i, 64),
                mbuf: i as usize,
            })
            .collect();
        let (accepted, rejected) = n.tx_submit(0, reqs);
        assert_eq!(accepted, 4);
        assert_eq!(rejected.len(), 2);
        assert_eq!(n.tx_free_slots(0), 0);
    }

    #[test]
    fn tx_slots_free_after_writeback() {
        let mut m = mem();
        let mut n = Nic::new(NicConfig {
            tx_ring_size: 4,
            ..NicConfig::paper_default()
        });
        let reqs: Vec<TxRequest> = (0..4)
            .map(|i| TxRequest {
                packet: packet(i, 64),
                mbuf: i as usize,
            })
            .collect();
        n.tx_submit(0, reqs);
        let mut now = 0;
        while let Some(t) = n.tx_dma_advance(now, &mut m) {
            now = t.max(now + 1);
        }
        // After enough time the writeback lands and slots free up.
        assert_eq!(n.tx_free_slots(simnet_sim::tick::ms(10)), 4);
    }

    #[test]
    fn dca_makes_dma_data_llc_resident() {
        let mut m = mem();
        let mut n = nic();
        n.rx_ring_post(1024);
        n.wire_rx(0, packet(1, 1518));
        pump_rx(&mut n, 0, &mut m);
        let got = n.rx_poll(simnet_sim::tick::ms(1), 1);
        let addr = layout::mbuf_addr(got[0].slot);
        let (_, level) = m.core_read(simnet_sim::tick::ms(2), addr, 8);
        assert_eq!(level, simnet_mem::HitLevel::Llc);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut m = mem();
        let mut n = nic();
        n.rx_ring_post(1024);
        n.wire_rx(0, packet(1, 64));
        pump_rx(&mut n, 0, &mut m);
        n.reset_stats();
        assert_eq!(n.stats().rx_frames.value(), 0);
        assert_eq!(n.drop_fsm().total_drops(), 0);
    }

    #[test]
    fn pci_identity_reflects_vendor_quirk() {
        // gem5-faithful default: the vendor ID reads back wrong (§III.B).
        let n = nic();
        assert_eq!(n.pci_config().vendor_id(), 0x0000);
        assert_eq!(n.pci_config().device_id(), DEVICE_82540EM);
        // With the quirk disabled, the NIC identifies as an Intel e1000.
        let fixed = Nic::new(NicConfig {
            vendor_id_broken: false,
            ..NicConfig::paper_default()
        });
        assert_eq!(fixed.pci_config().vendor_id(), VENDOR_INTEL);
    }
}
