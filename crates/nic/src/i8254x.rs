//! The NIC device: Fig. 3's packet life cycle as a timed state machine.
//!
//! The device is passive: an enclosing node (see `simnet-harness`)
//! delivers wire packets, kicks the DMA engines when their pipelined
//! completions fire, and polls/submits on behalf of software. Every method
//! takes `now` and returns the ticks at which things finish, so the node's
//! event queue carries the schedule.
//!
//! With `NicConfig::num_queues > 1` the device operates N independent
//! RX/TX queue pairs (82574/82599-style multi-queue): arriving flows are
//! steered by the Toeplitz RSS hash ([`simnet_net::rss`]), each queue
//! owns a ring-sized slice of the global descriptor/mbuf index space and
//! a partition of the on-chip FIFOs, and each queue pair has its own DMA
//! engine pipeline. With one queue every method reduces to the exact
//! single-ring i8254x schedule — the differential equivalence suite
//! (`tests/mq_equivalence.rs`) holds this to the byte.

use std::collections::VecDeque;

use simnet_mem::system::DmaTiming;
use simnet_mem::{layout, MemorySystem};
use simnet_net::{rss, MacAddr, Packet};
use simnet_pci::{CompatMode, ConfigSpace};
use simnet_sim::fault::{FaultInjector, FaultKind};
use simnet_sim::stats::Counter;
use simnet_sim::trace::{Component, Stage, Tracer, NO_PACKET};
use simnet_sim::Tick;

use crate::config::NicConfig;
use crate::drop_fsm::{BufferState, DropFsm, DropKind};
use crate::fifo::ByteFifo;
use crate::regs::{irq, NicCompatMode, RegisterFile};

/// Intel's vendor id (the e1000 PMD matches on this).
pub const VENDOR_INTEL: u16 = 0x8086;
/// The 82540EM device id modeled by gem5's i8254xGBe.
pub const DEVICE_82540EM: u16 = 0x100e;

/// A received packet exposed to software after descriptor writeback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxCompletion {
    /// When the descriptor writeback made this packet visible.
    pub visible_at: Tick,
    /// The packet data (now resident in the mbuf).
    pub packet: Packet,
    /// Global RX ring slot / mbuf index holding the data. With multiple
    /// queues this is `queue * rx_ring_size + local_slot`, so the
    /// originating queue is `slot / rx_ring_size`.
    pub slot: usize,
}

/// A TX request: the packet and the mbuf index its bytes live in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRequest {
    /// The frame to transmit.
    pub packet: Packet,
    /// The mbuf index the NIC must DMA-read the payload from.
    pub mbuf: usize,
}

/// NIC-level counters (aggregated over all queues).
#[derive(Debug, Default)]
pub struct NicStats {
    /// Frames accepted from the wire.
    pub rx_frames: Counter,
    /// Bytes accepted from the wire.
    pub rx_bytes: Counter,
    /// Frames handed to the wire.
    pub tx_frames: Counter,
    /// Bytes handed to the wire.
    pub tx_bytes: Counter,
    /// Descriptor writeback DMA transactions.
    pub desc_writebacks: Counter,
    /// Descriptor-cache replenish DMA transactions.
    pub desc_refills: Counter,
    /// RX engine went idle because the FIFO was empty.
    pub rx_idle_fifo_empty: Counter,
    /// RX engine went idle because no descriptors were available.
    pub rx_idle_no_desc: Counter,
}

/// One RX queue: FIFO partition, descriptor ring slice, DMA pipeline.
#[derive(Debug)]
struct RxQueue {
    fifo: ByteFifo<Packet>,
    /// Descriptors posted by software, not yet prefetched into the cache.
    avail: usize,
    /// Prefetched descriptors, immediately usable by the DMA engine.
    desc_cache: usize,
    /// Next local ring slot the DMA engine will fill.
    next_slot: usize,
    /// In-flight packet DMA: (pipeline-ready tick, data-complete tick,
    /// global slot).
    inflight: Option<(Tick, Tick, usize)>,
    /// Completed packets awaiting descriptor writeback:
    /// (complete, packet, global slot).
    pending_wb: Vec<(Tick, Packet, usize)>,
    /// Written-back packets visible to software.
    visible: VecDeque<RxCompletion>,
    /// Deferred RX descriptor posts: (tick, count).
    posts: VecDeque<(Tick, usize)>,
    /// Frames accepted into this queue.
    frames: Counter,
    /// Bytes accepted into this queue.
    bytes: Counter,
}

impl RxQueue {
    fn new(fifo_bytes: u64) -> Self {
        Self {
            fifo: ByteFifo::new(fifo_bytes),
            avail: 0,
            desc_cache: 0,
            next_slot: 0,
            inflight: None,
            pending_wb: Vec::new(),
            visible: VecDeque::new(),
            posts: VecDeque::new(),
            frames: Counter::new(),
            bytes: Counter::new(),
        }
    }
}

/// One TX queue: submit ring slice, DMA pipeline, FIFO partition.
#[derive(Debug)]
struct TxQueue {
    queue: VecDeque<TxRequest>,
    inflight: Option<Tick>,
    /// Occupied TX ring slots (freed on TX descriptor writeback).
    occupancy: usize,
    /// Pending occupancy releases: (tick, count).
    releases: VecDeque<(Tick, usize)>,
    /// TX completions not yet written back.
    pending_wb: usize,
    /// Next local ring slot.
    next_slot: usize,
    /// Packets whose payload DMA finished, waiting for the wire.
    fifo: ByteFifo<Packet>,
    /// Wire-ready ticks for the packets in `fifo`, in order.
    wire_ready: VecDeque<Tick>,
    /// Frames this queue handed to the wire.
    frames: Counter,
    /// Bytes this queue handed to the wire.
    bytes: Counter,
}

impl TxQueue {
    fn new(fifo_bytes: u64) -> Self {
        Self {
            queue: VecDeque::new(),
            inflight: None,
            occupancy: 0,
            releases: VecDeque::new(),
            pending_wb: 0,
            next_slot: 0,
            fifo: ByteFifo::new(fifo_bytes),
            wire_ready: VecDeque::new(),
            frames: Counter::new(),
            bytes: Counter::new(),
        }
    }
}

/// The simulated NIC.
pub struct Nic {
    cfg: NicConfig,
    regs: RegisterFile,
    pci: ConfigSpace,
    fsm: DropFsm,
    stats: NicStats,
    tracer: Tracer,
    faults: FaultInjector,
    rxq: Vec<RxQueue>,
    txq: Vec<TxQueue>,
}

impl Nic {
    /// Creates a NIC.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    pub fn new(cfg: NicConfig) -> Self {
        cfg.validate();
        let pci_mode = match cfg.compat {
            NicCompatMode::Baseline => CompatMode::Baseline,
            NicCompatMode::Extended => CompatMode::Extended,
        };
        let mut regs = RegisterFile::new(cfg.compat);
        let _ = regs.write(crate::regs::offsets::WBTHRESH, cfg.wb_threshold as u32);
        let _ = regs.write(crate::regs::offsets::RDLEN, cfg.rx_ring_size as u32);
        let _ = regs.write(crate::regs::offsets::TDLEN, cfg.tx_ring_size as u32);
        if cfg.num_queues > 1 {
            let _ = regs.write(crate::regs::offsets::MRQC, cfg.num_queues as u32);
        }
        let vendor = if cfg.vendor_id_broken {
            0x0000
        } else {
            VENDOR_INTEL
        };
        // Each queue owns an equal partition of the on-chip FIFOs; one
        // queue gets the whole FIFO, exactly the single-ring device.
        let nq = cfg.num_queues as u64;
        Self {
            regs,
            pci: ConfigSpace::new(vendor, DEVICE_82540EM, pci_mode),
            fsm: DropFsm::new(),
            stats: NicStats::default(),
            tracer: Tracer::disabled(),
            faults: FaultInjector::disabled(),
            rxq: (0..cfg.num_queues)
                .map(|_| RxQueue::new(cfg.rx_fifo_bytes / nq))
                .collect(),
            txq: (0..cfg.num_queues)
                .map(|_| TxQueue::new(cfg.tx_fifo_bytes / nq))
                .collect(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Number of RX/TX queue pairs.
    pub fn num_queues(&self) -> usize {
        self.cfg.num_queues
    }

    /// Total RX descriptor entries across all queues — the size of the
    /// global slot/mbuf index space.
    fn total_rx_ring(&self) -> usize {
        self.cfg.num_queues * self.cfg.rx_ring_size
    }

    fn total_tx_ring(&self) -> usize {
        self.cfg.num_queues * self.cfg.tx_ring_size
    }

    /// The port's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.cfg.mac
    }

    /// The register file (MMIO).
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// The PCI configuration space.
    pub fn pci_config_mut(&mut self) -> &mut ConfigSpace {
        &mut self.pci
    }

    /// Read-only PCI configuration space.
    pub fn pci_config(&self) -> &ConfigSpace {
        &self.pci
    }

    /// The drop-classification FSM and its counters.
    pub fn drop_fsm(&self) -> &DropFsm {
        &self.fsm
    }

    /// Attaches a packet-lifecycle tracer (see `simnet_sim::trace`),
    /// shared with the device's PCI config space.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.pci.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches a fault injector (see `simnet_sim::fault`), shared with
    /// the device's PCI config space.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.pci.set_fault_injector(faults.clone());
        self.faults = faults;
    }

    /// Diagnostic: RX FIFO bytes currently used (all queues).
    pub fn rx_fifo_used(&self) -> u64 {
        self.rxq.iter().map(|q| q.fifo.used()).sum()
    }

    /// Diagnostic: highest per-queue RX FIFO occupancy — the congestion
    /// gauge the interval sampler reports alongside the aggregate.
    pub fn rx_fifo_used_max(&self) -> u64 {
        self.rxq.iter().map(|q| q.fifo.used()).max().unwrap_or(0)
    }

    /// Diagnostic: RX FIFO capacity in bytes (all queues).
    pub fn rx_fifo_capacity(&self) -> u64 {
        self.rxq.iter().map(|q| q.fifo.capacity()).sum()
    }

    /// Diagnostic: occupied TX ring slots (as last settled, all queues).
    pub fn tx_ring_used(&self) -> usize {
        self.txq.iter().map(|q| q.occupancy).sum()
    }

    /// Device counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Clears statistics (post-warm-up).
    pub fn reset_stats(&mut self) {
        self.fsm.reset_stats();
        self.stats = NicStats::default();
        for q in &mut self.rxq {
            q.frames.reset();
            q.bytes.reset();
        }
        for q in &mut self.txq {
            q.frames.reset();
            q.bytes.reset();
        }
    }

    /// Registers the `system.nic.*` statistics section (device counters
    /// plus the Fig. 4 drop-classification counters). With multiple
    /// queues, per-queue `system.nic.rxq<i>.*` / `system.nic.txq<i>.*`
    /// groups follow the aggregate; with one queue the dump is
    /// byte-identical to the single-ring device's.
    pub fn register_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        let s = &self.stats;
        let fsm = &self.fsm;
        reg.scoped("system.nic", |reg| {
            reg.scalar(
                "rxPackets",
                s.rx_frames.value(),
                "frames accepted from the wire",
            );
            reg.scalar(
                "rxBytes",
                s.rx_bytes.value(),
                "bytes accepted from the wire",
            );
            reg.scalar(
                "txPackets",
                s.tx_frames.value(),
                "frames handed to the wire",
            );
            reg.scalar("txBytes", s.tx_bytes.value(), "bytes handed to the wire");
            reg.scalar(
                "descWritebacks",
                s.desc_writebacks.value(),
                "descriptor writeback DMAs",
            );
            reg.scalar(
                "descRefills",
                s.desc_refills.value(),
                "descriptor cache refills",
            );
            reg.scalar(
                "dmaDrops",
                fsm.dma_drops.value(),
                "drops: DMA engine behind (Fig. 4)",
            );
            reg.scalar(
                "coreDrops",
                fsm.core_drops.value(),
                "drops: core behind (Fig. 4)",
            );
            reg.scalar(
                "txDrops",
                fsm.tx_drops.value(),
                "drops: TX backpressure (Fig. 4)",
            );
            reg.float("dropRate", fsm.drop_rate(), "dropped / observed");
            if reg.full() {
                reg.scalar(
                    "rxIdleFifoEmpty",
                    s.rx_idle_fifo_empty.value(),
                    "RX engine idle: FIFO empty",
                );
                reg.scalar(
                    "rxIdleNoDesc",
                    s.rx_idle_no_desc.value(),
                    "RX engine idle: no descriptors",
                );
                reg.scalar(
                    "rx_fifo_occupancy",
                    self.rx_fifo_used(),
                    "RX FIFO bytes in use at dump time",
                );
                reg.scalar(
                    "rx_fifo_peak",
                    self.rxq
                        .iter()
                        .map(|q| q.fifo.high_watermark())
                        .sum::<u64>(),
                    "highest RX FIFO byte occupancy observed",
                );
            }
        });
        if self.cfg.num_queues > 1 {
            for (i, q) in self.rxq.iter().enumerate() {
                reg.scoped(format!("system.nic.rxq{i}"), |reg| {
                    reg.scalar(
                        "rxPackets",
                        q.frames.value(),
                        "frames steered to this queue",
                    );
                    reg.scalar("rxBytes", q.bytes.value(), "bytes steered to this queue");
                    reg.scalar(
                        "fifo_peak",
                        q.fifo.high_watermark(),
                        "highest FIFO-partition byte occupancy",
                    );
                });
            }
            for (i, q) in self.txq.iter().enumerate() {
                reg.scoped(format!("system.nic.txq{i}"), |reg| {
                    reg.scalar("txPackets", q.frames.value(), "frames sent from this queue");
                    reg.scalar("txBytes", q.bytes.value(), "bytes sent from this queue");
                });
            }
        }
    }

    /// Registers `system.nic.faultDrops` — kept out of
    /// [`Nic::register_stats`] because the legacy dump places it inside
    /// the conditional fault section.
    pub fn register_fault_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        reg.scalar(
            "system.nic.faultDrops",
            self.fsm.fault_drops.value(),
            "drops caused by injected faults",
        );
    }

    fn settle_q(&mut self, queue: usize, now: Tick) {
        let txq = &mut self.txq[queue];
        while let Some(&(t, n)) = txq.releases.front() {
            if t <= now {
                txq.occupancy = txq.occupancy.saturating_sub(n);
                txq.releases.pop_front();
            } else {
                break;
            }
        }
        let rxq = &mut self.rxq[queue];
        while let Some(&(t, n)) = rxq.posts.front() {
            if t <= now {
                rxq.avail = (rxq.avail + n).min(self.cfg.rx_ring_size);
                rxq.posts.pop_front();
            } else {
                break;
            }
        }
    }

    fn settle(&mut self, now: Tick) {
        for q in 0..self.cfg.num_queues {
            self.settle_q(q, now);
        }
    }

    fn buffer_state(&self, queue: usize, incoming_len: u64) -> BufferState {
        // The ring counts as full when the free descriptors (posted tail
        // space plus the NIC's cached ones) fall below one replenish
        // batch — the RXDMT0-style low-threshold condition. Software owns
        // everything else (used descriptors awaiting poll), which is
        // exactly the "core is behind" state of §VII.A.
        let rxq = &self.rxq[queue];
        let free = rxq.avail + rxq.desc_cache;
        BufferState {
            rx_fifo_full: !rxq.fifo.fits(incoming_len),
            rx_ring_full: free <= self.cfg.desc_refill_batch,
            tx_ring_full: self.txq[queue].occupancy >= self.cfg.tx_ring_size,
        }
    }

    // ------------------------------------------------------------------
    // RX path
    // ------------------------------------------------------------------

    /// A frame arrives from the wire at `now`, steered to its RSS queue.
    /// Returns `Some(kind)` if it was dropped (RX FIFO overrun),
    /// classified per Fig. 4.
    pub fn wire_rx(&mut self, now: Tick, packet: Packet) -> Option<DropKind> {
        self.settle(now);
        let queue = rss::queue_for(&packet, self.cfg.num_queues);
        let len = packet.len() as u64;
        // Injected link bit error: the frame fails its FCS check at the
        // MAC and is discarded before it can touch any buffer.
        if self.faults.link_bit_error(len * 8) {
            let kind = self.fsm.on_fault_drop();
            self.tracer.emit(
                now,
                packet.id(),
                Component::Nic,
                Stage::Fault {
                    kind: FaultKind::LinkBitError,
                    ticks: 0,
                },
            );
            self.tracer.emit(
                now,
                packet.id(),
                Component::Nic,
                Stage::Drop {
                    class: kind.trace_class(),
                    fifo_used: self.rxq[queue].fifo.used(),
                    ring_free: (self.rxq[queue].avail + self.rxq[queue].desc_cache) as u32,
                    tx_used: self.txq[queue].occupancy as u32,
                },
            );
            return Some(kind);
        }
        let mut observed = self.buffer_state(queue, len);
        // Injected stuck-full window: the FIFO refuses the frame whatever
        // its real occupancy; the Fig. 4 FSM classifies as usual.
        if self.faults.fifo_stuck(now) {
            observed.rx_fifo_full = true;
            self.tracer.emit(
                now,
                packet.id(),
                Component::Nic,
                Stage::Fault {
                    kind: FaultKind::FifoStuck,
                    ticks: 0,
                },
            );
        }
        let verdict = self.fsm.on_packet_rx(observed);
        if verdict.is_some() {
            if std::env::var_os("SIMNET_TRACE_DROP").is_some() {
                eprintln!(
                    "drop t={now} kind={verdict:?} q={queue} avail={} cache={} pending={} visible={} inflight={}",
                    self.rxq[queue].avail,
                    self.rxq[queue].desc_cache,
                    self.rxq[queue].pending_wb.len(),
                    self.rxq[queue].visible.len(),
                    self.rxq[queue].inflight.map(|(r, _, _)| r as i64 - now as i64).unwrap_or(-1)
                );
            }
            self.regs.raise_cause(irq::RXO);
            if let Some(kind) = verdict {
                self.tracer.emit(
                    now,
                    packet.id(),
                    Component::Nic,
                    Stage::Drop {
                        class: kind.trace_class(),
                        fifo_used: self.rxq[queue].fifo.used(),
                        ring_free: (self.rxq[queue].avail + self.rxq[queue].desc_cache) as u32,
                        tx_used: self.txq[queue].occupancy as u32,
                    },
                );
            }
            return verdict;
        }
        self.stats.rx_frames.inc();
        self.stats.rx_bytes.add(len);
        let rxq = &mut self.rxq[queue];
        rxq.frames.inc();
        rxq.bytes.add(len);
        let packet_id = packet.id();
        rxq.fifo
            .push(len, packet)
            .unwrap_or_else(|_| unreachable!("FSM verified the FIFO fits"));
        let fifo_used = rxq.fifo.used();
        self.tracer.emit(
            now,
            packet_id,
            Component::Nic,
            Stage::FifoEnqueue { fifo_used },
        );
        None
    }

    /// Whether queue `queue`'s RX DMA engine is idle but has work at
    /// `now` (the node should schedule an [`Nic::rx_dma_advance_q`]).
    pub fn rx_dma_needs_kick_q(&mut self, queue: usize, now: Tick) -> bool {
        self.settle_q(queue, now);
        let rxq = &self.rxq[queue];
        rxq.inflight.is_none() && !rxq.fifo.is_empty() && (rxq.desc_cache > 0 || rxq.avail > 0)
    }

    /// [`Nic::rx_dma_needs_kick_q`] over all queues.
    pub fn rx_dma_needs_kick(&mut self, now: Tick) -> bool {
        // Deliberately eager (no short-circuit): the per-queue check
        // settles that queue's lazy state as a side effect.
        let mut any = false;
        for q in 0..self.cfg.num_queues {
            any |= self.rx_dma_needs_kick_q(q, now);
        }
        any
    }

    /// Starts DMA for the packet at queue `queue`'s FIFO head, if that
    /// engine is idle and a descriptor is available. Returns the tick at
    /// which the engine pipeline can accept the next packet (schedule
    /// [`Nic::rx_dma_advance_q`] there).
    pub fn rx_dma_start_q(
        &mut self,
        queue: usize,
        now: Tick,
        mem: &mut MemorySystem,
    ) -> Option<Tick> {
        if self.rxq[queue].inflight.is_some() {
            return None;
        }
        let Some((len, head)) = self.rxq[queue].fifo.peek() else {
            self.stats.rx_idle_fifo_empty.inc();
            return None;
        };
        let head_id = head.id();

        self.settle_q(queue, now);
        // A transiently cleared bus-master enable blocks new DMA; the
        // node schedules a retry at the end of the fault window.
        if self.faults.master_cleared(now) {
            self.tracer.emit(
                now,
                NO_PACKET,
                Component::Pci,
                Stage::Fault {
                    kind: FaultKind::PciMasterClear,
                    ticks: 0,
                },
            );
            return None;
        }
        let total_ring = self.total_rx_ring();
        let ring = self.cfg.rx_ring_size;
        let mut t = now;
        // Replenish the descriptor cache if needed (and possible).
        if self.rxq[queue].desc_cache == 0 {
            if self.rxq[queue].avail == 0 {
                self.stats.rx_idle_no_desc.inc();
                return None; // RX ring empty: engine stalls until post
            }
            let n = self.cfg.desc_refill_batch.min(self.rxq[queue].avail);
            let addr = layout::rx_desc_addr(queue * ring + self.rxq[queue].next_slot, total_ring);
            let timing = mem.dma_read_control(t, addr, n as u64 * layout::DESC_SIZE);
            if std::env::var_os("SIMNET_TRACE_REFILL").is_some() && timing.complete > t + 500_000 {
                eprintln!(
                    "refill slow t={t} data_ready={} complete={} n={n}",
                    timing.next_issue, timing.complete
                );
            }
            t = timing.complete;
            self.rxq[queue].desc_cache += n;
            self.rxq[queue].avail -= n;
            self.stats.desc_refills.inc();
        }

        let rxq = &mut self.rxq[queue];
        rxq.desc_cache -= 1;
        let slot = queue * ring + rxq.next_slot;
        rxq.next_slot = (rxq.next_slot + 1) % ring;
        let timing: DmaTiming = mem.dma_write_timed(t, layout::mbuf_addr(slot), len);
        self.tracer.emit(
            t,
            head_id,
            Component::Nic,
            Stage::DmaStart {
                slot: slot as u32,
                dca: mem.config().dca_enabled,
            },
        );
        self.rxq[queue].inflight = Some((timing.next_issue, timing.complete, slot));
        Some(timing.next_issue)
    }

    /// [`Nic::rx_dma_start_q`] on queue 0 — the single-queue device's RX
    /// engine.
    pub fn rx_dma_start(&mut self, now: Tick, mem: &mut MemorySystem) -> Option<Tick> {
        self.rx_dma_start_q(0, now, mem)
    }

    /// Advances queue `queue`'s RX engine at a pipeline-ready tick:
    /// retires the in-flight packet (moving it toward descriptor
    /// writeback) and starts the next one. Returns the next advance tick,
    /// if any.
    pub fn rx_dma_advance_q(
        &mut self,
        queue: usize,
        now: Tick,
        mem: &mut MemorySystem,
    ) -> Option<Tick> {
        if let Some((ready, complete, slot)) = self.rxq[queue].inflight {
            if ready > now {
                return Some(ready);
            }
            let rxq = &mut self.rxq[queue];
            rxq.inflight = None;
            let (_, packet) = rxq.fifo.pop().expect("in-flight packet is FIFO head");
            rxq.pending_wb.push((complete, packet, slot));
            let threshold = self.regs.writeback_threshold();
            if self.rxq[queue].pending_wb.len() >= threshold {
                self.flush_rx_writeback(queue, now, mem);
            }
        }
        let next = self.rx_dma_start_q(queue, now, mem);
        if next.is_none() && !self.rxq[queue].pending_wb.is_empty() {
            // Engine going idle: flush the sub-threshold remainder so the
            // last packets of a burst become visible (RDTR timer ~ 0).
            self.flush_rx_writeback(queue, now, mem);
        }
        next
    }

    /// [`Nic::rx_dma_advance_q`] on queue 0.
    pub fn rx_dma_advance(&mut self, now: Tick, mem: &mut MemorySystem) -> Option<Tick> {
        self.rx_dma_advance_q(0, now, mem)
    }

    fn flush_rx_writeback(&mut self, queue: usize, now: Tick, mem: &mut MemorySystem) {
        if self.rxq[queue].pending_wb.is_empty() {
            return;
        }
        let count = self.rxq[queue].pending_wb.len();
        let first_slot = self.rxq[queue].pending_wb[0].2;
        let addr = layout::rx_desc_addr(first_slot, self.total_rx_ring());
        let data_done = self.rxq[queue]
            .pending_wb
            .iter()
            .map(|&(t, _, _)| t)
            .max()
            .expect("non-empty");
        let timing =
            mem.dma_write_control(now.max(data_done), addr, count as u64 * layout::DESC_SIZE);
        // Injected writeback delay: the whole batch lands late (one roll
        // per writeback transaction).
        let delay = self.faults.wb_delay();
        let visible_at = timing.complete + delay;
        if delay > 0 {
            self.tracer.emit(
                timing.complete,
                NO_PACKET,
                Component::Nic,
                Stage::Fault {
                    kind: FaultKind::WbDelay,
                    ticks: delay,
                },
            );
        }
        for (_, packet, slot) in std::mem::take(&mut self.rxq[queue].pending_wb) {
            // Injected writeback corruption: the descriptor's status bits
            // are garbage, software never sees the frame, and the mbuf
            // leaks until the ring wraps — a classified fault drop.
            if self.faults.wb_corrupt() {
                let kind = self.fsm.on_fault_drop();
                self.tracer.emit(
                    visible_at,
                    packet.id(),
                    Component::Nic,
                    Stage::Fault {
                        kind: FaultKind::WbCorrupt,
                        ticks: 0,
                    },
                );
                self.tracer.emit(
                    visible_at,
                    packet.id(),
                    Component::Nic,
                    Stage::Drop {
                        class: kind.trace_class(),
                        fifo_used: self.rxq[queue].fifo.used(),
                        ring_free: (self.rxq[queue].avail + self.rxq[queue].desc_cache) as u32,
                        tx_used: self.txq[queue].occupancy as u32,
                    },
                );
                continue;
            }
            self.tracer.emit(
                visible_at,
                packet.id(),
                Component::Nic,
                Stage::RingPublish { slot: slot as u32 },
            );
            self.rxq[queue].visible.push_back(RxCompletion {
                visible_at,
                packet,
                slot,
            });
        }
        self.stats.desc_writebacks.inc();
        self.regs.raise_cause(irq::RXT0);
    }

    /// Software posts `count` RX descriptors to *every* queue (tail bump
    /// after freeing mbufs), effective immediately. Returns whether some
    /// RX engine was stalled and should be kicked.
    pub fn rx_ring_post(&mut self, count: usize) -> bool {
        let mut kick = false;
        let ring = self.cfg.rx_ring_size;
        for rxq in &mut self.rxq {
            let was_stalled = rxq.desc_cache == 0 && rxq.avail == 0;
            rxq.avail = (rxq.avail + count).min(ring);
            kick |= was_stalled && !rxq.fifo.is_empty();
        }
        kick
    }

    /// Software posts `count` RX descriptors to queue `queue` effective
    /// at tick `at` — the stack calls this with the tick its loop
    /// iteration *finishes*, so the tail bump lands when the store
    /// actually retires, not when the iteration was scheduled.
    pub fn rx_ring_post_q_at(&mut self, queue: usize, at: Tick, count: usize) {
        if count > 0 {
            self.rxq[queue].posts.push_back((at, count));
        }
    }

    /// [`Nic::rx_ring_post_q_at`] on queue 0.
    pub fn rx_ring_post_at(&mut self, at: Tick, count: usize) {
        self.rx_ring_post_q_at(0, at, count);
    }

    /// Diagnostic: descriptors currently available to the DMA engines
    /// (all queues).
    pub fn rx_descriptors_available(&self) -> usize {
        self.rxq.iter().map(|q| q.avail + q.desc_cache).sum()
    }

    /// Diagnostic: packets written back and awaiting software poll (all
    /// queues).
    pub fn rx_visible_len(&self) -> usize {
        self.rxq.iter().map(|q| q.visible.len()).sum()
    }

    /// Diagnostic: deepest per-queue unpolled backlog.
    pub fn rx_visible_len_max(&self) -> usize {
        self.rxq.iter().map(|q| q.visible.len()).max().unwrap_or(0)
    }

    /// Tick at which the oldest written-back packet on queue `queue`
    /// became (or becomes) visible to software, if any — lets an idle
    /// poll loop sleep until there is work instead of simulating every
    /// empty spin.
    pub fn rx_next_visible_at_q(&self, queue: usize) -> Option<Tick> {
        self.rxq[queue].visible.front().map(|c| c.visible_at)
    }

    /// Earliest visible tick across all queues.
    pub fn rx_next_visible_at(&self) -> Option<Tick> {
        self.rxq
            .iter()
            .filter_map(|q| q.visible.front().map(|c| c.visible_at))
            .min()
    }

    /// Number of packets visible to a poll at `now` (all queues).
    pub fn rx_visible_count(&self, now: Tick) -> usize {
        self.rxq
            .iter()
            .map(|q| q.visible.iter().take_while(|c| c.visible_at <= now).count())
            .sum()
    }

    /// Polls up to `max` received packets visible at `now` from queue 0
    /// (the PMD's `rx_burst` device side on the single-queue device).
    pub fn rx_poll(&mut self, now: Tick, max: usize) -> Vec<RxCompletion> {
        let mut out = Vec::new();
        self.rx_poll_q_into(0, now, max, &mut out);
        out
    }

    /// [`Nic::rx_poll`] into a caller-owned buffer on queue 0.
    pub fn rx_poll_into(&mut self, now: Tick, max: usize, out: &mut Vec<RxCompletion>) {
        self.rx_poll_q_into(0, now, max, out);
    }

    /// Polls queue `queue` into a caller-owned buffer: appends up to
    /// `max - out.len()` completions, reusing the caller's allocation —
    /// the form the stacks' steady-state loops use, so a descriptor
    /// drain costs no host allocation per poll.
    pub fn rx_poll_q_into(
        &mut self,
        queue: usize,
        now: Tick,
        max: usize,
        out: &mut Vec<RxCompletion>,
    ) {
        let visible = &mut self.rxq[queue].visible;
        while out.len() < max {
            match visible.front() {
                Some(c) if c.visible_at <= now => {
                    out.push(visible.pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // TX path
    // ------------------------------------------------------------------

    /// Free TX ring slots on queue 0 at `now`.
    pub fn tx_free_slots(&mut self, now: Tick) -> usize {
        self.settle(now);
        self.cfg.tx_ring_size - self.txq[0].occupancy
    }

    /// Software submits TX requests to queue `queue` (tail bump).
    /// Requests beyond the free ring slots are returned (the caller must
    /// retry — this is the backpressure that produces TxDrops). Returns
    /// `(accepted, rejected)`.
    pub fn tx_submit_q(
        &mut self,
        queue: usize,
        now: Tick,
        requests: Vec<TxRequest>,
    ) -> (usize, Vec<TxRequest>) {
        self.settle(now);
        let txq = &mut self.txq[queue];
        let free = self.cfg.tx_ring_size - txq.occupancy;
        let take = free.min(requests.len());
        let mut rejected = requests;
        let accepted: Vec<TxRequest> = rejected.drain(..take).collect();
        txq.occupancy += accepted.len();
        for req in &accepted {
            self.tracer
                .emit(now, req.packet.id(), Component::Nic, Stage::TxQueue);
        }
        self.txq[queue].queue.extend(accepted);
        (take, rejected)
    }

    /// [`Nic::tx_submit_q`] on queue 0.
    pub fn tx_submit(&mut self, now: Tick, requests: Vec<TxRequest>) -> (usize, Vec<TxRequest>) {
        self.tx_submit_q(0, now, requests)
    }

    /// Whether queue `queue`'s TX DMA engine is idle but has work.
    pub fn tx_dma_needs_kick_q(&self, queue: usize) -> bool {
        self.txq[queue].inflight.is_none() && !self.txq[queue].queue.is_empty()
    }

    /// [`Nic::tx_dma_needs_kick_q`] over all queues.
    pub fn tx_dma_needs_kick(&self) -> bool {
        (0..self.cfg.num_queues).any(|q| self.tx_dma_needs_kick_q(q))
    }

    /// Advances queue `queue`'s TX engine: fetches the next queued
    /// packet's descriptor and payload from memory, parking the frame in
    /// the TX FIFO. Returns the pipeline-ready tick at which to call this
    /// again, or `None` when the engine idles (empty queue or full FIFO).
    ///
    /// Frames become wire-ready at their payload-completion ticks; drain
    /// them with [`Nic::tx_take_wire_packet`].
    pub fn tx_dma_advance_q(
        &mut self,
        queue: usize,
        now: Tick,
        mem: &mut MemorySystem,
    ) -> Option<Tick> {
        if let Some(ready) = self.txq[queue].inflight {
            if ready > now {
                return Some(ready);
            }
            self.txq[queue].inflight = None;
        }

        let head_len = self.txq[queue]
            .queue
            .front()
            .map(|r| r.packet.len() as u64)?;
        if !self.txq[queue].fifo.fits(head_len) {
            // Wire is behind; the node re-kicks after draining the FIFO.
            return None;
        }
        if self.faults.master_cleared(now) {
            self.tracer.emit(
                now,
                NO_PACKET,
                Component::Pci,
                Stage::Fault {
                    kind: FaultKind::PciMasterClear,
                    ticks: 0,
                },
            );
            return None;
        }
        let total_ring = self.total_tx_ring();
        let ring = self.cfg.tx_ring_size;
        let txq = &mut self.txq[queue];
        let req = txq.queue.pop_front().expect("head exists");

        // Fetch the TX descriptor, then the payload.
        let slot = queue * ring + txq.next_slot;
        txq.next_slot = (txq.next_slot + 1) % ring;
        let desc = mem.dma_read_control(
            now,
            layout::tx_desc_addr(slot, total_ring),
            layout::DESC_SIZE,
        );
        let payload = mem.dma_read_timed(desc.next_issue, layout::mbuf_addr(req.mbuf), head_len);

        self.tracer.emit(
            payload.complete,
            req.packet.id(),
            Component::Nic,
            Stage::TxFifo,
        );
        let txq = &mut self.txq[queue];
        txq.fifo
            .push(head_len, req.packet)
            .unwrap_or_else(|_| unreachable!("fits checked above"));
        txq.wire_ready.push_back(payload.complete);

        // TX descriptor writeback, batched like RX; ring slots free when
        // the writeback lands.
        txq.pending_wb += 1;
        let threshold = self.regs.writeback_threshold();
        if self.txq[queue].pending_wb >= threshold || self.txq[queue].queue.is_empty() {
            let n = self.txq[queue].pending_wb;
            let wb = mem.dma_write_control(
                payload.complete,
                layout::tx_desc_addr(slot, total_ring),
                n as u64 * layout::DESC_SIZE,
            );
            self.txq[queue].releases.push_back((wb.complete, n));
            self.txq[queue].pending_wb = 0;
            self.stats.desc_writebacks.inc();
            self.regs.raise_cause(irq::TXDW);
        }

        self.txq[queue].inflight = Some(payload.next_issue);
        Some(payload.next_issue)
    }

    /// [`Nic::tx_dma_advance_q`] on queue 0.
    pub fn tx_dma_advance(&mut self, now: Tick, mem: &mut MemorySystem) -> Option<Tick> {
        self.tx_dma_advance_q(0, now, mem)
    }

    /// Takes the next packet ready for the wire at or before `now`,
    /// arbitrating across queues: the earliest-ready head wins, ties to
    /// the lowest queue index (round-robin-free, deterministic). The node
    /// serializes it on the link and calls `tx_take_wire_packet` again
    /// when the wire accepts more.
    pub fn tx_take_wire_packet(&mut self, now: Tick) -> Option<(Tick, Packet)> {
        let mut best: Option<(Tick, usize)> = None;
        for (q, txq) in self.txq.iter().enumerate() {
            if let Some(&ready) = txq.wire_ready.front() {
                if ready <= now && best.is_none_or(|(b, _)| ready < b) {
                    best = Some((ready, q));
                }
            }
        }
        let (ready, q) = best?;
        let txq = &mut self.txq[q];
        txq.wire_ready.pop_front();
        let (len, packet) = txq.fifo.pop()?;
        txq.frames.inc();
        txq.bytes.add(len);
        self.stats.tx_frames.inc();
        self.stats.tx_bytes.add(len);
        self.tracer
            .emit(ready, packet.id(), Component::Nic, Stage::TxWire);
        Some((ready, packet))
    }

    /// Earliest tick at which a TX packet becomes wire-ready (any queue).
    pub fn tx_next_wire_ready(&self) -> Option<Tick> {
        self.txq
            .iter()
            .filter_map(|q| q.wire_ready.front().copied())
            .min()
    }
}

impl std::fmt::Debug for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic")
            .field("mac", &self.cfg.mac)
            .field("queues", &self.cfg.num_queues)
            .field("rx_fifo_used", &self.rx_fifo_used())
            .field("rx_avail", &self.rxq.iter().map(|q| q.avail).sum::<usize>())
            .field(
                "desc_cache",
                &self.rxq.iter().map(|q| q.desc_cache).sum::<usize>(),
            )
            .field("tx_occupancy", &self.tx_ring_used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_mem::MemoryConfig;
    use simnet_net::PacketBuilder;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig::table1_gem5())
    }

    fn nic() -> Nic {
        Nic::new(NicConfig::paper_default())
    }

    fn packet(id: u64, len: usize) -> Packet {
        PacketBuilder::new()
            .dst(MacAddr::simulated(1))
            .src(MacAddr::simulated(99))
            .frame_len(len)
            .build(id)
    }

    /// A UDP frame whose source port steers it to `queue` of `nq`.
    fn steered_packet(id: u64, queue: usize, nq: usize) -> Packet {
        let ports = rss::ports_for_queues([10, 0, 0, 2], [10, 0, 0, 1], 11_211, nq);
        PacketBuilder::new()
            .dst(MacAddr::simulated(1))
            .src(MacAddr::simulated(99))
            .udp([10, 0, 0, 2], [10, 0, 0, 1], ports[queue], 11_211)
            .frame_len(128)
            .build(id)
    }

    /// Drives the RX engine until idle, like the node's event loop.
    fn pump_rx(nic: &mut Nic, mut now: Tick, mem: &mut MemorySystem) -> Tick {
        if let Some(t) = nic.rx_dma_start(now, mem) {
            now = t;
        }
        while let Some(t) = nic.rx_dma_advance(now, mem) {
            now = t.max(now + 1);
        }
        now
    }

    /// Drives one queue's RX engine until idle.
    fn pump_rx_q(nic: &mut Nic, queue: usize, mut now: Tick, mem: &mut MemorySystem) -> Tick {
        if let Some(t) = nic.rx_dma_start_q(queue, now, mem) {
            now = t;
        }
        while let Some(t) = nic.rx_dma_advance_q(queue, now, mem) {
            now = t.max(now + 1);
        }
        now
    }

    #[test]
    fn rx_packet_becomes_visible_after_dma_and_writeback() {
        let mut m = mem();
        let mut n = nic();
        n.rx_ring_post(1024);
        assert!(n.wire_rx(0, packet(1, 256)).is_none());
        assert!(n.rx_dma_needs_kick(0));
        let end = pump_rx(&mut n, 0, &mut m);
        let got = n.rx_poll(end + 1_000_000, 32);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].packet.id(), 1);
        assert!(got[0].visible_at > 0, "DMA + writeback take time");
    }

    #[test]
    fn packets_invisible_before_writeback_tick() {
        let mut m = mem();
        let mut n = nic();
        n.rx_ring_post(1024);
        n.wire_rx(0, packet(1, 256));
        pump_rx(&mut n, 0, &mut m);
        assert_eq!(n.rx_visible_count(0), 0);
        assert_eq!(n.rx_poll(0, 32), vec![]);
    }

    #[test]
    fn no_descriptors_means_no_dma() {
        let mut m = mem();
        let mut n = nic();
        // No rx_ring_post: ring is empty.
        n.wire_rx(0, packet(1, 64));
        assert!(!n.rx_dma_needs_kick(0));
        assert_eq!(n.rx_dma_start(0, &mut m), None);
        // Posting descriptors reports the stall so the node can kick.
        assert!(n.rx_ring_post(64));
    }

    #[test]
    fn fifo_overrun_drops_are_classified_dma_when_ring_has_room() {
        let mut n = nic();
        n.rx_ring_post(1024);
        // Fill the FIFO without ever running the DMA engine.
        let fifo_cap = n.config().rx_fifo_bytes;
        let mut sent = 0u64;
        let mut dropped = None;
        let mut id = 0;
        while dropped.is_none() {
            id += 1;
            dropped = n.wire_rx(0, packet(id, 1518));
            sent += 1;
            assert!(sent < 1_000, "must eventually drop");
        }
        assert_eq!(dropped, Some(DropKind::Dma));
        assert!(sent > fifo_cap / 1518);
        assert_eq!(n.drop_fsm().dma_drops.value(), 1);
    }

    #[test]
    fn fifo_overrun_with_empty_ring_is_core_drop() {
        let mut n = nic();
        // Ring never posted: rx_ring_full. Fill the FIFO.
        let mut dropped = None;
        let mut id = 0;
        while dropped.is_none() {
            id += 1;
            dropped = n.wire_rx(0, packet(id, 1518));
        }
        assert_eq!(dropped, Some(DropKind::Core));
    }

    #[test]
    fn writeback_threshold_batches_visibility() {
        let mut m = mem();
        let mut n = Nic::new(NicConfig::paper_default().with_wb_threshold(8));
        n.rx_ring_post(1024);
        for i in 0..8 {
            n.wire_rx(0, packet(i, 64));
        }
        pump_rx(&mut n, 0, &mut m);
        let got = n.rx_poll(simnet_sim::tick::ms(1), 32);
        assert_eq!(got.len(), 8);
        // All eight became visible at the same writeback tick.
        let t0 = got[0].visible_at;
        assert!(got.iter().all(|c| c.visible_at == t0));
        assert_eq!(n.stats().desc_writebacks.value(), 1);
    }

    #[test]
    fn small_threshold_writes_back_incrementally() {
        let mut m = mem();
        let mut n = Nic::new(NicConfig::paper_default().with_wb_threshold(1));
        n.rx_ring_post(1024);
        for i in 0..4 {
            n.wire_rx(0, packet(i, 64));
        }
        pump_rx(&mut n, 0, &mut m);
        assert!(n.stats().desc_writebacks.value() >= 4);
    }

    #[test]
    fn tx_round_trip_produces_wire_packet() {
        let mut m = mem();
        let mut n = nic();
        let req = TxRequest {
            packet: packet(7, 512),
            mbuf: 3,
        };
        let (accepted, rejected) = n.tx_submit(0, vec![req]);
        assert_eq!(accepted, 1);
        assert!(rejected.is_empty());
        assert!(n.tx_dma_needs_kick());
        let mut now = 0;
        while let Some(t) = n.tx_dma_advance(now, &mut m) {
            now = t.max(now + 1);
        }
        let ready = n.tx_next_wire_ready().expect("one packet pending");
        let (at, pkt) = n.tx_take_wire_packet(ready).expect("wire-ready");
        assert_eq!(pkt.id(), 7);
        assert_eq!(at, ready);
        assert_eq!(n.stats().tx_frames.value(), 1);
        assert_eq!(n.stats().tx_bytes.value(), 512);
    }

    #[test]
    fn tx_ring_backpressure_rejects_excess() {
        let mut n = Nic::new(NicConfig {
            tx_ring_size: 4,
            ..NicConfig::paper_default()
        });
        let reqs: Vec<TxRequest> = (0..6)
            .map(|i| TxRequest {
                packet: packet(i, 64),
                mbuf: i as usize,
            })
            .collect();
        let (accepted, rejected) = n.tx_submit(0, reqs);
        assert_eq!(accepted, 4);
        assert_eq!(rejected.len(), 2);
        assert_eq!(n.tx_free_slots(0), 0);
    }

    #[test]
    fn tx_slots_free_after_writeback() {
        let mut m = mem();
        let mut n = Nic::new(NicConfig {
            tx_ring_size: 4,
            ..NicConfig::paper_default()
        });
        let reqs: Vec<TxRequest> = (0..4)
            .map(|i| TxRequest {
                packet: packet(i, 64),
                mbuf: i as usize,
            })
            .collect();
        n.tx_submit(0, reqs);
        let mut now = 0;
        while let Some(t) = n.tx_dma_advance(now, &mut m) {
            now = t.max(now + 1);
        }
        // After enough time the writeback lands and slots free up.
        assert_eq!(n.tx_free_slots(simnet_sim::tick::ms(10)), 4);
    }

    #[test]
    fn dca_makes_dma_data_llc_resident() {
        let mut m = mem();
        let mut n = nic();
        n.rx_ring_post(1024);
        n.wire_rx(0, packet(1, 1518));
        pump_rx(&mut n, 0, &mut m);
        let got = n.rx_poll(simnet_sim::tick::ms(1), 1);
        let addr = layout::mbuf_addr(got[0].slot);
        let (_, level) = m.core_read(simnet_sim::tick::ms(2), addr, 8);
        assert_eq!(level, simnet_mem::HitLevel::Llc);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut m = mem();
        let mut n = nic();
        n.rx_ring_post(1024);
        n.wire_rx(0, packet(1, 64));
        pump_rx(&mut n, 0, &mut m);
        n.reset_stats();
        assert_eq!(n.stats().rx_frames.value(), 0);
        assert_eq!(n.drop_fsm().total_drops(), 0);
    }

    #[test]
    fn pci_identity_reflects_vendor_quirk() {
        // gem5-faithful default: the vendor ID reads back wrong (§III.B).
        let n = nic();
        assert_eq!(n.pci_config().vendor_id(), 0x0000);
        assert_eq!(n.pci_config().device_id(), DEVICE_82540EM);
        // With the quirk disabled, the NIC identifies as an Intel e1000.
        let fixed = Nic::new(NicConfig {
            vendor_id_broken: false,
            ..NicConfig::paper_default()
        });
        assert_eq!(fixed.pci_config().vendor_id(), VENDOR_INTEL);
    }

    // --------------------------------------------------------------
    // Multi-queue behaviour
    // --------------------------------------------------------------

    #[test]
    fn rss_spreads_flows_and_slots_stay_disjoint() {
        let mut m = mem();
        let nq = 4;
        let mut n = Nic::new(NicConfig::paper_default().with_queues(nq));
        n.rx_ring_post(1024);
        for q in 0..nq {
            for i in 0..3u64 {
                assert!(n
                    .wire_rx(0, steered_packet(q as u64 * 10 + i, q, nq))
                    .is_none());
            }
        }
        let mut end = 0;
        for q in 0..nq {
            end = pump_rx_q(&mut n, q, end, &mut m);
        }
        let horizon = end + simnet_sim::tick::ms(1);
        let mut seen = std::collections::HashSet::new();
        for q in 0..nq {
            let mut got = Vec::new();
            n.rx_poll_q_into(q, horizon, 32, &mut got);
            assert_eq!(got.len(), 3, "queue {q} must hold its 3 steered frames");
            for c in &got {
                // Global slots are the queue's ring slice — disjoint by
                // construction, and the queue is recoverable.
                assert_eq!(c.slot / n.config().rx_ring_size, q);
                assert!(seen.insert(c.slot), "slot {} reused across queues", c.slot);
            }
        }
    }

    #[test]
    fn non_udp_traffic_lands_on_queue_zero_only() {
        let mut n = Nic::new(NicConfig::paper_default().with_queues(4));
        n.rx_ring_post(1024);
        for i in 0..8 {
            n.wire_rx(0, packet(i, 256));
        }
        assert_eq!(n.rx_fifo_used_max(), n.rx_fifo_used());
        assert!(n.rx_dma_needs_kick_q(0, 0));
        for q in 1..4 {
            assert!(!n.rx_dma_needs_kick_q(q, 0));
        }
    }

    #[test]
    fn per_queue_fifo_partition_limits_each_queue() {
        let n = Nic::new(NicConfig::paper_default().with_queues(4));
        assert_eq!(
            n.rx_fifo_capacity(),
            NicConfig::paper_default().rx_fifo_bytes
        );
        // One partition is a quarter of the device FIFO.
        assert_eq!(
            n.rxq[0].fifo.capacity(),
            NicConfig::paper_default().rx_fifo_bytes / 4
        );
    }

    #[test]
    fn tx_wire_arbitration_takes_earliest_ready_lowest_queue() {
        let mut m = mem();
        let mut n = Nic::new(NicConfig::paper_default().with_queues(2));
        // Submit to queue 1 first, then queue 0: both DMA at the same
        // ticks, so the tie must break to queue 0... but queue 1's DMA
        // was issued first, so it is ready strictly earlier. Assert the
        // earliest-ready packet wins regardless of queue order.
        n.tx_submit_q(
            1,
            0,
            vec![TxRequest {
                packet: packet(11, 256),
                mbuf: 11,
            }],
        );
        let mut now = 0;
        while let Some(t) = n.tx_dma_advance_q(1, now, &mut m) {
            now = t.max(now + 1);
        }
        n.tx_submit_q(
            0,
            now,
            vec![TxRequest {
                packet: packet(10, 256),
                mbuf: 10,
            }],
        );
        let mut t2 = now;
        while let Some(t) = n.tx_dma_advance_q(0, t2, &mut m) {
            t2 = t.max(t2 + 1);
        }
        let horizon = simnet_sim::tick::ms(10);
        let (_, first) = n.tx_take_wire_packet(horizon).unwrap();
        let (_, second) = n.tx_take_wire_packet(horizon).unwrap();
        assert_eq!(first.id(), 11, "queue 1 finished DMA first");
        assert_eq!(second.id(), 10);
        assert_eq!(n.tx_take_wire_packet(horizon), None);
    }

    #[test]
    fn per_queue_stats_register_only_with_multiple_queues() {
        use simnet_sim::stats::{DumpLevel, StatsRegistry};
        let single = nic();
        let mut reg = StatsRegistry::with_level(DumpLevel::Full);
        single.register_stats(&mut reg);
        let text = reg.render_gem5();
        assert!(!text.contains("rxq0"), "single queue must not add groups");

        let multi = Nic::new(NicConfig::paper_default().with_queues(2));
        let mut reg = StatsRegistry::with_level(DumpLevel::Full);
        multi.register_stats(&mut reg);
        let text = reg.render_gem5();
        for needle in [
            "system.nic.rxq0.rxPackets",
            "system.nic.rxq1.rxBytes",
            "system.nic.txq0.txPackets",
            "system.nic.txq1.txBytes",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
