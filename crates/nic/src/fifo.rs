//! A byte-capacity packet FIFO (the NIC's on-chip RX/TX SRAM).

use std::collections::VecDeque;

/// A FIFO of items with byte accounting against a fixed capacity.
///
/// "As soon as a packet is received, the NIC enqueues it in an on-chip
/// SRAM buffer referred to as RX FIFO" (§VII.A). When the DMA engine
/// cannot drain it, the FIFO fills and packets drop at the wire.
///
/// ```
/// use simnet_nic::ByteFifo;
/// let mut fifo: ByteFifo<&str> = ByteFifo::new(100);
/// assert!(fifo.push(60, "a").is_ok());
/// assert!(fifo.push(60, "b").is_err()); // would exceed 100 bytes
/// assert_eq!(fifo.pop(), Some((60, "a")));
/// ```
#[derive(Debug, Clone)]
pub struct ByteFifo<T> {
    capacity: u64,
    used: u64,
    items: VecDeque<(u64, T)>,
    high_watermark: u64,
}

impl<T> ByteFifo<T> {
    /// Creates a FIFO holding up to `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Self {
            capacity,
            used: 0,
            items: VecDeque::new(),
            high_watermark: 0,
        }
    }

    /// Byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently queued.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Free bytes.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Whether an item of `bytes` would fit.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.free()
    }

    /// Whether the FIFO holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Highest byte occupancy ever observed.
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Enqueues `item` occupying `bytes`; returns the item back on
    /// overflow so the caller can account the drop.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the item does not fit.
    pub fn push(&mut self, bytes: u64, item: T) -> Result<(), T> {
        if !self.fits(bytes) {
            return Err(item);
        }
        self.used += bytes;
        self.high_watermark = self.high_watermark.max(self.used);
        self.items.push_back((bytes, item));
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let (bytes, item) = self.items.pop_front()?;
        self.used -= bytes;
        Some((bytes, item))
    }

    /// Peeks the oldest item without removing it.
    pub fn peek(&self) -> Option<(u64, &T)> {
        self.items.front().map(|(b, i)| (*b, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_accounting() {
        let mut f: ByteFifo<u32> = ByteFifo::new(1000);
        f.push(100, 1).unwrap();
        f.push(200, 2).unwrap();
        assert_eq!(f.used(), 300);
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop(), Some((100, 1)));
        assert_eq!(f.used(), 200);
        assert_eq!(f.pop(), Some((200, 2)));
        assert_eq!(f.pop(), None);
        assert_eq!(f.used(), 0);
    }

    #[test]
    fn overflow_returns_item() {
        let mut f: ByteFifo<&str> = ByteFifo::new(100);
        f.push(100, "fill").unwrap();
        assert_eq!(f.push(1, "extra"), Err("extra"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut f: ByteFifo<()> = ByteFifo::new(64);
        assert!(f.fits(64));
        f.push(64, ()).unwrap();
        assert!(!f.fits(1));
        assert_eq!(f.free(), 0);
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut f: ByteFifo<u8> = ByteFifo::new(100);
        f.push(80, 0).unwrap();
        f.pop();
        f.push(10, 1).unwrap();
        assert_eq!(f.high_watermark(), 80);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f: ByteFifo<u8> = ByteFifo::new(100);
        f.push(10, 7).unwrap();
        assert_eq!(f.peek(), Some((10, &7)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        ByteFifo::<()>::new(0);
    }
}
