//! The Fig. 4 finite-state machine that classifies packet drops.
//!
//! "A three-bit number represents each state. If the leftmost bit is 1,
//! NIC RX FIFO is full, and we drop packets. If the middle bit is 1, the
//! RX Ring Buffer is full; if the right-most bit is 1, the TX Ring Buffer
//! is full. We transition between states on packet reception" (§VII.A).
//!
//! Attribution when the RX FIFO is full:
//!
//! * **DmaDrop** — RX ring *not* full: descriptors were available but the
//!   DMA engine could not drain the FIFO.
//! * **CoreDrop** — RX ring full, TX ring not full: the core fell behind.
//! * **TxDrop** — TX ring full (which stalled the core, which filled the
//!   RX ring): the transmit path is the root cause.

use simnet_sim::stats::Counter;
use simnet_sim::trace::DropClass;

/// The cause assigned to a dropped packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropKind {
    /// The DMA engine could not replenish/drain in time (§VII.A).
    Dma,
    /// The core could not process packets fast enough.
    Core,
    /// The TX path backed up into the RX path.
    Tx,
    /// An injected fault (link bit error, corrupted writeback) killed the
    /// packet — counted separately from the Fig. 4 congestion taxonomy.
    Fault,
}

impl DropKind {
    /// The simulation-layer trace classification for this drop cause
    /// (identical taxonomy; the trace layer cannot depend on this crate).
    pub fn trace_class(self) -> DropClass {
        match self {
            DropKind::Dma => DropClass::Dma,
            DropKind::Core => DropClass::Core,
            DropKind::Tx => DropClass::Tx,
            DropKind::Fault => DropClass::Fault,
        }
    }
}

/// One observation of buffer fullness, sampled at a packet RX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferState {
    /// NIC RX FIFO cannot admit the packet.
    pub rx_fifo_full: bool,
    /// No RX descriptors are available to the DMA engine.
    pub rx_ring_full: bool,
    /// The TX ring has no free slots.
    pub tx_ring_full: bool,
}

impl BufferState {
    /// The state's three-bit encoding `{fifo, rx_ring, tx_ring}` as in
    /// Fig. 4 (e.g. `0b110` = FIFO full + RX ring full).
    pub fn bits(&self) -> u8 {
        (u8::from(self.rx_fifo_full) << 2)
            | (u8::from(self.rx_ring_full) << 1)
            | u8::from(self.tx_ring_full)
    }
}

/// The drop-classification FSM with its per-cause counters.
///
/// ```
/// use simnet_nic::{DropFsm, DropKind};
/// use simnet_nic::drop_fsm::BufferState;
///
/// let mut fsm = DropFsm::new();
/// // FIFO full while descriptors were still available: DMA is at fault.
/// let kind = fsm.on_packet_rx(BufferState {
///     rx_fifo_full: true,
///     rx_ring_full: false,
///     tx_ring_full: false,
/// });
/// assert_eq!(kind, Some(DropKind::Dma));
/// assert_eq!(fsm.dma_drops.value(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DropFsm {
    state: BufferState,
    /// Drops attributed to the DMA engine.
    pub dma_drops: Counter,
    /// Drops attributed to the core.
    pub core_drops: Counter,
    /// Drops attributed to the TX path.
    pub tx_drops: Counter,
    /// Drops caused by injected faults (outside the Fig. 4 taxonomy).
    pub fault_drops: Counter,
    /// Packets accepted (no drop).
    pub accepted: Counter,
}

impl DropFsm {
    /// Creates the FSM in the balanced `0,0,0` state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state's three-bit encoding.
    pub fn state_bits(&self) -> u8 {
        self.state.bits()
    }

    /// Observes a packet reception with the given buffer fullness;
    /// transitions the FSM and, if the packet drops (RX FIFO full),
    /// classifies and counts the drop.
    pub fn on_packet_rx(&mut self, observed: BufferState) -> Option<DropKind> {
        self.state = observed;
        if !observed.rx_fifo_full {
            self.accepted.inc();
            return None;
        }
        let kind = if !observed.rx_ring_full {
            // 1,0,x — descriptors available, DMA is behind.
            self.dma_drops.inc();
            DropKind::Dma
        } else if !observed.tx_ring_full {
            // 1,1,0 — core is behind.
            self.core_drops.inc();
            DropKind::Core
        } else {
            // 1,1,1 — TX backpressure chain.
            self.tx_drops.inc();
            DropKind::Tx
        };
        Some(kind)
    }

    /// Counts a fault-induced drop. The Fig. 4 state is untouched: fault
    /// drops say nothing about buffer fullness.
    pub fn on_fault_drop(&mut self) -> DropKind {
        self.fault_drops.inc();
        DropKind::Fault
    }

    /// Total drops of all causes, fault-induced included.
    pub fn total_drops(&self) -> u64 {
        self.dma_drops.value()
            + self.core_drops.value()
            + self.tx_drops.value()
            + self.fault_drops.value()
    }

    /// Drop rate over all observed receptions (0.0 when idle).
    pub fn drop_rate(&self) -> f64 {
        let total = self.total_drops() + self.accepted.value();
        if total == 0 {
            0.0
        } else {
            self.total_drops() as f64 / total as f64
        }
    }

    /// Fraction of *congestion* drops attributed to each cause
    /// `(dma, core, tx)`; zeros when nothing dropped. This is one bar of
    /// Fig. 5 — fault drops are excluded so injected faults never skew
    /// the paper's taxonomy.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.dma_drops.value() + self.core_drops.value() + self.tx_drops.value();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.dma_drops.value() as f64 / total as f64,
            self.core_drops.value() as f64 / total as f64,
            self.tx_drops.value() as f64 / total as f64,
        )
    }

    /// Clears counters; state is kept.
    pub fn reset_stats(&mut self) {
        self.dma_drops.reset();
        self.core_drops.reset();
        self.tx_drops.reset();
        self.fault_drops.reset();
        self.accepted.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(fifo: bool, ring: bool, tx: bool) -> BufferState {
        BufferState {
            rx_fifo_full: fifo,
            rx_ring_full: ring,
            tx_ring_full: tx,
        }
    }

    #[test]
    fn balanced_state_accepts() {
        let mut fsm = DropFsm::new();
        assert_eq!(fsm.on_packet_rx(state(false, false, false)), None);
        assert_eq!(fsm.accepted.value(), 1);
        assert_eq!(fsm.total_drops(), 0);
        assert_eq!(fsm.state_bits(), 0b000);
    }

    #[test]
    fn intermediate_states_do_not_drop() {
        // Blue states of Fig. 4: ring(s) full but FIFO not yet full.
        let mut fsm = DropFsm::new();
        for s in [
            state(false, true, false),
            state(false, false, true),
            state(false, true, true),
        ] {
            assert_eq!(fsm.on_packet_rx(s), None);
        }
        assert_eq!(fsm.total_drops(), 0);
        assert_eq!(fsm.accepted.value(), 3);
    }

    #[test]
    fn dma_drop_when_descriptors_available() {
        let mut fsm = DropFsm::new();
        assert_eq!(
            fsm.on_packet_rx(state(true, false, false)),
            Some(DropKind::Dma)
        );
        // "x is don't care": TX ring full doesn't change DMA attribution.
        assert_eq!(
            fsm.on_packet_rx(state(true, false, true)),
            Some(DropKind::Dma)
        );
        assert_eq!(fsm.dma_drops.value(), 2);
    }

    #[test]
    fn core_drop_when_rx_ring_full() {
        let mut fsm = DropFsm::new();
        assert_eq!(
            fsm.on_packet_rx(state(true, true, false)),
            Some(DropKind::Core)
        );
        assert_eq!(fsm.core_drops.value(), 1);
    }

    #[test]
    fn tx_drop_when_everything_backed_up() {
        let mut fsm = DropFsm::new();
        assert_eq!(
            fsm.on_packet_rx(state(true, true, true)),
            Some(DropKind::Tx)
        );
        assert_eq!(fsm.tx_drops.value(), 1);
        assert_eq!(fsm.state_bits(), 0b111);
    }

    #[test]
    fn recovery_transitions_back_to_intermediate() {
        // "When at a gray-colored state and RxFifo is no longer full, then
        // on the next RX packet, we transition to a proper intermediate
        // state."
        let mut fsm = DropFsm::new();
        fsm.on_packet_rx(state(true, true, false));
        assert_eq!(fsm.state_bits(), 0b110);
        fsm.on_packet_rx(state(false, true, false));
        assert_eq!(fsm.state_bits(), 0b010);
        assert_eq!(fsm.total_drops(), 1);
    }

    #[test]
    fn drop_rate_and_breakdown() {
        let mut fsm = DropFsm::new();
        for _ in 0..6 {
            fsm.on_packet_rx(state(false, false, false));
        }
        fsm.on_packet_rx(state(true, false, false));
        fsm.on_packet_rx(state(true, true, false));
        fsm.on_packet_rx(state(true, true, false));
        fsm.on_packet_rx(state(true, true, true));
        assert_eq!(fsm.total_drops(), 4);
        assert!((fsm.drop_rate() - 0.4).abs() < 1e-12);
        let (dma, core, tx) = fsm.breakdown();
        assert!((dma - 0.25).abs() < 1e-12);
        assert!((core - 0.5).abs() < 1e-12);
        assert!((tx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fault_drops_count_but_keep_state_and_breakdown() {
        let mut fsm = DropFsm::new();
        fsm.on_packet_rx(state(true, false, false));
        assert_eq!(fsm.on_fault_drop(), DropKind::Fault);
        assert_eq!(fsm.fault_drops.value(), 1);
        assert_eq!(fsm.total_drops(), 2, "fault counts toward total");
        assert_eq!(fsm.state_bits(), 0b100, "Fig. 4 state untouched");
        let (dma, core, tx) = fsm.breakdown();
        assert_eq!(
            (dma, core, tx),
            (1.0, 0.0, 0.0),
            "breakdown excludes faults"
        );
        assert_eq!(DropKind::Fault.trace_class(), DropClass::Fault);
        fsm.reset_stats();
        assert_eq!(fsm.fault_drops.value(), 0);
    }

    #[test]
    fn reset_clears_counts_keeps_state() {
        let mut fsm = DropFsm::new();
        fsm.on_packet_rx(state(true, true, true));
        fsm.reset_stats();
        assert_eq!(fsm.total_drops(), 0);
        assert_eq!(fsm.state_bits(), 0b111);
        assert_eq!(fsm.drop_rate(), 0.0);
    }
}
