//! The NIC's memory-mapped register file (e1000-style offsets).
//!
//! §III.A.5: "the Interrupt Mask Register ... is included in the i8254xGBe
//! model, but the read and write methods for accessing the register are
//! not implemented in the current gem5 release. We implemented the read
//! and write methods to enable DPDK to launch its PMD." In
//! [`NicCompatMode::Baseline`], accesses to IMS/IMC fault exactly like
//! unimplemented-register accesses in gem5; in
//! [`NicCompatMode::Extended`] they work.

/// Register offsets within BAR0 (subset of the 8254x map).
pub mod offsets {
    /// Device control.
    pub const CTRL: u32 = 0x0000;
    /// Device status.
    pub const STATUS: u32 = 0x0008;
    /// Interrupt cause read (read-to-clear).
    pub const ICR: u32 = 0x00C0;
    /// Interrupt mask set/read.
    pub const IMS: u32 = 0x00D0;
    /// Interrupt mask clear.
    pub const IMC: u32 = 0x00D8;
    /// RX descriptor ring length.
    pub const RDLEN: u32 = 0x2808;
    /// RX descriptor head (NIC-owned).
    pub const RDH: u32 = 0x2810;
    /// RX descriptor tail (software-owned).
    pub const RDT: u32 = 0x2818;
    /// RX descriptor writeback threshold — the parameter §III.A.3 adds so
    /// "the user can control the threshold of descriptor writebacks".
    pub const WBTHRESH: u32 = 0x2828;
    /// TX descriptor ring length.
    pub const TDLEN: u32 = 0x3808;
    /// TX descriptor head.
    pub const TDH: u32 = 0x3810;
    /// TX descriptor tail.
    pub const TDT: u32 = 0x3818;
    /// Multiple receive queues command — RSS enable + active queue count
    /// (82574/82599-style; zero means single-queue legacy operation).
    pub const MRQC: u32 = 0x5818;
}

/// Interrupt cause / mask bits (subset).
pub mod irq {
    /// Receive timer / packet delivered.
    pub const RXT0: u32 = 1 << 7;
    /// RX descriptor minimum threshold.
    pub const RXDMT0: u32 = 1 << 4;
    /// Receiver FIFO overrun.
    pub const RXO: u32 = 1 << 6;
    /// TX descriptor written back.
    pub const TXDW: u32 = 1 << 0;
}

/// Whether the register file reproduces baseline gem5's unimplemented
/// interrupt-mask accessors or the paper's fixed ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NicCompatMode {
    /// IMS/IMC accesses fault (baseline gem5).
    Baseline,
    /// IMS/IMC implemented (this work).
    #[default]
    Extended,
}

/// Error accessing a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegError {
    /// The register's accessor is not implemented in this compat mode.
    Unimplemented(u32),
    /// No register at this offset.
    Unknown(u32),
}

impl std::fmt::Display for RegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegError::Unimplemented(off) => {
                write!(f, "register 0x{off:04x} access methods not implemented")
            }
            RegError::Unknown(off) => write!(f, "no register at offset 0x{off:04x}"),
        }
    }
}

impl std::error::Error for RegError {}

/// The register file.
#[derive(Debug)]
pub struct RegisterFile {
    mode: NicCompatMode,
    ctrl: u32,
    ims: u32,
    icr: u32,
    rdlen: u32,
    rdh: u32,
    rdt: u32,
    tdlen: u32,
    tdh: u32,
    tdt: u32,
    wbthresh: u32,
    mrqc: u32,
}

impl RegisterFile {
    /// Creates a register file in the given compat mode.
    pub fn new(mode: NicCompatMode) -> Self {
        Self {
            mode,
            ctrl: 0,
            ims: 0,
            icr: 0,
            rdlen: 0,
            rdh: 0,
            rdt: 0,
            tdlen: 0,
            tdh: 0,
            tdt: 0,
            wbthresh: 4,
            mrqc: 0,
        }
    }

    /// The compat mode.
    pub fn mode(&self) -> NicCompatMode {
        self.mode
    }

    /// Current interrupt mask.
    pub fn interrupt_mask(&self) -> u32 {
        self.ims
    }

    /// Whether any cause in `mask` is both raised and unmasked.
    pub fn interrupt_pending(&self) -> bool {
        self.icr & self.ims != 0
    }

    /// Raises interrupt cause bits (device side).
    pub fn raise_cause(&mut self, bits: u32) {
        self.icr |= bits;
    }

    /// The configured descriptor writeback threshold.
    pub fn writeback_threshold(&self) -> usize {
        self.wbthresh.max(1) as usize
    }

    /// The RSS queue count programmed into MRQC (0 = legacy
    /// single-queue).
    pub fn rss_queues(&self) -> usize {
        self.mrqc as usize
    }

    /// MMIO read.
    ///
    /// # Errors
    ///
    /// [`RegError::Unimplemented`] for IMS in baseline mode;
    /// [`RegError::Unknown`] for unmapped offsets.
    pub fn read(&mut self, offset: u32) -> Result<u32, RegError> {
        use offsets::*;
        match offset {
            CTRL => Ok(self.ctrl),
            STATUS => Ok(0x8000_0003), // link up, full duplex
            ICR => {
                let v = self.icr;
                self.icr = 0; // read-to-clear
                Ok(v)
            }
            IMS => match self.mode {
                NicCompatMode::Baseline => Err(RegError::Unimplemented(offset)),
                NicCompatMode::Extended => Ok(self.ims),
            },
            RDLEN => Ok(self.rdlen),
            RDH => Ok(self.rdh),
            RDT => Ok(self.rdt),
            WBTHRESH => Ok(self.wbthresh),
            TDLEN => Ok(self.tdlen),
            TDH => Ok(self.tdh),
            TDT => Ok(self.tdt),
            MRQC => Ok(self.mrqc),
            other => Err(RegError::Unknown(other)),
        }
    }

    /// MMIO write.
    ///
    /// # Errors
    ///
    /// [`RegError::Unimplemented`] for IMS/IMC in baseline mode;
    /// [`RegError::Unknown`] for unmapped offsets.
    pub fn write(&mut self, offset: u32, value: u32) -> Result<(), RegError> {
        use offsets::*;
        match offset {
            CTRL => self.ctrl = value,
            ICR => self.icr &= !value, // write-1-to-clear
            IMS => match self.mode {
                NicCompatMode::Baseline => return Err(RegError::Unimplemented(offset)),
                NicCompatMode::Extended => self.ims |= value,
            },
            IMC => match self.mode {
                NicCompatMode::Baseline => return Err(RegError::Unimplemented(offset)),
                NicCompatMode::Extended => self.ims &= !value,
            },
            RDLEN => self.rdlen = value,
            RDH => self.rdh = value,
            RDT => self.rdt = value,
            WBTHRESH => self.wbthresh = value,
            TDLEN => self.tdlen = value,
            TDH => self.tdh = value,
            TDT => self.tdt = value,
            MRQC => self.mrqc = value,
            STATUS => {} // read-only, write dropped
            other => return Err(RegError::Unknown(other)),
        }
        Ok(())
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new(NicCompatMode::Extended)
    }
}

#[cfg(test)]
mod tests {
    use super::offsets::*;
    use super::*;

    #[test]
    fn ims_imc_work_in_extended_mode() {
        let mut r = RegisterFile::new(NicCompatMode::Extended);
        r.write(IMS, 0xFF).unwrap();
        assert_eq!(r.read(IMS).unwrap(), 0xFF);
        r.write(IMC, 0x0F).unwrap();
        assert_eq!(r.read(IMS).unwrap(), 0xF0);
        assert_eq!(r.interrupt_mask(), 0xF0);
    }

    #[test]
    fn ims_faults_in_baseline_mode() {
        // The §III.A.5 defect: PMD launch pokes IMC and faults.
        let mut r = RegisterFile::new(NicCompatMode::Baseline);
        assert_eq!(r.write(IMC, u32::MAX), Err(RegError::Unimplemented(IMC)));
        assert_eq!(r.read(IMS), Err(RegError::Unimplemented(IMS)));
    }

    #[test]
    fn icr_is_read_to_clear() {
        let mut r = RegisterFile::default();
        r.raise_cause(irq::RXT0 | irq::RXO);
        assert_eq!(r.read(ICR).unwrap(), irq::RXT0 | irq::RXO);
        assert_eq!(r.read(ICR).unwrap(), 0);
    }

    #[test]
    fn interrupt_pending_respects_mask() {
        let mut r = RegisterFile::default();
        r.raise_cause(irq::RXT0);
        assert!(!r.interrupt_pending());
        r.write(IMS, irq::RXT0).unwrap();
        assert!(r.interrupt_pending());
        r.write(IMC, irq::RXT0).unwrap();
        assert!(!r.interrupt_pending());
    }

    #[test]
    fn ring_registers_round_trip() {
        let mut r = RegisterFile::default();
        for off in [RDLEN, RDH, RDT, TDLEN, TDH, TDT, WBTHRESH, MRQC] {
            r.write(off, 0x123).unwrap();
            assert_eq!(r.read(off).unwrap(), 0x123);
        }
    }

    #[test]
    fn mrqc_defaults_to_legacy_single_queue() {
        let mut r = RegisterFile::default();
        assert_eq!(r.rss_queues(), 0);
        r.write(MRQC, 4).unwrap();
        assert_eq!(r.rss_queues(), 4);
    }

    #[test]
    fn writeback_threshold_floor_is_one() {
        let mut r = RegisterFile::default();
        r.write(WBTHRESH, 0).unwrap();
        assert_eq!(r.writeback_threshold(), 1);
        r.write(WBTHRESH, 32).unwrap();
        assert_eq!(r.writeback_threshold(), 32);
    }

    #[test]
    fn unknown_offsets_fault() {
        let mut r = RegisterFile::default();
        assert_eq!(r.read(0xFFFF), Err(RegError::Unknown(0xFFFF)));
        assert_eq!(r.write(0xFFFF, 0), Err(RegError::Unknown(0xFFFF)));
    }

    #[test]
    fn status_reports_link_up_and_ignores_writes() {
        let mut r = RegisterFile::default();
        let s = r.read(STATUS).unwrap();
        r.write(STATUS, 0).unwrap();
        assert_eq!(r.read(STATUS).unwrap(), s);
        assert_ne!(s, 0);
    }
}
