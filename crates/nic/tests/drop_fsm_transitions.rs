//! Device-level drop classification: drives a real `Nic` (not the bare
//! FSM) into each Fig. 4 drop state and checks both the returned
//! `DropKind` and the packet-lifecycle trace — every drop must emit one
//! classified `Stage::Drop` event whose per-class totals equal the FSM's
//! aggregate counters.

use simnet_net::{MacAddr, Packet, PacketBuilder};
use simnet_nic::i8254x::TxRequest;
use simnet_nic::{DropKind, Nic, NicConfig};
use simnet_sim::trace::{Component, DropClass, Stage, Tracer};

fn frame(id: u64, len: usize) -> Packet {
    PacketBuilder::new()
        .dst(MacAddr::simulated(1))
        .src(MacAddr::simulated(9))
        .frame_len(len)
        .build(id)
}

/// A NIC whose buffers are tiny enough to fill deliberately: a FIFO that
/// holds two 1518 B frames, an 8-entry RX ring and a 2-entry TX ring.
/// `desc_refill_batch` is lowered to 1 so the ring only counts as full
/// when genuinely out of descriptors (the default low-threshold of 32
/// would make any tiny ring permanently "full").
fn tiny_nic() -> (Nic, Tracer) {
    let mut cfg = NicConfig::paper_default();
    cfg.rx_fifo_bytes = 3_100;
    cfg.rx_ring_size = 8;
    cfg.tx_ring_size = 2;
    cfg.desc_refill_batch = 1;
    cfg.desc_cache_size = 8;
    let mut nic = Nic::new(cfg);
    let tracer = Tracer::enabled(4096);
    nic.set_tracer(tracer.clone());
    (nic, tracer)
}

/// Fills the RX FIFO with 1518 B frames until one drops; returns the kind.
fn fill_fifo_until_drop(nic: &mut Nic, now: u64, first_id: u64) -> DropKind {
    for i in 0..8 {
        if let Some(kind) = nic.wire_rx(now + i, frame(first_id + i, 1518)) {
            return kind;
        }
    }
    panic!("FIFO never filled");
}

/// Per-class totals of `Stage::Drop` events in a trace (congestion
/// classes only; these tests never install a fault plan).
fn trace_drop_counts(events: &[simnet_sim::TraceEvent]) -> (u64, u64, u64) {
    let (mut dma, mut core, mut tx) = (0, 0, 0);
    for ev in events {
        if let Stage::Drop { class, .. } = ev.stage {
            assert_eq!(ev.component, Component::Nic);
            match class {
                DropClass::Dma => dma += 1,
                DropClass::Core => core += 1,
                DropClass::Tx => tx += 1,
                DropClass::Fault => panic!("no fault plan installed"),
            }
        }
    }
    (dma, core, tx)
}

#[test]
fn dma_drop_when_descriptors_posted_but_dma_stalled() {
    let (mut nic, tracer) = tiny_nic();
    // Descriptors are available; the "stall" is simply never pumping the
    // DMA engine, so the FIFO cannot drain.
    nic.rx_ring_post(8);
    let kind = fill_fifo_until_drop(&mut nic, 0, 0);
    assert_eq!(kind, DropKind::Dma);
    assert_eq!(nic.drop_fsm().dma_drops.value(), 1);
    assert_eq!(nic.drop_fsm().state_bits() & 0b100, 0b100);

    let events = tracer.take();
    assert_eq!(trace_drop_counts(&events), (1, 0, 0));
    // The drop event must carry the queue occupancies at drop time: a
    // full FIFO and free descriptors (that is what makes it a DmaDrop).
    let drop_ev = events
        .iter()
        .find(|e| matches!(e.stage, Stage::Drop { .. }))
        .unwrap();
    if let Stage::Drop {
        fifo_used,
        ring_free,
        ..
    } = drop_ev.stage
    {
        assert!(fifo_used >= 2 * 1518);
        assert!(ring_free > 0, "DmaDrop requires free descriptors");
    }
}

#[test]
fn core_drop_when_ring_exhausted() {
    let (mut nic, tracer) = tiny_nic();
    // No descriptors ever posted: the ring is full from the NIC's point
    // of view (software owns every entry), mimicking a core too slow to
    // replenish. The TX ring stays empty.
    let kind = fill_fifo_until_drop(&mut nic, 0, 100);
    assert_eq!(kind, DropKind::Core);
    assert_eq!(nic.drop_fsm().core_drops.value(), 1);

    let events = tracer.take();
    assert_eq!(trace_drop_counts(&events), (0, 1, 0));
    let drop_ev = events
        .iter()
        .find(|e| matches!(e.stage, Stage::Drop { .. }))
        .unwrap();
    if let Stage::Drop {
        ring_free, tx_used, ..
    } = drop_ev.stage
    {
        assert_eq!(ring_free, 0, "CoreDrop requires an exhausted ring");
        assert!(tx_used < 2, "TX ring must not be full for a CoreDrop");
    }
}

#[test]
fn tx_drop_when_everything_backed_up() {
    let (mut nic, tracer) = tiny_nic();
    // Fill the TX ring (2 slots, DMA never advanced) on top of an
    // exhausted RX ring: the full backpressure chain of Fig. 4.
    let reqs: Vec<TxRequest> = (0..2)
        .map(|i| TxRequest {
            packet: frame(200 + i, 256),
            mbuf: i as usize,
        })
        .collect();
    let (accepted, rejected) = nic.tx_submit(0, reqs);
    assert_eq!((accepted, rejected.len()), (2, 0));
    assert_eq!(nic.tx_free_slots(0), 0);

    let kind = fill_fifo_until_drop(&mut nic, 1, 300);
    assert_eq!(kind, DropKind::Tx);
    assert_eq!(nic.drop_fsm().tx_drops.value(), 1);
    assert_eq!(nic.drop_fsm().state_bits(), 0b111);

    let events = tracer.take();
    assert_eq!(trace_drop_counts(&events), (0, 0, 1));
    let drop_ev = events
        .iter()
        .find(|e| matches!(e.stage, Stage::Drop { .. }))
        .unwrap();
    if let Stage::Drop {
        ring_free, tx_used, ..
    } = drop_ev.stage
    {
        assert_eq!(ring_free, 0);
        assert_eq!(tx_used, 2, "TxDrop requires a full TX ring");
    }
}

#[test]
fn mixed_sequence_trace_agrees_with_fsm_counters() {
    let (mut nic, tracer) = tiny_nic();
    // Exhausted ring + repeated overfill: several core drops, then free
    // the TX path observation by filling TX and dropping again, then
    // post descriptors so further drops classify as DMA.
    fill_fifo_until_drop(&mut nic, 0, 0);
    fill_fifo_until_drop(&mut nic, 10, 10);

    let reqs = vec![
        TxRequest {
            packet: frame(900, 256),
            mbuf: 0,
        },
        TxRequest {
            packet: frame(901, 256),
            mbuf: 1,
        },
    ];
    nic.tx_submit(20, reqs);
    fill_fifo_until_drop(&mut nic, 30, 20);

    nic.rx_ring_post(8);
    fill_fifo_until_drop(&mut nic, 40, 30);

    let fsm = nic.drop_fsm();
    let counters = (
        fsm.dma_drops.value(),
        fsm.core_drops.value(),
        fsm.tx_drops.value(),
    );
    assert_eq!(counters, (1, 2, 1));
    assert_eq!(
        trace_drop_counts(&tracer.take()),
        counters,
        "trace drop events must mirror the FSM counters exactly"
    );
}
