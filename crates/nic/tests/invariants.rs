//! Property-based invariants of the NIC device model.

use proptest::prelude::*;
use simnet_mem::{MemoryConfig, MemorySystem};
use simnet_net::{MacAddr, Packet, PacketBuilder};
use simnet_nic::i8254x::TxRequest;
use simnet_nic::{Nic, NicConfig};

#[derive(Debug, Clone)]
enum Step {
    /// Deliver a wire frame of this length.
    Rx(u16),
    /// Advance the RX DMA engine.
    PumpRx,
    /// Poll up to this many packets and post the ring back.
    Poll(u8),
    /// Submit this many 256 B frames for TX.
    Tx(u8),
    /// Advance the TX DMA engine and drain wire-ready frames.
    PumpTx,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (64u16..1518).prop_map(Step::Rx),
        2 => Just(Step::PumpRx),
        2 => (1u8..48).prop_map(Step::Poll),
        1 => (1u8..16).prop_map(Step::Tx),
        2 => Just(Step::PumpTx),
    ]
}

fn frame(id: u64, len: usize) -> Packet {
    PacketBuilder::new()
        .dst(MacAddr::simulated(1))
        .src(MacAddr::simulated(9))
        .frame_len(len)
        .build(id)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Packet conservation through the whole device: every frame accepted
    /// from the wire is eventually polled exactly once — none duplicated,
    /// none invented — and drops equal offered minus accepted.
    #[test]
    fn rx_path_conserves_packets(steps in prop::collection::vec(step_strategy(), 1..300)) {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut nic = Nic::new(NicConfig::paper_default());
        nic.rx_ring_post(1024);

        let mut now = 0u64;
        let mut offered = 0u64;
        let mut polled_ids = std::collections::HashSet::new();
        let mut polled = 0u64;
        let mut submitted_tx = 0u64;
        let mut wired_tx = 0u64;
        let mut next_id = 0u64;

        for step in &steps {
            now += 30_000;
            match *step {
                Step::Rx(len) => {
                    offered += 1;
                    let _ = nic.wire_rx(now, frame(next_id, len as usize));
                    next_id += 1;
                }
                Step::PumpRx => {
                    let mut t = now;
                    if let Some(n) = nic.rx_dma_start(t, &mut mem) {
                        t = n;
                    }
                    for _ in 0..64 {
                        match nic.rx_dma_advance(t, &mut mem) {
                            Some(n) => t = n.max(t + 1),
                            None => break,
                        }
                    }
                    now = now.max(t);
                }
                Step::Poll(max) => {
                    let got = nic.rx_poll(now, max as usize);
                    for c in &got {
                        prop_assert!(
                            polled_ids.insert(c.packet.id()),
                            "duplicate delivery of packet {}",
                            c.packet.id()
                        );
                        prop_assert!(c.visible_at <= now, "polled before visible");
                    }
                    polled += got.len() as u64;
                    nic.rx_ring_post(got.len());
                }
                Step::Tx(count) => {
                    let reqs: Vec<TxRequest> = (0..count)
                        .map(|i| TxRequest {
                            packet: frame(1_000_000 + next_id + i as u64, 256),
                            mbuf: 4096 + (i as usize),
                        })
                        .collect();
                    next_id += count as u64;
                    let (accepted, _) = nic.tx_submit(now, reqs);
                    submitted_tx += accepted as u64;
                }
                Step::PumpTx => {
                    let mut t = now;
                    for _ in 0..64 {
                        match nic.tx_dma_advance(t, &mut mem) {
                            Some(n) => t = n.max(t + 1),
                            None => break,
                        }
                    }
                    while nic.tx_take_wire_packet(u64::MAX / 2).is_some() {
                        wired_tx += 1;
                    }
                    now = now.max(t);
                }
            }
        }

        let accepted = nic.stats().rx_frames.value();
        let dropped = nic.drop_fsm().total_drops();
        prop_assert_eq!(accepted + dropped, offered, "wire accounting");
        prop_assert!(polled <= accepted, "cannot poll more than accepted");
        prop_assert!(wired_tx <= submitted_tx, "cannot transmit more than submitted");
        prop_assert_eq!(nic.stats().tx_frames.value(), wired_tx);
    }

    /// Whatever the interleaving, a fully drained NIC (enough pumping and
    /// polling) delivers *every* accepted packet.
    #[test]
    fn full_drain_delivers_everything(lens in prop::collection::vec(64u16..1518, 1..80)) {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut nic = Nic::new(NicConfig::paper_default());
        nic.rx_ring_post(1024);
        let mut now = 0;
        for (i, len) in lens.iter().enumerate() {
            now += 200_000; // 200 ns spacing: no overload
            prop_assert!(nic.wire_rx(now, frame(i as u64, *len as usize)).is_none());
            if let Some(t) = nic.rx_dma_start(now, &mut mem) {
                let mut t = t;
                while let Some(n) = nic.rx_dma_advance(t, &mut mem) {
                    t = n.max(t + 1);
                }
            }
        }
        // Drain any residue and poll far in the future.
        let mut t = now + 1_000_000;
        while let Some(n) = nic.rx_dma_advance(t, &mut mem) {
            t = n.max(t + 1);
        }
        let got = nic.rx_poll(t + 10_000_000, lens.len() + 8);
        prop_assert_eq!(got.len(), lens.len(), "all packets delivered");
        // Byte-exact delivery, in arrival order.
        for (i, c) in got.iter().enumerate() {
            prop_assert_eq!(c.packet.id(), i as u64);
            prop_assert_eq!(c.packet.len(), lens[i] as usize);
        }
    }
}
