//! Property-based invariants of the memory hierarchy.

use proptest::prelude::*;
use simnet_mem::{layout, MemoryConfig, MemorySystem, CACHE_LINE};

/// A random access script: mixes core reads/writes/fetches with DMA
/// writes/reads over a handful of address regions.
#[derive(Debug, Clone)]
enum Step {
    CoreRead(u64),
    CoreWrite(u64),
    Ifetch(u64),
    DmaWrite(usize, u16),
    DmaRead(usize, u16),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..1 << 22).prop_map(|off| Step::CoreRead(layout::WORKSET_BASE + off)),
        (0u64..1 << 22).prop_map(|off| Step::CoreWrite(layout::HEAP_BASE + off)),
        (0u64..1 << 20).prop_map(|off| Step::Ifetch(layout::WORKSET_BASE + (8 << 20) + off)),
        ((0usize..512), (60u16..1518)).prop_map(|(slot, len)| Step::DmaWrite(slot, len)),
        ((0usize..512), (60u16..1518)).prop_map(|(slot, len)| Step::DmaRead(slot, len)),
    ]
}

fn small_config() -> MemoryConfig {
    // Tiny caches so evictions and back-invalidations fire constantly.
    let mut cfg = MemoryConfig::table1_gem5();
    cfg.l1i = simnet_mem::cache::CacheConfig::new(8 << 10, 2);
    cfg.l1d = simnet_mem::cache::CacheConfig::new(8 << 10, 2);
    cfg.l2 = simnet_mem::cache::CacheConfig::new(32 << 10, 4);
    cfg.llc = simnet_mem::cache::CacheConfig::with_dca(128 << 10, 8, 2);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The inclusive-hierarchy invariant survives arbitrary interleavings
    /// of core traffic, DCA fills and coherence invalidations.
    #[test]
    fn hierarchy_stays_inclusive(steps in prop::collection::vec(step_strategy(), 1..400)) {
        let mut mem = MemorySystem::new(small_config());
        let mut now = 0u64;
        for step in &steps {
            now += 10_000;
            match *step {
                Step::CoreRead(a) => { mem.core_read(now, a, 8); }
                Step::CoreWrite(a) => { mem.core_write(now, a, 8); }
                Step::Ifetch(a) => { mem.instr_fetch(now, a); }
                Step::DmaWrite(slot, len) => {
                    mem.dma_write(now, layout::mbuf_addr(slot), len as u64);
                }
                Step::DmaRead(slot, len) => {
                    mem.dma_read(now, layout::mbuf_addr(slot), len as u64);
                }
            }
        }
        mem.verify_inclusion().map_err(TestCaseError::fail)?;
    }

    /// Completion times are monotone: an access issued later never
    /// completes before an identical access issued earlier (per path).
    #[test]
    fn dma_completions_are_monotone(
        lens in prop::collection::vec(60u64..1518, 1..64),
    ) {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut now = 0u64;
        let mut last_done = 0u64;
        for (i, len) in lens.iter().enumerate() {
            now += 50_000;
            let done = mem.dma_write(now, layout::mbuf_addr(i % 1024), *len);
            prop_assert!(done >= now, "completion precedes issue");
            prop_assert!(done >= last_done, "bus order violated");
            last_done = done;
        }
    }

    /// Core access latency is always at least the L1 hit latency and the
    /// same line read twice in a row hits the L1.
    #[test]
    fn repeat_reads_hit_l1(addr in (0u64..1 << 30).prop_map(|a| layout::HEAP_BASE + a)) {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
        let (first, _) = mem.core_read(0, addr, 8);
        let (second, level) = mem.core_read(first, addr, 8);
        prop_assert!(second <= first);
        prop_assert_eq!(level, simnet_mem::HitLevel::L1);
        prop_assert!(second >= 600, "at least ~2 cycles at 3 GHz: {}", second);
    }
}

#[test]
fn dca_partition_bounds_dma_occupancy() {
    // DMA fills can never occupy more than dca_ways/assoc of the LLC.
    let mut mem = MemorySystem::new(small_config()); // 128 KiB LLC, 2/8 DCA
    for slot in 0..4096 {
        mem.dma_write(slot as u64 * 1000, layout::mbuf_addr(slot % 2048), 1518);
    }
    // Count resident mbuf-region lines in the LLC via probing.
    let resident = (0..2048 * 32)
        .filter(|i| {
            let addr = layout::MBUF_BASE + *i as u64 * CACHE_LINE;
            mem.core_read(u64::MAX / 2 + *i as u64 * 1000, addr, 8).1 == simnet_mem::HitLevel::Llc
        })
        .count();
    // The DCA partition is 2/8 x 128 KiB = 32 KiB = 512 lines; probing
    // promotes lines into core ways, so allow slack, but the bound must
    // be far below "whole LLC".
    assert!(
        resident <= 1024,
        "DMA data must stay within the DCA partition: {resident} lines"
    );
}
