//! A bandwidth-limited, in-order bus modeled as an occupancy resource.
//!
//! The simulator's I/O bus "models \[the\] PCIe bus in a real system"
//! (paper footnote 1). Each transfer waits for the bus to drain, pays a
//! fixed per-transaction overhead (header/ack/protocol cost), then
//! serializes its payload at the configured bandwidth. The paper's Fig. 6
//! finding — "gem5's DMA engine is the bottleneck" at large packet sizes —
//! is this resource saturating.

use simnet_sim::tick::{Bandwidth, Tick};

use simnet_sim::stats::Counter;

/// The outcome of one bus transfer request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// When the transfer started (after queuing).
    pub start: Tick,
    /// When the last byte finished.
    pub finish: Tick,
}

impl BusGrant {
    /// Total latency from request to completion.
    pub fn latency(&self, requested_at: Tick) -> Tick {
        self.finish.saturating_sub(requested_at)
    }
}

/// A shared, in-order bus with fixed bandwidth and per-transaction overhead.
///
/// ```
/// use simnet_mem::Bus;
/// use simnet_sim::tick::Bandwidth;
/// let mut bus = Bus::new("io", Bandwidth::gbps(100.0), 0);
/// let first = bus.transfer(0, 1000);   // 80 ns
/// let second = bus.transfer(0, 1000);  // queues behind the first
/// assert_eq!(first.finish, 80_000);
/// assert_eq!(second.start, 80_000);
/// assert_eq!(second.finish, 160_000);
/// ```
#[derive(Debug)]
pub struct Bus {
    name: &'static str,
    bandwidth: Bandwidth,
    overhead: Tick,
    busy_until: Tick,
    /// Transactions granted.
    pub transactions: Counter,
    /// Payload bytes moved.
    pub bytes: Counter,
    /// Ticks spent busy (for utilization reporting).
    pub busy_ticks: Counter,
}

impl Bus {
    /// Creates a bus with the given payload bandwidth and per-transaction
    /// overhead (charged before the payload serializes).
    pub fn new(name: &'static str, bandwidth: Bandwidth, overhead: Tick) -> Self {
        Self {
            name,
            bandwidth,
            overhead,
            busy_until: 0,
            transactions: Counter::new(),
            bytes: Counter::new(),
            busy_ticks: Counter::new(),
        }
    }

    /// The bus's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The configured payload bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Requests a transfer of `bytes` at time `now`; returns when it starts
    /// and finishes. The bus is held for the whole duration.
    pub fn transfer(&mut self, now: Tick, bytes: u64) -> BusGrant {
        let start = now.max(self.busy_until);
        let duration = self.overhead + self.bandwidth.bytes_to_ticks(bytes);
        let finish = start + duration;
        self.busy_until = finish;
        self.transactions.inc();
        self.bytes.add(bytes);
        self.busy_ticks.add(duration);
        BusGrant { start, finish }
    }

    /// Requests a small *control-path* transfer (descriptor fetch) that
    /// interleaves with bulk traffic instead of queuing behind it — PCIe
    /// completions interleave at TLP granularity, so a 16–512 B descriptor
    /// read never waits out microseconds of queued payload. The transfer
    /// still consumes bus capacity (the busy horizon grows by its
    /// serialization time).
    pub fn transfer_priority(&mut self, now: Tick, bytes: u64) -> BusGrant {
        let duration = self.overhead + self.bandwidth.bytes_to_ticks(bytes);
        let finish = now + duration;
        // The busy horizon grows only by the consumed capacity; a control
        // transfer issued at a future timestamp must not drag the whole
        // bulk queue forward to that instant.
        self.busy_until += duration;
        self.transactions.inc();
        self.bytes.add(bytes);
        self.busy_ticks.add(duration);
        BusGrant { start: now, finish }
    }

    /// When the bus next becomes idle.
    pub fn busy_until(&self) -> Tick {
        self.busy_until
    }

    /// Whether a transfer requested at `now` would start immediately.
    pub fn is_idle_at(&self, now: Tick) -> bool {
        self.busy_until <= now
    }

    /// Fraction of `[0, now]` the bus spent busy.
    pub fn utilization(&self, now: Tick) -> f64 {
        if now == 0 {
            0.0
        } else {
            (self.busy_ticks.value() as f64 / now as f64).min(1.0)
        }
    }

    /// Registers this bus's statistics under the caller's current group
    /// (`now` prices the utilization fraction).
    pub fn register_stats(&self, now: Tick, reg: &mut simnet_sim::stats::StatsRegistry) {
        reg.scalar(
            "transactions",
            self.transactions.value(),
            "bus transactions",
        );
        reg.scalar("bytes", self.bytes.value(), "payload bytes");
        reg.float("utilization", self.utilization(now), "busy fraction");
    }

    /// Clears statistics and the busy horizon (post-warm-up reset).
    pub fn reset_stats(&mut self) {
        self.transactions.reset();
        self.bytes.reset();
        self.busy_ticks.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_sim::tick::ns;

    fn bus() -> Bus {
        Bus::new("test", Bandwidth::gbps(10.0), ns(5))
    }

    #[test]
    fn transfer_time_includes_overhead() {
        let mut b = bus();
        // 100 B at 10 Gbps = 80 ns, plus 5 ns overhead.
        let g = b.transfer(0, 100);
        assert_eq!(g.start, 0);
        assert_eq!(g.finish, ns(85));
        assert_eq!(g.latency(0), ns(85));
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut b = bus();
        let g1 = b.transfer(0, 100);
        let g2 = b.transfer(ns(10), 100);
        assert_eq!(g2.start, g1.finish);
        assert_eq!(g2.finish, g1.finish + ns(85));
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut b = bus();
        b.transfer(0, 100);
        let g = b.transfer(ns(1000), 100);
        assert_eq!(g.start, ns(1000));
    }

    #[test]
    fn zero_byte_transfer_costs_overhead_only() {
        let mut b = bus();
        let g = b.transfer(0, 0);
        assert_eq!(g.finish, ns(5));
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut b = bus();
        b.transfer(0, 100); // busy 85 of first 170 ns
        assert!((b.utilization(ns(170)) - 0.5).abs() < 1e-9);
        assert_eq!(b.utilization(0), 0.0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut b = bus();
        b.transfer(0, 100);
        b.transfer(0, 50);
        assert_eq!(b.transactions.value(), 2);
        assert_eq!(b.bytes.value(), 150);
        b.reset_stats();
        assert_eq!(b.bytes.value(), 0);
        // busy_until survives a stats reset.
        assert!(b.busy_until() > 0);
    }
}
