//! The simulated physical address map.
//!
//! All components agree on these regions so that the *address streams* seen
//! by the caches and DRAM are realistic: descriptor rings are small and hot,
//! mbufs stride at 2 KiB (DPDK's default mempool element), software working
//! sets occupy their own region, and the KV-store heap sits far away.

use crate::Addr;

/// Size of one NIC descriptor in bytes (legacy e1000 descriptor).
pub const DESC_SIZE: u64 = 16;

/// Base of the RX descriptor ring.
pub const RX_RING_BASE: Addr = 0x1000_0000;

/// Base of the TX descriptor ring.
pub const TX_RING_BASE: Addr = 0x1100_0000;

/// Base of the packet-buffer (mbuf) pool.
pub const MBUF_BASE: Addr = 0x2000_0000;

/// Stride between mbufs — DPDK's default 2 KiB mempool element, which also
/// makes every mbuf row-buffer aligned.
pub const MBUF_STRIDE: u64 = 2048;

/// Base of the software working-set region (instruction + data footprint
/// of the network stack and application).
pub const WORKSET_BASE: Addr = 0x4000_0000;

/// Base of the KV-store heap.
pub const HEAP_BASE: Addr = 0x8000_0000;

/// Address of RX descriptor `index` in a ring of `ring_size` descriptors.
#[inline]
pub fn rx_desc_addr(index: usize, ring_size: usize) -> Addr {
    RX_RING_BASE + (index % ring_size) as u64 * DESC_SIZE
}

/// Address of TX descriptor `index` in a ring of `ring_size` descriptors.
#[inline]
pub fn tx_desc_addr(index: usize, ring_size: usize) -> Addr {
    TX_RING_BASE + (index % ring_size) as u64 * DESC_SIZE
}

/// Address of mbuf `index`'s data buffer.
#[inline]
pub fn mbuf_addr(index: usize) -> Addr {
    MBUF_BASE + index as u64 * MBUF_STRIDE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let ring_span = 65_536 * DESC_SIZE;
        assert!(RX_RING_BASE + ring_span < TX_RING_BASE);
        assert!(TX_RING_BASE + ring_span < MBUF_BASE);
        let pool_span = 65_536 * MBUF_STRIDE; // largest supported pool
        assert!(MBUF_BASE + pool_span < WORKSET_BASE);
        const _: () = assert!(WORKSET_BASE < HEAP_BASE);
    }

    #[test]
    fn descriptor_rings_wrap() {
        assert_eq!(rx_desc_addr(0, 256), RX_RING_BASE);
        assert_eq!(rx_desc_addr(256, 256), RX_RING_BASE);
        assert_eq!(rx_desc_addr(257, 256), RX_RING_BASE + DESC_SIZE);
        assert_eq!(tx_desc_addr(5, 256), TX_RING_BASE + 5 * DESC_SIZE);
    }

    #[test]
    fn mbufs_stride_two_kib() {
        assert_eq!(mbuf_addr(0), MBUF_BASE);
        assert_eq!(mbuf_addr(3), MBUF_BASE + 3 * 2048);
    }
}
