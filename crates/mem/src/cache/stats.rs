//! Per-cache statistics.

use simnet_sim::stats::Counter;

use super::AccessClass;

/// Hit/miss/eviction counters for one cache, split by access class.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Core-path hits.
    pub core_hits: Counter,
    /// Core-path misses.
    pub core_misses: Counter,
    /// DMA-path hits.
    pub dma_hits: Counter,
    /// DMA-path misses.
    pub dma_misses: Counter,
    /// Lines displaced by fills.
    pub evictions: Counter,
    /// Dirty lines displaced (writeback traffic).
    pub writebacks: Counter,
    /// Lines removed by coherence invalidations.
    pub invalidations: Counter,
}

impl CacheStats {
    pub(super) fn record_hit(&mut self, class: AccessClass) {
        match class {
            AccessClass::Core => self.core_hits.inc(),
            AccessClass::Dma => self.dma_hits.inc(),
        }
    }

    pub(super) fn record_miss(&mut self, class: AccessClass) {
        match class {
            AccessClass::Core => self.core_misses.inc(),
            AccessClass::Dma => self.dma_misses.inc(),
        }
    }

    /// Total accesses from both classes.
    pub fn accesses(&self) -> u64 {
        self.core_hits.value()
            + self.core_misses.value()
            + self.dma_hits.value()
            + self.dma_misses.value()
    }

    /// Miss rate over both classes (0.0 when idle).
    pub fn miss_rate(&self) -> f64 {
        let misses = self.core_misses.value() + self.dma_misses.value();
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }

    /// Registers this cache's statistics under the caller's current group
    /// (the caller pushes `system.cpu.dcache`, `system.llc`, …).
    pub fn register_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        reg.scalar(
            "overall_hits",
            self.core_hits.value() + self.dma_hits.value(),
            "hits (all classes)",
        );
        reg.scalar(
            "overall_misses",
            self.core_misses.value() + self.dma_misses.value(),
            "misses (all classes)",
        );
        reg.float("overall_miss_rate", self.miss_rate(), "miss rate");
        reg.scalar("writebacks", self.writebacks.value(), "dirty evictions");
        if reg.full() {
            reg.scalar("core_hits", self.core_hits.value(), "core-path hits");
            reg.scalar("core_misses", self.core_misses.value(), "core-path misses");
            reg.scalar("dma_hits", self.dma_hits.value(), "DMA-path hits");
            reg.scalar("dma_misses", self.dma_misses.value(), "DMA-path misses");
            reg.float(
                "core_miss_rate",
                self.core_miss_rate(),
                "core-path miss rate",
            );
            reg.scalar(
                "evictions",
                self.evictions.value(),
                "lines displaced by fills",
            );
            reg.scalar(
                "invalidations",
                self.invalidations.value(),
                "lines removed by coherence invalidations",
            );
        }
    }

    /// Core-path miss rate (0.0 when idle) — the "LLC Miss Rate" series of
    /// Fig. 13 is the core-path miss rate of the LLC.
    pub fn core_miss_rate(&self) -> f64 {
        let total = self.core_hits.value() + self.core_misses.value();
        if total == 0 {
            0.0
        } else {
            self.core_misses.value() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_idle() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.core_miss_rate(), 0.0);
    }

    #[test]
    fn rates_split_by_class() {
        let mut s = CacheStats::default();
        s.record_hit(AccessClass::Core);
        s.record_miss(AccessClass::Core);
        s.record_miss(AccessClass::Dma);
        assert_eq!(s.accesses(), 3);
        assert!((s.core_miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
