//! Set-associative write-back caches with optional DCA way partitioning.

mod stats;

pub use stats::CacheStats;

use crate::{line_base, Addr, CACHE_LINE};

/// Who is accessing the cache. DCA-partitioned caches choose the victim way
/// from the matching partition (§III.A.4: "partitioning LLC ways between
/// DCA ways and core ways").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// CPU load/store/fetch path.
    Core,
    /// NIC DMA path (cache stashing).
    Dma,
}

/// Cache geometry and partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Ways reserved for DMA (DCA) fills; 0 disables partitioning and DMA
    /// fills use the whole set.
    pub dca_ways: usize,
}

impl CacheConfig {
    /// Creates an unpartitioned configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (size/associativity/set-count).
    pub fn new(size: u64, assoc: usize) -> Self {
        let cfg = Self {
            size,
            assoc,
            dca_ways: 0,
        };
        cfg.validate();
        cfg
    }

    /// Creates a DCA-partitioned configuration (`dca_ways` of `assoc`).
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry or if `dca_ways >= assoc`.
    pub fn with_dca(size: u64, assoc: usize, dca_ways: usize) -> Self {
        let cfg = Self {
            size,
            assoc,
            dca_ways,
        };
        cfg.validate();
        cfg
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size / CACHE_LINE) as usize / self.assoc
    }

    fn validate(&self) {
        assert!(self.assoc > 0, "associativity must be positive");
        assert!(
            self.size.is_multiple_of(CACHE_LINE * self.assoc as u64) && self.size > 0,
            "cache size {} must be a positive multiple of line * assoc",
            self.size
        );
        let sets = self.sets();
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        assert!(
            self.dca_ways < self.assoc,
            "dca_ways {} must leave at least one core way of {}",
            self.dca_ways,
            self.assoc
        );
    }
}

#[derive(Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u32,
}

/// What a fill displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// An invalid way was used; nothing displaced.
    None,
    /// A clean line was displaced (silent drop).
    Clean(Addr),
    /// A dirty line was displaced and must be written back.
    Dirty(Addr),
}

impl Eviction {
    /// The displaced line's address, if any.
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Eviction::None => None,
            Eviction::Clean(a) | Eviction::Dirty(a) => Some(a),
        }
    }
}

/// A set-associative, write-back, write-allocate cache tag array.
///
/// This models *contents and replacement*, not timing — latencies live in
/// [`crate::system::MemorySystem`], which also wires evictions into
/// writebacks and inclusive back-invalidations.
///
/// ```
/// use simnet_mem::{AccessClass, Cache, CacheConfig};
/// let mut c = Cache::new("l1d", CacheConfig::new(32 * 1024, 4));
/// assert!(!c.lookup(0x1000, AccessClass::Core, false));
/// c.fill(0x1000, AccessClass::Core, false);
/// assert!(c.lookup(0x1000, AccessClass::Core, false));
/// ```
pub struct Cache {
    name: &'static str,
    cfg: CacheConfig,
    sets: Vec<Line>,
    lru_clock: u32,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(name: &'static str, cfg: CacheConfig) -> Self {
        cfg.validate();
        Self {
            name,
            cfg,
            sets: vec![Line::default(); cfg.sets() * cfg.assoc],
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's name (for stats dumps).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics (post-warm-up reset); contents are kept.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_index(&self, addr: Addr) -> usize {
        ((addr / CACHE_LINE) as usize) & (self.cfg.sets() - 1)
    }

    #[inline]
    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = self.set_index(addr);
        let base = set * self.cfg.assoc;
        base..base + self.cfg.assoc
    }

    fn touch_lru(&mut self, idx: usize) {
        self.lru_clock = self.lru_clock.wrapping_add(1);
        // On wrap, age everything to keep relative order sane.
        if self.lru_clock == 0 {
            for line in &mut self.sets {
                line.lru = 0;
            }
            self.lru_clock = 1;
        }
        self.sets[idx].lru = self.lru_clock;
    }

    /// Looks up `addr`; on hit updates LRU (and the dirty bit if `write`)
    /// and records a hit. On miss records a miss. Returns whether it hit.
    pub fn lookup(&mut self, addr: Addr, class: AccessClass, write: bool) -> bool {
        let tag = line_base(addr);
        let range = self.set_range(addr);
        for idx in range {
            if self.sets[idx].valid && self.sets[idx].tag == tag {
                self.touch_lru(idx);
                if write {
                    self.sets[idx].dirty = true;
                }
                self.stats.record_hit(class);
                return true;
            }
        }
        self.stats.record_miss(class);
        false
    }

    /// Checks residency without updating LRU or statistics.
    pub fn probe(&self, addr: Addr) -> bool {
        let tag = line_base(addr);
        self.set_range(addr)
            .any(|idx| self.sets[idx].valid && self.sets[idx].tag == tag)
    }

    /// Inserts the line for `addr`, choosing a victim from the partition
    /// belonging to `class`. Returns what was displaced.
    ///
    /// If the line is already present this just updates LRU/dirty state.
    pub fn fill(&mut self, addr: Addr, class: AccessClass, dirty: bool) -> Eviction {
        let tag = line_base(addr);
        let range = self.set_range(addr);

        // Already present (e.g. raced by an earlier fill on this path).
        for idx in range.clone() {
            if self.sets[idx].valid && self.sets[idx].tag == tag {
                self.touch_lru(idx);
                if dirty {
                    self.sets[idx].dirty = true;
                }
                return Eviction::None;
            }
        }

        // Partition: with dca_ways = d, ways [0, d) belong to DMA fills and
        // ways [d, assoc) to core fills. Unpartitioned caches use the whole
        // set for both classes.
        let base = range.start;
        let (lo, hi) = if self.cfg.dca_ways == 0 {
            (0, self.cfg.assoc)
        } else {
            match class {
                AccessClass::Dma => (0, self.cfg.dca_ways),
                AccessClass::Core => (self.cfg.dca_ways, self.cfg.assoc),
            }
        };

        // Prefer an invalid way in the partition.
        let mut victim = None;
        for way in lo..hi {
            let idx = base + way;
            if !self.sets[idx].valid {
                victim = Some(idx);
                break;
            }
        }
        // Otherwise the LRU way in the partition.
        let victim = victim.unwrap_or_else(|| {
            (lo..hi)
                .map(|way| base + way)
                .min_by_key(|&idx| self.sets[idx].lru)
                .expect("partition is non-empty")
        });

        let evicted = if self.sets[victim].valid {
            self.stats.evictions.inc();
            if self.sets[victim].dirty {
                self.stats.writebacks.inc();
                Eviction::Dirty(self.sets[victim].tag)
            } else {
                Eviction::Clean(self.sets[victim].tag)
            }
        } else {
            Eviction::None
        };

        self.sets[victim] = Line {
            tag,
            valid: true,
            dirty,
            lru: 0,
        };
        self.touch_lru(victim);
        evicted
    }

    /// Removes the line for `addr` if present. Returns whether the removed
    /// line was dirty (the caller owns the writeback).
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let tag = line_base(addr);
        let range = self.set_range(addr);
        for idx in range {
            if self.sets[idx].valid && self.sets[idx].tag == tag {
                let dirty = self.sets[idx].dirty;
                self.sets[idx] = Line::default();
                self.stats.invalidations.inc();
                return Some(dirty);
            }
        }
        None
    }

    /// Number of currently valid lines (test/diagnostic aid).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|l| l.valid).count()
    }

    /// Addresses of all resident lines (diagnostic aid for invariant
    /// checks, e.g. hierarchy inclusion).
    pub fn resident_lines(&self) -> Vec<Addr> {
        self.sets
            .iter()
            .filter(|l| l.valid)
            .map(|l| l.tag)
            .collect()
    }
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("name", &self.name)
            .field("size", &self.cfg.size)
            .field("assoc", &self.cfg.assoc)
            .field("dca_ways", &self.cfg.dca_ways)
            .field("occupancy", &self.occupancy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new("tiny", CacheConfig::new(512, 2))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(0x40, AccessClass::Core, false));
        c.fill(0x40, AccessClass::Core, false);
        assert!(c.lookup(0x40, AccessClass::Core, false));
        assert_eq!(c.stats().core_hits.value(), 1);
        assert_eq!(c.stats().core_misses.value(), 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.fill(0x80, AccessClass::Core, false);
        assert!(c.lookup(0x81, AccessClass::Core, false));
        assert!(c.lookup(0xBF, AccessClass::Core, false));
        assert!(!c.lookup(0xC0, AccessClass::Core, false));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines 0x000, 0x100, 0x200, ... (4 sets * 64B stride).
        c.fill(0x000, AccessClass::Core, false);
        c.fill(0x100, AccessClass::Core, false);
        // Touch 0x000 so 0x100 is LRU.
        c.lookup(0x000, AccessClass::Core, false);
        let ev = c.fill(0x200, AccessClass::Core, false);
        assert_eq!(ev, Eviction::Clean(0x100));
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x000, AccessClass::Core, true);
        c.fill(0x100, AccessClass::Core, false);
        c.lookup(0x100, AccessClass::Core, false);
        let ev = c.fill(0x200, AccessClass::Core, false);
        assert_eq!(ev, Eviction::Dirty(0x000));
        assert_eq!(c.stats().writebacks.value(), 1);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = tiny();
        c.fill(0x000, AccessClass::Core, false);
        c.lookup(0x000, AccessClass::Core, true);
        c.fill(0x100, AccessClass::Core, false);
        c.lookup(0x100, AccessClass::Core, false);
        // Force eviction of 0x000 (LRU after 0x100 was touched later).
        c.lookup(0x100, AccessClass::Core, false);
        let ev = c.fill(0x200, AccessClass::Core, false);
        assert_eq!(ev, Eviction::Dirty(0x000));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x40, AccessClass::Core, true);
        assert_eq!(c.invalidate(0x40), Some(true));
        assert_eq!(c.invalidate(0x40), None);
        assert!(!c.probe(0x40));
    }

    #[test]
    fn refill_existing_line_does_not_evict() {
        let mut c = tiny();
        c.fill(0x40, AccessClass::Core, false);
        assert_eq!(c.fill(0x40, AccessClass::Core, true), Eviction::None);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn dca_partition_isolates_core_from_dma() {
        // 2 sets x 4 ways, 1 DCA way.
        let mut c = Cache::new("llc", CacheConfig::with_dca(512, 4, 1));
        // Fill the core partition of set 0 (3 ways): lines 0, 0x80, 0x100.
        c.fill(0x000, AccessClass::Core, false);
        c.fill(0x080, AccessClass::Core, false);
        c.fill(0x100, AccessClass::Core, false);
        // DMA fills go to the single DCA way and never evict core lines.
        for i in 0..16 {
            c.fill(0x1000 + i * 0x80, AccessClass::Dma, true);
        }
        assert!(c.probe(0x000));
        assert!(c.probe(0x080));
        assert!(c.probe(0x100));
        // Only the most recent DMA line of set 0 survives in the DCA way.
        assert!(c.probe(0x1000 + 15 * 0x80));
        assert!(!c.probe(0x1000));
    }

    #[test]
    fn dma_thrash_in_small_partition_is_the_dma_leak() {
        // The Fig. 13 mechanism: DMA writes exceeding the DCA partition
        // evict each other, so later core reads miss.
        let mut c = Cache::new("llc", CacheConfig::with_dca(4096, 4, 1));
        let lines = 64; // 4 KiB of packet data, partition holds 16 lines
        for i in 0..lines {
            c.fill(0x10000 + i * CACHE_LINE, AccessClass::Dma, true);
        }
        let resident = (0..lines)
            .filter(|i| c.probe(0x10000 + i * CACHE_LINE))
            .count();
        assert_eq!(resident, 16, "only one DCA way per set survives");
    }

    #[test]
    fn unpartitioned_dma_uses_whole_set() {
        let mut c = tiny();
        c.fill(0x000, AccessClass::Core, false);
        c.fill(0x100, AccessClass::Dma, true);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = tiny();
        for i in 0..1000u64 {
            c.fill(i * CACHE_LINE, AccessClass::Core, i % 3 == 0);
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        Cache::new("bad", CacheConfig::new(3 * 64 * 2, 2));
    }

    #[test]
    #[should_panic(expected = "dca_ways")]
    fn rejects_full_dca_partition() {
        CacheConfig::with_dca(512, 2, 2);
    }
}
