//! Memory hierarchy models for `simnet`.
//!
//! The paper's microarchitectural sensitivity studies (Figs. 10–14, 17)
//! hinge on the memory system: cache working-set effects, Direct Cache
//! Access (DCA / ARM cache stashing) way-partitioning, DRAM row-buffer
//! locality across channel counts, and the I/O bus the NIC DMA engine rides
//! on. This crate models all of them *structurally* — real tags, real LRU
//! state, real per-channel row buffers — so those sensitivities emerge from
//! simulation rather than being curve-fit.
//!
//! * [`cache`] — set-associative write-back caches with optional DCA way
//!   partitions.
//! * [`dram`] — multi-channel DRAM with open-page row-buffer policy.
//! * [`bus`] — a bandwidth/occupancy resource (the PCIe stand-in).
//! * [`system`] — [`MemorySystem`]: the wired L1I/L1D/L2/LLC/DRAM hierarchy
//!   with core-side and DMA-side access ports.
//! * [`layout`] — the simulated physical address map (rings, mbuf pool,
//!   working-set regions).

pub mod bus;
pub mod cache;
pub mod dram;
pub mod layout;
pub mod system;

pub use bus::Bus;
pub use cache::{AccessClass, Cache, CacheConfig};
pub use dram::{DramConfig, DramController};
pub use system::{HitLevel, MemoryConfig, MemorySystem};

/// A simulated physical address.
pub type Addr = u64;

/// Cache line size in bytes (fixed, as in the paper's configurations).
pub const CACHE_LINE: u64 = 64;

/// Rounds `addr` down to its cache-line base.
#[inline]
pub fn line_base(addr: Addr) -> Addr {
    addr & !(CACHE_LINE - 1)
}

/// Number of cache lines touched by `[addr, addr + size)`.
///
/// ```
/// use simnet_mem::lines_touched;
/// assert_eq!(lines_touched(0, 64), 1);
/// assert_eq!(lines_touched(60, 8), 2); // straddles a boundary
/// assert_eq!(lines_touched(0, 0), 0);
/// ```
#[inline]
pub fn lines_touched(addr: Addr, size: u64) -> u64 {
    if size == 0 {
        return 0;
    }
    let first = line_base(addr);
    let last = line_base(addr + size - 1);
    (last - first) / CACHE_LINE + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_masks_low_bits() {
        assert_eq!(line_base(0), 0);
        assert_eq!(line_base(63), 0);
        assert_eq!(line_base(64), 64);
        assert_eq!(line_base(0x1234), 0x1200);
    }

    #[test]
    fn lines_touched_counts_straddles() {
        assert_eq!(lines_touched(0, 1), 1);
        assert_eq!(lines_touched(0, 65), 2);
        assert_eq!(lines_touched(63, 2), 2);
        assert_eq!(lines_touched(64, 128), 2);
        assert_eq!(lines_touched(0, 1518), 24);
    }
}
