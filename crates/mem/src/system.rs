//! The wired memory hierarchy: L1I/L1D → L2 → LLC → DRAM, with DMA-side
//! ports over the I/O bus and optional Direct Cache Access.
//!
//! * Core accesses walk the inclusive hierarchy; fills propagate downward
//!   and evictions back-invalidate upper levels.
//! * DMA writes (packet RX, descriptor writeback) cross the RX I/O bus and
//!   land either in the LLC's DCA ways (cache stashing, §III.A.4) or in
//!   DRAM.
//! * DMA reads (packet TX, descriptor fetch) source from the LLC when the
//!   line is resident, else DRAM, then cross the TX I/O bus.
//!
//! L1/L2 hit latencies are expressed in *core cycles* (they live in the
//! core's clock domain, so they scale with the Fig. 15 frequency sweep);
//! LLC and DRAM latencies are wall-clock ticks.

use simnet_sim::fault::{FaultInjector, FaultKind};
use simnet_sim::tick::{ns, Bandwidth, Frequency, Tick};
use simnet_sim::trace::{Component, Stage, Tracer, NO_PACKET};

use crate::bus::Bus;
use crate::cache::{AccessClass, Cache, CacheConfig, Eviction};
use crate::dram::{DramConfig, DramController};
use crate::{line_base, lines_touched, Addr, CACHE_LINE};

/// Completion milestones of one DMA transaction, for a pipelined DMA
/// engine: the engine may start its next transaction at `next_issue`
/// without waiting for `complete`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTiming {
    /// When the DMA engine's pipeline can accept the next transaction
    /// (writes: the I/O bus transfer finished; reads: the memory fetch
    /// completed and the bus transfer is queued).
    pub next_issue: Tick,
    /// When the data is fully at its destination (writes: resident in
    /// LLC/DRAM; reads: delivered across the I/O bus to the device).
    pub complete: Tick,
}

/// Which level served a core access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// Served by the first-level cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared last-level cache.
    Llc,
    /// Served by DRAM.
    Dram,
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Private unified L2 geometry.
    pub l2: CacheConfig,
    /// Shared LLC geometry (DCA ways live here).
    pub llc: CacheConfig,
    /// L1I hit latency in core cycles (Table I: 1).
    pub l1i_cycles: u64,
    /// L1D hit latency in core cycles (Table I: 2).
    pub l1d_cycles: u64,
    /// L2 hit latency in core cycles (Table I: 12).
    pub l2_cycles: u64,
    /// LLC hit latency in wall-clock ticks (uncore domain).
    pub llc_latency: Tick,
    /// L1D miss-status-holding registers (bounds core MLP; Table I: 6).
    pub l1d_mshrs: usize,
    /// L2 MSHRs (Table I: 16).
    pub l2_mshrs: usize,
    /// DRAM geometry/timing.
    pub dram: DramConfig,
    /// Whether DMA writes stash into the LLC (DCA / DDIO).
    pub dca_enabled: bool,
    /// I/O (PCIe stand-in) bandwidth, per direction.
    pub io_bandwidth: Bandwidth,
    /// Per-transaction I/O overhead.
    pub io_overhead: Tick,
}

impl MemoryConfig {
    /// The paper's simulated configuration (Table I): 64 KiB 4-way L1s,
    /// 1 MiB 8-way L2, 16 MiB 16-way LLC with 4 DCA ways, 2-channel
    /// DDR4-2400, DCA enabled.
    pub fn table1_gem5() -> Self {
        Self {
            l1i: CacheConfig::new(64 << 10, 4),
            l1d: CacheConfig::new(64 << 10, 4),
            l2: CacheConfig::new(1 << 20, 8),
            llc: CacheConfig::with_dca(16 << 20, 16, 4),
            l1i_cycles: 1,
            l1d_cycles: 2,
            l2_cycles: 12,
            llc_latency: ns(12),
            l1d_mshrs: 6,
            l2_mshrs: 16,
            dram: DramConfig::ddr4_2400(2),
            dca_enabled: true,
            io_bandwidth: Bandwidth::gbps(60.0),
            io_overhead: ns(4),
        }
    }

    /// Applies an LLC size (keeping associativity and the DCA split).
    pub fn with_llc_size(mut self, bytes: u64) -> Self {
        self.llc = CacheConfig::with_dca(bytes, self.llc.assoc, self.llc.dca_ways);
        self
    }

    /// Disables DCA: DMA traffic goes to DRAM and the LLC is unpartitioned.
    pub fn without_dca(mut self) -> Self {
        self.dca_enabled = false;
        self.llc = CacheConfig::new(self.llc.size, self.llc.assoc);
        self
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::table1_gem5()
    }
}

/// One core's private cache slice: L1I, L1D, and unified L2.
struct CoreCaches {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

impl CoreCaches {
    fn new(cfg: &MemoryConfig) -> Self {
        Self {
            l1i: Cache::new("l1i", cfg.l1i),
            l1d: Cache::new("l1d", cfg.l1d),
            l2: Cache::new("l2", cfg.l2),
        }
    }
}

/// The complete memory system.
///
/// ```
/// use simnet_mem::{MemoryConfig, MemorySystem, HitLevel};
/// let mut mem = MemorySystem::new(MemoryConfig::table1_gem5());
/// let (lat_miss, level) = mem.core_read(0, 0x4000_0000, 8);
/// assert_eq!(level, HitLevel::Dram);
/// let (lat_hit, level) = mem.core_read(lat_miss, 0x4000_0000, 8);
/// assert_eq!(level, HitLevel::L1);
/// assert!(lat_hit < lat_miss);
/// ```
pub struct MemorySystem {
    cfg: MemoryConfig,
    core_freq: Frequency,
    /// Private per-core hierarchies; index = lcore. One entry reproduces
    /// the single-core system exactly.
    cores: Vec<CoreCaches>,
    /// Which core's private caches the next `core_*` access uses.
    active: usize,
    llc: Cache,
    dram: DramController,
    io_rx: Bus,
    io_tx: Bus,
    tracer: Tracer,
    faults: FaultInjector,
}

impl MemorySystem {
    /// Builds the hierarchy from a configuration.
    pub fn new(cfg: MemoryConfig) -> Self {
        Self {
            cores: vec![CoreCaches::new(&cfg)],
            active: 0,
            llc: Cache::new("llc", cfg.llc),
            dram: DramController::new(cfg.dram),
            io_rx: Bus::new("io-rx", cfg.io_bandwidth, cfg.io_overhead),
            io_tx: Bus::new("io-tx", cfg.io_bandwidth, cfg.io_overhead),
            core_freq: Frequency::default(),
            tracer: Tracer::disabled(),
            faults: FaultInjector::disabled(),
            cfg,
        }
    }

    /// Rebuilds the private hierarchies for `n` cores (fresh, cold).
    /// Call once at construction, before any traffic; the shared LLC,
    /// DRAM, and I/O buses are untouched.
    pub fn set_num_cores(&mut self, n: usize) {
        assert!(n > 0, "need at least one core");
        self.cores = (0..n).map(|_| CoreCaches::new(&self.cfg)).collect();
        self.active = 0;
    }

    /// Number of private cache slices.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Selects which core's private caches subsequent `core_*` accesses
    /// use. The harness calls this when it switches lcores; single-core
    /// systems never do.
    pub fn set_active_core(&mut self, core: usize) {
        assert!(core < self.cores.len(), "core {core} out of range");
        self.active = core;
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Attaches a packet-lifecycle tracer; the memory system reports DCA
    /// placements (bulk DMA writes steered into the LLC).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a fault injector (see `simnet_sim::fault`): DMA latency
    /// bursts and DCA miss-forcing apply on the device-side ports.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Burst fault: extra issue delay for a DMA transaction at `now`.
    fn dma_fault_delay(&self, now: Tick) -> Tick {
        let extra = self.faults.dma_burst_extra(now);
        if extra > 0 {
            self.tracer.emit(
                now,
                NO_PACKET,
                Component::Mem,
                Stage::Fault {
                    kind: FaultKind::DmaBurst,
                    ticks: extra,
                },
            );
        }
        extra
    }

    /// DCA fault: whether this bulk DMA write is forced to miss to DRAM.
    fn dca_forced_miss(&self, now: Tick) -> bool {
        if self.faults.dca_force_miss() {
            self.tracer.emit(
                now,
                NO_PACKET,
                Component::Mem,
                Stage::Fault {
                    kind: FaultKind::DcaForcedMiss,
                    ticks: 0,
                },
            );
            return true;
        }
        false
    }

    /// Sets the core clock (scales L1/L2 hit latencies).
    pub fn set_core_frequency(&mut self, freq: Frequency) {
        self.core_freq = freq;
    }

    /// The current core clock.
    pub fn core_frequency(&self) -> Frequency {
        self.core_freq
    }

    /// LLC statistics (Fig. 13's miss-rate series reads these).
    pub fn llc_stats(&self) -> &crate::cache::CacheStats {
        self.llc.stats()
    }

    /// L2 statistics (core 0 — the legacy single-core accessor).
    pub fn l2_stats(&self) -> &crate::cache::CacheStats {
        self.cores[0].l2.stats()
    }

    /// L1D statistics (core 0).
    pub fn l1d_stats(&self) -> &crate::cache::CacheStats {
        self.cores[0].l1d.stats()
    }

    /// L2 statistics of a specific core.
    pub fn l2_stats_of(&self, core: usize) -> &crate::cache::CacheStats {
        self.cores[core].l2.stats()
    }

    /// L1D statistics of a specific core.
    pub fn l1d_stats_of(&self, core: usize) -> &crate::cache::CacheStats {
        self.cores[core].l1d.stats()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &crate::dram::DramStats {
        self.dram.stats()
    }

    /// RX-direction I/O bus (DMA writes toward memory).
    pub fn io_rx_bus(&self) -> &Bus {
        &self.io_rx
    }

    /// Diagnostic: both I/O bus busy horizons `(rx, tx)`.
    pub fn io_busy_horizons(&self) -> (Tick, Tick) {
        (self.io_rx.busy_until(), self.io_tx.busy_until())
    }

    /// TX-direction I/O bus (DMA reads toward the device).
    pub fn io_tx_bus(&self) -> &Bus {
        &self.io_tx
    }

    /// Registers the whole hierarchy's statistics: the three legacy cache
    /// groups (`system.cpu.dcache`, `system.cpu.l2cache`, `system.llc`),
    /// `system.mem_ctrls` and both `system.iobus` directions. `now` prices
    /// the bus utilization fractions.
    pub fn register_stats(&self, now: Tick, reg: &mut simnet_sim::stats::StatsRegistry) {
        for (name, stats) in [
            ("system.cpu.dcache", self.cores[0].l1d.stats()),
            ("system.cpu.l2cache", self.cores[0].l2.stats()),
            ("system.llc", self.llc.stats()),
        ] {
            reg.scoped(name, |reg| stats.register_stats(reg));
        }
        if self.cores.len() > 1 {
            for (i, core) in self.cores.iter().enumerate() {
                reg.scoped(format!("system.cpu.lcore{i}.dcache"), |reg| {
                    core.l1d.stats().register_stats(reg);
                });
                reg.scoped(format!("system.cpu.lcore{i}.l2cache"), |reg| {
                    core.l2.stats().register_stats(reg);
                });
            }
        }
        self.dram.stats().register_stats(reg);
        for (name, bus) in [
            ("system.iobus.rx", &self.io_rx),
            ("system.iobus.tx", &self.io_tx),
        ] {
            reg.scoped(name, |reg| bus.register_stats(now, reg));
        }
    }

    /// Verifies the inclusive-hierarchy invariant: every valid L1I/L1D
    /// line is resident in L2, and every valid L2 line is resident in the
    /// LLC (diagnostic; used by property tests).
    ///
    /// # Errors
    ///
    /// Returns the first violating line.
    pub fn verify_inclusion(&self) -> Result<(), String> {
        for (c, core) in self.cores.iter().enumerate() {
            for (upper_name, upper) in [("l1d", &core.l1d), ("l1i", &core.l1i)] {
                for line in upper.resident_lines() {
                    if !core.l2.probe(line) {
                        return Err(format!(
                            "core {c} {upper_name} line {line:#x} missing from l2"
                        ));
                    }
                }
            }
            for line in core.l2.resident_lines() {
                if !self.llc.probe(line) {
                    return Err(format!("core {c} l2 line {line:#x} missing from llc"));
                }
            }
        }
        Ok(())
    }

    /// Clears all statistics after warm-up; cache/row state persists.
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.l1i.reset_stats();
            core.l1d.reset_stats();
            core.l2.reset_stats();
        }
        self.llc.reset_stats();
        self.dram.reset_stats();
        self.io_rx.reset_stats();
        self.io_tx.reset_stats();
    }

    #[inline]
    fn cycles(&self, n: u64) -> Tick {
        self.core_freq.cycles_to_ticks(n)
    }

    /// Core data read of `size` bytes at `addr`. Returns `(latency, level)`
    /// for the *first* line; additional straddled lines are filled but
    /// their latency overlaps (the core model prices per-line ops itself).
    pub fn core_read(&mut self, now: Tick, addr: Addr, size: u64) -> (Tick, HitLevel) {
        self.core_access(now, addr, size, false, false)
    }

    /// Core data write (write-allocate, write-back).
    pub fn core_write(&mut self, now: Tick, addr: Addr, size: u64) -> (Tick, HitLevel) {
        self.core_access(now, addr, size, true, false)
    }

    /// Instruction fetch.
    pub fn instr_fetch(&mut self, now: Tick, addr: Addr) -> (Tick, HitLevel) {
        self.core_access(now, addr, 1, false, true)
    }

    fn core_access(
        &mut self,
        now: Tick,
        addr: Addr,
        size: u64,
        write: bool,
        instr: bool,
    ) -> (Tick, HitLevel) {
        let lines = lines_touched(addr, size.max(1));
        let mut first: Option<(Tick, HitLevel)> = None;
        for i in 0..lines {
            let line = line_base(addr) + i * CACHE_LINE;
            let res = self.core_access_line(now, line, write, instr);
            if first.is_none() {
                first = Some(res);
            }
        }
        first.expect("at least one line")
    }

    fn core_access_line(
        &mut self,
        now: Tick,
        line: Addr,
        write: bool,
        instr: bool,
    ) -> (Tick, HitLevel) {
        let l1_cycles = if instr {
            self.cfg.l1i_cycles
        } else {
            self.cfg.l1d_cycles
        };
        let core = &mut self.cores[self.active];
        let l1 = if instr { &mut core.l1i } else { &mut core.l1d };
        if l1.lookup(line, AccessClass::Core, write) {
            return (self.cycles(l1_cycles), HitLevel::L1);
        }
        let l1_lat = self.cycles(l1_cycles);
        let l2_lat = l1_lat + self.cycles(self.cfg.l2_cycles);

        if self.cores[self.active]
            .l2
            .lookup(line, AccessClass::Core, false)
        {
            self.fill_l1(line, instr, write);
            return (l2_lat, HitLevel::L2);
        }

        if self.llc.lookup(line, AccessClass::Core, false) {
            self.fill_l2(line, false);
            self.fill_l1(line, instr, write);
            return (l2_lat + self.cfg.llc_latency, HitLevel::Llc);
        }

        // DRAM fill (interleaved: core timestamps are iteration-local).
        let issued = now + l2_lat + self.cfg.llc_latency;
        let done = self.dram.access_interleaved(issued, line, false);
        let dram_lat = done - now;
        self.fill_llc_core(done, line);
        self.fill_l2(line, false);
        self.fill_l1(line, instr, write);
        (dram_lat, HitLevel::Dram)
    }

    fn fill_l1(&mut self, line: Addr, instr: bool, dirty: bool) {
        let core = &mut self.cores[self.active];
        let l1 = if instr { &mut core.l1i } else { &mut core.l1d };
        match l1.fill(line, AccessClass::Core, dirty) {
            Eviction::Dirty(victim) => {
                // Inclusive hierarchy: the victim is in L2; propagate dirt.
                core.l2.fill(victim, AccessClass::Core, true);
            }
            Eviction::Clean(_) | Eviction::None => {}
        }
    }

    fn fill_l2(&mut self, line: Addr, dirty: bool) {
        match self.cores[self.active]
            .l2
            .fill(line, AccessClass::Core, dirty)
        {
            Eviction::Dirty(victim) => {
                self.back_invalidate_l1(victim);
                self.llc.fill(victim, AccessClass::Core, true);
            }
            Eviction::Clean(victim) => {
                self.back_invalidate_l1(victim);
            }
            Eviction::None => {}
        }
    }

    fn fill_llc_core(&mut self, now: Tick, line: Addr) {
        match self.llc.fill(line, AccessClass::Core, false) {
            Eviction::Dirty(victim) => {
                self.back_invalidate_l2(victim);
                self.dram.access_interleaved(now, victim, true);
            }
            Eviction::Clean(victim) => {
                self.back_invalidate_l2(victim);
            }
            Eviction::None => {}
        }
    }

    /// Private-L2 eviction: only the evicting (active) core's L1s can
    /// hold the victim (its L2 is inclusive of them alone).
    fn back_invalidate_l1(&mut self, line: Addr) {
        let core = &mut self.cores[self.active];
        core.l1d.invalidate(line);
        core.l1i.invalidate(line);
    }

    /// Shared-LLC eviction: the victim may be cached by *any* core —
    /// coherence kills every private copy.
    fn back_invalidate_l2(&mut self, line: Addr) {
        for core in &mut self.cores {
            if let Some(dirty) = core.l2.invalidate(line) {
                let _ = dirty; // the LLC copy is being evicted with it
            }
            core.l1d.invalidate(line);
            core.l1i.invalidate(line);
        }
    }

    /// NIC DMA write of `size` bytes at `addr` (packet RX data or
    /// descriptor writeback). Crosses the RX I/O bus; lands in the LLC DCA
    /// partition when DCA is enabled, else in DRAM. Returns the completion
    /// tick.
    pub fn dma_write(&mut self, now: Tick, addr: Addr, size: u64) -> Tick {
        self.dma_write_timed(now, addr, size).complete
    }

    /// Like [`MemorySystem::dma_write`] but exposes the pipelining point:
    /// the DMA engine may issue its next transaction once the I/O bus
    /// transfer finishes, before the data lands in LLC/DRAM.
    pub fn dma_write_timed(&mut self, now: Tick, addr: Addr, size: u64) -> DmaTiming {
        let now = now + self.dma_fault_delay(now);
        let dca = self.cfg.dca_enabled && !self.dca_forced_miss(now);
        let grant = self.io_rx.transfer(now, size);
        let t_bus = grant.finish;
        let lines = lines_touched(addr, size.max(1));
        let first = line_base(addr);
        let mut done = t_bus;
        for i in 0..lines {
            let line = first + i * CACHE_LINE;
            // Coherence: stale upper-level copies die in every core.
            for core in &mut self.cores {
                core.l1d.invalidate(line);
                core.l1i.invalidate(line);
                core.l2.invalidate(line);
            }
            if dca {
                match self.llc.fill(line, AccessClass::Dma, true) {
                    Eviction::Dirty(victim) => {
                        self.back_invalidate_l2(victim);
                        self.dram.access(t_bus, victim, true);
                    }
                    Eviction::Clean(victim) => self.back_invalidate_l2(victim),
                    Eviction::None => {}
                }
                done = done.max(t_bus + self.cfg.llc_latency);
            } else {
                self.llc.invalidate(line);
                done = done.max(self.dram.access(t_bus, line, true));
            }
        }
        if dca {
            self.tracer.emit(
                t_bus,
                NO_PACKET,
                Component::Mem,
                Stage::DcaPlace { bytes: size as u32 },
            );
        }
        DmaTiming {
            next_issue: t_bus,
            complete: done,
        }
    }

    /// NIC DMA read of `size` bytes at `addr` (packet TX data or descriptor
    /// fetch). Sources each line from the LLC if resident (the DCA TX-side
    /// benefit) else DRAM, then crosses the TX I/O bus. Returns the
    /// completion tick.
    pub fn dma_read(&mut self, now: Tick, addr: Addr, size: u64) -> Tick {
        self.dma_read_timed(now, addr, size).complete
    }

    /// A *control-path* DMA write (descriptor writeback): lands in the
    /// LLC/DRAM like [`MemorySystem::dma_write_timed`], but its bus
    /// transfer interleaves with queued bulk traffic (posted write TLPs)
    /// instead of pushing the bulk queue's horizon forward.
    pub fn dma_write_control(&mut self, now: Tick, addr: Addr, size: u64) -> DmaTiming {
        let now = now + self.dma_fault_delay(now);
        let grant = self.io_rx.transfer_priority(now, size);
        let t_bus = grant.finish;
        let lines = lines_touched(addr, size.max(1));
        let first = line_base(addr);
        let mut done = t_bus;
        for i in 0..lines {
            let line = first + i * CACHE_LINE;
            for core in &mut self.cores {
                core.l1d.invalidate(line);
                core.l1i.invalidate(line);
                core.l2.invalidate(line);
            }
            if self.cfg.dca_enabled {
                match self.llc.fill(line, AccessClass::Dma, true) {
                    Eviction::Dirty(victim) => {
                        self.back_invalidate_l2(victim);
                        self.dram.access_interleaved(t_bus, victim, true);
                    }
                    Eviction::Clean(victim) => self.back_invalidate_l2(victim),
                    Eviction::None => {}
                }
                done = done.max(t_bus + self.cfg.llc_latency);
            } else {
                self.llc.invalidate(line);
                done = done.max(self.dram.access_interleaved(t_bus, line, true));
            }
        }
        DmaTiming {
            next_issue: t_bus,
            complete: done,
        }
    }

    /// A *control-path* DMA read (descriptor fetch): sources from
    /// LLC/DRAM like [`MemorySystem::dma_read_timed`], but its bus
    /// transfer interleaves with queued bulk traffic instead of waiting
    /// behind it (see [`Bus::transfer_priority`]).
    pub fn dma_read_control(&mut self, now: Tick, addr: Addr, size: u64) -> DmaTiming {
        let now = now + self.dma_fault_delay(now);
        let lines = lines_touched(addr, size.max(1));
        let first = line_base(addr);
        let mut data_ready = now;
        for i in 0..lines {
            let line = first + i * CACHE_LINE;
            if self.llc.lookup(line, AccessClass::Dma, false) {
                data_ready = data_ready.max(now + self.cfg.llc_latency);
            } else {
                data_ready = data_ready.max(self.dram.access(now, line, false));
            }
        }
        DmaTiming {
            next_issue: data_ready,
            complete: self.io_tx.transfer_priority(data_ready, size).finish,
        }
    }

    /// Like [`MemorySystem::dma_read`] but exposes the pipelining point:
    /// the next transaction's memory fetch may start once this one's data
    /// is ready (the bus transfer is already queued in order).
    pub fn dma_read_timed(&mut self, now: Tick, addr: Addr, size: u64) -> DmaTiming {
        let now = now + self.dma_fault_delay(now);
        let lines = lines_touched(addr, size.max(1));
        let first = line_base(addr);
        let mut data_ready = now;
        for i in 0..lines {
            let line = first + i * CACHE_LINE;
            // DMA reads do not allocate: a hit sources from the LLC (the
            // DCA TX-side benefit), a miss goes to DRAM.
            if self.llc.lookup(line, AccessClass::Dma, false) {
                data_ready = data_ready.max(now + self.cfg.llc_latency);
            } else {
                data_ready = data_ready.max(self.dram.access(now, line, false));
            }
        }
        DmaTiming {
            next_issue: data_ready,
            complete: self.io_tx.transfer(data_ready, size).finish,
        }
    }
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("cores", &self.cores.len())
            .field("l1d", &self.cores[0].l1d)
            .field("l2", &self.cores[0].l2)
            .field("llc", &self.llc)
            .field("dca", &self.cfg.dca_enabled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;

    fn system() -> MemorySystem {
        MemorySystem::new(MemoryConfig::table1_gem5())
    }

    #[test]
    fn read_walks_down_then_hits_high() {
        let mut mem = system();
        let (_, level) = mem.core_read(0, 0x5000_0000, 8);
        assert_eq!(level, HitLevel::Dram);
        let (_, level) = mem.core_read(1000, 0x5000_0000, 8);
        assert_eq!(level, HitLevel::L1);
    }

    #[test]
    fn latency_ordering_l1_l2_llc_dram() {
        let mut mem = system();
        let (dram, _) = mem.core_read(0, 0x6000_0000, 8);
        let (l1, _) = mem.core_read(0, 0x6000_0000, 8);
        // Evict from L1 by filling its sets, then re-read for an L2 hit.
        // L1D is 64 KiB 4-way -> 256 sets; 0x6000_0000 maps to set 0.
        // Lines at stride 256*64 = 16 KiB share set 0.
        for i in 1..=4u64 {
            mem.core_read(0, 0x6000_0000 + i * 16 * 1024, 8);
        }
        let (l2, level) = mem.core_read(0, 0x6000_0000, 8);
        assert_eq!(level, HitLevel::L2);
        assert!(l1 < l2, "l1 {l1} < l2 {l2}");
        assert!(l2 < dram, "l2 {l2} < dram {dram}");
    }

    #[test]
    fn instruction_and_data_paths_are_separate() {
        let mut mem = system();
        mem.instr_fetch(0, layout::WORKSET_BASE);
        let (_, level) = mem.core_read(0, layout::WORKSET_BASE, 4);
        // Data read finds the line in L2 (filled by the fetch), not L1D.
        assert_eq!(level, HitLevel::L2);
    }

    #[test]
    fn dca_write_lands_in_llc() {
        let mut mem = system();
        let addr = layout::mbuf_addr(0);
        mem.dma_write(0, addr, 1518);
        let (_, level) = mem.core_read(10_000_000, addr, 8);
        assert_eq!(level, HitLevel::Llc);
    }

    #[test]
    fn without_dca_write_lands_in_dram() {
        let mut mem = MemorySystem::new(MemoryConfig::table1_gem5().without_dca());
        let addr = layout::mbuf_addr(0);
        mem.dma_write(0, addr, 1518);
        let (_, level) = mem.core_read(10_000_000, addr, 8);
        assert_eq!(level, HitLevel::Dram);
    }

    #[test]
    fn dma_write_invalidates_stale_core_copies() {
        let mut mem = system();
        let addr = layout::mbuf_addr(1);
        mem.core_read(0, addr, 8); // cached in L1/L2/LLC
        mem.dma_write(1_000_000, addr, 64);
        // The next core read must not hit a stale L1 copy; with DCA it hits
        // the LLC (fresh DMA data).
        let (_, level) = mem.core_read(2_000_000, addr, 8);
        assert_eq!(level, HitLevel::Llc);
    }

    #[test]
    fn dma_read_prefers_llc_resident_lines() {
        let mut mem = system();
        let addr = layout::mbuf_addr(2);
        mem.dma_write(0, addr, 64); // resident in DCA ways
        let t_hit = mem.dma_read(1_000_000, addr, 64) - 1_000_000;
        let far = layout::mbuf_addr(1000);
        let t_miss = mem.dma_read(2_000_000, far, 64) - 2_000_000;
        assert!(
            t_hit < t_miss,
            "llc-sourced {t_hit} < dram-sourced {t_miss}"
        );
    }

    #[test]
    fn dma_burst_fault_adds_latency_inside_windows() {
        use simnet_sim::fault::{FaultInjector, FaultPlan};
        let plan = FaultPlan::parse("dma.burst=+500ns/1us@10us").unwrap();
        let mut faulty = system();
        faulty.set_fault_injector(FaultInjector::new(plan, 1));
        let mut clean = system();
        let addr = layout::mbuf_addr(0);
        // Inside the burst window (t=0): the faulty system is 500 ns late.
        let f = faulty.dma_write_timed(0, addr, 1518);
        let c = clean.dma_write_timed(0, addr, 1518);
        assert_eq!(f.complete, c.complete + ns(500));
        // Outside the window (t=5 µs): identical timing.
        let t = simnet_sim::tick::us(5);
        let f = faulty.dma_read_timed(t, addr, 1518);
        let c = clean.dma_read_timed(t, addr, 1518);
        assert_eq!(f.complete, c.complete);
    }

    #[test]
    fn dca_forced_miss_sends_write_to_dram() {
        use simnet_sim::fault::{FaultInjector, FaultPlan};
        let plan = FaultPlan::parse("dma.dca_miss=100%").unwrap();
        let mut mem = system();
        let inj = FaultInjector::new(plan, 1);
        mem.set_fault_injector(inj.clone());
        let addr = layout::mbuf_addr(0);
        mem.dma_write(0, addr, 1518);
        let (_, level) = mem.core_read(10_000_000, addr, 8);
        assert_eq!(level, HitLevel::Dram, "forced miss bypasses the LLC");
        assert!(inj.counts().dca_forced_misses > 0);
    }

    #[test]
    fn io_bus_saturates_under_load() {
        let mut mem = system();
        // Issue 100 x 1518B DMA writes at the same instant; the RX bus
        // serializes them.
        let mut done = 0;
        for i in 0..100 {
            done = mem.dma_write(0, layout::mbuf_addr(i), 1518);
        }
        let gbps = simnet_sim::tick::Bandwidth::measured_gbps(1518 * 100, done);
        assert!(gbps < 60.0, "must not exceed raw bus bandwidth: {gbps}");
        assert!(gbps > 30.0, "sanity: {gbps}");
    }

    #[test]
    fn frequency_scales_l1_latency() {
        let mut fast = system();
        fast.set_core_frequency(Frequency::ghz(4.0));
        let mut slow = system();
        slow.set_core_frequency(Frequency::ghz(1.0));
        fast.core_read(0, 0x7000_0000, 8);
        slow.core_read(0, 0x7000_0000, 8);
        let (f, _) = fast.core_read(0, 0x7000_0000, 8);
        let (s, _) = slow.core_read(0, 0x7000_0000, 8);
        assert_eq!(f * 4, s);
    }

    #[test]
    fn straddling_read_fills_both_lines() {
        let mut mem = system();
        mem.core_read(0, 0x9000_0000 + 60, 8); // straddles two lines
        let (_, a) = mem.core_read(0, 0x9000_0000 + 56, 4);
        let (_, b) = mem.core_read(0, 0x9000_0000 + 64, 4);
        assert_eq!(a, HitLevel::L1);
        assert_eq!(b, HitLevel::L1);
    }

    #[test]
    fn register_stats_covers_the_legacy_groups() {
        use simnet_sim::stats::StatsRegistry;
        let mut mem = system();
        mem.core_read(0, 0xA100_0000, 8);
        mem.dma_write(0, layout::mbuf_addr(7), 256);
        let mut reg = StatsRegistry::new();
        mem.register_stats(1_000_000, &mut reg);
        for path in [
            "system.cpu.dcache.overall_misses",
            "system.cpu.l2cache.overall_miss_rate",
            "system.llc.writebacks",
            "system.mem_ctrls.row_hit_rate",
            "system.iobus.rx.utilization",
            "system.iobus.tx.bytes",
        ] {
            assert!(reg.get(path).is_some(), "missing {path}");
        }
    }

    #[test]
    fn per_core_private_caches_are_isolated() {
        let mut mem = system();
        mem.set_num_cores(2);
        let addr = 0xB000_0000;
        mem.set_active_core(0);
        mem.core_read(0, addr, 8); // DRAM fill into core 0's slice + LLC
        mem.set_active_core(1);
        let (_, level) = mem.core_read(1000, addr, 8);
        assert_eq!(level, HitLevel::Llc, "core 1 misses privately, hits LLC");
        let (_, level) = mem.core_read(2000, addr, 8);
        assert_eq!(level, HitLevel::L1);
        mem.verify_inclusion().unwrap();
    }

    #[test]
    fn dma_write_invalidates_every_core() {
        let mut mem = system();
        mem.set_num_cores(2);
        let addr = layout::mbuf_addr(3);
        for c in 0..2 {
            mem.set_active_core(c);
            mem.core_read(0, addr, 8);
        }
        mem.dma_write(1_000_000, addr, 64);
        for c in 0..2 {
            mem.set_active_core(c);
            let (_, level) = mem.core_read(2_000_000, addr, 8);
            assert_eq!(level, HitLevel::Llc, "core {c} stale copy must die");
        }
    }

    #[test]
    fn stats_reset_clears_counters() {
        let mut mem = system();
        mem.core_read(0, 0xA000_0000, 8);
        mem.dma_write(0, layout::mbuf_addr(5), 256);
        assert!(mem.llc_stats().accesses() > 0 || mem.dram_stats().reads.value() > 0);
        mem.reset_stats();
        assert_eq!(mem.l1d_stats().accesses(), 0);
        assert_eq!(mem.dram_stats().reads.value(), 0);
    }
}
