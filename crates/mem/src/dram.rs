//! Multi-channel DRAM with an open-page row-buffer policy.
//!
//! Cache lines interleave across channels; within a channel, consecutive
//! lines fill a row before moving to the next bank/row. Each access pays
//! CAS latency on a row-buffer hit and an additional precharge+activate
//! penalty on a row miss, plus queuing behind the channel's data bus. This
//! is the substrate for the paper's memory-channel sweep (Fig. 17a–c),
//! where going from 8 to 16 channels *hurts* TestPMD-1518B because
//! row-buffer locality per channel collapses.

use simnet_sim::stats::Counter;
use simnet_sim::tick::{ns, Bandwidth, Tick};

use crate::{line_base, Addr, CACHE_LINE};

/// DRAM geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels (the paper sweeps 1/4/8/16).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Column access latency on a row-buffer hit.
    pub hit_latency: Tick,
    /// Additional precharge + activate penalty on a row miss.
    pub miss_penalty: Tick,
    /// Per-channel data-bus bandwidth.
    pub channel_bandwidth: Bandwidth,
    /// Bus-turnaround penalty when a channel switches between reads and
    /// writes (tWTR/tRTW). Mixed DMA-write + DMA-read + core streams pay
    /// this constantly when few consecutive same-direction accesses land
    /// on a channel — the mechanism behind Fig. 17a's channel-count
    /// sensitivities.
    pub turnaround: Tick,
}

impl DramConfig {
    /// DDR4-2400-like timing (the paper's simulated DRAM, Table I).
    pub fn ddr4_2400(channels: usize) -> Self {
        Self {
            channels,
            banks_per_channel: 8,
            row_bytes: 2048,
            hit_latency: ns(14),
            miss_penalty: ns(28),
            channel_bandwidth: Bandwidth::gbps(153.6), // 19.2 GB/s
            turnaround: ns(5),
        }
    }

    /// DDR4-3200-like timing (the real Ampere Altra's DRAM, Table I).
    pub fn ddr4_3200(channels: usize) -> Self {
        Self {
            channels,
            banks_per_channel: 8,
            row_bytes: 2048,
            hit_latency: ns(12),
            miss_penalty: ns(24),
            channel_bandwidth: Bandwidth::gbps(204.8), // 25.6 GB/s
            turnaround: ns(4),
        }
    }

    fn validate(&self) {
        assert!(self.channels > 0, "need at least one channel");
        assert!(self.banks_per_channel > 0, "need at least one bank");
        assert!(
            self.row_bytes >= CACHE_LINE && self.row_bytes.is_multiple_of(CACHE_LINE),
            "row must be a multiple of the cache line"
        );
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_2400(2)
    }
}

#[derive(Debug, Clone, Copy)]
struct Location {
    channel: usize,
    bank: usize,
    row: u64,
}

/// DRAM access statistics.
#[derive(Debug, Clone, Default)]
pub struct DramStats {
    /// Read accesses.
    pub reads: Counter,
    /// Write accesses.
    pub writes: Counter,
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Row-buffer misses (activations).
    pub row_misses: Counter,
    /// Bytes transferred.
    pub bytes: Counter,
}

impl DramStats {
    /// Registers the `system.mem_ctrls.*` statistics section.
    pub fn register_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        reg.scoped("system.mem_ctrls", |reg| {
            reg.scalar("num_reads", self.reads.value(), "DRAM read accesses");
            reg.scalar("num_writes", self.writes.value(), "DRAM write accesses");
            reg.scalar("bytes", self.bytes.value(), "DRAM bytes transferred");
            reg.float("row_hit_rate", self.row_hit_rate(), "row-buffer hit rate");
            if reg.full() {
                reg.scalar("row_hits", self.row_hits.value(), "row-buffer hits");
                reg.scalar(
                    "row_misses",
                    self.row_misses.value(),
                    "row-buffer misses (activations)",
                );
            }
        });
    }

    /// Row-buffer hit rate (0.0 when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits.value() + self.row_misses.value();
        if total == 0 {
            0.0
        } else {
            self.row_hits.value() as f64 / total as f64
        }
    }
}

/// The DRAM controller: per-channel queues and per-bank open rows.
///
/// ```
/// use simnet_mem::{DramConfig, DramController};
/// let mut dram = DramController::new(DramConfig::ddr4_2400(1));
/// let first = dram.access(0, 0x1000, false);  // row miss: activate
/// let second = dram.access(first, 0x1040, false); // same row: hit
/// assert!(second - first < first);
/// ```
#[derive(Debug)]
pub struct DramController {
    cfg: DramConfig,
    /// Data-bus availability per channel.
    busy_until: Vec<Tick>,
    /// Last access direction per channel (true = write).
    last_write: Vec<bool>,
    /// Open row per (channel, bank); `u64::MAX` = closed.
    open_rows: Vec<u64>,
    stats: DramStats,
    line_transfer: Tick,
}

impl DramController {
    /// Creates the controller.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate();
        Self {
            busy_until: vec![0; cfg.channels],
            last_write: vec![false; cfg.channels],
            open_rows: vec![u64::MAX; cfg.channels * cfg.banks_per_channel],
            line_transfer: cfg.channel_bandwidth.bytes_to_ticks(CACHE_LINE),
            stats: DramStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears statistics; open rows and queues persist.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    fn locate(&self, addr: Addr) -> Location {
        let line = line_base(addr) / CACHE_LINE;
        let channel = (line % self.cfg.channels as u64) as usize;
        let local = line / self.cfg.channels as u64;
        let lines_per_row = self.cfg.row_bytes / CACHE_LINE;
        let bank_row = local / lines_per_row;
        let bank = (bank_row % self.cfg.banks_per_channel as u64) as usize;
        let row = bank_row / self.cfg.banks_per_channel as u64;
        Location { channel, bank, row }
    }

    /// Performs one cache-line access; returns the completion tick.
    ///
    /// The access waits for the channel data bus, pays CAS (plus the
    /// activate penalty on a row miss), transfers the line, and holds the
    /// data bus for the transfer time.
    pub fn access(&mut self, now: Tick, addr: Addr, write: bool) -> Tick {
        let loc = self.locate(addr);
        if write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }
        self.stats.bytes.add(CACHE_LINE);

        let bank_slot = loc.channel * self.cfg.banks_per_channel + loc.bank;
        let row_hit = self.open_rows[bank_slot] == loc.row;
        let access_latency = if row_hit {
            self.stats.row_hits.inc();
            self.cfg.hit_latency
        } else {
            self.stats.row_misses.inc();
            self.open_rows[bank_slot] = loc.row;
            self.cfg.hit_latency + self.cfg.miss_penalty
        };

        let turnaround = if self.last_write[loc.channel] != write {
            self.last_write[loc.channel] = write;
            self.cfg.turnaround
        } else {
            0
        };
        let start = now.max(self.busy_until[loc.channel]) + turnaround;
        let finish = start + access_latency + self.line_transfer;
        // The data bus is held for the transfer; row activation overlaps
        // with other banks' transfers, but a miss still stretches this
        // access's own occupancy window slightly (command bus pressure).
        self.busy_until[loc.channel] = start
            + self.line_transfer
            + if row_hit {
                0
            } else {
                self.cfg.miss_penalty / 4
            };
        finish
    }

    /// An *interleaved* access: used by agents whose issue timestamps are
    /// not globally ordered against the DMA streams (the core model prices
    /// a whole software iteration at once, so its accesses carry future
    /// cursor timestamps). The access consumes channel capacity and pays a
    /// bounded contention penalty when the channel is backlogged, but
    /// neither waits for nor blocks the in-order DMA queue at its own
    /// timestamp.
    pub fn access_interleaved(&mut self, now: Tick, addr: Addr, write: bool) -> Tick {
        let loc = self.locate(addr);
        if write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }
        self.stats.bytes.add(CACHE_LINE);

        let bank_slot = loc.channel * self.cfg.banks_per_channel + loc.bank;
        let row_hit = self.open_rows[bank_slot] == loc.row;
        let access_latency = if row_hit {
            self.stats.row_hits.inc();
            self.cfg.hit_latency
        } else {
            self.stats.row_misses.inc();
            self.open_rows[bank_slot] = loc.row;
            self.cfg.hit_latency + self.cfg.miss_penalty
        };

        let turnaround = if self.last_write[loc.channel] != write {
            self.last_write[loc.channel] = write;
            self.cfg.turnaround
        } else {
            0
        };
        // Bounded contention: a backlogged channel slows this access by up
        // to two CAS times, rather than serializing behind the queue.
        let backlog = self.busy_until[loc.channel].saturating_sub(now);
        let contention = backlog.min(self.cfg.hit_latency * 2);
        // Capacity consumption: the channel's horizon absorbs the work.
        self.busy_until[loc.channel] += turnaround
            + self.line_transfer
            + if row_hit {
                0
            } else {
                self.cfg.miss_penalty / 4
            };
        now + access_latency + self.line_transfer + contention + turnaround
    }

    /// Completion tick for accessing every line of `[addr, addr+size)`,
    /// issuing line accesses in address order (DMA burst helper).
    pub fn access_range(&mut self, now: Tick, addr: Addr, size: u64, write: bool) -> Tick {
        let mut done = now;
        let lines = crate::lines_touched(addr, size);
        let first = line_base(addr);
        for i in 0..lines {
            done = done.max(self.access(now, first + i * CACHE_LINE, write));
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_channel() -> DramController {
        DramController::new(DramConfig::ddr4_2400(1))
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut d = one_channel();
        let miss_done = d.access(0, 0, false);
        let t1 = miss_done;
        let hit_done = d.access(t1, 64, false) - t1;
        assert!(hit_done < miss_done);
        assert_eq!(d.stats().row_hits.value(), 1);
        assert_eq!(d.stats().row_misses.value(), 1);
    }

    #[test]
    fn sequential_lines_stay_in_row_until_boundary() {
        let mut d = one_channel();
        let lines_per_row = d.config().row_bytes / CACHE_LINE;
        let mut now = 0;
        for i in 0..lines_per_row + 1 {
            now = d.access(now, i * CACHE_LINE, false);
        }
        assert_eq!(d.stats().row_misses.value(), 2); // first access + boundary
        assert_eq!(d.stats().row_hits.value(), lines_per_row - 1);
    }

    #[test]
    fn channels_interleave_by_line() {
        let mut d = DramController::new(DramConfig::ddr4_2400(4));
        // Four consecutive lines go to four different channels, so they all
        // complete without queuing behind each other.
        let completions: Vec<Tick> = (0..4).map(|i| d.access(0, i * CACHE_LINE, false)).collect();
        assert!(completions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn same_channel_accesses_queue() {
        let mut d = DramController::new(DramConfig::ddr4_2400(4));
        let cfg = *d.config();
        let first = d.access(0, 0, false);
        // Line 4 maps to channel 0 again and must queue behind the first's
        // data transfer: its completion exceeds an unqueued row hit.
        let second = d.access(0, 4 * CACHE_LINE, false);
        let unqueued_hit = cfg.hit_latency + cfg.channel_bandwidth.bytes_to_ticks(CACHE_LINE);
        assert!(
            second > unqueued_hit,
            "queued access {second} did not wait (unqueued hit = {unqueued_hit}, first = {first})"
        );
    }

    #[test]
    fn different_banks_have_independent_rows() {
        let mut d = one_channel();
        let row_span = d.config().row_bytes; // one bank's row of lines
        d.access(0, 0, false); // opens bank 0 row 0
        d.access(0, row_span, false); // opens bank 1 row 0
        d.access(1_000_000, 64, false); // bank 0 row 0 still open
        assert_eq!(d.stats().row_hits.value(), 1);
    }

    #[test]
    fn writes_and_reads_both_counted() {
        let mut d = one_channel();
        d.access(0, 0, true);
        d.access(0, 64, false);
        assert_eq!(d.stats().writes.value(), 1);
        assert_eq!(d.stats().reads.value(), 1);
        assert_eq!(d.stats().bytes.value(), 128);
    }

    #[test]
    fn access_range_touches_all_lines() {
        let mut d = one_channel();
        d.access_range(0, 0, 1518, true);
        assert_eq!(d.stats().writes.value(), 24);
    }

    #[test]
    fn more_channels_finish_a_burst_sooner() {
        let mut d1 = DramController::new(DramConfig::ddr4_2400(1));
        let mut d8 = DramController::new(DramConfig::ddr4_2400(8));
        let t1 = d1.access_range(0, 0, 4096, true);
        let t8 = d8.access_range(0, 0, 4096, true);
        assert!(t8 < t1, "8-channel burst {t8} should beat 1-channel {t1}");
    }

    #[test]
    fn hit_rate_reporting() {
        let mut d = one_channel();
        assert_eq!(d.stats().row_hit_rate(), 0.0);
        d.access(0, 0, false);
        d.access(0, 64, false);
        assert!((d.stats().row_hit_rate() - 0.5).abs() < 1e-12);
        d.reset_stats();
        assert_eq!(d.stats().reads.value(), 0);
    }
}
