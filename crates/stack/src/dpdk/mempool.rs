//! The DPDK mempool: fixed-size packet-buffer (mbuf) allocation out of
//! hugepage-backed memory.

/// A pool of 2 KiB mbufs identified by index into the global mbuf region
/// (see [`simnet_mem::layout::mbuf_addr`]).
#[derive(Debug, Clone)]
pub struct Mempool {
    base: usize,
    capacity: usize,
    free: Vec<usize>,
    cursor: usize,
}

impl Mempool {
    /// Creates a pool of `capacity` mbufs starting at global mbuf index
    /// `base` (kept disjoint from the RX ring's slot-mapped mbufs).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(base: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "mempool must hold at least one mbuf");
        Self {
            base,
            capacity,
            free: (0..capacity).rev().map(|i| base + i).collect(),
            cursor: 0,
        }
    }

    /// Number of free mbufs.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates an mbuf, or `None` if exhausted.
    pub fn alloc(&mut self) -> Option<usize> {
        self.free.pop()
    }

    /// Allocates an mbuf, recycling round-robin when exhausted (used for
    /// fire-and-forget TX responses whose completion isn't tracked).
    pub fn alloc_cyclic(&mut self) -> usize {
        if let Some(idx) = self.free.pop() {
            return idx;
        }
        let idx = self.base + self.cursor;
        self.cursor = (self.cursor + 1) % self.capacity;
        idx
    }

    /// Returns an mbuf to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not belong to this pool.
    pub fn free(&mut self, index: usize) {
        assert!(
            (self.base..self.base + self.capacity).contains(&index),
            "mbuf {index} is not from this pool"
        );
        self.free.push(index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut pool = Mempool::new(100, 4);
        assert_eq!(pool.available(), 4);
        let a = pool.alloc().unwrap();
        assert!((100..104).contains(&a));
        pool.free(a);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = Mempool::new(0, 2);
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_none());
    }

    #[test]
    fn cyclic_alloc_never_fails() {
        let mut pool = Mempool::new(10, 2);
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(pool.alloc_cyclic());
        }
        assert!(seen.iter().all(|&i| (10..12).contains(&i)));
    }

    #[test]
    #[should_panic(expected = "not from this pool")]
    fn foreign_free_panics() {
        Mempool::new(0, 2).free(5);
    }
}
