//! The DPDK-style userspace stack: EAL, mempool, and the polling-mode
//! run-to-completion loop.

mod eal;
mod mempool;

pub use eal::{Eal, EalConfig, EalError};
pub use mempool::Mempool;

use simnet_cpu::{Core, Op};
use simnet_mem::{layout, MemorySystem};
use simnet_nic::i8254x::{RxCompletion, TxRequest};
use simnet_nic::Nic;
use simnet_sim::trace::{Component, Stage, Tracer};
use simnet_sim::Tick;

use crate::app::{AppAction, PacketApp};
use crate::footprint::FootprintStream;
use crate::{Iteration, NetworkStack, StackStats};

/// Instruction-cost parameters of the DPDK fast path (per §II.A: no
/// syscalls, no copies, polling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpdkCosts {
    /// Instructions per `rx_burst` call (loop + PMD entry).
    pub poll_base: u64,
    /// Instructions per received packet (descriptor parse, mbuf init).
    pub per_rx_packet: u64,
    /// Instructions per transmitted packet (descriptor build).
    pub per_tx_packet: u64,
    /// Instructions per TX tail-register flush.
    pub tx_flush: u64,
    /// Data working-set touches per packet.
    pub ws_loads_per_packet: usize,
    /// Instruction-footprint touches per burst.
    pub ifetch_per_burst: usize,
}

impl Default for DpdkCosts {
    fn default() -> Self {
        Self {
            poll_base: 50,
            per_rx_packet: 120,
            per_tx_packet: 80,
            tx_flush: 30,
            ws_loads_per_packet: 4,
            ifetch_per_burst: 4,
        }
    }
}

/// The run-to-completion DPDK stack ("retrieve RX packets through the
/// PMD RX API, process packets on the same logical core, send pending
/// packets through the PMD TX API", §II.A).
#[derive(Debug)]
pub struct DpdkStack {
    burst: usize,
    costs: DpdkCosts,
    mempool: Mempool,
    /// Whether packet buffers sit in pinned huge pages (§II.A lists huge
    /// pages among DPDK's advantages). With 4 KiB pages (`--no-huge`),
    /// every packet buffer touch risks a TLB walk, modeled as dependent
    /// page-table loads per packet.
    hugepages: bool,
    /// Data working set: mbuf metadata, rings, lcore state. Sized so the
    /// total DPDK footprint lands between 256 KiB and 1 MiB (§VII.C).
    ws: FootprintStream,
    /// Instruction footprint.
    code: FootprintStream,
    /// NIC queues this lcore's loop polls (RSS share). `[0]` is the
    /// single-queue legacy assignment.
    queues: Vec<usize>,
    /// Rejected TX requests tagged with their queue, awaiting retry.
    tx_backlog: Vec<(usize, TxRequest)>,
    ops: Vec<Op>,
    /// Reused RX completion buffer (allocation-free steady state).
    completions: Vec<RxCompletion>,
    /// Reused per-queue TX staging batches.
    tx_batches: Vec<Vec<TxRequest>>,
    tracer: Tracer,
    stats: StackStats,
}

impl DpdkStack {
    /// Creates the stack with paper-calibrated costs and a 32-packet burst.
    pub fn new(seed: u64) -> Self {
        Self::with_costs(DpdkCosts::default(), seed)
    }

    /// Creates a stack instance for worker lcore `lcore`: its mempool,
    /// data working set, and instruction footprint occupy that lcore's
    /// private slice of the address map, so per-core cache behaviour is
    /// honest. `for_lcore(seed, 0)` is exactly `new(seed)`.
    pub fn for_lcore(seed: u64, lcore: usize) -> Self {
        Self::with_costs_for_lcore(DpdkCosts::default(), seed, lcore)
    }

    /// Creates the stack with explicit costs.
    pub fn with_costs(costs: DpdkCosts, seed: u64) -> Self {
        Self::with_costs_for_lcore(costs, seed, 0)
    }

    /// Creates the stack with explicit costs for a specific lcore.
    pub fn with_costs_for_lcore(costs: DpdkCosts, seed: u64, lcore: usize) -> Self {
        let off = lcore as u64 * (64 << 20);
        Self {
            burst: 32,
            costs,
            mempool: Mempool::new(8192 + lcore * 4096, 4096),
            ws: FootprintStream::new(layout::WORKSET_BASE + off, 384 << 10, 0.6, seed ^ 0xD9DA),
            code: FootprintStream::new(
                layout::WORKSET_BASE + (8 << 20) + off,
                192 << 10,
                0.7,
                seed ^ 0xC0DE,
            ),
            hugepages: true,
            queues: vec![0],
            tx_backlog: Vec::new(),
            ops: Vec::new(),
            completions: Vec::new(),
            tx_batches: Vec::new(),
            tracer: Tracer::disabled(),
            stats: StackStats::default(),
        }
    }

    /// Disables huge pages (`--no-huge`): packet-buffer accesses pay TLB
    /// walks.
    pub fn without_hugepages(mut self) -> Self {
        self.hugepages = false;
        self
    }

    /// The RX burst size.
    pub fn burst(&self) -> usize {
        self.burst
    }

    /// Packets waiting for TX ring space.
    pub fn tx_backlog_len(&self) -> usize {
        self.tx_backlog.len()
    }
}

impl NetworkStack for DpdkStack {
    fn name(&self) -> &'static str {
        "dpdk"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn assign_queues(&mut self, queues: Vec<usize>) {
        assert!(!queues.is_empty(), "an lcore needs at least one queue");
        self.queues = queues;
    }

    fn stats(&self) -> Option<&StackStats> {
        Some(&self.stats)
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn iteration(
        &mut self,
        now: Tick,
        nic: &mut Nic,
        core: &mut Core,
        mem: &mut MemorySystem,
        app: &mut dyn PacketApp,
    ) -> Iteration {
        let it = self.run_iteration(now, nic, core, mem, app);
        self.stats.observe(&it);
        it
    }
}

impl DpdkStack {
    /// One poll-loop pass; the trait's `iteration` wraps this with
    /// counter bookkeeping.
    fn run_iteration(
        &mut self,
        now: Tick,
        nic: &mut Nic,
        core: &mut Core,
        mem: &mut MemorySystem,
        app: &mut dyn PacketApp,
    ) -> Iteration {
        let mut ops = std::mem::take(&mut self.ops);
        ops.clear();

        let nq = nic.num_queues();
        let ring = nic.config().rx_ring_size;
        let tx_ring = nic.config().tx_ring_size;
        let total_rx_ring = ring * nq;
        let total_tx_ring = tx_ring * nq;

        // If the TX ring rejected packets earlier, the run-to-completion
        // loop spins on tx_burst before polling RX again — this is the
        // stall that backs pressure up into the RX ring (TxDrops).
        if !self.tx_backlog.is_empty() {
            let backlog = std::mem::take(&mut self.tx_backlog);
            let mut batches: Vec<Vec<TxRequest>> = (0..nq).map(|_| Vec::new()).collect();
            for (q, req) in backlog {
                batches[q].push(req);
            }
            let mut accepted = 0;
            for (q, reqs) in batches.into_iter().enumerate() {
                if reqs.is_empty() {
                    continue;
                }
                let (a, rejected) = nic.tx_submit_q(q, now, reqs);
                accepted += a;
                self.tx_backlog.extend(rejected.into_iter().map(|r| (q, r)));
            }
            ops.push(Op::Compute(self.costs.tx_flush + 40));
            let end = core.execute(now, &ops, mem);
            self.ops = ops;
            return Iteration {
                end,
                rx: 0,
                tx: accepted,
                idle: false,
            };
        }

        // rx_burst: poll the next descriptor's DD bit on the lcore's
        // first queue.
        ops.push(Op::Compute(self.costs.poll_base));
        ops.push(Op::Load(layout::rx_desc_addr(
            self.queues[0] * ring,
            total_rx_ring,
        )));

        let mut completions = std::mem::take(&mut self.completions);
        completions.clear();
        for &q in &self.queues {
            nic.rx_poll_q_into(q, now, self.burst, &mut completions);
        }
        let mut tx_batches = std::mem::take(&mut self.tx_batches);
        tx_batches.resize_with(nq, Vec::new);
        for batch in &mut tx_batches {
            batch.clear();
        }
        let mut tx_cursors = [0usize; 8];
        let mut rx_counts = [0usize; 8];
        let mut tx_total = 0usize;
        let origin_q = self.queues[0];

        // Client-side originations (a software load-generator app on a
        // Drive Node, Fig. 1a) share the TX path with responses; they go
        // out on the lcore's first queue.
        while tx_total < self.burst {
            let Some(packet) = app.poll_tx(now, &mut ops) else {
                break;
            };
            let mbuf = self.mempool.alloc_cyclic();
            simnet_cpu::ops::stores_over(&mut ops, layout::mbuf_addr(mbuf), packet.len() as u64);
            ops.push(Op::Compute(self.costs.per_tx_packet));
            ops.push(Op::Store(layout::tx_desc_addr(
                origin_q * tx_ring + tx_cursors[origin_q],
                total_tx_ring,
            )));
            tx_cursors[origin_q] += 1;
            self.tracer
                .emit(now, packet.id(), Component::App, Stage::AppTx);
            tx_batches[origin_q].push(TxRequest { packet, mbuf });
            tx_total += 1;
        }

        if completions.is_empty() && tx_total == 0 {
            app.on_idle(&mut ops);
            self.code.emit_ifetches(&mut ops, 1);
            let end = core.execute(now, &ops, mem);
            self.ops = ops;
            self.completions = completions;
            self.tx_batches = tx_batches;
            return Iteration {
                end,
                rx: 0,
                tx: 0,
                idle: true,
            };
        }

        self.code
            .emit_ifetches(&mut ops, self.costs.ifetch_per_burst);
        let rx_count = completions.len();
        if rx_count > 0 {
            app.on_burst(rx_count, &mut ops);
        }

        for completion in completions.drain(..) {
            let slot = completion.slot;
            // Replies leave on the queue pair the request arrived on.
            let rxq = slot / ring;
            rx_counts[rxq] += 1;
            self.tracer
                .emit(now, completion.packet.id(), Component::Stack, Stage::SwRx);
            let mbuf_addr = layout::mbuf_addr(slot);
            ops.push(Op::Load(layout::rx_desc_addr(slot, total_rx_ring)));
            ops.push(Op::Compute(self.costs.per_rx_packet));
            self.ws.emit_loads(&mut ops, self.costs.ws_loads_per_packet);
            if !self.hugepages {
                // 4 KiB pages: a two-level TLB walk before touching the
                // buffer (page-table lines live in the working-set region).
                let pte = layout::WORKSET_BASE + (12 << 20) + (completion.slot as u64 % 512) * 64;
                ops.push(Op::DependentLoad(pte));
                ops.push(Op::DependentLoad(pte + (4 << 10)));
                ops.push(Op::Compute(30));
            }
            // First line of the packet (the L2 header) comes to the core.
            ops.push(Op::Load(mbuf_addr));

            self.tracer
                .emit(now, completion.packet.id(), Component::App, Stage::AppRx);
            // The completion moves into the app: a forwarding app owns
            // the pooled buffer uniquely and mutates it in place.
            match app.on_packet(completion, mbuf_addr, &mut ops) {
                AppAction::Forward(packet) => {
                    ops.push(Op::Compute(self.costs.per_tx_packet));
                    ops.push(Op::Store(layout::tx_desc_addr(
                        rxq * tx_ring + tx_cursors[rxq],
                        total_tx_ring,
                    )));
                    tx_cursors[rxq] += 1;
                    self.tracer
                        .emit(now, packet.id(), Component::App, Stage::AppTx);
                    tx_batches[rxq].push(TxRequest { packet, mbuf: slot });
                    tx_total += 1;
                }
                AppAction::Respond(packet) => {
                    let mbuf = self.mempool.alloc_cyclic();
                    // The response bytes are written into the TX mbuf.
                    simnet_cpu::ops::stores_over(
                        &mut ops,
                        layout::mbuf_addr(mbuf),
                        packet.len() as u64,
                    );
                    ops.push(Op::Compute(self.costs.per_tx_packet));
                    ops.push(Op::Store(layout::tx_desc_addr(
                        rxq * tx_ring + tx_cursors[rxq],
                        total_tx_ring,
                    )));
                    tx_cursors[rxq] += 1;
                    self.tracer
                        .emit(now, packet.id(), Component::App, Stage::AppTx);
                    tx_batches[rxq].push(TxRequest { packet, mbuf });
                    tx_total += 1;
                }
                AppAction::Consume => {}
            }
        }

        let tx_count = tx_total;
        if tx_count > 0 {
            ops.push(Op::Compute(self.costs.tx_flush));
        }

        let end = core.execute(now, &ops, mem);
        if tx_count > 0 {
            for (q, batch) in tx_batches.iter_mut().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let (_, rejected) = nic.tx_submit_q(q, end, std::mem::take(batch));
                self.tx_backlog.extend(rejected.into_iter().map(|r| (q, r)));
            }
        }
        // Processed mbufs go back to their RX rings when the loop's tail
        // bump retires.
        for &q in &self.queues {
            nic.rx_ring_post_q_at(q, end, rx_counts[q]);
        }
        self.ops = ops;
        self.completions = completions;
        self.tx_batches = tx_batches;
        Iteration {
            end,
            rx: rx_count,
            tx: tx_count,
            idle: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_cpu::CoreConfig;
    use simnet_mem::MemoryConfig;
    use simnet_net::{MacAddr, Packet, PacketBuilder};
    use simnet_nic::i8254x::RxCompletion;
    use simnet_nic::NicConfig;

    struct Echo;
    impl PacketApp for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn on_packet(
            &mut self,
            completion: RxCompletion,
            _mbuf: simnet_mem::Addr,
            ops: &mut Vec<Op>,
        ) -> AppAction {
            ops.push(Op::Compute(10));
            let mut pkt = completion.packet;
            pkt.macswap();
            AppAction::Forward(pkt)
        }
    }

    fn rig() -> (Nic, Core, MemorySystem, DpdkStack) {
        (
            Nic::new(NicConfig::paper_default()),
            Core::new(CoreConfig::table1_ooo()),
            MemorySystem::new(MemoryConfig::table1_gem5()),
            DpdkStack::new(1),
        )
    }

    fn packet(id: u64) -> Packet {
        PacketBuilder::new()
            .dst(MacAddr::simulated(1))
            .src(MacAddr::simulated(2))
            .frame_len(128)
            .build(id)
    }

    fn deliver(nic: &mut Nic, mem: &mut MemorySystem, count: u64) -> Tick {
        nic.rx_ring_post(1024);
        for i in 0..count {
            assert!(nic.wire_rx(0, packet(i)).is_none());
        }
        let mut now = 0;
        if let Some(t) = nic.rx_dma_start(now, mem) {
            now = t;
        }
        while let Some(t) = nic.rx_dma_advance(now, mem) {
            now = t.max(now + 1);
        }
        now
    }

    #[test]
    fn empty_poll_is_cheap_and_idle() {
        let (mut nic, mut core, mut mem, mut stack) = rig();
        let mut app = Echo;
        let it = stack.iteration(0, &mut nic, &mut core, &mut mem, &mut app);
        assert!(it.idle);
        assert_eq!(it.rx, 0);
        // An empty poll costs tens of nanoseconds, not microseconds.
        assert!(it.end < 1_000_000, "empty poll took {}", it.end);
    }

    #[test]
    fn burst_is_received_and_forwarded() {
        let (mut nic, mut core, mut mem, mut stack) = rig();
        let mut app = Echo;
        let ready = deliver(&mut nic, &mut mem, 8);
        let it = stack.iteration(
            ready + simnet_sim::tick::us(10),
            &mut nic,
            &mut core,
            &mut mem,
            &mut app,
        );
        assert!(!it.idle);
        assert_eq!(it.rx, 8);
        assert_eq!(it.tx, 8);
        assert!(nic.tx_dma_needs_kick());
    }

    #[test]
    fn per_packet_cost_is_paper_scale() {
        // TestPMD-like processing should cost roughly 20-40 ns per packet
        // at 3 GHz — that's what makes 64B packets core-bound around
        // 20 Gbps (§VII.B).
        let (mut nic, mut core, mut mem, mut stack) = rig();
        let mut app = Echo;
        let ready = deliver(&mut nic, &mut mem, 32);
        let start = ready + simnet_sim::tick::us(10);
        let it = stack.iteration(start, &mut nic, &mut core, &mut mem, &mut app);
        let per_packet = (it.end - start) / 32;
        assert!(
            // Cold-cache burst; steady state is ~25-40 ns.
            (5_000..95_000).contains(&per_packet),
            "per-packet cost {per_packet} ps"
        );
    }

    #[test]
    fn tx_backlog_blocks_polling() {
        let (_, mut core, mut mem, mut stack) = rig();
        let mut nic = Nic::new(NicConfig {
            tx_ring_size: 4,
            ..NicConfig::paper_default()
        });
        let mut app = Echo;
        let ready = deliver(&mut nic, &mut mem, 16);
        let it = stack.iteration(
            ready + simnet_sim::tick::us(10),
            &mut nic,
            &mut core,
            &mut mem,
            &mut app,
        );
        assert_eq!(it.rx, 16);
        assert!(stack.tx_backlog_len() > 0, "ring of 4 must reject");
        // The next iteration retries TX instead of polling RX.
        let it2 = stack.iteration(it.end, &mut nic, &mut core, &mut mem, &mut app);
        assert_eq!(it2.rx, 0);
        assert!(!it2.idle);
    }

    #[test]
    fn iteration_counters_accumulate_and_reset() {
        let (mut nic, mut core, mut mem, mut stack) = rig();
        let mut app = Echo;
        stack.iteration(0, &mut nic, &mut core, &mut mem, &mut app);
        let ready = deliver(&mut nic, &mut mem, 4);
        stack.iteration(
            ready + simnet_sim::tick::us(10),
            &mut nic,
            &mut core,
            &mut mem,
            &mut app,
        );
        let s = *stack.stats().expect("dpdk maintains counters");
        assert_eq!(s.iterations, 2);
        assert_eq!(s.idle_iterations, 1);
        assert_eq!(s.rx_packets, 4);
        assert_eq!(s.tx_packets, 4);
        assert!((s.idle_fraction() - 0.5).abs() < 1e-12);
        stack.reset_stats();
        assert_eq!(stack.stats().unwrap().iterations, 0);
    }

    #[test]
    fn polling_stack_has_zero_wakeup_latency() {
        let stack = DpdkStack::new(0);
        assert_eq!(stack.wakeup_latency(), 0);
        assert_eq!(stack.name(), "dpdk");
    }
}
