//! The DPDK Environment Abstraction Layer (EAL) initialization sequence.
//!
//! §III.B: "The DPDK Environment Abstraction Layer (EAL) relies on vendor
//! ID checks to match a device and a PMD. We modify the DPDK source to
//! skip these checks and force the matching of the gem5 device to [the]
//! NIC model PMD." [`EalConfig::skip_vendor_check`] is that patch; with it
//! off, probing a gem5-style NIC (broken vendor ID) fails exactly as
//! unmodified DPDK does.
//!
//! Launching the PMD also requires masking device interrupts through the
//! interrupt mask register — the §III.A.5 fix; against a baseline-mode
//! NIC the launch faults.

use simnet_nic::i8254x::{DEVICE_82540EM, VENDOR_INTEL};
use simnet_nic::regs::offsets;
use simnet_nic::Nic;

/// EAL initialization parameters (the `dpdk-testpmd -l 0-3 -n 4 ...`
/// environment of Listing 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EalConfig {
    /// Number of 2 MiB hugepages reserved (Listing 2 line 3 writes 2048 to
    /// `nr_hugepages`).
    pub hugepages: usize,
    /// The paper's DPDK patch: skip the vendor-ID check and force the
    /// e1000 PMD.
    pub skip_vendor_check: bool,
}

impl EalConfig {
    /// The paper's configuration: 2048 hugepages, vendor check skipped.
    pub fn paper_default() -> Self {
        Self {
            hugepages: 2048,
            skip_vendor_check: true,
        }
    }

    /// Unmodified upstream DPDK (vendor check enforced).
    pub fn unmodified() -> Self {
        Self {
            hugepages: 2048,
            skip_vendor_check: false,
        }
    }
}

impl Default for EalConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Why EAL initialization failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EalError {
    /// No hugepages reserved.
    NoHugepages,
    /// No PMD matched the device's vendor/device IDs (unmodified DPDK on a
    /// gem5-style NIC).
    NoPmdMatch {
        /// Vendor ID read from the device.
        vendor: u16,
        /// Device ID read from the device.
        device: u16,
    },
    /// The PMD could not mask device interrupts (baseline gem5's
    /// unimplemented interrupt-mask accessors, §III.A.5).
    PmdLaunchFailed,
}

impl std::fmt::Display for EalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EalError::NoHugepages => write!(f, "no hugepages reserved"),
            EalError::NoPmdMatch { vendor, device } => {
                write!(f, "no PMD for device {vendor:04x}:{device:04x}")
            }
            EalError::PmdLaunchFailed => {
                write!(
                    f,
                    "PMD launch failed: cannot access interrupt mask register"
                )
            }
        }
    }
}

impl std::error::Error for EalError {}

/// The EAL: probes the device and launches the polling-mode driver.
#[derive(Debug)]
pub struct Eal {
    cfg: EalConfig,
    pmd_name: Option<&'static str>,
}

impl Eal {
    /// Creates an uninitialized EAL.
    pub fn new(cfg: EalConfig) -> Self {
        Self {
            cfg,
            pmd_name: None,
        }
    }

    /// The matched PMD, once initialized.
    pub fn pmd_name(&self) -> Option<&'static str> {
        self.pmd_name
    }

    /// Runs EAL init + device probe + PMD launch against `nic`.
    ///
    /// # Errors
    ///
    /// See [`EalError`] — each variant corresponds to a failure mode the
    /// paper describes on unpatched gem5/DPDK.
    pub fn init(&mut self, nic: &mut Nic) -> Result<(), EalError> {
        if self.cfg.hugepages == 0 {
            return Err(EalError::NoHugepages);
        }

        // Probe: match vendor/device against the PMD registry.
        let vendor = nic.pci_config().vendor_id();
        let device = nic.pci_config().device_id();
        let matched = (vendor, device) == (VENDOR_INTEL, DEVICE_82540EM);
        if !matched && !self.cfg.skip_vendor_check {
            return Err(EalError::NoPmdMatch { vendor, device });
        }
        // The paper's patch hard-codes the e1000 PMD for the gem5 device.
        let pmd = "net_e1000_em";

        // PMD launch: mask all device interrupts (polling mode). This is
        // the access that faults on baseline gem5.
        let regs = nic.regs_mut();
        if regs.write(offsets::IMC, u32::MAX).is_err() {
            return Err(EalError::PmdLaunchFailed);
        }
        if regs.read(offsets::IMS).map(|m| m != 0).unwrap_or(true) {
            return Err(EalError::PmdLaunchFailed);
        }
        self.pmd_name = Some(pmd);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_nic::{NicCompatMode, NicConfig};

    fn gem5_nic() -> Nic {
        Nic::new(NicConfig::paper_default()) // vendor quirk on, extended regs
    }

    #[test]
    fn patched_dpdk_initializes_on_gem5_nic() {
        let mut nic = gem5_nic();
        let mut eal = Eal::new(EalConfig::paper_default());
        assert_eq!(eal.init(&mut nic), Ok(()));
        assert_eq!(eal.pmd_name(), Some("net_e1000_em"));
    }

    #[test]
    fn unmodified_dpdk_fails_vendor_check_on_gem5_nic() {
        // "Unmodified DPDK cannot fetch the correct vendor ID when running
        // on gem5 and therefore fails to call the proper PMD" (§III.B).
        let mut nic = gem5_nic();
        let mut eal = Eal::new(EalConfig::unmodified());
        assert_eq!(
            eal.init(&mut nic),
            Err(EalError::NoPmdMatch {
                vendor: 0,
                device: 0x100e
            })
        );
    }

    #[test]
    fn unmodified_dpdk_works_on_a_real_nic() {
        let mut nic = Nic::new(NicConfig {
            vendor_id_broken: false,
            ..NicConfig::paper_default()
        });
        let mut eal = Eal::new(EalConfig::unmodified());
        assert_eq!(eal.init(&mut nic), Ok(()));
    }

    #[test]
    fn pmd_launch_fails_on_baseline_register_model() {
        // §III.A.5: without IMR read/write methods the PMD cannot launch.
        let mut nic = Nic::new(NicConfig {
            compat: NicCompatMode::Baseline,
            ..NicConfig::paper_default()
        });
        let mut eal = Eal::new(EalConfig::paper_default());
        assert_eq!(eal.init(&mut nic), Err(EalError::PmdLaunchFailed));
    }

    #[test]
    fn no_hugepages_fails_fast() {
        let mut nic = gem5_nic();
        let mut eal = Eal::new(EalConfig {
            hugepages: 0,
            skip_vendor_check: true,
        });
        assert_eq!(eal.init(&mut nic), Err(EalError::NoHugepages));
    }
}
