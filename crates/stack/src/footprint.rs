//! Working-set footprint streams.
//!
//! The cache-size sensitivities of Figs. 10–12 come from the *working
//! sets* of the two stacks: "DPDK working set size is larger than 256KiB
//! and smaller than 1MiB ... Kernel stack working set size is larger than
//! 1MiB" (§VII.C). A [`FootprintStream`] models a stack's instruction and
//! data footprint as deterministic pseudo-random touches over a region of
//! the configured size; whether those touches hit or miss is then decided
//! by the real cache hierarchy.

use simnet_cpu::Op;
use simnet_mem::{Addr, CACHE_LINE};
use simnet_sim::random::SimRng;

/// A deterministic stream of line touches over a fixed region.
#[derive(Debug, Clone)]
pub struct FootprintStream {
    base: Addr,
    lines: u64,
    rng: SimRng,
    hot_fraction: f64,
}

impl FootprintStream {
    /// Creates a stream over `[base, base + size)`.
    ///
    /// `hot_fraction` of touches go to the first eighth of the region
    /// (code/data locality); the rest spread over the whole region.
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than one cache line.
    pub fn new(base: Addr, size: u64, hot_fraction: f64, seed: u64) -> Self {
        assert!(size >= CACHE_LINE, "footprint must hold at least one line");
        Self {
            base,
            lines: size / CACHE_LINE,
            rng: SimRng::seed_from(seed),
            hot_fraction: hot_fraction.clamp(0.0, 1.0),
        }
    }

    /// Size of the region in bytes.
    pub fn size(&self) -> u64 {
        self.lines * CACHE_LINE
    }

    fn next_addr(&mut self) -> Addr {
        let hot = self.rng.chance(self.hot_fraction);
        let span = if hot {
            (self.lines / 8).max(1)
        } else {
            self.lines
        };
        self.base + self.rng.uniform_u64(0, span - 1) * CACHE_LINE
    }

    /// Emits `n` data-load touches.
    pub fn emit_loads(&mut self, ops: &mut Vec<Op>, n: usize) {
        for _ in 0..n {
            let addr = self.next_addr();
            ops.push(Op::Load(addr));
        }
    }

    /// Emits `n` pointer-chasing touches (serialize on the core).
    pub fn emit_dependent_loads(&mut self, ops: &mut Vec<Op>, n: usize) {
        for _ in 0..n {
            let addr = self.next_addr();
            ops.push(Op::DependentLoad(addr));
        }
    }

    /// Emits `n` instruction-fetch touches.
    pub fn emit_ifetches(&mut self, ops: &mut Vec<Op>, n: usize) {
        for _ in 0..n {
            let addr = self.next_addr();
            ops.push(Op::Ifetch(addr));
        }
    }

    /// Emits `n` store touches.
    pub fn emit_stores(&mut self, ops: &mut Vec<Op>, n: usize) {
        for _ in 0..n {
            let addr = self.next_addr();
            ops.push(Op::Store(addr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_stay_in_region() {
        let mut fs = FootprintStream::new(0x1000_0000, 1 << 20, 0.5, 1);
        let mut ops = Vec::new();
        fs.emit_loads(&mut ops, 1000);
        for op in &ops {
            let Op::Load(a) = op else {
                panic!("loads only")
            };
            assert!((0x1000_0000..0x1010_0000).contains(a));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut fs = FootprintStream::new(0, 1 << 16, 0.3, 42);
            let mut ops = Vec::new();
            fs.emit_loads(&mut ops, 64);
            ops
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hot_fraction_concentrates_touches() {
        let mut fs = FootprintStream::new(0, 1 << 20, 0.9, 7);
        let mut ops = Vec::new();
        fs.emit_loads(&mut ops, 10_000);
        let hot_limit = (1u64 << 20) / 8;
        let hot = ops
            .iter()
            .filter(|op| matches!(op, Op::Load(a) if *a < hot_limit))
            .count();
        assert!(hot > 8_000, "hot touches: {hot}");
    }

    #[test]
    fn emits_all_op_kinds() {
        let mut fs = FootprintStream::new(0, 1 << 16, 0.0, 3);
        let mut ops = Vec::new();
        fs.emit_dependent_loads(&mut ops, 2);
        fs.emit_ifetches(&mut ops, 2);
        fs.emit_stores(&mut ops, 2);
        assert!(matches!(ops[0], Op::DependentLoad(_)));
        assert!(matches!(ops[2], Op::Ifetch(_)));
        assert!(matches!(ops[4], Op::Store(_)));
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn tiny_region_rejected() {
        FootprintStream::new(0, 32, 0.0, 0);
    }
}
