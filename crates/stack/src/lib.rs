//! Software network stacks.
//!
//! The paper's central comparison is *userspace* (DPDK) versus *kernel*
//! networking on the same simulated hardware. Both stacks here consume the
//! same NIC and emit op streams priced by the same core model; what differs
//! is exactly what differs in reality:
//!
//! * [`dpdk`] — polling-mode driver, zero-copy (the app reads packet data
//!   in place in the mbuf), small per-packet cost, modest (256 KiB–1 MiB)
//!   working set, run-to-completion.
//! * [`kernel`] — interrupt-driven NAPI entry, per-packet socket/syscall
//!   costs, a copy from kernel to user buffers, and a multi-MiB working
//!   set that makes the kernel path cache-sensitive (Figs. 10–12's iperf
//!   and MemcachedKernel series).
//!
//! Applications implement [`PacketApp`] (in `simnet-apps`) and run on
//! either stack via the [`NetworkStack`] trait.

pub mod app;
pub mod dpdk;
pub mod footprint;
pub mod kernel;

pub use app::{AppAction, PacketApp};
pub use dpdk::{DpdkStack, Eal, EalConfig, EalError, Mempool};
pub use kernel::KernelStack;

use simnet_cpu::Core;
use simnet_mem::MemorySystem;
use simnet_nic::Nic;
use simnet_sim::Tick;

/// Result of one stack iteration (one poll loop pass or one NAPI/syscall
/// cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iteration {
    /// When the core finished this iteration; the next one may start here.
    pub end: Tick,
    /// Packets received and processed.
    pub rx: usize,
    /// Packets submitted for transmission.
    pub tx: usize,
    /// Whether the iteration found no work (the node may sleep until the
    /// NIC has something visible instead of simulating every spin).
    pub idle: bool,
}

/// Aggregate iteration counters a stack maintains across its run loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Iterations executed.
    pub iterations: u64,
    /// Iterations that found no work.
    pub idle_iterations: u64,
    /// Packets received and processed.
    pub rx_packets: u64,
    /// Packets submitted for transmission.
    pub tx_packets: u64,
}

impl StackStats {
    /// Folds one iteration's outcome in.
    pub fn observe(&mut self, it: &Iteration) {
        self.iterations += 1;
        if it.idle {
            self.idle_iterations += 1;
        }
        self.rx_packets += it.rx as u64;
        self.tx_packets += it.tx as u64;
    }

    /// Fraction of iterations that found no work (0.0 when idle).
    pub fn idle_fraction(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.idle_iterations as f64 / self.iterations as f64
        }
    }

    /// Registers the `system.stack.*` statistics section (Full-level
    /// only: the legacy dump carried no stack counters).
    pub fn register_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        self.register_stats_at("system.stack", reg);
    }

    /// Registers this stack's statistics under an arbitrary scope — the
    /// multi-lcore harness uses `system.stack.lcore<i>` per worker.
    /// Full-level only, like [`StackStats::register_stats`].
    pub fn register_stats_at(&self, scope: &str, reg: &mut simnet_sim::stats::StatsRegistry) {
        if !reg.full() {
            return;
        }
        reg.scoped(scope, |reg| {
            reg.scalar("iterations", self.iterations, "stack loop iterations");
            reg.scalar(
                "idleIterations",
                self.idle_iterations,
                "iterations that found no work",
            );
            reg.scalar(
                "rxPackets",
                self.rx_packets,
                "packets picked up by software",
            );
            reg.scalar(
                "txPackets",
                self.tx_packets,
                "packets submitted for transmission",
            );
            reg.float(
                "idleFraction",
                self.idle_fraction(),
                "fraction of iterations finding no work",
            );
        });
    }

    /// Clears the counters (post-warm-up reset).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A software network stack driving one NIC port with one application.
pub trait NetworkStack {
    /// The stack's name (for reports).
    fn name(&self) -> &'static str;

    /// Runs one iteration starting at `now`.
    fn iteration(
        &mut self,
        now: Tick,
        nic: &mut Nic,
        core: &mut Core,
        mem: &mut MemorySystem,
        app: &mut dyn PacketApp,
    ) -> Iteration;

    /// Extra delay between "a packet became visible" and "this stack
    /// notices it" when idle — zero for a polling stack, the interrupt
    /// latency for the kernel stack.
    fn wakeup_latency(&self) -> Tick {
        0
    }

    /// Assigns the NIC queue set this stack instance services — an
    /// lcore's RSS share under multi-queue operation (DPDK: per-lcore
    /// `rx_burst` queues; kernel: the softirq/RPS fan-out target of this
    /// core). Default: the stack keeps polling queue 0 only, the
    /// single-queue legacy behaviour.
    fn assign_queues(&mut self, _queues: Vec<usize>) {}

    /// Attaches a packet-lifecycle tracer (see `simnet_sim::trace`). The
    /// stack reports software pickups (`sw_rx`) and application-boundary
    /// crossings (`app_rx`/`app_tx`). Default: tracing not supported.
    fn set_tracer(&mut self, _tracer: simnet_sim::trace::Tracer) {}

    /// Iteration counters, when the stack maintains them.
    fn stats(&self) -> Option<&StackStats> {
        None
    }

    /// Clears iteration counters (post-warm-up reset). Default: no-op.
    fn reset_stats(&mut self) {}
}
