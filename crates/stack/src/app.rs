//! The interface between network stacks and benchmark applications.

use simnet_cpu::Op;
use simnet_net::Packet;
use simnet_nic::i8254x::RxCompletion;
use simnet_sim::Tick;

/// What the application wants done with a processed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppAction {
    /// Transmit this frame, reusing the RX mbuf (zero-copy forward).
    Forward(Packet),
    /// Consume the packet; nothing is sent.
    Consume,
    /// Transmit a newly built frame (e.g. a KV response); the stack
    /// allocates a TX mbuf for it.
    Respond(Packet),
}

/// A benchmark application processing packets one at a time.
///
/// `on_packet` pushes the application's work — compute batches and
/// concrete memory touches — into `ops`; the stack appends its own framing
/// costs and hands the combined stream to the core model.
pub trait PacketApp {
    /// The application's name (for reports).
    fn name(&self) -> &'static str;

    /// Processes one received packet. `mbuf_addr` is the simulated
    /// physical address of the packet data (for payload touch ops).
    ///
    /// The completion is passed **by value**: the application takes
    /// unique ownership of the packet handle, so a forwarding app can
    /// mutate and re-emit the same pooled buffer without any copy
    /// (DPDK's zero-copy mbuf handoff). Apps that only need to read the
    /// frame can still borrow from the completion before deciding.
    fn on_packet(
        &mut self,
        packet: RxCompletion,
        mbuf_addr: simnet_mem::Addr,
        ops: &mut Vec<Op>,
    ) -> AppAction;

    /// Work performed once per received burst, before per-packet
    /// processing (e.g. RXpTX's configurable processing interval, which
    /// amortizes over the burst). Default: nothing.
    fn on_burst(&mut self, _count: usize, _ops: &mut Vec<Op>) {}

    /// Work performed per poll iteration even when no packet arrived
    /// (e.g. timer management). Default: nothing.
    fn on_idle(&mut self, _ops: &mut Vec<Op>) {}

    /// Client-side hook: a packet this application wants to *originate*
    /// at `now` (a software load-generator app on a Drive Node,
    /// Fig. 1a). The emitted work goes into `ops`. Servers (the default)
    /// never originate.
    fn poll_tx(&mut self, _now: Tick, _ops: &mut Vec<Op>) -> Option<Packet> {
        None
    }

    /// When this application next wants to originate a packet, if ever.
    /// Lets the enclosing node wake an idle client loop.
    fn next_tx_at(&self, _now: Tick) -> Option<Tick> {
        None
    }
}
