//! The Linux-kernel-style network stack.
//!
//! This models what §II.A says the kernel path pays and DPDK avoids:
//! "frequent system calls and context switches ... frequent buffer copies
//! within the kernel software stack and between kernel and userspace
//! buffers ... extended latency associated with interrupt processing."
//! Concretely, relative to [`crate::DpdkStack`]:
//!
//! * an interrupt/softirq entry cost per NAPI cycle and a multi-µs wakeup
//!   latency when idle;
//! * thousands of instructions of stack+syscall work per packet;
//! * a kernel→user copy (loads over the packet data, stores over the
//!   user buffer) — the application sees the *copy*, not the mbuf;
//! * pointer-chasing over kernel objects (skb, socket, fdtable) and a
//!   working set well above 1 MiB (§VII.C's iperf cache sensitivity).

use simnet_cpu::{ops, Core, Op};
use simnet_mem::{layout, Addr, MemorySystem};
use simnet_nic::i8254x::{RxCompletion, TxRequest};
use simnet_nic::Nic;
use simnet_sim::tick::us;
use simnet_sim::trace::{Component, Stage, Tracer};
use simnet_sim::Tick;

use crate::app::{AppAction, PacketApp};
use crate::footprint::FootprintStream;
use crate::{Iteration, NetworkStack, StackStats};

/// Instruction-cost parameters of the kernel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCosts {
    /// Interrupt + softirq entry instructions per NAPI cycle.
    pub irq_entry: u64,
    /// NAPI poll-loop base instructions per cycle.
    pub napi_poll_base: u64,
    /// Driver + netif + IP/UDP + socket-enqueue instructions per packet.
    pub per_packet_stack: u64,
    /// recv/send syscall instructions per packet.
    pub syscall_per_packet: u64,
    /// Kernel data working-set touches per packet.
    pub ws_loads_per_packet: usize,
    /// Kernel pointer-chase touches per packet (skb → socket → ...).
    pub dependent_loads_per_packet: usize,
    /// Kernel instruction-footprint touches per packet.
    pub ifetch_per_packet: usize,
    /// Interrupt delivery + scheduler wakeup latency when idle.
    pub wakeup_latency: Tick,
    /// Interrupt-throttling interval (ITR): the NIC delays interrupt
    /// delivery by up to this long to coalesce packets — trading receive
    /// latency for fewer interrupt entries.
    pub itr: Tick,
}

impl Default for KernelCosts {
    fn default() -> Self {
        Self {
            irq_entry: 1200,
            napi_poll_base: 400,
            per_packet_stack: 5200,
            syscall_per_packet: 1600,
            ws_loads_per_packet: 32,
            dependent_loads_per_packet: 16,
            ifetch_per_packet: 6,
            wakeup_latency: us(2),
            itr: 0,
        }
    }
}

/// Base of the kernel data working set in the address map.
const KERNEL_WS_BASE: Addr = layout::WORKSET_BASE + (16 << 20);
/// Base of the kernel instruction footprint.
const KERNEL_CODE_BASE: Addr = layout::WORKSET_BASE + (24 << 20);
/// Base of the userspace receive buffer the kernel copies into.
const USER_BUF_BASE: Addr = layout::WORKSET_BASE + (32 << 20);
/// Size of the rotating user buffer window.
const USER_BUF_SIZE: u64 = 128 << 10;
/// First mbuf index used for kernel TX skbs.
const KERNEL_TX_MBUF_BASE: usize = 16_384;
/// Kernel TX skb pool size.
const KERNEL_TX_MBUF_COUNT: usize = 4_096;

/// The interrupt-driven kernel stack.
#[derive(Debug)]
pub struct KernelStack {
    budget: usize,
    costs: KernelCosts,
    ws: FootprintStream,
    code: FootprintStream,
    /// Base of this core's user receive-buffer window.
    user_base: Addr,
    user_cursor: u64,
    /// First mbuf index of this core's TX skb pool.
    tx_mbuf_base: usize,
    tx_mbuf_cursor: usize,
    /// NIC queues whose softirq work lands on this core (the RPS/IRQ
    /// affinity set). `[0]` is the single-queue legacy assignment.
    queues: Vec<usize>,
    /// Rejected TX requests tagged with their queue, awaiting retry.
    tx_backlog: Vec<(usize, TxRequest)>,
    /// Reused op-stream buffer (allocation-free steady state).
    ops: Vec<Op>,
    /// Reused RX completion buffer (the softirq un-batch boundary:
    /// whatever arrived as a wire burst is re-walked packet-at-a-time
    /// here, but into a buffer that never reallocates in steady state).
    completions: Vec<RxCompletion>,
    /// Reused per-queue TX staging batches.
    tx_batches: Vec<Vec<TxRequest>>,
    tracer: Tracer,
    stats: StackStats,
}

impl KernelStack {
    /// Creates the stack with paper-calibrated costs and a NAPI budget of
    /// 64 packets.
    pub fn new(seed: u64) -> Self {
        Self::with_costs(KernelCosts::default(), seed)
    }

    /// Creates a stack instance for worker core `lcore`: kernel working
    /// set, code footprint, user buffer, and TX skb pool occupy that
    /// core's private slice of the address map. `for_lcore(seed, 0)` is
    /// exactly `new(seed)`.
    pub fn for_lcore(seed: u64, lcore: usize) -> Self {
        Self::with_costs_for_lcore(KernelCosts::default(), seed, lcore)
    }

    /// Creates the stack with explicit costs.
    pub fn with_costs(costs: KernelCosts, seed: u64) -> Self {
        Self::with_costs_for_lcore(costs, seed, 0)
    }

    /// Creates the stack with explicit costs for a specific core.
    pub fn with_costs_for_lcore(costs: KernelCosts, seed: u64, lcore: usize) -> Self {
        let off = lcore as u64 * (64 << 20);
        Self {
            budget: 64,
            costs,
            // >1 MiB data + ~1.5 MiB code: the kernel working set that
            // keeps rewarding L2 growth past 1 MiB (Fig. 11c).
            ws: FootprintStream::new(KERNEL_WS_BASE + off, 3 << 20, 0.5, seed ^ 0xFEED),
            code: FootprintStream::new(KERNEL_CODE_BASE + off, 1536 << 10, 0.6, seed ^ 0xBEEF),
            user_base: USER_BUF_BASE + off,
            user_cursor: 0,
            tx_mbuf_base: KERNEL_TX_MBUF_BASE + lcore * KERNEL_TX_MBUF_COUNT,
            tx_mbuf_cursor: 0,
            queues: vec![0],
            tx_backlog: Vec::new(),
            ops: Vec::new(),
            completions: Vec::new(),
            tx_batches: Vec::new(),
            tracer: Tracer::disabled(),
            stats: StackStats::default(),
        }
    }

    /// The NAPI poll budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Sets the interrupt-throttling interval (coalescing).
    pub fn set_itr(&mut self, itr: Tick) {
        self.costs.itr = itr;
    }

    fn user_buf(&mut self, len: u64) -> Addr {
        let addr = self.user_base + self.user_cursor;
        self.user_cursor = (self.user_cursor + len.max(64)) % USER_BUF_SIZE;
        addr
    }

    fn tx_mbuf(&mut self) -> usize {
        let idx = self.tx_mbuf_base + self.tx_mbuf_cursor;
        self.tx_mbuf_cursor = (self.tx_mbuf_cursor + 1) % KERNEL_TX_MBUF_COUNT;
        idx
    }
}

impl NetworkStack for KernelStack {
    fn name(&self) -> &'static str {
        "kernel"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn wakeup_latency(&self) -> Tick {
        self.costs.wakeup_latency + self.costs.itr
    }

    fn assign_queues(&mut self, queues: Vec<usize>) {
        assert!(!queues.is_empty(), "lcore must service at least one queue");
        self.queues = queues;
    }

    fn stats(&self) -> Option<&StackStats> {
        Some(&self.stats)
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn iteration(
        &mut self,
        now: Tick,
        nic: &mut Nic,
        core: &mut Core,
        mem: &mut MemorySystem,
        app: &mut dyn PacketApp,
    ) -> Iteration {
        let it = self.run_iteration(now, nic, core, mem, app);
        self.stats.observe(&it);
        it
    }
}

impl KernelStack {
    /// One NAPI/syscall cycle; the trait's `iteration` wraps this with
    /// counter bookkeeping.
    fn run_iteration(
        &mut self,
        now: Tick,
        nic: &mut Nic,
        core: &mut Core,
        mem: &mut MemorySystem,
        app: &mut dyn PacketApp,
    ) -> Iteration {
        let mut ops = std::mem::take(&mut self.ops);
        ops.clear();

        let ring = nic.config().rx_ring_size;
        let tx_ring = nic.config().tx_ring_size;
        let nq = nic.num_queues();
        let total_tx_ring = tx_ring * nq;

        // Retry any TX the ring rejected before taking new work.
        if !self.tx_backlog.is_empty() {
            let backlog = std::mem::take(&mut self.tx_backlog);
            let mut by_queue: Vec<Vec<TxRequest>> = Vec::new();
            by_queue.resize_with(nq, Vec::new);
            for (q, req) in backlog {
                by_queue[q].push(req);
            }
            let mut accepted = 0;
            for (q, reqs) in by_queue.into_iter().enumerate() {
                if reqs.is_empty() {
                    continue;
                }
                let (took, rejected) = nic.tx_submit_q(q, now, reqs);
                accepted += took;
                self.tx_backlog.extend(rejected.into_iter().map(|r| (q, r)));
            }
            ops.push(Op::Compute(300));
            let end = core.execute(now, &ops, mem);
            self.ops = ops;
            return Iteration {
                end,
                rx: 0,
                tx: accepted,
                idle: false,
            };
        }

        let mut completions = std::mem::take(&mut self.completions);
        completions.clear();
        for &q in &self.queues {
            let remaining = self.budget - completions.len();
            if remaining == 0 {
                break;
            }
            nic.rx_poll_q_into(q, now, remaining, &mut completions);
        }
        let mut tx_batches = std::mem::take(&mut self.tx_batches);
        tx_batches.resize_with(nq, Vec::new);
        for batch in &mut tx_batches {
            batch.clear();
        }
        let mut tx_cursors = [0usize; 8];
        let mut rx_counts = [0usize; 8];
        let mut tx_total = 0usize;
        let origin_q = self.queues[0];

        // Client-side originations (sendmsg syscalls from a client app).
        while tx_total < self.budget {
            let Some(packet) = app.poll_tx(now, &mut ops) else {
                break;
            };
            ops.push(Op::Compute(self.costs.syscall_per_packet));
            let mbuf = self.tx_mbuf();
            ops::stores_over(&mut ops, layout::mbuf_addr(mbuf), packet.len() as u64);
            ops.push(Op::Compute(600)); // driver xmit path
            ops.push(Op::Store(layout::tx_desc_addr(
                origin_q * tx_ring + tx_cursors[origin_q],
                total_tx_ring,
            )));
            tx_cursors[origin_q] += 1;
            tx_total += 1;
            self.tracer
                .emit(now, packet.id(), Component::App, Stage::AppTx);
            tx_batches[origin_q].push(TxRequest { packet, mbuf });
        }

        if completions.is_empty() && tx_total == 0 {
            // Idle: the process sleeps in epoll/read until an interrupt.
            app.on_idle(&mut ops);
            ops.push(Op::Compute(50));
            let end = core.execute(now, &ops, mem);
            self.ops = ops;
            self.completions = completions;
            self.tx_batches = tx_batches;
            return Iteration {
                end,
                rx: 0,
                tx: 0,
                idle: true,
            };
        }

        ops.push(Op::Compute(self.costs.irq_entry));
        ops.push(Op::Compute(self.costs.napi_poll_base));
        let rx_count = completions.len();
        if rx_count > 0 {
            app.on_burst(rx_count, &mut ops);
        }

        for completion in completions.drain(..) {
            self.tracer
                .emit(now, completion.packet.id(), Component::Stack, Stage::SwRx);
            let len = completion.packet.len() as u64;
            let mbuf_addr = layout::mbuf_addr(completion.slot);
            let rxq = completion.slot / ring;
            rx_counts[rxq] += 1;

            // Driver + protocol stack.
            ops.push(Op::Compute(self.costs.per_packet_stack));
            self.ws.emit_loads(&mut ops, self.costs.ws_loads_per_packet);
            self.ws
                .emit_dependent_loads(&mut ops, self.costs.dependent_loads_per_packet);
            self.code
                .emit_ifetches(&mut ops, self.costs.ifetch_per_packet);

            // Socket delivery + recv syscall: copy kernel -> user.
            ops.push(Op::Compute(self.costs.syscall_per_packet));
            let user = self.user_buf(len);
            ops::loads_over(&mut ops, mbuf_addr, len);
            ops::stores_over(&mut ops, user, len);

            // The application works on the *user-space copy*.
            self.tracer
                .emit(now, completion.packet.id(), Component::App, Stage::AppRx);
            match app.on_packet(completion, user, &mut ops) {
                AppAction::Consume => {}
                AppAction::Forward(packet) | AppAction::Respond(packet) => {
                    // send syscall: copy user -> skb, then driver TX. The
                    // reply leaves on the queue the request arrived on.
                    ops.push(Op::Compute(self.costs.syscall_per_packet));
                    let mbuf = self.tx_mbuf();
                    let out_len = packet.len() as u64;
                    ops::loads_over(&mut ops, user, out_len.min(len.max(64)));
                    ops::stores_over(&mut ops, layout::mbuf_addr(mbuf), out_len);
                    ops.push(Op::Compute(600)); // driver xmit path
                    ops.push(Op::Store(layout::tx_desc_addr(
                        rxq * tx_ring + tx_cursors[rxq],
                        total_tx_ring,
                    )));
                    tx_cursors[rxq] += 1;
                    tx_total += 1;
                    self.tracer
                        .emit(now, packet.id(), Component::App, Stage::AppTx);
                    tx_batches[rxq].push(TxRequest { packet, mbuf });
                }
            }
        }

        let tx_count = tx_total;
        let end = core.execute(now, &ops, mem);
        self.ops = ops;
        self.completions = completions;
        for (q, batch) in tx_batches.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (_, rejected) = nic.tx_submit_q(q, end, std::mem::take(batch));
            self.tx_backlog.extend(rejected.into_iter().map(|r| (q, r)));
        }
        for &q in &self.queues {
            nic.rx_ring_post_q_at(q, end, rx_counts[q]);
        }
        self.tx_batches = tx_batches;
        Iteration {
            end,
            rx: rx_count,
            tx: tx_count,
            idle: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_cpu::CoreConfig;
    use simnet_mem::MemoryConfig;
    use simnet_net::{MacAddr, Packet, PacketBuilder};
    use simnet_nic::i8254x::RxCompletion;
    use simnet_nic::NicConfig;

    struct Sink;
    impl PacketApp for Sink {
        fn name(&self) -> &'static str {
            "sink"
        }
        fn on_packet(&mut self, _c: RxCompletion, _buf: Addr, ops: &mut Vec<Op>) -> AppAction {
            ops.push(Op::Compute(50));
            AppAction::Consume
        }
    }

    struct Responder;
    impl PacketApp for Responder {
        fn name(&self) -> &'static str {
            "responder"
        }
        fn on_packet(&mut self, c: RxCompletion, _buf: Addr, _ops: &mut Vec<Op>) -> AppAction {
            let mut pkt = c.packet;
            pkt.macswap();
            AppAction::Respond(pkt)
        }
    }

    fn rig() -> (Nic, Core, MemorySystem, KernelStack) {
        (
            Nic::new(NicConfig::paper_default()),
            Core::new(CoreConfig::table1_ooo()),
            MemorySystem::new(MemoryConfig::table1_gem5()),
            KernelStack::new(1),
        )
    }

    fn deliver(nic: &mut Nic, mem: &mut MemorySystem, count: u64, len: usize) -> Tick {
        nic.rx_ring_post(1024);
        for i in 0..count {
            let pkt: Packet = PacketBuilder::new()
                .dst(MacAddr::simulated(1))
                .frame_len(len)
                .build(i);
            assert!(nic.wire_rx(0, pkt).is_none());
        }
        let mut now = 0;
        if let Some(t) = nic.rx_dma_start(now, mem) {
            now = t;
        }
        while let Some(t) = nic.rx_dma_advance(now, mem) {
            now = t.max(now + 1);
        }
        now
    }

    #[test]
    fn kernel_per_packet_cost_is_microsecond_scale() {
        let (mut nic, mut core, mut mem, mut stack) = rig();
        let mut app = Sink;
        let ready = deliver(&mut nic, &mut mem, 32, 1518);
        let start = ready + simnet_sim::tick::us(10);
        let it = stack.iteration(start, &mut nic, &mut core, &mut mem, &mut app);
        assert_eq!(it.rx, 32);
        let per_packet = (it.end - start) / 32;
        // ~0.5–2 µs per packet: the ~10 Gbps kernel ceiling of §II.B.
        assert!(
            (300_000..2_500_000).contains(&per_packet),
            "kernel per-packet cost {per_packet} ps"
        );
    }

    #[test]
    fn kernel_is_far_slower_than_dpdk_per_packet() {
        let (mut nic_k, mut core_k, mut mem_k, mut kernel) = rig();
        let mut sink = Sink;
        let ready = deliver(&mut nic_k, &mut mem_k, 32, 256);
        let it_k = kernel.iteration(
            ready + simnet_sim::tick::us(10),
            &mut nic_k,
            &mut core_k,
            &mut mem_k,
            &mut sink,
        );

        let mut nic_d = Nic::new(NicConfig::paper_default());
        let mut core_d = Core::new(CoreConfig::table1_ooo());
        let mut mem_d = MemorySystem::new(MemoryConfig::table1_gem5());
        let mut dpdk = crate::DpdkStack::new(1);
        let ready_d = deliver(&mut nic_d, &mut mem_d, 32, 256);
        let it_d = dpdk.iteration(
            ready_d + simnet_sim::tick::us(10),
            &mut nic_d,
            &mut core_d,
            &mut mem_d,
            &mut sink,
        );

        let k = it_k.end - (ready + simnet_sim::tick::us(10));
        let d = it_d.end - (ready_d + simnet_sim::tick::us(10));
        assert!(k > d * 5, "kernel {k} should dwarf dpdk {d}");
    }

    #[test]
    fn idle_iteration_reports_idle_and_wakeup_latency() {
        let (mut nic, mut core, mut mem, mut stack) = rig();
        let mut app = Sink;
        let it = stack.iteration(0, &mut nic, &mut core, &mut mem, &mut app);
        assert!(it.idle);
        assert_eq!(stack.wakeup_latency(), us(2));
    }

    #[test]
    fn responses_are_submitted_to_tx() {
        let (mut nic, mut core, mut mem, mut stack) = rig();
        let mut app = Responder;
        let ready = deliver(&mut nic, &mut mem, 4, 256);
        let it = stack.iteration(
            ready + simnet_sim::tick::us(10),
            &mut nic,
            &mut core,
            &mut mem,
            &mut app,
        );
        assert_eq!(it.rx, 4);
        assert_eq!(it.tx, 4);
        assert!(nic.tx_dma_needs_kick());
    }

    #[test]
    fn user_buffer_rotates_within_window() {
        let mut stack = KernelStack::new(0);
        let first = stack.user_buf(1500);
        let mut last = first;
        for _ in 0..200 {
            last = stack.user_buf(1500);
            assert!((USER_BUF_BASE..USER_BUF_BASE + USER_BUF_SIZE).contains(&last));
        }
        assert_ne!(first, last);
    }
}
