//! A model of Linux's `uio_pci_generic` driver.
//!
//! `uio_pci_generic` refuses to take a device whose legacy interrupts it
//! cannot disable: on probe it sets the Command register's
//! interrupt-disable bit and reads it back. On baseline gem5 that bit is
//! unimplemented, so the probe fails and DPDK never gets the device — the
//! exact failure §III.A.1 describes. Against the extended config-space
//! model the probe succeeds.

use crate::command::Command;
use crate::config_space::{ConfigSpace, OFF_COMMAND};

/// Why a UIO bind failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindError {
    /// The device does not implement the Command interrupt-disable bit
    /// (baseline gem5's PCI model).
    InterruptDisableUnsupported,
    /// The device is already bound to a driver.
    AlreadyBound,
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::InterruptDisableUnsupported => {
                write!(
                    f,
                    "device cannot disable legacy interrupts (PCI Command bit 10)"
                )
            }
            BindError::AlreadyBound => write!(f, "device already bound to a driver"),
        }
    }
}

impl std::error::Error for BindError {}

/// The `uio_pci_generic` driver: exposes a bound device's config space and
/// BARs to userspace.
#[derive(Debug, Default)]
pub struct UioPciGeneric {
    bound: bool,
}

impl UioPciGeneric {
    /// Creates an unbound driver instance (`modprobe uio_pci_generic`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a device is currently bound.
    pub fn is_bound(&self) -> bool {
        self.bound
    }

    /// Probes `config`: enables memory decoding and bus mastering, then
    /// verifies interrupts can be disabled. This is the gate that fails on
    /// baseline gem5.
    ///
    /// # Errors
    ///
    /// [`BindError::InterruptDisableUnsupported`] if the interrupt-disable
    /// bit does not stick; [`BindError::AlreadyBound`] if already bound.
    pub fn bind(&mut self, config: &mut ConfigSpace) -> Result<(), BindError> {
        if self.bound {
            return Err(BindError::AlreadyBound);
        }
        // Enable the device the way the kernel does.
        let cmd = config.read_config(OFF_COMMAND, 2) as u16;
        config.write_config(
            OFF_COMMAND,
            2,
            (cmd | Command::MEMORY_SPACE | Command::BUS_MASTER) as u32,
        );

        // pci_intx(dev, 0): set interrupt-disable via a byte write to the
        // upper Command byte (this is the access pattern baseline gem5
        // drops), then verify it stuck.
        let hi = config.read_config(OFF_COMMAND + 1, 1);
        config.write_config(
            OFF_COMMAND + 1,
            1,
            hi | (Command::INTERRUPT_DISABLE >> 8) as u32,
        );
        if !config.command().interrupts_disabled() {
            return Err(BindError::InterruptDisableUnsupported);
        }
        self.bound = true;
        Ok(())
    }

    /// Releases the device.
    pub fn unbind(&mut self, config: &mut ConfigSpace) {
        if self.bound {
            let cmd = config.command();
            let mut restored = cmd;
            restored.clear(Command::INTERRUPT_DISABLE);
            config.write_config(OFF_COMMAND, 2, restored.bits() as u32);
            self.bound = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_space::CompatMode;

    #[test]
    fn bind_succeeds_on_extended_model() {
        let mut cs = ConfigSpace::new(0x8086, 0x100e, CompatMode::Extended);
        let mut uio = UioPciGeneric::new();
        assert_eq!(uio.bind(&mut cs), Ok(()));
        assert!(uio.is_bound());
        assert!(cs.command().bus_master_enabled());
        assert!(cs.command().interrupts_disabled());
    }

    #[test]
    fn bind_fails_on_baseline_model() {
        // The paper's §III.A.1 failure, reproduced.
        let mut cs = ConfigSpace::new(0x8086, 0x100e, CompatMode::Baseline);
        let mut uio = UioPciGeneric::new();
        assert_eq!(
            uio.bind(&mut cs),
            Err(BindError::InterruptDisableUnsupported)
        );
        assert!(!uio.is_bound());
    }

    #[test]
    fn double_bind_rejected() {
        let mut cs = ConfigSpace::new(0x8086, 0x100e, CompatMode::Extended);
        let mut uio = UioPciGeneric::new();
        uio.bind(&mut cs).unwrap();
        assert_eq!(uio.bind(&mut cs), Err(BindError::AlreadyBound));
    }

    #[test]
    fn unbind_restores_interrupts() {
        let mut cs = ConfigSpace::new(0x8086, 0x100e, CompatMode::Extended);
        let mut uio = UioPciGeneric::new();
        uio.bind(&mut cs).unwrap();
        uio.unbind(&mut cs);
        assert!(!uio.is_bound());
        assert!(!cs.command().interrupts_disabled());
        // Re-bind works after unbind.
        assert_eq!(uio.bind(&mut cs), Ok(()));
    }
}
