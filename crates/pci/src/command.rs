//! The 16-bit PCI Command register (configuration-space offset `0x04`).

/// The PCI Command register as a typed value.
///
/// Fig. 2 of the paper shows this register in the first 8 bytes of the
/// configuration space. The load-bearing bit for userspace networking is
/// bit 10, **interrupt disable**: "we implement the interrupt disable bit
/// in \[the\] gem5 PCI model, so the Linux kernel can disable the interrupts
/// for the PCI devices ... which is necessary to support uio_pci_generic"
/// (§III.A.1).
///
/// ```
/// use simnet_pci::Command;
/// let mut cmd = Command::new(0);
/// cmd.set(Command::BUS_MASTER | Command::MEMORY_SPACE);
/// cmd.set(Command::INTERRUPT_DISABLE);
/// assert!(cmd.contains(Command::INTERRUPT_DISABLE));
/// assert_eq!(cmd.bits() & 0b110, 0b110);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Command(u16);

impl Command {
    /// Bit 0: respond to I/O-space accesses.
    pub const IO_SPACE: u16 = 1 << 0;
    /// Bit 1: respond to memory-space accesses.
    pub const MEMORY_SPACE: u16 = 1 << 1;
    /// Bit 2: may act as a bus master (required for DMA).
    pub const BUS_MASTER: u16 = 1 << 2;
    /// Bit 3: special cycles.
    pub const SPECIAL_CYCLES: u16 = 1 << 3;
    /// Bit 4: memory write & invalidate enable.
    pub const MWI_ENABLE: u16 = 1 << 4;
    /// Bit 5: VGA palette snoop.
    pub const VGA_SNOOP: u16 = 1 << 5;
    /// Bit 6: parity error response.
    pub const PARITY_ERROR: u16 = 1 << 6;
    /// Bit 8: SERR# enable.
    pub const SERR_ENABLE: u16 = 1 << 8;
    /// Bit 9: fast back-to-back enable.
    pub const FAST_B2B: u16 = 1 << 9;
    /// Bit 10: **interrupt disable** — unimplemented in baseline gem5.
    pub const INTERRUPT_DISABLE: u16 = 1 << 10;

    /// Mask of the bits baseline gem5 implements (bits 0–9).
    pub const BASELINE_IMPLEMENTED_MASK: u16 = 0x03ff;
    /// Mask of defined bits in the extended (paper) model.
    pub const EXTENDED_IMPLEMENTED_MASK: u16 = 0x07ff;

    /// Creates a register from raw bits.
    pub const fn new(bits: u16) -> Self {
        Self(bits)
    }

    /// The raw bits.
    pub const fn bits(&self) -> u16 {
        self.0
    }

    /// Sets every bit in `mask`.
    pub fn set(&mut self, mask: u16) {
        self.0 |= mask;
    }

    /// Clears every bit in `mask`.
    pub fn clear(&mut self, mask: u16) {
        self.0 &= !mask;
    }

    /// Whether every bit in `mask` is set.
    pub fn contains(&self, mask: u16) -> bool {
        self.0 & mask == mask
    }

    /// Whether the device may issue DMA.
    pub fn bus_master_enabled(&self) -> bool {
        self.contains(Self::BUS_MASTER)
    }

    /// Whether legacy INTx interrupts are disabled.
    pub fn interrupts_disabled(&self) -> bool {
        self.contains(Self::INTERRUPT_DISABLE)
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Command(0x{:04x})", self.0)
    }
}

impl std::fmt::LowerHex for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl std::fmt::Binary for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains() {
        let mut cmd = Command::new(0);
        cmd.set(Command::BUS_MASTER);
        assert!(cmd.bus_master_enabled());
        cmd.clear(Command::BUS_MASTER);
        assert!(!cmd.bus_master_enabled());
    }

    #[test]
    fn interrupt_disable_is_bit_ten() {
        assert_eq!(Command::INTERRUPT_DISABLE, 0x0400);
        let cmd = Command::new(0x0400);
        assert!(cmd.interrupts_disabled());
    }

    #[test]
    fn baseline_mask_excludes_bit_ten() {
        assert_eq!(
            Command::BASELINE_IMPLEMENTED_MASK & Command::INTERRUPT_DISABLE,
            0
        );
        assert_eq!(
            Command::EXTENDED_IMPLEMENTED_MASK,
            Command::BASELINE_IMPLEMENTED_MASK | Command::INTERRUPT_DISABLE
        );
    }

    #[test]
    fn formatting_is_nonempty() {
        let cmd = Command::new(0x0406);
        assert_eq!(cmd.to_string(), "Command(0x0406)");
        assert_eq!(format!("{cmd:x}"), "406");
        assert_eq!(format!("{cmd:b}"), "10000000110");
    }
}
