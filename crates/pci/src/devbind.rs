//! A `dpdk-devbind.py` stand-in: a registry mapping PCI addresses to
//! devices and the drivers bound to them.
//!
//! Listing 2 of the paper binds the NIC with
//! `dpdk-devbind.py -b uio_pci_generic 00:02.0`; [`DevBind`] models that
//! step so the harness's "boot script" is the same sequence of operations.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use crate::config_space::ConfigSpace;
use crate::uio::{BindError, UioPciGeneric};

/// A PCI bus/device/function address, e.g. `00:02.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdf {
    /// Bus number.
    pub bus: u8,
    /// Device number (0–31).
    pub device: u8,
    /// Function number (0–7).
    pub function: u8,
}

impl fmt::Display for Bdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}:{:02x}.{}", self.bus, self.device, self.function)
    }
}

/// Error parsing a BDF string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBdfError(String);

impl fmt::Display for ParseBdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PCI address syntax: {:?}", self.0)
    }
}

impl std::error::Error for ParseBdfError {}

impl FromStr for Bdf {
    type Err = ParseBdfError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseBdfError(s.to_owned());
        let (bus, rest) = s.split_once(':').ok_or_else(err)?;
        let (dev, func) = rest.split_once('.').ok_or_else(err)?;
        let bdf = Bdf {
            bus: u8::from_str_radix(bus, 16).map_err(|_| err())?,
            device: u8::from_str_radix(dev, 16).map_err(|_| err())?,
            function: func.parse().map_err(|_| err())?,
        };
        if bdf.device > 31 || bdf.function > 7 {
            return Err(err());
        }
        Ok(bdf)
    }
}

/// A registered device: its config space and (optionally) a UIO driver.
#[derive(Debug)]
struct Slot {
    config: ConfigSpace,
    uio: Option<UioPciGeneric>,
}

/// The device/driver registry.
#[derive(Debug, Default)]
pub struct DevBind {
    slots: BTreeMap<Bdf, Slot>,
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevBindError {
    /// No device at the given address.
    NoSuchDevice(Bdf),
    /// The underlying driver bind failed.
    Bind(BindError),
}

impl fmt::Display for DevBindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevBindError::NoSuchDevice(bdf) => write!(f, "no PCI device at {bdf}"),
            DevBindError::Bind(e) => write!(f, "driver bind failed: {e}"),
        }
    }
}

impl std::error::Error for DevBindError {}

impl From<BindError> for DevBindError {
    fn from(e: BindError) -> Self {
        DevBindError::Bind(e)
    }
}

impl DevBind {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a device's config space at `bdf` (platform enumeration).
    pub fn register(&mut self, bdf: Bdf, config: ConfigSpace) {
        self.slots.insert(bdf, Slot { config, uio: None });
    }

    /// Lists registered addresses.
    pub fn devices(&self) -> impl Iterator<Item = Bdf> + '_ {
        self.slots.keys().copied()
    }

    /// Binds `uio_pci_generic` to the device at `bdf`
    /// (`dpdk-devbind.py -b uio_pci_generic <bdf>`).
    ///
    /// # Errors
    ///
    /// [`DevBindError::NoSuchDevice`] or a wrapped [`BindError`].
    pub fn bind_uio(&mut self, bdf: Bdf) -> Result<(), DevBindError> {
        let slot = self
            .slots
            .get_mut(&bdf)
            .ok_or(DevBindError::NoSuchDevice(bdf))?;
        let mut uio = UioPciGeneric::new();
        uio.bind(&mut slot.config)?;
        slot.uio = Some(uio);
        Ok(())
    }

    /// Whether the device at `bdf` is UIO-bound.
    pub fn is_uio_bound(&self, bdf: Bdf) -> bool {
        self.slots
            .get(&bdf)
            .is_some_and(|s| s.uio.as_ref().is_some_and(|u| u.is_bound()))
    }

    /// Unbinds the device at `bdf` (`dpdk-devbind.py -u <bdf>`).
    ///
    /// # Errors
    ///
    /// [`DevBindError::NoSuchDevice`] if the address is unknown.
    pub fn unbind(&mut self, bdf: Bdf) -> Result<(), DevBindError> {
        let slot = self
            .slots
            .get_mut(&bdf)
            .ok_or(DevBindError::NoSuchDevice(bdf))?;
        if let Some(mut uio) = slot.uio.take() {
            uio.unbind(&mut slot.config);
        }
        Ok(())
    }

    /// The config space of the device at `bdf` (userspace access through
    /// `/sys/bus/pci/devices/<bdf>/config`).
    pub fn config(&self, bdf: Bdf) -> Option<&ConfigSpace> {
        self.slots.get(&bdf).map(|s| &s.config)
    }

    /// Mutable config-space access for a bound device.
    pub fn config_mut(&mut self, bdf: Bdf) -> Option<&mut ConfigSpace> {
        self.slots.get_mut(&bdf).map(|s| &mut s.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_space::CompatMode;

    fn nic_config(mode: CompatMode) -> ConfigSpace {
        ConfigSpace::new(0x8086, 0x100e, mode)
    }

    #[test]
    fn bdf_parse_and_display() {
        let bdf: Bdf = "00:02.0".parse().unwrap();
        assert_eq!(bdf.bus, 0);
        assert_eq!(bdf.device, 2);
        assert_eq!(bdf.function, 0);
        assert_eq!(bdf.to_string(), "00:02.0");
    }

    #[test]
    fn bdf_rejects_garbage() {
        assert!("".parse::<Bdf>().is_err());
        assert!("00-02.0".parse::<Bdf>().is_err());
        assert!("00:02".parse::<Bdf>().is_err());
        assert!("00:20.9".parse::<Bdf>().is_err());
        assert!("00:ff.0".parse::<Bdf>().is_err());
    }

    #[test]
    fn listing2_bind_sequence() {
        // modprobe uio_pci_generic; dpdk-devbind.py -b uio_pci_generic 00:02.0
        let bdf: Bdf = "00:02.0".parse().unwrap();
        let mut reg = DevBind::new();
        reg.register(bdf, nic_config(CompatMode::Extended));
        assert_eq!(reg.bind_uio(bdf), Ok(()));
        assert!(reg.is_uio_bound(bdf));
    }

    #[test]
    fn bind_fails_against_baseline_pci_model() {
        let bdf: Bdf = "00:02.0".parse().unwrap();
        let mut reg = DevBind::new();
        reg.register(bdf, nic_config(CompatMode::Baseline));
        assert_eq!(
            reg.bind_uio(bdf),
            Err(DevBindError::Bind(BindError::InterruptDisableUnsupported))
        );
        assert!(!reg.is_uio_bound(bdf));
    }

    #[test]
    fn unknown_device_errors() {
        let mut reg = DevBind::new();
        let bdf: Bdf = "00:03.0".parse().unwrap();
        assert_eq!(reg.bind_uio(bdf), Err(DevBindError::NoSuchDevice(bdf)));
        assert_eq!(reg.unbind(bdf), Err(DevBindError::NoSuchDevice(bdf)));
    }

    #[test]
    fn unbind_then_rebind() {
        let bdf: Bdf = "00:02.0".parse().unwrap();
        let mut reg = DevBind::new();
        reg.register(bdf, nic_config(CompatMode::Extended));
        reg.bind_uio(bdf).unwrap();
        reg.unbind(bdf).unwrap();
        assert!(!reg.is_uio_bound(bdf));
        assert_eq!(reg.bind_uio(bdf), Ok(()));
    }

    #[test]
    fn enumeration_lists_devices() {
        let mut reg = DevBind::new();
        reg.register("00:02.0".parse().unwrap(), nic_config(CompatMode::Extended));
        reg.register("00:04.0".parse().unwrap(), nic_config(CompatMode::Extended));
        let devices: Vec<String> = reg.devices().map(|b| b.to_string()).collect();
        assert_eq!(devices, ["00:02.0", "00:04.0"]);
    }
}
