//! PCI configuration-space model.
//!
//! §III.A of the paper identifies two PCI-level defects that keep DPDK off
//! baseline gem5, both reproduced (and fixed) here:
//!
//! 1. **Interrupt-disable bit** — baseline gem5 implements bits 0–9 of the
//!    16-bit Command register at offset `0x04` but not bit 10 (interrupt
//!    disable), which the kernel must set for `uio_pci_generic` to take a
//!    device. [`ConfigSpace`] models both behaviours via
//!    [`CompatMode::Baseline`] and [`CompatMode::Extended`].
//! 2. **Byte-granular Command access** — DPDK pokes the Command register
//!    with 8-bit accesses at offsets `0x04`/`0x05`; baseline gem5 ignores
//!    them, so the upper Command byte (where bit 10 lives) is unreachable.
//!    [`ConfigSpace::write_config`] honours 1-, 2- and 4-byte accesses in
//!    extended mode and reproduces the dropped-write bug in baseline mode.
//!
//! On top sit a [`uio::UioPciGeneric`] driver model (which genuinely fails
//! to bind against a baseline-mode device, as on unpatched gem5) and a
//! [`devbind`] registry mirroring `dpdk-devbind.py`.

pub mod command;
pub mod config_space;
pub mod devbind;
pub mod uio;

pub use command::Command;
pub use config_space::{CompatMode, ConfigSpace, PciStats};
pub use devbind::{Bdf, DevBind};
pub use uio::{BindError, UioPciGeneric};
