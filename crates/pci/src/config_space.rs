//! The 256-byte PCI configuration space with width-aware access semantics.

use std::cell::Cell;

use simnet_sim::fault::{FaultInjector, FaultKind};
use simnet_sim::trace::{Component, Stage, Tracer, NO_PACKET};
use simnet_sim::Tick;

use crate::command::Command;

/// Offset of the Vendor ID field.
pub const OFF_VENDOR_ID: usize = 0x00;
/// Offset of the Device ID field.
pub const OFF_DEVICE_ID: usize = 0x02;
/// Offset of the Command register.
pub const OFF_COMMAND: usize = 0x04;
/// Offset of the Status register.
pub const OFF_STATUS: usize = 0x06;
/// Offset of the first Base Address Register.
pub const OFF_BAR0: usize = 0x10;

/// Whether the config space reproduces baseline gem5's access bugs or the
/// paper's fixed behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompatMode {
    /// Baseline gem5 (§III.A): Command bit 10 is not implemented, and
    /// byte-granular accesses to the Command register are **ignored** —
    /// "such byte-granular accesses are being ignored in gem5, and
    /// therefore DPDK cannot properly read and write the upper half of the
    /// Command Register".
    Baseline,
    /// The paper's extended model: bit 10 implemented, 1/2/4-byte accesses
    /// honoured everywhere.
    #[default]
    Extended,
}

/// Config-space access counters. `Cell`-based because the read path takes
/// `&self` (the config space is `Clone` and widely shared by value).
#[derive(Debug, Clone, Default)]
pub struct PciStats {
    /// Config-space reads served.
    pub reads: Cell<u64>,
    /// Config-space writes applied.
    pub writes: Cell<u64>,
    /// Timed reads that paid an injected stall.
    pub stalled_reads: Cell<u64>,
}

impl PciStats {
    /// Registers the `system.pci.*` statistics section (Full-level only:
    /// the legacy dump had no PCI counters).
    pub fn register_stats(&self, reg: &mut simnet_sim::stats::StatsRegistry) {
        if !reg.full() {
            return;
        }
        reg.scoped("system.pci", |reg| {
            reg.scalar("configReads", self.reads.get(), "config-space reads");
            reg.scalar("configWrites", self.writes.get(), "config-space writes");
            reg.scalar(
                "stalledReads",
                self.stalled_reads.get(),
                "config reads delayed by an injected stall",
            );
        });
    }

    /// Clears the counters (post-warm-up reset).
    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.stalled_reads.set(0);
    }
}

/// A device's PCI configuration space.
///
/// ```
/// use simnet_pci::{CompatMode, ConfigSpace, Command};
/// let mut cs = ConfigSpace::new(0x8086, 0x100e, CompatMode::Extended);
/// assert_eq!(cs.read_config(0x00, 2), 0x8086); // vendor id
/// // DPDK-style byte write of the upper Command byte (sets bit 10):
/// cs.write_config(0x05, 1, 0x04);
/// assert!(cs.command().interrupts_disabled());
/// ```
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    bytes: [u8; 256],
    mode: CompatMode,
    faults: FaultInjector,
    tracer: Tracer,
    stats: PciStats,
}

impl ConfigSpace {
    /// Creates a config space for the given vendor/device IDs.
    pub fn new(vendor_id: u16, device_id: u16, mode: CompatMode) -> Self {
        let mut bytes = [0u8; 256];
        bytes[OFF_VENDOR_ID..OFF_VENDOR_ID + 2].copy_from_slice(&vendor_id.to_le_bytes());
        bytes[OFF_DEVICE_ID..OFF_DEVICE_ID + 2].copy_from_slice(&device_id.to_le_bytes());
        Self {
            bytes,
            mode,
            faults: FaultInjector::disabled(),
            tracer: Tracer::disabled(),
            stats: PciStats::default(),
        }
    }

    /// Access counters.
    pub fn stats(&self) -> &PciStats {
        &self.stats
    }

    /// Attaches a fault injector (see `simnet_sim::fault`).
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Attaches a packet-lifecycle tracer for fault events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The compatibility mode.
    pub fn mode(&self) -> CompatMode {
        self.mode
    }

    /// The vendor ID.
    pub fn vendor_id(&self) -> u16 {
        u16::from_le_bytes([self.bytes[OFF_VENDOR_ID], self.bytes[OFF_VENDOR_ID + 1]])
    }

    /// The device ID.
    pub fn device_id(&self) -> u16 {
        u16::from_le_bytes([self.bytes[OFF_DEVICE_ID], self.bytes[OFF_DEVICE_ID + 1]])
    }

    /// The Command register as a typed value.
    pub fn command(&self) -> Command {
        Command::new(u16::from_le_bytes([
            self.bytes[OFF_COMMAND],
            self.bytes[OFF_COMMAND + 1],
        ]))
    }

    /// Base address register `n` (0–5).
    ///
    /// # Panics
    ///
    /// Panics if `n > 5`.
    pub fn bar(&self, n: usize) -> u32 {
        assert!(n <= 5, "PCI type-0 headers have 6 BARs");
        let off = OFF_BAR0 + n * 4;
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Programs base address register `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 5`.
    pub fn set_bar(&mut self, n: usize, value: u32) {
        assert!(n <= 5, "PCI type-0 headers have 6 BARs");
        let off = OFF_BAR0 + n * 4;
        self.bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads `width` bytes (1, 2 or 4) at `offset`, little-endian.
    ///
    /// In [`CompatMode::Baseline`], 1-byte reads of the Command register
    /// return 0 (the access is "ignored"), reproducing the defect that
    /// keeps DPDK from seeing the upper Command byte.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1/2/4 or the access crosses the space.
    pub fn read_config(&self, offset: usize, width: usize) -> u32 {
        assert!(matches!(width, 1 | 2 | 4), "width must be 1, 2 or 4");
        assert!(offset + width <= 256, "access beyond config space");
        self.stats.reads.set(self.stats.reads.get() + 1);

        if self.mode == CompatMode::Baseline
            && width == 1
            && (OFF_COMMAND..OFF_COMMAND + 2).contains(&offset)
        {
            return 0; // dropped byte access (gem5 bug)
        }

        let mut value = 0u32;
        for i in 0..width {
            value |= (self.bytes[offset + i] as u32) << (8 * i);
        }
        value
    }

    /// Like [`ConfigSpace::read_config`], but subject to fault injection:
    /// returns the value read and the tick at which the read completes.
    ///
    /// Under a `pci.stall` fault the completion tick moves out by the
    /// stall; under a `pci.master_clear` window, reads covering the
    /// Command register observe the bus-master enable bit cleared (the
    /// driver sees a device that transiently stopped mastering).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1/2/4 or the access crosses the space.
    pub fn read_config_timed(&self, now: Tick, offset: usize, width: usize) -> (u32, Tick) {
        let mut value = self.read_config(offset, width);
        let covers_command_lo = offset <= OFF_COMMAND && offset + width > OFF_COMMAND;
        if covers_command_lo && self.faults.master_cleared(now) {
            value &= !((Command::BUS_MASTER as u32) << (8 * (OFF_COMMAND - offset)));
            self.tracer.emit(
                now,
                NO_PACKET,
                Component::Pci,
                Stage::Fault {
                    kind: FaultKind::PciMasterClear,
                    ticks: 0,
                },
            );
        }
        let stall = self.faults.pci_stall();
        if stall > 0 {
            self.stats
                .stalled_reads
                .set(self.stats.stalled_reads.get() + 1);
            self.tracer.emit(
                now,
                NO_PACKET,
                Component::Pci,
                Stage::Fault {
                    kind: FaultKind::PciStall,
                    ticks: stall,
                },
            );
        }
        (value, now + stall)
    }

    /// Writes `width` bytes (1, 2 or 4) at `offset`, little-endian, with
    /// register semantics:
    ///
    /// * Vendor/Device ID are read-only.
    /// * Command writes are masked to the implemented bits (bit 10 only in
    ///   [`CompatMode::Extended`]).
    /// * Baseline mode silently ignores 1-byte Command writes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1/2/4 or the access crosses the space.
    pub fn write_config(&mut self, offset: usize, width: usize, value: u32) {
        assert!(matches!(width, 1 | 2 | 4), "width must be 1, 2 or 4");
        assert!(offset + width <= 256, "access beyond config space");
        self.stats.writes.set(self.stats.writes.get() + 1);

        for i in 0..width {
            let byte_off = offset + i;
            let byte = ((value >> (8 * i)) & 0xff) as u8;
            self.write_byte(byte_off, byte, width);
        }
    }

    fn write_byte(&mut self, offset: usize, byte: u8, access_width: usize) {
        // IDs are read-only.
        if offset < OFF_COMMAND {
            return;
        }
        // Command register: mode-dependent semantics.
        if (OFF_COMMAND..OFF_COMMAND + 2).contains(&offset) {
            if self.mode == CompatMode::Baseline && access_width == 1 {
                return; // dropped byte access (gem5 bug)
            }
            let mask = match self.mode {
                CompatMode::Baseline => Command::BASELINE_IMPLEMENTED_MASK,
                CompatMode::Extended => Command::EXTENDED_IMPLEMENTED_MASK,
            };
            let byte_mask = (mask >> (8 * (offset - OFF_COMMAND))) as u8;
            self.bytes[offset] = byte & byte_mask;
            return;
        }
        // Status register is RO/W1C; model as read-only for simplicity.
        if (OFF_STATUS..OFF_STATUS + 2).contains(&offset) {
            return;
        }
        self.bytes[offset] = byte;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extended() -> ConfigSpace {
        ConfigSpace::new(0x8086, 0x100e, CompatMode::Extended)
    }

    fn baseline() -> ConfigSpace {
        ConfigSpace::new(0x8086, 0x100e, CompatMode::Baseline)
    }

    #[test]
    fn ids_are_visible_and_read_only() {
        let mut cs = extended();
        assert_eq!(cs.vendor_id(), 0x8086);
        assert_eq!(cs.device_id(), 0x100e);
        assert_eq!(cs.read_config(0x00, 4), 0x100e_8086);
        cs.write_config(0x00, 4, 0xdead_beef);
        assert_eq!(cs.vendor_id(), 0x8086);
    }

    #[test]
    fn extended_mode_honours_byte_writes_to_command() {
        let mut cs = extended();
        // DPDK reads the upper half, sets the interrupt-disable bit,
        // writes it back — all with 8-bit accesses at offset 0x05.
        let hi = cs.read_config(0x05, 1);
        cs.write_config(0x05, 1, hi | 0x04);
        assert!(cs.command().interrupts_disabled());
        assert_eq!(cs.read_config(0x05, 1), 0x04);
    }

    #[test]
    fn baseline_mode_drops_byte_accesses_to_command() {
        let mut cs = baseline();
        cs.write_config(0x05, 1, 0x04);
        assert!(!cs.command().interrupts_disabled());
        // And the read comes back empty too.
        cs.write_config(0x04, 2, Command::BUS_MASTER as u32);
        assert_eq!(cs.read_config(0x04, 1), 0);
        assert_eq!(cs.read_config(0x04, 2), Command::BUS_MASTER as u32);
    }

    #[test]
    fn baseline_mode_masks_bit_ten_on_word_writes() {
        let mut cs = baseline();
        cs.write_config(0x04, 2, 0x0407);
        assert_eq!(cs.command().bits(), 0x0007);
    }

    #[test]
    fn extended_mode_implements_bit_ten_on_word_writes() {
        let mut cs = extended();
        cs.write_config(0x04, 2, 0x0407);
        assert_eq!(cs.command().bits(), 0x0407);
    }

    #[test]
    fn undefined_command_bits_never_stick() {
        let mut cs = extended();
        cs.write_config(0x04, 2, 0xffff);
        assert_eq!(cs.command().bits(), Command::EXTENDED_IMPLEMENTED_MASK);
    }

    #[test]
    fn bars_program_and_read_back() {
        let mut cs = extended();
        cs.set_bar(0, 0xfebc_0000);
        assert_eq!(cs.bar(0), 0xfebc_0000);
        assert_eq!(cs.read_config(0x10, 4), 0xfebc_0000);
        cs.write_config(0x14, 4, 0xc000_0001);
        assert_eq!(cs.bar(1), 0xc000_0001);
    }

    #[test]
    fn status_register_is_read_only() {
        let mut cs = extended();
        cs.write_config(OFF_STATUS, 2, 0xffff);
        assert_eq!(cs.read_config(OFF_STATUS, 2), 0);
    }

    #[test]
    fn timed_read_without_faults_is_instant() {
        let mut cs = extended();
        cs.write_config(OFF_COMMAND, 2, Command::BUS_MASTER as u32);
        let (value, done) = cs.read_config_timed(1_000, OFF_COMMAND, 2);
        assert_eq!(value, Command::BUS_MASTER as u32);
        assert_eq!(done, 1_000);
    }

    #[test]
    fn stall_fault_delays_reads() {
        use simnet_sim::fault::{FaultInjector, FaultPlan};
        let mut cs = extended();
        // 100% stall probability: every read pays the delay.
        let plan = FaultPlan::parse("pci.stall=200ns@100%").unwrap();
        let inj = FaultInjector::new(plan, 1);
        cs.set_fault_injector(inj.clone());
        let (_, done) = cs.read_config_timed(0, 0x00, 4);
        assert_eq!(done, simnet_sim::tick::ns(200));
        assert_eq!(inj.counts().pci_stalls, 1);
    }

    #[test]
    fn master_clear_window_hides_bus_master_bit() {
        use simnet_sim::fault::{FaultInjector, FaultPlan};
        let mut cs = extended();
        cs.write_config(OFF_COMMAND, 2, Command::BUS_MASTER as u32);
        let plan = FaultPlan::parse("pci.master_clear=1us@10us").unwrap();
        let inj = FaultInjector::new(plan, 1);
        cs.set_fault_injector(inj.clone());
        // Inside the window: the bit reads cleared (16-bit and 32-bit).
        let (value, _) = cs.read_config_timed(0, OFF_COMMAND, 2);
        assert_eq!(value & Command::BUS_MASTER as u32, 0);
        let (dword, _) = cs.read_config_timed(0, OFF_COMMAND, 4);
        assert_eq!(dword & Command::BUS_MASTER as u32, 0);
        // Outside the window: the stored value is intact.
        let (value, _) = cs.read_config_timed(simnet_sim::tick::us(2), OFF_COMMAND, 2);
        assert_eq!(
            value & Command::BUS_MASTER as u32,
            Command::BUS_MASTER as u32
        );
        // Reads not covering the Command register are never masked.
        let (ids, _) = cs.read_config_timed(0, 0x00, 4);
        assert_eq!(ids, 0x100e_8086);
        assert_eq!(inj.counts().master_clear_blocks, 2);
    }

    #[test]
    fn access_counters_track_reads_writes_and_stalls() {
        use simnet_sim::fault::{FaultInjector, FaultPlan};
        use simnet_sim::stats::{DumpLevel, StatValue, StatsRegistry};
        let mut cs = extended();
        cs.set_fault_injector(FaultInjector::new(
            FaultPlan::parse("pci.stall=200ns@100%").unwrap(),
            1,
        ));
        cs.read_config(0x00, 4);
        cs.write_config(OFF_COMMAND, 2, 0x0007);
        let _ = cs.read_config_timed(0, 0x00, 4);
        assert_eq!(cs.stats().reads.get(), 2);
        assert_eq!(cs.stats().writes.get(), 1);
        assert_eq!(cs.stats().stalled_reads.get(), 1);
        // Compat-level dumps omit the (post-migration) PCI section.
        let mut compat = StatsRegistry::new();
        cs.stats().register_stats(&mut compat);
        assert!(compat.is_empty());
        let mut full = StatsRegistry::with_level(DumpLevel::Full);
        cs.stats().register_stats(&mut full);
        assert_eq!(
            full.get("system.pci.configReads"),
            Some(&StatValue::Scalar(2))
        );
        cs.stats().reset();
        assert_eq!(cs.stats().reads.get(), 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_bad_width() {
        extended().read_config(0, 3);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn rejects_out_of_range() {
        extended().read_config(255, 2);
    }
}
