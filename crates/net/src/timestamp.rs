//! In-payload transmit timestamps.
//!
//! In synthetic mode, `EtherLoadGen` "adds a timestamp to each outgoing
//! packet at a configurable offset and compares the timestamp with the
//! current tick on incoming packets to compute per-packet round-trip
//! latency" (§IV). The timestamp is a little-endian 64-bit tick count
//! preceded by a 16-bit magic so that reflected packets can be validated.

use simnet_sim::Tick;

use crate::packet::Packet;

/// Bytes occupied by an embedded timestamp (magic + tick).
pub const TIMESTAMP_LEN: usize = 10;

/// Default byte offset (from frame start) at which timestamps are stored:
/// right after the 14-byte Ethernet header.
pub const DEFAULT_OFFSET: usize = 14;

/// Byte offset (from frame start) of the payload of a UDP-in-IPv4 frame:
/// 14 B Ethernet + 20 B IPv4 + 8 B UDP. Timestamps in RSS-hashable UDP
/// frames live here — and must be written *before* the UDP checksum is
/// computed (via `PacketBuilder::build_with`), or the frame fails
/// checksum verification and falls back to queue 0.
pub const UDP_OFFSET: usize = 42;

const MAGIC: [u8; 2] = [0x5A, 0x5A];

/// Writes a transmit timestamp into `packet` at `offset`.
///
/// Returns `false` (and leaves the packet unchanged) if the frame is too
/// short to hold the timestamp at that offset.
pub fn write_timestamp(packet: &mut Packet, offset: usize, tick: Tick) -> bool {
    write_timestamp_slice(packet.bytes_mut(), offset, tick)
}

/// Writes a timestamp into a raw byte slice at `offset` — the same wire
/// format as [`write_timestamp`], for callers that stamp a payload region
/// *before* it is checksummed (the `build_with` fill closure of a UDP
/// frame). Returns `false` if the slice is too short.
pub fn write_timestamp_slice(bytes: &mut [u8], offset: usize, tick: Tick) -> bool {
    let Some(end) = offset.checked_add(TIMESTAMP_LEN) else {
        return false;
    };
    if bytes.len() < end {
        return false;
    }
    bytes[offset..offset + 2].copy_from_slice(&MAGIC);
    bytes[offset + 2..end].copy_from_slice(&tick.to_le_bytes());
    true
}

/// Reads a timestamp previously written at `offset`, if present and valid.
pub fn read_timestamp(packet: &Packet, offset: usize) -> Option<Tick> {
    let bytes = packet.bytes();
    let end = offset.checked_add(TIMESTAMP_LEN)?;
    if bytes.len() < end || bytes[offset..offset + 2] != MAGIC {
        return None;
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[offset + 2..end]);
    Some(Tick::from_le_bytes(raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    fn packet(len: usize) -> Packet {
        PacketBuilder::new().frame_len(len).build(0)
    }

    #[test]
    fn round_trip() {
        let mut pkt = packet(64);
        assert!(write_timestamp(&mut pkt, DEFAULT_OFFSET, 123_456_789));
        assert_eq!(read_timestamp(&pkt, DEFAULT_OFFSET), Some(123_456_789));
    }

    #[test]
    fn wrong_offset_reads_nothing() {
        let mut pkt = packet(64);
        write_timestamp(&mut pkt, 14, 42);
        assert_eq!(read_timestamp(&pkt, 20), None);
    }

    #[test]
    fn too_short_frame_is_rejected() {
        let mut pkt = packet(20);
        assert!(!write_timestamp(&mut pkt, 14, 42));
        assert_eq!(read_timestamp(&pkt, 14), None);
    }

    #[test]
    fn offset_overflow_is_safe() {
        let mut pkt = packet(64);
        assert!(!write_timestamp(&mut pkt, usize::MAX - 2, 42));
        assert_eq!(read_timestamp(&pkt, usize::MAX - 2), None);
    }

    #[test]
    fn unstamped_packet_reads_none() {
        let pkt = packet(64);
        assert_eq!(read_timestamp(&pkt, DEFAULT_OFFSET), None);
    }

    #[test]
    fn prechecksum_stamp_keeps_udp_frame_valid() {
        // Stamping inside the build_with fill closure happens before the
        // UDP checksum is computed, so the frame still verifies — the
        // property RSS steering of stamped frames depends on.
        let pkt = PacketBuilder::new()
            .udp([10, 0, 0, 2], [10, 0, 0, 1], 40_000, 9)
            .frame_len(64)
            .build_with(0, 64 - UDP_OFFSET, |buf| {
                assert!(write_timestamp_slice(buf, 0, 777));
            });
        assert!(pkt.udp().is_some(), "checksum must verify");
        assert_eq!(read_timestamp(&pkt, UDP_OFFSET), Some(777));
        // A *post*-build stamp corrupts the checksum: the guard the
        // pre-checksum path exists to avoid.
        let mut post = PacketBuilder::new()
            .udp([10, 0, 0, 2], [10, 0, 0, 1], 40_000, 9)
            .frame_len(64)
            .build(0);
        assert!(write_timestamp(&mut post, UDP_OFFSET, 777));
        assert!(
            post.udp().is_none(),
            "post-build stamp must break verification"
        );
    }

    #[test]
    fn survives_macswap_forwarding() {
        let mut pkt = packet(64);
        write_timestamp(&mut pkt, DEFAULT_OFFSET, 99);
        pkt.macswap();
        assert_eq!(read_timestamp(&pkt, DEFAULT_OFFSET), Some(99));
    }
}
