//! A UDP header, with the IPv4 pseudo-header checksum.

use crate::checksum;
use crate::ipv4::{Ipv4Addr, PROTO_UDP};

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP header.
///
/// ```
/// use simnet_net::udp::UdpHeader;
/// let hdr = UdpHeader::new(11211, 40000, 32);
/// let mut buf = [0u8; 8];
/// hdr.write(&mut buf, None);
/// let parsed = UdpHeader::parse(&buf).expect("valid");
/// assert_eq!(parsed.src_port, 11211);
/// assert_eq!(parsed.payload_len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length (header + payload).
    pub length: u16,
    /// Checksum (0 = not computed, legal for IPv4 UDP).
    pub csum: u16,
}

impl UdpHeader {
    /// Creates a header for `payload_len` bytes of payload, checksum unset.
    ///
    /// # Panics
    ///
    /// Panics if the datagram would exceed `u16::MAX`.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        let length = UDP_HEADER_LEN + payload_len;
        assert!(length <= u16::MAX as usize, "UDP datagram too large");
        Self {
            src_port,
            dst_port,
            length: length as u16,
            csum: 0,
        }
    }

    /// Parses a header from the start of `data`. Does not verify the
    /// checksum (callers with the pseudo-header use [`UdpHeader::verify`]).
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < UDP_HEADER_LEN {
            return None;
        }
        Some(Self {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length: u16::from_be_bytes([data[4], data[5]]),
            csum: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Writes the header to `buf`. If `pseudo` supplies the IPv4 addresses
    /// and the payload, the UDP checksum is computed; otherwise it is 0.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`UDP_HEADER_LEN`].
    pub fn write(&self, buf: &mut [u8], pseudo: Option<(Ipv4Addr, Ipv4Addr, &[u8])>) {
        assert!(buf.len() >= UDP_HEADER_LEN, "buffer too short");
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.length.to_be_bytes());
        buf[6..8].fill(0);
        if let Some((src, dst, payload)) = pseudo {
            let csum = self.pseudo_checksum(src, dst, &buf[..UDP_HEADER_LEN], payload);
            // All-zero computed checksum is transmitted as 0xffff.
            let csum = if csum == 0 { 0xffff } else { csum };
            buf[6..8].copy_from_slice(&csum.to_be_bytes());
        }
    }

    /// Length of the payload following this header.
    pub fn payload_len(&self) -> usize {
        (self.length as usize).saturating_sub(UDP_HEADER_LEN)
    }

    /// Verifies a received datagram (`header_bytes` includes the transmitted
    /// checksum). Checksum 0 means "not computed" and always verifies.
    pub fn verify(src: Ipv4Addr, dst: Ipv4Addr, header_bytes: &[u8], payload: &[u8]) -> bool {
        if header_bytes.len() < UDP_HEADER_LEN {
            return false;
        }
        let transmitted = u16::from_be_bytes([header_bytes[6], header_bytes[7]]);
        if transmitted == 0 {
            return true;
        }
        let pseudo = Self::pseudo_header(src, dst, header_bytes[4], header_bytes[5]);
        checksum::internet_checksum_parts(&[&pseudo, &header_bytes[..UDP_HEADER_LEN], payload]) == 0
    }

    fn pseudo_checksum(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        header_zero_csum: &[u8],
        payload: &[u8],
    ) -> u16 {
        let len_bytes = self.length.to_be_bytes();
        let pseudo = Self::pseudo_header(src, dst, len_bytes[0], len_bytes[1]);
        checksum::internet_checksum_parts(&[&pseudo, header_zero_csum, payload])
    }

    fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, len_hi: u8, len_lo: u8) -> [u8; 12] {
        [
            src[0], src[1], src[2], src[3], dst[0], dst[1], dst[2], dst[3], 0, PROTO_UDP, len_hi,
            len_lo,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = [10, 0, 0, 1];
    const DST: Ipv4Addr = [10, 0, 0, 2];

    #[test]
    fn round_trip_without_checksum() {
        let hdr = UdpHeader::new(1234, 5678, 16);
        let mut buf = [0u8; UDP_HEADER_LEN];
        hdr.write(&mut buf, None);
        let parsed = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.src_port, 1234);
        assert_eq!(parsed.dst_port, 5678);
        assert_eq!(parsed.payload_len(), 16);
        assert_eq!(parsed.csum, 0);
    }

    #[test]
    fn checksum_verifies_and_detects_corruption() {
        let payload = b"hello, memcached!";
        let hdr = UdpHeader::new(40000, 11211, payload.len());
        let mut buf = [0u8; UDP_HEADER_LEN];
        hdr.write(&mut buf, Some((SRC, DST, payload)));
        assert_ne!(u16::from_be_bytes([buf[6], buf[7]]), 0);
        assert!(UdpHeader::verify(SRC, DST, &buf, payload));

        let mut bad = *payload;
        bad[0] ^= 1;
        assert!(!UdpHeader::verify(SRC, DST, &buf, &bad));
        // A different (not merely swapped — the ones'-complement sum is
        // commutative) address pair must fail verification.
        assert!(!UdpHeader::verify([99, 0, 0, 1], DST, &buf, payload));
    }

    #[test]
    fn zero_checksum_always_verifies() {
        let payload = b"data";
        let hdr = UdpHeader::new(1, 2, payload.len());
        let mut buf = [0u8; UDP_HEADER_LEN];
        hdr.write(&mut buf, None);
        assert!(UdpHeader::verify(SRC, DST, &buf, payload));
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(UdpHeader::parse(&[0u8; 7]), None);
        assert!(!UdpHeader::verify(SRC, DST, &[0u8; 7], b""));
    }
}
