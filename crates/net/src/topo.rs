//! Network topologies: named nodes joined by policy-carrying links.
//!
//! The paper's harness drives one load generator into one host over a
//! single full-duplex wire. This module generalizes that wire into a
//! small topology graph (the SimBricks/ce-netsim shape): **nodes**
//! (load-generator fleets, switches, hosts) joined by **directed links**,
//! where every link carries a [`LinkPolicy`] — propagation latency,
//! serialization bandwidth, an optional bounded congestion queue with
//! tail-drop, and optional seeded random loss — and a [`Switch`] forwards
//! frames by destination MAC onto per-port egress links.
//!
//! Two layers live here:
//!
//! * the *description*: [`Topology`], a validated graph of named
//!   [`NodeKind`]s and [`LinkPolicy`]-annotated edges that a harness
//!   instantiates into an event schedule;
//! * the *mechanism*: [`TopoLink`], the executable link whose pure-wire
//!   arithmetic is tick-identical to `simnet_nic::EtherLink` (`start =
//!   max(now, busy_until); done = start + bytes_to_ticks(len + 20);
//!   arrival = done + latency`), so the degenerate two-node/one-link
//!   topology reproduces the legacy point-to-point schedule byte for
//!   byte, and [`Switch`], the MAC-table forwarder.
//!
//! Drops never vanish: every [`TopoLink::transmit`] outcome is counted
//! (`offered == frames + tail_drops + loss_drops`), which is the
//! conservation ledger the property suite checks.

use std::collections::VecDeque;

use simnet_sim::random::SimRng;
use simnet_sim::stats::Counter;
use simnet_sim::tick::{Bandwidth, Tick};

use crate::ethernet::WIRE_OVERHEAD;
use crate::MacAddr;

/// What one directed link does to the frames it carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPolicy {
    /// Serialization rate (line rate including preamble + IFG overhead).
    pub bandwidth: Bandwidth,
    /// One-way propagation latency added after serialization completes.
    pub latency: Tick,
    /// Bounded egress/congestion queue in frames, counting the frame in
    /// service; `None` models an unbounded (pure) wire that never drops.
    pub queue_frames: Option<usize>,
    /// Seeded random loss probability in parts per million; 0 = lossless.
    pub loss_ppm: u32,
}

impl LinkPolicy {
    /// A pure wire: serialize + propagate, never drop. Tick-identical to
    /// `EtherLink` — this is the degenerate-topology policy.
    pub fn wire(bandwidth: Bandwidth, latency: Tick) -> Self {
        LinkPolicy {
            bandwidth,
            latency,
            queue_frames: None,
            loss_ppm: 0,
        }
    }

    /// A wire with a bounded congestion queue of `frames` (tail-drop when
    /// full). `frames` must be ≥ 1 (the frame in service occupies a slot).
    pub fn bounded(bandwidth: Bandwidth, latency: Tick, frames: usize) -> Self {
        assert!(frames >= 1, "a bounded queue needs at least one slot");
        LinkPolicy {
            queue_frames: Some(frames),
            ..LinkPolicy::wire(bandwidth, latency)
        }
    }

    /// Adds seeded random loss of `ppm` parts per million.
    pub fn with_loss(mut self, ppm: u32) -> Self {
        assert!(ppm <= 1_000_000, "loss probability above 1.0");
        self.loss_ppm = ppm;
        self
    }
}

/// The outcome of offering one frame to a [`TopoLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Accepted; the frame arrives at the far end at this tick.
    Deliver(Tick),
    /// The bounded congestion queue was full: tail-dropped at enqueue.
    TailDrop,
    /// Seeded random loss ate the frame on the wire.
    LossDrop,
}

/// One directed link executing a [`LinkPolicy`].
///
/// With the [`LinkPolicy::wire`] policy, `transmit` computes exactly the
/// `EtherLink` arrival tick — same serialization overhead, same busy
/// horizon — which is what keeps the degenerate topology byte-identical
/// to the legacy point-to-point harness path.
#[derive(Debug)]
pub struct TopoLink {
    policy: LinkPolicy,
    busy_until: Tick,
    /// Serialization-completion ticks of queued frames, ascending. Only
    /// maintained for bounded links (the pure wire skips the bookkeeping).
    inflight: VecDeque<Tick>,
    /// Loss draw stream, independent of workload and fault RNGs.
    rng: SimRng,
    /// Frames offered to the link (accepted + dropped).
    pub offered: Counter,
    /// Frames accepted and serialized.
    pub frames: Counter,
    /// Frame bytes accepted (excluding wire overhead).
    pub bytes: Counter,
    /// Frames tail-dropped at the full congestion queue.
    pub tail_drops: Counter,
    /// Frames lost to the seeded random-loss draw.
    pub loss_drops: Counter,
    queue_peak: usize,
}

impl TopoLink {
    /// Creates a link. `seed` feeds the loss draw stream; it is ignored
    /// (but still mixed in deterministically) for lossless policies.
    pub fn new(policy: LinkPolicy, seed: u64) -> Self {
        TopoLink {
            policy,
            busy_until: 0,
            inflight: VecDeque::new(),
            rng: SimRng::seed_from(seed ^ 0x70B0_117C),
            offered: Counter::new(),
            frames: Counter::new(),
            bytes: Counter::new(),
            tail_drops: Counter::new(),
            loss_drops: Counter::new(),
            queue_peak: 0,
        }
    }

    /// The link's policy.
    pub fn policy(&self) -> LinkPolicy {
        self.policy
    }

    /// The link's propagation latency — the conservative-parallel
    /// *lookahead*: a frame offered while the sender's clock reads `C`
    /// can never arrive before `C + lookahead()`.
    pub fn lookahead(&self) -> Tick {
        self.policy.latency
    }

    /// Whether this link can never drop a frame: no bounded congestion
    /// queue and no random loss. Pure wires take the branch-free
    /// [`TopoLink::transmit_wire`] fast path.
    pub fn is_pure_wire(&self) -> bool {
        self.policy.queue_frames.is_none() && self.policy.loss_ppm == 0
    }

    /// Fast-path transmit for links [`TopoLink::is_pure_wire`] proves
    /// can never drop: same serialization arithmetic and counters as
    /// [`TopoLink::transmit`], minus the admission branches and the
    /// `Verdict` wrap. Returns the arrival tick directly.
    ///
    /// # Panics
    ///
    /// Debug-asserts the link really is a pure wire; calling this on a
    /// dropping link would silently skip its queue/loss policy.
    #[inline]
    pub fn transmit_wire(&mut self, now: Tick, frame_len: usize) -> Tick {
        debug_assert!(self.is_pure_wire(), "transmit_wire on a dropping link");
        self.offered.inc();
        let start = now.max(self.busy_until);
        let wire_bytes = frame_len as u64 + WIRE_OVERHEAD as u64;
        let done = start + self.policy.bandwidth.bytes_to_ticks(wire_bytes);
        self.busy_until = done;
        self.frames.inc();
        self.bytes.add(frame_len as u64);
        done + self.policy.latency
    }

    /// Offers a frame of `frame_len` bytes at `now`. Queue admission is
    /// checked first (tail-drop), then the loss draw, then the frame
    /// serializes behind the busy horizon exactly like `EtherLink`.
    pub fn transmit(&mut self, now: Tick, frame_len: usize) -> Verdict {
        self.offered.inc();
        if let Some(bound) = self.policy.queue_frames {
            self.retire(now);
            if self.inflight.len() >= bound {
                self.tail_drops.inc();
                return Verdict::TailDrop;
            }
        }
        if self.policy.loss_ppm > 0 {
            let p = f64::from(self.policy.loss_ppm) / 1e6;
            if self.rng.chance(p) {
                self.loss_drops.inc();
                return Verdict::LossDrop;
            }
        }
        let start = now.max(self.busy_until);
        let wire_bytes = frame_len as u64 + WIRE_OVERHEAD as u64;
        let done = start + self.policy.bandwidth.bytes_to_ticks(wire_bytes);
        self.busy_until = done;
        self.frames.inc();
        self.bytes.add(frame_len as u64);
        if self.policy.queue_frames.is_some() {
            self.inflight.push_back(done);
            self.queue_peak = self.queue_peak.max(self.inflight.len());
        }
        Verdict::Deliver(done + self.policy.latency)
    }

    /// Frames not yet fully serialized at `now` (including the one in
    /// service). Always 0 for unbounded links, which skip the tracking.
    pub fn occupancy(&mut self, now: Tick) -> usize {
        self.retire(now);
        self.inflight.len()
    }

    /// High-water mark of the congestion-queue occupancy.
    pub fn queue_peak(&self) -> usize {
        self.queue_peak
    }

    /// The earliest time a new frame could start serializing.
    pub fn next_free(&self) -> Tick {
        self.busy_until
    }

    /// Clears statistics; the busy horizon and queued frames persist
    /// (mirrors `EtherLink::reset_stats`).
    pub fn reset_stats(&mut self) {
        self.offered.reset();
        self.frames.reset();
        self.bytes.reset();
        self.tail_drops.reset();
        self.loss_drops.reset();
        self.queue_peak = 0;
    }

    fn retire(&mut self, now: Tick) {
        while self.inflight.front().is_some_and(|&done| done <= now) {
            self.inflight.pop_front();
        }
    }
}

/// A MAC-learning-free switch: a static destination-MAC → egress-port
/// table. Ports are indices the owning harness maps to egress
/// [`TopoLink`]s; forwarding is a deterministic linear scan (tables here
/// are a handful of entries).
#[derive(Debug, Default)]
pub struct Switch {
    routes: Vec<(MacAddr, usize)>,
}

impl Switch {
    /// An empty forwarding table.
    pub fn new() -> Self {
        Switch::default()
    }

    /// Binds `mac` to egress `port`. Panics on duplicate MACs — the
    /// table is static, so a duplicate is a harness wiring bug.
    pub fn add_route(&mut self, mac: MacAddr, port: usize) {
        assert!(
            !self.routes.iter().any(|&(m, _)| m == mac),
            "duplicate switch route for {mac:?}"
        );
        self.routes.push((mac, port));
    }

    /// The egress port for `dst`, or `None` for an unknown destination
    /// (the caller counts and drops — no flooding in this model).
    pub fn route(&self, dst: MacAddr) -> Option<usize> {
        self.routes
            .iter()
            .find(|&&(m, _)| m == dst)
            .map(|&(_, port)| port)
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// What a topology node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A simulated host (NIC + stack + app).
    Host,
    /// A MAC-forwarding switch with per-port egress queues.
    Switch,
    /// A load-generator endpoint (one client of a fleet).
    LoadGen,
}

/// A named node in a [`Topology`].
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Human-readable name (unique within the topology).
    pub name: String,
    /// Role of the node.
    pub kind: NodeKind,
}

/// A directed edge in a [`Topology`].
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// The policy frames experience on this edge.
    pub policy: LinkPolicy,
}

/// A validated description of a network: named nodes plus directed,
/// policy-carrying links. The harness instantiates this into executable
/// [`TopoLink`]s and a [`Switch`] table; the description itself carries
/// no simulation state.
#[derive(Debug, Default)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
}

impl Topology {
    /// An empty graph.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node; returns its index. Panics on duplicate names.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> usize {
        let name = name.into();
        assert!(
            !self.nodes.iter().any(|n| n.name == name),
            "duplicate topology node name {name:?}"
        );
        self.nodes.push(NodeSpec { name, kind });
        self.nodes.len() - 1
    }

    /// Adds a directed link; returns its index. Panics if an endpoint
    /// does not exist or on a self-loop.
    pub fn connect(&mut self, from: usize, to: usize, policy: LinkPolicy) -> usize {
        assert!(from < self.nodes.len(), "link source {from} out of range");
        assert!(to < self.nodes.len(), "link target {to} out of range");
        assert_ne!(from, to, "self-loop on node {from}");
        self.links.push(LinkSpec { from, to, policy });
        self.links.len() - 1
    }

    /// The nodes, in insertion order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The links, in insertion order.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Index of the node called `name`.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// The canonical degenerate topology: one load generator, one host,
    /// one full-duplex pure wire (two directed links). Instantiating
    /// this graph reproduces the legacy point-to-point harness schedule
    /// byte for byte.
    pub fn point_to_point(bandwidth: Bandwidth, latency: Tick) -> Self {
        let mut t = Topology::new();
        let lg = t.add_node("loadgen", NodeKind::LoadGen);
        let host = t.add_node("host", NodeKind::Host);
        let wire = LinkPolicy::wire(bandwidth, latency);
        t.connect(lg, host, wire);
        t.connect(host, lg, wire);
        t
    }

    /// An incast fan-in: `clients` load generators behind one switch
    /// feeding one host. Client access links are pure wires whose
    /// latency grows by `latency_spread` per client (heterogeneous RTT);
    /// the switch↔host trunk carries a bounded congestion queue of
    /// `trunk_queue_frames` (0 = unbounded) and client uplinks carry
    /// `loss_ppm` seeded loss.
    #[allow(clippy::too_many_arguments)]
    pub fn incast(
        clients: usize,
        bandwidth: Bandwidth,
        client_latency: Tick,
        latency_spread: Tick,
        trunk_latency: Tick,
        trunk_queue_frames: usize,
        loss_ppm: u32,
    ) -> Self {
        assert!(clients >= 1, "incast needs at least one client");
        let mut t = Topology::new();
        let sw = t.add_node("switch", NodeKind::Switch);
        let host = t.add_node("host", NodeKind::Host);
        let trunk = if trunk_queue_frames == 0 {
            LinkPolicy::wire(bandwidth, trunk_latency)
        } else {
            LinkPolicy::bounded(bandwidth, trunk_latency, trunk_queue_frames)
        };
        t.connect(sw, host, trunk);
        t.connect(host, sw, LinkPolicy::wire(bandwidth, trunk_latency));
        for i in 0..clients {
            let c = t.add_node(format!("client{i}"), NodeKind::LoadGen);
            let access = LinkPolicy::wire(bandwidth, client_latency + latency_spread * i as Tick);
            t.connect(c, sw, access.with_loss(loss_ppm));
            t.connect(sw, c, access);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet_sim::tick::{ns, us};

    fn wire(gbps: f64, latency: Tick) -> TopoLink {
        TopoLink::new(LinkPolicy::wire(Bandwidth::gbps(gbps), latency), 7)
    }

    #[test]
    fn pure_wire_matches_etherlink_arithmetic() {
        // The EtherLink doctest values: (1518 + 20) B at 100 Gbps =
        // 123.04 ns serialization, plus propagation.
        let mut link = wire(100.0, us(100));
        assert_eq!(link.transmit(0, 1518), Verdict::Deliver(123_040 + us(100)));
        // (64 + 20) B at 10 Gbps = 67.2 ns.
        let mut link = wire(10.0, 0);
        assert_eq!(link.transmit(0, 64), Verdict::Deliver(67_200));
    }

    #[test]
    fn frames_serialize_back_to_back() {
        let mut link = wire(10.0, 0);
        let Verdict::Deliver(a) = link.transmit(0, 64) else {
            panic!("pure wire dropped")
        };
        let Verdict::Deliver(b) = link.transmit(0, 64) else {
            panic!("pure wire dropped")
        };
        assert_eq!(b - a, ns(67) + 200);
        assert_eq!(link.frames.value(), 2);
        assert_eq!(link.bytes.value(), 128);
    }

    #[test]
    fn transmit_wire_fast_path_matches_transmit() {
        let mut slow = wire(100.0, us(100));
        let mut fast = wire(100.0, us(100));
        assert!(fast.is_pure_wire());
        for t in 0..64u64 {
            let len = 64 + (t as usize * 37) % 1400;
            let Verdict::Deliver(expect) = slow.transmit(t * 400, len) else {
                panic!("pure wire dropped")
            };
            assert_eq!(fast.transmit_wire(t * 400, len), expect);
        }
        assert_eq!(fast.offered.value(), slow.offered.value());
        assert_eq!(fast.frames.value(), slow.frames.value());
        assert_eq!(fast.bytes.value(), slow.bytes.value());
        assert_eq!(fast.next_free(), slow.next_free());
        // Dropping policies are excluded from the fast path.
        assert!(!TopoLink::new(LinkPolicy::bounded(Bandwidth::gbps(10.0), 0, 2), 7).is_pure_wire());
        assert!(
            !TopoLink::new(LinkPolicy::wire(Bandwidth::gbps(10.0), 0).with_loss(1), 7)
                .is_pure_wire()
        );
    }

    #[test]
    fn idle_wire_starts_immediately() {
        let mut link = wire(10.0, 0);
        link.transmit(0, 64);
        assert_eq!(link.transmit(us(10), 64), Verdict::Deliver(us(10) + 67_200));
    }

    #[test]
    fn bounded_queue_tail_drops_when_full() {
        // 2-deep queue at 10 Gbps: the third back-to-back frame at t=0
        // finds both slots occupied and tail-drops.
        let mut link = TopoLink::new(LinkPolicy::bounded(Bandwidth::gbps(10.0), 0, 2), 7);
        assert!(matches!(link.transmit(0, 64), Verdict::Deliver(_)));
        assert!(matches!(link.transmit(0, 64), Verdict::Deliver(_)));
        assert_eq!(link.transmit(0, 64), Verdict::TailDrop);
        assert_eq!(link.tail_drops.value(), 1);
        assert_eq!(link.queue_peak(), 2);
        // Once the first frame finishes serializing (67.2 ns), a slot
        // frees and the link accepts again.
        assert!(matches!(link.transmit(67_200, 64), Verdict::Deliver(_)));
        // Ledger: offered == frames + tail_drops + loss_drops.
        assert_eq!(
            link.offered.value(),
            link.frames.value() + link.tail_drops.value() + link.loss_drops.value()
        );
    }

    #[test]
    fn occupancy_never_negative_and_retires() {
        let mut link = TopoLink::new(LinkPolicy::bounded(Bandwidth::gbps(10.0), us(1), 8), 7);
        for _ in 0..5 {
            link.transmit(0, 64);
        }
        assert_eq!(link.occupancy(0), 5);
        // All five serialize within 5 × 67.2 ns.
        assert_eq!(link.occupancy(us(1)), 0);
    }

    #[test]
    fn seeded_loss_is_deterministic() {
        let policy = LinkPolicy::wire(Bandwidth::gbps(10.0), 0).with_loss(200_000);
        let run = |seed| {
            let mut link = TopoLink::new(policy, seed);
            (0..256)
                .map(|t| link.transmit(t * 1000, 64))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11), "same seed must replay identically");
        assert_ne!(
            run(11),
            run(12),
            "20% loss over 256 frames must differ across seeds"
        );
        let mut link = TopoLink::new(policy, 11);
        let mut lost = 0;
        for t in 0..1000 {
            if link.transmit(t * 1000, 64) == Verdict::LossDrop {
                lost += 1;
            }
        }
        assert!(
            (100..320).contains(&lost),
            "20% nominal loss, got {lost}/1000"
        );
        assert_eq!(link.loss_drops.value(), lost);
    }

    #[test]
    fn lossless_link_ignores_seed() {
        let mut a = wire(10.0, us(1));
        let mut b = TopoLink::new(LinkPolicy::wire(Bandwidth::gbps(10.0), us(1)), 999);
        for t in 0..64 {
            assert_eq!(a.transmit(t * 500, 200), b.transmit(t * 500, 200));
        }
    }

    #[test]
    fn switch_routes_by_mac() {
        let mut sw = Switch::new();
        let server = MacAddr::simulated(1);
        let c0 = MacAddr::simulated(100);
        let c1 = MacAddr::simulated(101);
        sw.add_route(server, 0);
        sw.add_route(c0, 1);
        sw.add_route(c1, 2);
        assert_eq!(sw.route(server), Some(0));
        assert_eq!(sw.route(c1), Some(2));
        assert_eq!(sw.route(MacAddr::simulated(42)), None);
        assert_eq!(sw.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate switch route")]
    fn switch_rejects_duplicate_mac() {
        let mut sw = Switch::new();
        sw.add_route(MacAddr::simulated(1), 0);
        sw.add_route(MacAddr::simulated(1), 1);
    }

    #[test]
    fn point_to_point_graph_shape() {
        let t = Topology::point_to_point(Bandwidth::gbps(100.0), us(100));
        assert_eq!(t.nodes().len(), 2);
        assert_eq!(t.links().len(), 2);
        assert_eq!(t.find("host"), Some(1));
        for l in t.links() {
            assert_eq!(l.policy.queue_frames, None);
            assert_eq!(l.policy.loss_ppm, 0);
        }
    }

    #[test]
    fn incast_graph_shape() {
        let t = Topology::incast(8, Bandwidth::gbps(100.0), us(50), us(10), ns(500), 64, 100);
        // switch + host + 8 clients; trunk pair + 8 access pairs.
        assert_eq!(t.nodes().len(), 10);
        assert_eq!(t.links().len(), 18);
        let trunk = t.links()[0];
        assert_eq!(trunk.policy.queue_frames, Some(64));
        // Heterogeneous RTT: client 7's access latency is 50 + 7×10 µs.
        let c7 = t.find("client7").unwrap();
        let up = t.links().iter().find(|l| l.from == c7).unwrap();
        assert_eq!(up.policy.latency, us(50) + us(10) * 7);
        assert_eq!(up.policy.loss_ppm, 100);
        // Downlinks carry no loss (loss is an uplink policy here).
        let down = t.links().iter().find(|l| l.to == c7).unwrap();
        assert_eq!(down.policy.loss_ppm, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate topology node name")]
    fn topology_rejects_duplicate_names() {
        let mut t = Topology::new();
        t.add_node("a", NodeKind::Host);
        t.add_node("a", NodeKind::Switch);
    }
}
