//! Packet and frame model for `simnet`.
//!
//! Packets in the simulator carry **real bytes**: what `EtherLoadGen`
//! injects, what the NIC DMA-writes into ring buffers, and what the PCAP
//! capture taps record are all the same buffers. This keeps trace capture
//! and replay honest — a trace captured from a simulated run is a valid
//! `.pcap` file readable by wireshark/tcpdump, and real `.pcap` files can be
//! replayed into the simulator.
//!
//! Modules:
//!
//! * [`mac`] — MAC addresses.
//! * [`ethernet`] — Ethernet II framing.
//! * [`ipv4`] / [`udp`] — minimal L3/L4 headers with checksums.
//! * [`packet`] — the [`Packet`] buffer and [`PacketBuilder`].
//! * [`pool`] — the DPDK-mempool-style recycled buffer arena backing
//!   [`Packet`] storage.
//! * [`burst`] — the [`Burst`] carrier moving batches of wire
//!   deliveries as single events, DPDK-`rx_burst`-style.
//! * [`rss`] — the Toeplitz receive-side-scaling hash steering flows to
//!   RX queues.
//! * [`topo`] — topology graphs: named nodes joined by links carrying
//!   latency/bandwidth/queue/loss policies, plus the MAC-forwarding
//!   switch.
//! * [`timestamp`] — the load generator's in-payload timestamps (§IV).
//! * [`pcap`] — PCAP file reading/writing (tcpdump/dpdk-pdump stand-in).
//! * [`proto`] — application protocols (memcached-over-UDP).

pub mod burst;
pub mod checksum;
pub mod ethernet;
pub mod ipv4;
pub mod mac;
pub mod packet;
pub mod pcap;
pub mod pool;
pub mod proto;
pub mod rss;
pub mod tcp;
pub mod timestamp;
pub mod topo;
pub mod udp;

pub use burst::{Burst, BurstEntry, SmallVec, BURST_INLINE};
pub use ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN, MAX_FRAME_LEN, MIN_FRAME_LEN};
pub use mac::MacAddr;
pub use packet::{Packet, PacketBuilder};
